//! Exhaustive combinatorial search over the index space: brute-force
//! TSP by scanning permutations in disjoint index blocks across worker
//! threads — the "parallel machines" pattern the paper's converter
//! exists to feed (each worker derives its own permutations from a
//! private index range; no shared state).
//!
//! ```text
//! cargo run --release --example tsp_search
//! ```

use hwperm_core::{parallel_reduce, ParallelPlan};
use hwperm_perm::Permutation;
use hwperm_rng::XorShift64Star;

/// Tour length for city order `perm` on a distance matrix (closed tour
/// fixing city 0 as the depot; `perm` orders the remaining cities).
fn tour_length(dist: &[Vec<u32>], perm: &Permutation) -> u64 {
    let mut total = 0u64;
    let mut prev = 0usize; // depot
    for &c in perm.as_slice() {
        let city = c as usize + 1;
        total += dist[prev][city] as u64;
        prev = city;
    }
    total + dist[prev][0] as u64
}

fn main() {
    // 10 cities (9! = 362,880 tours with the depot fixed).
    let cities = 10usize;
    let mut rng = XorShift64Star::new(2026);
    let coords: Vec<(f64, f64)> = (0..cities)
        .map(|_| (rng.below(1000) as f64, rng.below(1000) as f64))
        .collect();
    let dist: Vec<Vec<u32>> = (0..cities)
        .map(|i| {
            (0..cities)
                .map(|j| {
                    let dx = coords[i].0 - coords[j].0;
                    let dy = coords[i].1 - coords[j].1;
                    (dx * dx + dy * dy).sqrt().round() as u32
                })
                .collect()
        })
        .collect();

    let free = cities - 1;
    let workers = std::thread::available_parallelism()
        .map_or(1, |c| c.get())
        .max(2);
    println!("brute-force TSP over {free}! = 362,880 tours, {workers} workers");

    let start = std::time::Instant::now();
    let plan = ParallelPlan::full(free, workers);
    let best = parallel_reduce(
        &plan,
        |block| {
            let mut best: Option<(u64, Permutation)> = None;
            for (_, perm) in block {
                let len = tour_length(&dist, &perm);
                if best.as_ref().is_none_or(|(b, _)| len < *b) {
                    best = Some((len, perm));
                }
            }
            best
        },
        None,
        |a, b| match (a, b) {
            (None, x) | (x, None) => x,
            (Some(a), Some(b)) => Some(if a.0 <= b.0 { a } else { b }),
        },
    )
    .expect("at least one tour");
    let elapsed = start.elapsed();

    println!("optimal tour length: {}", best.0);
    println!("city order: 0 -> {} -> 0", best.1);
    println!(
        "searched in {:.2?} ({:.0} tours/s)",
        elapsed,
        362_880.0 / elapsed.as_secs_f64()
    );

    // Sanity: a random tour is worse (or equal) — brute force found a
    // certified optimum because the index space was covered exactly.
    let random_len = tour_length(&dist, &hwperm_perm::shuffle::knuth_shuffle(free, &mut rng));
    println!("a random tour for comparison: {random_len}");
    assert!(best.0 <= random_len);
}
