//! Dumps a VCD waveform of the pipelined converter filling up and then
//! emitting one permutation per clock — the visual counterpart of the
//! paper's throughput claim. Open `target/pipeline.vcd` in GTKWave.
//!
//! ```text
//! cargo run --release --example pipeline_waveform
//! ```

use hwperm_bignum::Ubig;
use hwperm_circuits::{converter_netlist, ConverterOptions};
use hwperm_logic::{Simulator, Tracer};
use hwperm_perm::Permutation;

fn main() {
    let n = 4;
    let netlist = converter_netlist(
        n,
        ConverterOptions {
            pipelined: true,
            perm_input_port: false,
        },
    );
    let mut tracer = Tracer::new(&netlist, &["index", "perm"]);
    let mut sim = Simulator::new(netlist);

    println!("clock | index in | perm word out | decoded");
    for cycle in 0..12u64 {
        let index = cycle % 24;
        sim.set_input("index", &Ubig::from(index));
        sim.step();
        sim.eval();
        tracer.sample(&sim);
        let word = sim.read_output("perm");
        let decoded = Permutation::unpack(n, &word)
            .map(|p| p.to_string())
            .unwrap_or_else(|_| "(filling)".into());
        println!(
            "{cycle:>5} | {index:>8} | {:>13} | {decoded}",
            word.to_u64().unwrap()
        );
    }

    let vcd = tracer.to_vcd();
    let path = "target/pipeline.vcd";
    std::fs::write(path, &vcd).expect("write VCD");
    println!("\nwrote {} bytes of VCD to {path}", vcd.len());
    println!("note the 3-cycle fill latency (n−1), then one new permutation per clock.");
}
