//! Quickstart: convert indices to permutations three ways — pure
//! software, the gate-level Fig. 1 netlist, and the pipelined netlist —
//! and print the circuit's resource report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hwperm_bignum::Ubig;
use hwperm_circuits::{ConverterOptions, IndexToPermConverter};
use hwperm_factoradic::{rank, unrank};

fn main() {
    let n = 8;

    // Software unranking: the paper's Table I mapping, generalized.
    let index = Ubig::from(12_345u64);
    let perm = unrank(n, &index);
    println!("permutation #{index} of {n} elements: {perm}");
    println!(
        "its Lehmer code (factorial-number-system digits): {:?}",
        perm.lehmer()
    );
    assert_eq!(rank(&perm), index, "rank inverts unrank");

    // The same conversion on the simulated hardware, bit for bit.
    let mut circuit = IndexToPermConverter::new(n);
    let hw_perm = circuit.convert(&index);
    assert_eq!(hw_perm, perm, "netlist agrees with software");
    println!("\ngate-level circuit produced the same permutation: {hw_perm}");
    println!("circuit resources: {}", circuit.report());

    // Pipelined operation: one permutation per clock after an n−1 fill.
    let mut pipe = IndexToPermConverter::with_options(
        n,
        ConverterOptions {
            pipelined: true,
            perm_input_port: false,
        },
    );
    let indices: Vec<Ubig> = (0..10u64).map(|i| Ubig::from(i * 3999)).collect();
    let stream = pipe.convert_stream(&indices);
    println!(
        "\npipelined stream (latency {} clocks, then 1 perm/clock):",
        pipe.latency()
    );
    for (i, p) in indices.iter().zip(&stream) {
        assert_eq!(p, &unrank(n, i));
        println!("  #{i} -> {p}");
    }

    // Arbitrary n: the index bus grows as ⌈log₂ n!⌉; software and
    // circuit both handle multi-word indices.
    let big_n = 25;
    let big_index = Ubig::factorial(25).divrem_u64(3).0;
    let big = unrank(big_n, &big_index);
    println!("\npermutation #{big_index} of {big_n} elements:\n  {big}");
}
