//! Monte-Carlo estimation of the matrix permanent with the random
//! permutation generators — the "useful in Monte Carlo simulations"
//! claim of Section III exercised on a genuinely #P-hard quantity.
//!
//! For an `n×n` matrix `A`,
//! `perm(A) = Σ_π Π_i A[i, π(i)] = n! · E_π[ Π_i A[i, π(i)] ]`
//! over uniformly random permutations π, so sampling π with the Knuth
//! shuffle gives an unbiased estimator. The exact value (via Ryser's
//! formula, O(2^n·n)) validates it.
//!
//! ```text
//! cargo run --release --example permanent_estimate
//! ```

use hwperm_circuits::{KnuthShuffleModel, ShuffleOptions};
use hwperm_factoradic::IndexedPermutations;
use hwperm_rng::XorShift64Star;

/// Exact permanent by Ryser's inclusion–exclusion formula.
fn permanent_ryser(a: &[Vec<f64>]) -> f64 {
    let n = a.len();
    let mut total = 0.0f64;
    for subset in 1u32..(1 << n) {
        let mut prod = 1.0;
        for row in a {
            let mut sum = 0.0;
            for (j, &v) in row.iter().enumerate() {
                if (subset >> j) & 1 == 1 {
                    sum += v;
                }
            }
            prod *= sum;
        }
        let sign = if (n as u32 - subset.count_ones()) % 2 == 0 {
            1.0
        } else {
            -1.0
        };
        total += sign * prod;
    }
    total
}

/// Exact permanent by brute-force enumeration (cross-check for Ryser).
fn permanent_enumerate(a: &[Vec<f64>]) -> f64 {
    let n = a.len();
    IndexedPermutations::all(n)
        .map(|(_, p)| (0..n).map(|i| a[i][p.at(i) as usize]).product::<f64>())
        .sum()
}

fn main() {
    let n = 9usize;
    // Random 0/1-ish matrix with some structure.
    let mut rng = XorShift64Star::new(77);
    let a: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..n).map(|_| (rng.below(4) != 0) as u64 as f64).collect())
        .collect();

    let exact_ryser = permanent_ryser(&a);
    let exact_enum = permanent_enumerate(&a);
    assert!(
        (exact_ryser - exact_enum).abs() < 1e-6 * exact_enum.abs().max(1.0),
        "Ryser and enumeration disagree: {exact_ryser} vs {exact_enum}"
    );
    println!("exact permanent (Ryser, cross-checked by full enumeration): {exact_ryser}");

    // Monte Carlo with the hardware-faithful shuffle mirror.
    let nfact: f64 = (1..=n as u64).map(|x| x as f64).product();
    let mut shuffle = KnuthShuffleModel::with_options(
        n,
        ShuffleOptions {
            lfsr_width: 31,
            pipelined: false,
            seed: 0xACC,
        },
    );
    println!("\nMonte-Carlo estimates (Knuth-shuffle generator, circuit-exact sequence):");
    for &samples in &[1_000u64, 10_000, 100_000, 1_000_000] {
        let mut acc = 0.0f64;
        for _ in 0..samples {
            let p = shuffle.next_permutation();
            acc += (0..n).map(|i| a[i][p.at(i) as usize]).product::<f64>();
        }
        let estimate = nfact * acc / samples as f64;
        println!(
            "  {samples:>9} samples: {estimate:>14.0}  (error {:>6.2}%)",
            100.0 * (estimate - exact_ryser).abs() / exact_ryser
        );
    }
    println!("\nthe estimator converges to the exact #P-hard value — one permutation");
    println!("per clock is precisely what such samplers consume.");
}
