//! Formal verification demo: prove — not test — that the generated
//! Fig. 1 netlist implements factorial-number-system unranking, by
//! compiling the circuit to ROBDDs and checking it against the software
//! specification on every input, then export the proven design as
//! synthesizable Verilog and BLIF.
//!
//! ```text
//! cargo run --release --example formal_verification
//! ```

use hwperm_circuits::{converter_netlist, ConverterOptions};
use hwperm_factoradic::{factorials_u64, unrank_u64};
use hwperm_logic::{to_blif, to_verilog, ResourceReport};
use hwperm_verify::CompiledNetlist;
use std::collections::BTreeMap;

fn main() {
    for n in [4usize, 5, 6] {
        let netlist = converter_netlist(n, ConverterOptions::default());
        let report = ResourceReport::of(&netlist);
        let compiled = CompiledNetlist::compile(&netlist).expect("combinational circuit");
        let nfact = factorials_u64(n)[n];
        let result = compiled.verify_against_spec(
            |index| index.to_u64().is_some_and(|i| i < nfact),
            |index| {
                let perm = unrank_u64(n, index.to_u64().unwrap());
                BTreeMap::from([("perm".to_string(), perm.pack())])
            },
        );
        match result {
            None => println!(
                "n = {n}: PROVEN equal to software unranking over all {} in-range indices \
                 ({} BDD variables, {} LUTs)",
                nfact,
                compiled.num_vars(),
                report.total_luts
            ),
            Some(cex) => println!("n = {n}: COUNTEREXAMPLE at index {cex}"),
        }
    }

    // Export the verified n = 4 design for real tool flows.
    let netlist = converter_netlist(4, ConverterOptions::default());
    let verilog = to_verilog(&netlist, "index_to_perm_4");
    let blif = to_blif(&netlist, "index_to_perm_4");
    std::fs::create_dir_all("target/export").unwrap();
    std::fs::write("target/export/index_to_perm_4.v", &verilog).unwrap();
    std::fs::write("target/export/index_to_perm_4.blif", &blif).unwrap();
    println!(
        "\nexported the proven design: target/export/index_to_perm_4.v ({} bytes), .blif ({} bytes)",
        verilog.len(),
        blif.len()
    );

    // Show that verification has teeth: inject a fault and re-verify.
    let live = netlist.live_mask();
    let victim = (0..netlist.len())
        .find(|&i| live[i] && matches!(netlist.gates()[i], hwperm_logic::Gate::And(_, _)))
        .expect("an AND gate exists");
    let (a, b) = match netlist.gates()[victim] {
        hwperm_logic::Gate::And(a, b) => (a, b),
        _ => unreachable!(),
    };
    let broken = netlist.with_gate_replaced(victim, hwperm_logic::Gate::Or(a, b));
    let compiled = CompiledNetlist::compile(&broken).unwrap();
    let cex = compiled.verify_against_spec(
        |index| index.to_u64().is_some_and(|i| i < 24),
        |index| {
            let perm = unrank_u64(4, index.to_u64().unwrap());
            BTreeMap::from([("perm".to_string(), perm.pack())])
        },
    );
    match &cex {
        Some(index) => println!(
            "fault injection: flipping gate n{victim} to OR is refuted with counterexample index {index}"
        ),
        None => println!("fault injection unexpectedly passed!"),
    }
    assert!(cex.is_some());
}
