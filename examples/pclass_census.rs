//! P-equivalence census: classify ALL Boolean functions of `v`
//! variables under input permutation — the paper's Boolean-matching
//! motivation (Debnath & Sasao) run to completion — and cross-check the
//! class count against Burnside's lemma, which predicts it from pure
//! group theory:
//!
//! `#classes = (1/|S_v|) · Σ_{g ∈ S_v} 2^{#orbits of g on {0,1}^v}`
//!
//! The census walks every function through every permutation (the
//! enumeration the hardware converter feeds); Burnside needs only the
//! v! permutations themselves. Agreement of the two numbers validates
//! both the canonicalizer and the permutation enumeration.
//!
//! ```text
//! cargo run --release --example pclass_census
//! ```

use hwperm_bdd::{p_representative, TruthTable};
use hwperm_factoradic::IndexedPermutations;
use hwperm_perm::Permutation;
use std::collections::HashSet;

/// Orbits of permutation `g` acting on assignments `{0,1}^v` (by
/// permuting bit positions).
fn orbit_count(g: &Permutation, v: usize) -> u32 {
    let rows = 1u32 << v;
    let mut seen = vec![false; rows as usize];
    let mut orbits = 0;
    for start in 0..rows {
        if seen[start as usize] {
            continue;
        }
        orbits += 1;
        let mut cur = start;
        loop {
            seen[cur as usize] = true;
            // Apply g to the assignment's bit positions.
            let mut next = 0u32;
            for j in 0..v {
                if (cur >> j) & 1 == 1 {
                    next |= 1 << g.at(j);
                }
            }
            cur = next;
            if seen[cur as usize] {
                break;
            }
        }
    }
    orbits
}

fn burnside_prediction(v: usize) -> u128 {
    let mut total = 0u128;
    let mut group_order = 0u128;
    for (_, g) in IndexedPermutations::all(v) {
        total += 1u128 << orbit_count(&g, v);
        group_order += 1;
    }
    assert_eq!(total % group_order, 0, "Burnside sum must divide evenly");
    total / group_order
}

fn census(v: usize) -> usize {
    let rows = 1u64 << v;
    let functions = 1u64 << rows;
    let mut reps: HashSet<u64> = HashSet::new();
    for bits in 0..functions {
        let (rep, _) = p_representative(TruthTable::new(v, bits));
        reps.insert(rep.bits);
    }
    reps.len()
}

fn main() {
    println!("P-equivalence classes of all Boolean functions of v variables:");
    println!(
        "{:>3}  {:>12}  {:>12}  {:>10}",
        "v", "functions", "enumerated", "Burnside"
    );
    for v in 1..=4usize {
        let predicted = burnside_prediction(v);
        let counted = census(v);
        println!(
            "{:>3}  {:>12}  {:>12}  {:>10}",
            v,
            1u64 << (1 << v),
            counted,
            predicted
        );
        assert_eq!(counted as u128, predicted, "census and Burnside disagree");
    }
    println!("\nboth columns agree — the permutation enumeration is exactly S_v, and the");
    println!("canonicalizer maps each function to one representative per orbit.");
}
