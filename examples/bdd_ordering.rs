//! BDD variable-ordering search: the intro's motivating workload.
//!
//! The Achilles-heel function has a linear-size BDD under the best
//! variable order and an exponential one under the worst; finding the
//! optimum means testing many permutations — the enumeration the
//! paper's converter feeds at one permutation per clock.
//!
//! ```text
//! cargo run --release --example bdd_ordering
//! ```

use hwperm_bdd::ordering::{interleaved_order, separated_order};
use hwperm_bdd::{achilles_heel, exhaustive_ordering_search, Manager};

fn main() {
    // Size of the two known-extreme orders as k grows.
    println!("Achilles-heel BDD size: interleaved (a0 b0 a1 b1 …) vs separated (a… then b…):");
    println!(
        "{:>3} {:>6} {:>12} {:>12}",
        "k", "vars", "interleaved", "separated"
    );
    for k in 1..=8 {
        let size = |order: &hwperm_perm::Permutation| {
            let mut m = Manager::new(2 * k);
            let f = achilles_heel(&mut m, k, order);
            m.node_count(f)
        };
        println!(
            "{:>3} {:>6} {:>12} {:>12}",
            k,
            2 * k,
            size(&interleaved_order(k)),
            size(&separated_order(k))
        );
    }

    // Exhaustive search over all 6! = 720 orders for k = 3.
    let k = 3;
    println!("\nexhaustive search over all (2·{k})! = 720 variable orders:");
    let search = exhaustive_ordering_search(2 * k, |m, order| achilles_heel(m, k, order));
    println!("  orders examined: {}", search.examined);
    println!(
        "  best  size {:>3}  (order {})",
        search.best_size, search.best_order
    );
    println!(
        "  worst size {:>3}  (order {})",
        search.worst_size, search.worst_order
    );
    println!(
        "  spread: worst/best = {:.1}x — why ordering search is worth hardware acceleration",
        search.worst_size as f64 / search.best_size as f64
    );
}
