//! The conclusion's remark in action: the converter's datapath as a
//! sorting network, plus using the sorted output to *assess* sorting
//! difficulty of biased inputs (Oommen & Ng motivation, Section III.A).
//!
//! ```text
//! cargo run --release --example sorting_network
//! ```

use hwperm_circuits::SortingNetwork;
use hwperm_perm::shuffle::{biased_shuffle, knuth_shuffle};
use hwperm_rng::XorShift64Star;

fn main() {
    // Sort a few vectors through the gate-level network.
    let mut sorter = SortingNetwork::new(8, 12);
    println!("selection-sort network (n = 8, 12-bit keys):");
    for keys in [
        [830u64, 12, 4000, 12, 7, 999, 0, 256],
        [1, 2, 3, 4, 5, 6, 7, 8],
        [4095, 4094, 4093, 4092, 4091, 4090, 4089, 4088],
    ] {
        println!("  {keys:?}\n    -> {:?}", sorter.sort(&keys));
    }
    println!("  resources: {}\n", sorter.report());

    // Sorting-difficulty assessment: biased shuffles produce "almost
    // sorted" permutations with fewer inversions — the workload profile
    // that favors insertion sort (the paper's Section III.A example).
    let n = 16;
    let trials = 2_000;
    println!("average inversions over {trials} random {n}-element permutations:");
    let mut rng = XorShift64Star::new(7);
    for bias in [0u32, 1, 3, 7] {
        let total: u64 = (0..trials)
            .map(|_| {
                if bias == 0 {
                    knuth_shuffle(n, &mut rng).inversions()
                } else {
                    biased_shuffle(n, bias, &mut rng).inversions()
                }
            })
            .sum();
        println!(
            "  bias {bias}: {:.1} inversions (uniform expectation = {})",
            total as f64 / trials as f64,
            n * (n - 1) / 4
        );
    }
}
