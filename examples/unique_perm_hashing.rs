//! Unique-permutation hashing: the paper's parallel-shared-memory
//! motivation. Compares insert contention of unique-permutation probe
//! sequences against linear probing and double hashing at increasing
//! load factors.
//!
//! ```text
//! cargo run --release --example unique_perm_hashing
//! ```

use hwperm_hash::contention::measure_insert_contention;
use hwperm_hash::{DoubleHashTable, LinearProbeTable, ProbeTable, UniquePermTable};

fn main() {
    let capacity = 16;
    let trials = 2_000;

    println!("probe sequence of key 0xCAFE in a {capacity}-bucket unique-permutation table:");
    let t = UniquePermTable::new(capacity);
    println!("  {:?}", t.probe_sequence(0xCAFE));
    println!("  (a full permutation of the buckets, unranked from hash(key) mod {capacity}!)\n");

    println!("mean probes per insert / fraction of inserts needing >4 probes  ({trials} trials):");
    println!(
        "{:>6}  {:>22}  {:>22}  {:>22}",
        "load", "unique-permutation", "linear probing", "double hashing"
    );
    for fill in [4usize, 8, 12, 14, 15, 16] {
        let up = measure_insert_contention(|| UniquePermTable::new(capacity), fill, trials, 11);
        let lp = measure_insert_contention(|| LinearProbeTable::new(capacity), fill, trials, 11);
        let dh = measure_insert_contention(|| DoubleHashTable::new(capacity), fill, trials, 11);
        let fmt = |s: &hwperm_hash::contention::ContentionStats| {
            format!(
                "{:>7.3} / {:>6.3}%",
                s.mean_probes(),
                100.0 * s.tail_fraction(4)
            )
        };
        println!(
            "{:>5.0}%  {:>22}  {:>22}  {:>22}",
            100.0 * fill as f64 / capacity as f64,
            fmt(&up),
            fmt(&lp),
            fmt(&dh)
        );
    }
    println!("\nunique-permutation hashing keeps the probe tail light at high load — the cited");
    println!("\"minimal possible contention\" property the hardware converter enables.");
}
