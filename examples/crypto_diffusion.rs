//! Cryptographic diffusion (intro motivation: "permutations are used to
//! create diffusion, where information in the plaintext is spread out
//! across the ciphertext" — DES uses six, Twofish and Serpent two each).
//!
//! Builds a toy substitution–permutation network whose permutation layer
//! is selected *by index* through the converter, and measures the
//! avalanche effect with and without the permutation layer.
//!
//! ```text
//! cargo run --release --example crypto_diffusion
//! ```

use hwperm_bignum::Ubig;
use hwperm_factoradic::unrank;
use hwperm_perm::Permutation;
use hwperm_rng::XorShift64Star;

const BITS: usize = 16;
const ROUNDS: usize = 4;

/// 4-bit S-box (from PRESENT).
const SBOX: [u16; 16] = [
    0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
];

fn sub_layer(x: u16) -> u16 {
    let mut out = 0u16;
    for nibble in 0..4 {
        let v = (x >> (nibble * 4)) & 0xF;
        out |= SBOX[v as usize] << (nibble * 4);
    }
    out
}

fn perm_layer(x: u16, perm: &Permutation) -> u16 {
    let mut out = 0u16;
    for (to, &from) in perm.as_slice().iter().enumerate() {
        if (x >> from) & 1 == 1 {
            out |= 1 << to;
        }
    }
    out
}

fn encrypt(mut x: u16, key: u16, perm: Option<&Permutation>) -> u16 {
    for round in 0..ROUNDS {
        x ^= key.rotate_left(round as u32 * 5);
        x = sub_layer(x);
        if let Some(p) = perm {
            x = perm_layer(x, p);
        }
    }
    x
}

/// Average output bits flipped when one input bit flips (ideal: BITS/2).
fn avalanche(perm: Option<&Permutation>, rng: &mut XorShift64Star) -> f64 {
    let trials = 20_000;
    let key = 0xB7E1;
    let mut flipped = 0u64;
    for _ in 0..trials {
        let x = rng.next_u64() as u16;
        let bit = (rng.next_u64() % BITS as u64) as u16;
        let a = encrypt(x, key, perm);
        let b = encrypt(x ^ (1 << bit), key, perm);
        flipped += (a ^ b).count_ones() as u64;
    }
    flipped as f64 / trials as f64
}

fn main() {
    let mut rng = XorShift64Star::new(42);

    println!(
        "avalanche of a {ROUNDS}-round SPN over {BITS} bits (ideal = {}):",
        BITS / 2
    );
    println!(
        "  no permutation layer : {:.2} bits",
        avalanche(None, &mut rng)
    );

    // Pick permutation layers by index — the converter's crypto use case:
    // a key-scheduled index selects one of 16! bit permutations.
    for (index, label) in [
        (0u64, "identity — degenerate"),
        (20_922_789_887_999, "bit reversal — degenerate"),
        (98_765, "generic"),
        (7_777_777_777_777, "generic"),
    ] {
        let perm = unrank(BITS, &Ubig::from(index));
        let a = avalanche(Some(&perm), &mut rng);
        println!("  perm #{index:<15}: {a:.2} bits  ({label})");
    }
    println!("\n(structured permutations — identity #0, bit reversal #16!−1 — add no");
    println!(" diffusion; generic index-selected permutations roughly double the");
    println!(" avalanche of the S-box-only network, which is what the permutation");
    println!(" layers in DES/Twofish/Serpent are there for)");
}
