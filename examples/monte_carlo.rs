//! Monte-Carlo with the Knuth shuffle circuit (Section III): uniformity
//! of the generated permutations and the derangement-based estimate of
//! `e`, run on the actual gate-level netlist.
//!
//! ```text
//! cargo run --release --example monte_carlo
//! ```

use hwperm_circuits::{KnuthShuffleCircuit, ShuffleOptions};
use hwperm_core::{
    chi_square_uniform, derangement_experiment, fig4_histogram, CircuitRandomSource,
};

fn main() {
    let samples = 100_000u64;
    let opts = ShuffleOptions {
        lfsr_width: 31,
        pipelined: false,
        seed: 0x5EED,
    };

    // Fig. 4 in miniature: histogram over the 24 permutations of n = 4.
    let mut source = CircuitRandomSource::with_options(4, opts);
    let hist = fig4_histogram(&mut source, samples);
    println!("distribution of {samples} circuit-generated 4-element permutations:");
    let max = *hist.values().max().unwrap();
    for (word, count) in &hist {
        println!(
            "  word {word:>3}: {count:>6} {}",
            "#".repeat((count * 40 / max) as usize)
        );
    }
    let counts: Vec<u64> = hist.values().copied().collect();
    println!(
        "  chi² = {:.1} over 23 dof (95th percentile: 35.2)\n",
        chi_square_uniform(&counts)
    );

    // Section III.C: estimate e by counting derangements.
    println!("estimating e from derangement frequency (d_n = ⌊n!/e⌉):");
    for n in [4usize, 8] {
        let mut circuit = KnuthShuffleCircuit::with_options(n, opts);
        let (derangements, e) = circuit.estimate_e(samples);
        println!(
            "  n = {n:>2}: {derangements} derangements in {samples} samples -> e ≈ {e:.4} (true {:.4})",
            std::f64::consts::E
        );
    }

    // The same estimate through the generic RandomPermSource trait.
    let mut src = CircuitRandomSource::with_options(8, opts);
    let result = derangement_experiment(&mut src, samples / 2);
    println!(
        "  via trait object: n = {}, e ≈ {:.4}",
        result.n, result.e_estimate
    );
}
