//! Smoke tests for every experiment the `tables` binary exposes, at
//! reduced sample counts: each table/figure must render and carry its
//! paper-matching structure.

use hwperm_bench::{baselines, extensions, figures, resources, tables};

#[test]
fn table1_renders_all_24_rows() {
    let t = tables::table1();
    assert_eq!(t.lines().count(), 26); // header ×2 + 24 rows
    assert!(t.contains("0 0 0 0"));
    assert!(t.contains("3 2 1 0"));
}

#[test]
fn table2_reports_all_n() {
    let (rows, text) = tables::table2(1000);
    assert_eq!(rows.len(), 9);
    for (row, n) in rows.iter().zip(2..=10) {
        assert_eq!(row.n, n);
        assert!(row.cpu_ns > 0.0);
    }
    assert!(text.contains("speedup"));
}

#[test]
fn table3_and_4_shapes() {
    let (rows3, text3) = resources::table3();
    let (rows4, text4) = resources::table4();
    assert!(text3.contains("Table III"));
    assert!(text4.contains("Table IV"));
    // Paper shape: resources grow with n, Fmax shrinks.
    assert!(rows3.last().unwrap().1.total_luts > rows3.first().unwrap().1.total_luts);
    assert!(rows3.first().unwrap().1.fmax_mhz > rows3.last().unwrap().1.fmax_mhz);
    assert!(rows4.last().unwrap().1.registers > rows4.first().unwrap().1.registers);
}

#[test]
fn figures_render() {
    assert!(figures::fig1(4).contains("comparators: 6"));
    assert!(figures::fig3(5).contains("stages: 4"));
    assert!(figures::bias().contains("7 outputs occur twice, 17 once"));
}

#[test]
fn fig4_small_sample_uniformity() {
    let text = figures::fig4(24_000, false);
    assert!(text.contains("chi²"));
    // Extract chi² and require it plausible for 23 dof.
    let chi_line = text.lines().find(|l| l.starts_with("chi²")).unwrap();
    let chi: f64 = chi_line
        .split(['=', ' '])
        .find_map(|t| t.parse().ok())
        .unwrap();
    assert!(chi < 49.7, "chi² = {chi} too large for uniform output");
}

#[test]
fn derangements_small_sample() {
    let text = figures::derangements(6_000, false);
    for n in ["  4", "  8", " 16"] {
        assert!(text.contains(n), "{text}");
    }
}

#[test]
fn extension_experiments() {
    assert!(extensions::cascade().contains("ROM bits"));
    assert!(extensions::rank_circuit().contains("MATCH"));
    assert!(extensions::variations().contains("MATCH"));
}

#[test]
fn baseline_and_demo_experiments() {
    assert!(baselines::naive_baseline().contains("720"));
    assert!(baselines::sorter_demo().contains("resources"));
    assert!(baselines::verify_all().contains("MATCH"));
    let scaling = baselines::parallel_scaling(7);
    assert!(scaling.contains("1,854")); // d_7
}
