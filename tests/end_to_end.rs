//! Cross-crate integration tests: the full stack (bignum → factoradic →
//! logic → circuits → core/apps) exercised together.

use hwperm_bignum::Ubig;
use hwperm_circuits::{
    ConverterOptions, IndexToCombinationConverter, IndexToPermConverter, KnuthShuffleCircuit,
    RandomIndexGenerator, ShuffleOptions, SortingNetwork,
};
use hwperm_core::{parallel_count, CircuitSource, ParallelPlan, PermutationSource, SoftwareSource};
use hwperm_factoradic::{rank, unrank, unrank_combination, IndexedPermutations};
use hwperm_hash::{ProbeTable, UniquePermTable};
use hwperm_perm::Permutation;

#[test]
fn full_table_i_through_every_layer() {
    // Software unranking, the gate-level circuit, the pipelined circuit
    // and the rank inverse must all agree on Table I.
    let mut comb = IndexToPermConverter::new(4);
    let mut pipe = IndexToPermConverter::with_options(
        4,
        ConverterOptions {
            pipelined: true,
            perm_input_port: false,
        },
    );
    for i in 0..24u64 {
        let index = Ubig::from(i);
        let sw = unrank(4, &index);
        assert_eq!(comb.convert(&index), sw);
        assert_eq!(pipe.convert(&index), sw);
        assert_eq!(rank(&sw), index);
    }
}

#[test]
fn sources_trait_unifies_backends() {
    let mut backends: Vec<Box<dyn PermutationSource>> = vec![
        Box::new(SoftwareSource::new(7)),
        Box::new(CircuitSource::new(7)),
        Box::new(CircuitSource::pipelined(7)),
    ];
    for index in [0u64, 1_000, 5_039] {
        let results: Vec<Permutation> = backends
            .iter_mut()
            .map(|b| b.permutation_u64(index))
            .collect();
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }
}

#[test]
fn pipelined_stream_equals_block_iterator() {
    // The pipelined circuit streaming indices 40..80 must equal the
    // software block iterator over the same range.
    let opts = ConverterOptions {
        pipelined: true,
        perm_input_port: false,
    };
    let mut pipe = IndexToPermConverter::with_options(5, opts);
    let indices: Vec<Ubig> = (40..80u64).map(Ubig::from).collect();
    let streamed = pipe.convert_stream(&indices);
    let iterated: Vec<Permutation> =
        IndexedPermutations::new(5, Ubig::from(40u64), Ubig::from(80u64))
            .map(|(_, p)| p)
            .collect();
    assert_eq!(streamed, iterated);
}

#[test]
fn hash_probe_sequences_come_from_the_converter_math() {
    // The table's probe permutation must equal software unranking of the
    // hashed index — i.e. exactly what the paper's hardware would supply.
    let table = UniquePermTable::new(12);
    for key in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
        let perm = table.probe_permutation(key);
        let seq = table.probe_sequence(key);
        assert_eq!(
            seq,
            perm.as_slice()
                .iter()
                .map(|&b| b as usize)
                .collect::<Vec<_>>()
        );
        assert!(Permutation::try_from_slice(perm.as_slice()).is_ok());
    }
}

#[test]
fn converter_with_input_port_sorts_via_inverse() {
    // Feeding data through the converter's input-permutation port with
    // the right index reorders arbitrarily: pick the permutation that
    // sorts a vector, apply it through the circuit.
    let data = [3u32, 0, 2, 1];
    // The permutation p with p.apply(data) sorted is the argsort.
    let mut order: Vec<u32> = (0..4).collect();
    order.sort_by_key(|&i| data[i as usize]);
    let p = Permutation::try_from_vec(order).unwrap();
    let index = rank(&p);

    let mut conv = IndexToPermConverter::with_options(
        4,
        ConverterOptions {
            pipelined: false,
            perm_input_port: true,
        },
    );
    let input = Permutation::try_from_slice(&data).unwrap();
    let routed = conv.convert_with_input(&index, &input);
    assert_eq!(
        routed.as_slice(),
        &[0, 1, 2, 3],
        "circuit routed data into sorted order"
    );
}

#[test]
fn sorter_and_converter_agree_on_permuted_identity() {
    // Sorting the packed elements of any permutation yields the identity.
    let mut sorter = SortingNetwork::new(6, 3);
    for index in (0..720u64).step_by(53) {
        let p = unrank(6, &Ubig::from(index));
        let keys: Vec<u64> = p.as_slice().iter().map(|&e| e as u64).collect();
        let sorted = sorter.sort(&keys);
        assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5]);
    }
}

#[test]
fn combination_circuit_tiles_pascals_triangle() {
    // Sum over k of the number of k-combinations equals 2^n; convert one
    // index per (k, step) and validate against software.
    let n = 8;
    let mut total = Ubig::zero();
    for k in 0..=n {
        let mut conv = IndexToCombinationConverter::new(n, k);
        total += conv.total();
        let c = conv.total().to_u64().unwrap();
        for index in (0..c).step_by(7) {
            let idx = Ubig::from(index);
            assert_eq!(conv.convert(&idx), unrank_combination(n, k, &idx));
        }
    }
    assert_eq!(total.to_u64(), Some(256));
}

#[test]
fn parallel_derangement_count_matches_circuit_samples() {
    // Exact parallel count over S_6 (265 derangements = 36.8%) and the
    // Knuth shuffle circuit's empirical rate must land close.
    let plan = ParallelPlan::full(6, 4);
    let exact = parallel_count(&plan, |p| p.is_derangement());
    assert_eq!(exact, 265);
    let p_exact = exact as f64 / 720.0;

    let mut circuit = KnuthShuffleCircuit::with_options(
        6,
        ShuffleOptions {
            lfsr_width: 20,
            pipelined: false,
            seed: 404,
        },
    );
    let samples = 8_000;
    let (derangements, _) = circuit.estimate_e(samples);
    let p_circuit = derangements as f64 / samples as f64;
    assert!(
        (p_circuit - p_exact).abs() < 0.02,
        "circuit rate {p_circuit} vs exact {p_exact}"
    );
}

#[test]
fn random_index_generator_round_trips_through_rank() {
    let mut generator = RandomIndexGenerator::new(5, 99);
    for _ in 0..50 {
        let p = generator.next_permutation();
        let r = rank(&p);
        assert_eq!(unrank(5, &r), p);
    }
}

#[test]
fn big_n_consistency_across_layers() {
    // n = 30 (128-bit indices): software stack only, but every layer of
    // it — bignum arithmetic, digits, Lehmer, rank/unrank, successor.
    let n = 30;
    let index = Ubig::factorial(30).divrem_u64(7).0;
    let p = unrank(n, &index);
    assert_eq!(rank(&p), index);
    let next = p.next_lex().unwrap();
    assert_eq!(rank(&next), index.add_u64(1));
    let word = p.pack();
    assert_eq!(Permutation::unpack(n, &word).unwrap(), p);
}
