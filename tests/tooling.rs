//! Cross-crate integration tests for the tooling surface: Verilog/BLIF
//! export, VCD tracing, formal verification, and the streaming API all
//! working against the same generated circuits.

use hwperm_bignum::Ubig;
use hwperm_circuits::{converter_netlist, shuffle_netlist, ConverterOptions, ShuffleOptions};
use hwperm_core::PermutationStream;
use hwperm_factoradic::{unrank, unrank_u64};
use hwperm_logic::{to_blif, to_verilog, Simulator, Tracer};
use hwperm_verify::CompiledNetlist;
use std::collections::BTreeMap;

#[test]
fn verilog_and_blif_cover_the_same_converter() {
    let netlist = converter_netlist(5, ConverterOptions::default());
    let v = to_verilog(&netlist, "conv5");
    let b = to_blif(&netlist, "conv5");
    // Port surfaces agree across formats.
    assert!(v.contains("input [6:0] index;"));
    assert!(b.contains(".inputs index[0] index[1] index[2] index[3] index[4] index[5] index[6]"));
    assert!(v.contains("output [14:0] perm;"));
    assert!(b
        .lines()
        .any(|l| l.starts_with(".outputs") && l.contains("perm[14]")));
    // No registers in the combinational build, in either format.
    assert!(!v.contains("always"));
    assert!(!b.contains(".latch"));
}

#[test]
fn pipelined_export_declares_state() {
    let opts = ConverterOptions {
        pipelined: true,
        perm_input_port: false,
    };
    let netlist = converter_netlist(4, opts);
    let v = to_verilog(&netlist, "pipe4");
    let b = to_blif(&netlist, "pipe4");
    assert_eq!(
        v.matches(" reg ").count(),
        netlist.register_count(),
        "one reg declaration per DFF"
    );
    assert_eq!(b.matches(".latch").count(), netlist.register_count());
}

#[test]
fn vcd_trace_of_shuffle_records_every_cycle() {
    let netlist = shuffle_netlist(
        3,
        ShuffleOptions {
            lfsr_width: 8,
            pipelined: false,
            seed: 1,
        },
    );
    let mut tracer = Tracer::new(&netlist, &["perm"]);
    let mut sim = Simulator::new(netlist);
    for _ in 0..20 {
        sim.eval();
        tracer.sample(&sim);
        sim.step();
    }
    assert_eq!(tracer.len(), 20);
    let vcd = tracer.to_vcd();
    assert!(vcd.contains("$var wire 6 ! perm $end"));
    // A free-running shuffle changes its output often: expect multiple
    // timestamped change records.
    assert!(vcd.matches('#').count() > 5, "{vcd}");
}

#[test]
fn formal_proof_and_simulation_agree_on_a_counterexample_free_circuit() {
    let netlist = converter_netlist(4, ConverterOptions::default());
    let compiled = CompiledNetlist::compile(&netlist).unwrap();
    // BDD evaluation must agree with gate-level simulation on all inputs,
    // including out-of-range ones (where both see the same don't-care
    // hardware behaviour).
    let mut sim = Simulator::new(netlist);
    for index in 0..32u64 {
        sim.set_input_u64("index", index);
        sim.eval();
        assert_eq!(
            compiled.eval_output("perm", &Ubig::from(index)),
            sim.read_output("perm"),
            "index = {index}"
        );
    }
    // And the spec proof holds.
    assert_eq!(
        compiled.verify_against_spec(
            |i| i.to_u64().is_some_and(|v| v < 24),
            |i| BTreeMap::from([(
                "perm".to_string(),
                unrank_u64(4, i.to_u64().unwrap()).pack()
            )]),
        ),
        None
    );
}

#[test]
fn stream_feeds_a_consumer_that_cross_checks_the_circuit() {
    use hwperm_circuits::IndexToPermConverter;
    let mut circuit = IndexToPermConverter::new(5);
    let stream = PermutationStream::new(5, Ubig::from(30u64), Ubig::from(50u64), 4);
    let mut count = 0;
    for (index, perm) in stream {
        assert_eq!(circuit.convert(&index), perm);
        assert_eq!(unrank(5, &index), perm);
        count += 1;
    }
    assert_eq!(count, 20);
}

/// End-to-end: spawn the real `hwperm serve` binary, round-trip every
/// request type through a protocol client, shut it down gracefully and
/// check the exit status plus the printed summary.
#[test]
fn serve_cli_round_trips_every_request_type() {
    use hwperm_serve::{Client, Endpoint};
    use std::io::{BufRead, BufReader};
    use std::process::{Command, Stdio};

    // The CLI binary lives next to the test's profile directory
    // (target/<profile>/hwperm). `cargo test` builds workspace bins
    // before running integration tests; rebuild defensively if a
    // filtered invocation skipped it.
    let exe = std::env::current_exe().expect("test executable path");
    let bin = exe
        .parent()
        .and_then(|deps| deps.parent())
        .expect("target profile dir")
        .join(format!("hwperm{}", std::env::consts::EXE_SUFFIX));
    if !bin.exists() {
        let status = Command::new(env!("CARGO"))
            .args(["build", "-p", "hwperm-cli"])
            .status()
            .expect("cargo build -p hwperm-cli");
        assert!(status.success(), "building the CLI binary failed");
    }

    let mut child = Command::new(&bin)
        .args(["serve", "127.0.0.1:0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn hwperm serve");
    let mut lines = BufReader::new(child.stdout.take().expect("piped stdout")).lines();
    let listening = lines
        .next()
        .expect("a 'listening on' line before the server blocks")
        .expect("utf-8 stdout");
    let addr = listening
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {listening:?}"))
        .trim()
        .to_string();
    let endpoint = Endpoint::Tcp(addr.parse().expect("socket address"));

    let mut client = Client::connect(&endpoint).expect("connect to spawned server");
    let text = |resp: &hwperm_serve::Response| String::from_utf8_lossy(&resp.envelope).into_owned();

    let unrank = client
        .request(r#"{"id":1,"cmd":"unrank","n":4,"index":11}"#)
        .expect("unrank");
    assert!(unrank.is_ok(), "{}", text(&unrank));
    assert!(
        text(&unrank).contains("\"packed\":120"),
        "{}",
        text(&unrank)
    );

    let rank = client
        .request(r#"{"id":2,"cmd":"rank","perm":[1,3,2,0]}"#)
        .expect("rank");
    assert!(rank.is_ok(), "{}", text(&rank));
    assert!(text(&rank).contains("\"index\":11"), "{}", text(&rank));

    let block = client
        .request(r#"{"id":3,"cmd":"block","n":3,"start":0,"end":6,"chunk":4}"#)
        .expect("block");
    assert!(block.is_ok(), "{}", text(&block));
    assert_eq!(block.words(), vec![6, 9, 18, 24, 33, 36]);

    let stream = client
        .request(r#"{"id":4,"cmd":"random-stream","n":4,"count":5,"seed":9}"#)
        .expect("random-stream");
    assert!(stream.is_ok(), "{}", text(&stream));
    assert_eq!(stream.words().len(), 5);

    let verify = client
        .request(r#"{"id":5,"cmd":"verify","n":3}"#)
        .expect("verify");
    assert!(verify.is_ok(), "{}", text(&verify));
    assert!(
        text(&verify).contains("\"verdict\":\"ok\""),
        "{}",
        text(&verify)
    );

    let bad = client
        .request(r#"{"id":6,"cmd":"frobnicate"}"#)
        .expect("error envelope");
    assert!(!bad.is_ok(), "unknown cmd must fail: {}", text(&bad));

    let stats = client.request(r#"{"id":7,"cmd":"stats"}"#).expect("stats");
    assert!(stats.is_ok(), "{}", text(&stats));
    assert!(
        text(&stats).contains("\"requests\":7"),
        "lock-step requests should count exactly 7: {}",
        text(&stats)
    );

    let shutdown = client
        .request(r#"{"id":8,"cmd":"shutdown"}"#)
        .expect("shutdown");
    assert!(shutdown.is_ok(), "{}", text(&shutdown));
    assert!(
        text(&shutdown).contains("\"stopping\":true"),
        "{}",
        text(&shutdown)
    );
    assert_eq!(
        client.read_message().expect("clean close"),
        None,
        "server closes the connection after shutdown"
    );

    let status = child.wait().expect("server process exits");
    assert!(
        status.success(),
        "serve must exit 0 after graceful shutdown"
    );
    let rest: Vec<String> = lines.map(|l| l.expect("utf-8 stdout")).collect();
    assert!(
        rest.iter()
            .any(|l| l.contains("served 8 request(s) (1 error(s)) over 1 connection(s)")),
        "summary line missing from {rest:?}"
    );
}
