//! Cross-crate integration tests for the tooling surface: Verilog/BLIF
//! export, VCD tracing, formal verification, and the streaming API all
//! working against the same generated circuits.

use hwperm_bignum::Ubig;
use hwperm_circuits::{converter_netlist, shuffle_netlist, ConverterOptions, ShuffleOptions};
use hwperm_core::PermutationStream;
use hwperm_factoradic::{unrank, unrank_u64};
use hwperm_logic::{to_blif, to_verilog, Simulator, Tracer};
use hwperm_verify::CompiledNetlist;
use std::collections::BTreeMap;

#[test]
fn verilog_and_blif_cover_the_same_converter() {
    let netlist = converter_netlist(5, ConverterOptions::default());
    let v = to_verilog(&netlist, "conv5");
    let b = to_blif(&netlist, "conv5");
    // Port surfaces agree across formats.
    assert!(v.contains("input [6:0] index;"));
    assert!(b.contains(".inputs index[0] index[1] index[2] index[3] index[4] index[5] index[6]"));
    assert!(v.contains("output [14:0] perm;"));
    assert!(b
        .lines()
        .any(|l| l.starts_with(".outputs") && l.contains("perm[14]")));
    // No registers in the combinational build, in either format.
    assert!(!v.contains("always"));
    assert!(!b.contains(".latch"));
}

#[test]
fn pipelined_export_declares_state() {
    let opts = ConverterOptions {
        pipelined: true,
        perm_input_port: false,
    };
    let netlist = converter_netlist(4, opts);
    let v = to_verilog(&netlist, "pipe4");
    let b = to_blif(&netlist, "pipe4");
    assert_eq!(
        v.matches(" reg ").count(),
        netlist.register_count(),
        "one reg declaration per DFF"
    );
    assert_eq!(b.matches(".latch").count(), netlist.register_count());
}

#[test]
fn vcd_trace_of_shuffle_records_every_cycle() {
    let netlist = shuffle_netlist(
        3,
        ShuffleOptions {
            lfsr_width: 8,
            pipelined: false,
            seed: 1,
        },
    );
    let mut tracer = Tracer::new(&netlist, &["perm"]);
    let mut sim = Simulator::new(netlist);
    for _ in 0..20 {
        sim.eval();
        tracer.sample(&sim);
        sim.step();
    }
    assert_eq!(tracer.len(), 20);
    let vcd = tracer.to_vcd();
    assert!(vcd.contains("$var wire 6 ! perm $end"));
    // A free-running shuffle changes its output often: expect multiple
    // timestamped change records.
    assert!(vcd.matches('#').count() > 5, "{vcd}");
}

#[test]
fn formal_proof_and_simulation_agree_on_a_counterexample_free_circuit() {
    let netlist = converter_netlist(4, ConverterOptions::default());
    let compiled = CompiledNetlist::compile(&netlist).unwrap();
    // BDD evaluation must agree with gate-level simulation on all inputs,
    // including out-of-range ones (where both see the same don't-care
    // hardware behaviour).
    let mut sim = Simulator::new(netlist);
    for index in 0..32u64 {
        sim.set_input_u64("index", index);
        sim.eval();
        assert_eq!(
            compiled.eval_output("perm", &Ubig::from(index)),
            sim.read_output("perm"),
            "index = {index}"
        );
    }
    // And the spec proof holds.
    assert_eq!(
        compiled.verify_against_spec(
            |i| i.to_u64().is_some_and(|v| v < 24),
            |i| BTreeMap::from([(
                "perm".to_string(),
                unrank_u64(4, i.to_u64().unwrap()).pack()
            )]),
        ),
        None
    );
}

#[test]
fn stream_feeds_a_consumer_that_cross_checks_the_circuit() {
    use hwperm_circuits::IndexToPermConverter;
    let mut circuit = IndexToPermConverter::new(5);
    let stream = PermutationStream::new(5, Ubig::from(30u64), Ubig::from(50u64), 4);
    let mut count = 0;
    for (index, perm) in stream {
        assert_eq!(circuit.convert(&index), perm);
        assert_eq!(unrank(5, &index), perm);
        count += 1;
    }
    assert_eq!(count, 20);
}
