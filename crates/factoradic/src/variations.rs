//! Variations (k-permutations): rank/unrank for ordered selections of
//! `k` distinct elements from `{0, …, n−1}`.
//!
//! A natural generalization of the paper's converter — the Fig. 1
//! cascade truncated after `k` stages enumerates exactly these
//! `n·(n−1)⋯(n−k+1)` objects (the truncated circuit lives in
//! `hwperm_circuits`). The index decomposes in the mixed radix
//! `(n, n−1, …, n−k+1)` exactly as the full factorial number system
//! does, with digit `i` weighted by the falling factorial
//! `(n−1−i)!/(n−k)!`.

use hwperm_bignum::Ubig;

/// Falling factorial `n·(n−1)⋯(n−k+1)` (`k = 0` ⇒ 1).
///
/// # Panics
/// Panics if `k > n`.
pub fn falling_factorial(n: u64, k: u64) -> Ubig {
    assert!(k <= n, "cannot take {k} falling terms from {n}");
    let mut acc = Ubig::one();
    for i in 0..k {
        acc = acc.mul_u64(n - i);
    }
    acc
}

/// The `index`-th variation (ordered `k`-selection) of `{0, …, n−1}` in
/// lexicographic order.
///
/// # Panics
/// Panics if `k > n` or `index >= n!/(n−k)!`.
pub fn unrank_variation(n: usize, k: usize, index: &Ubig) -> Vec<u32> {
    let total = falling_factorial(n as u64, k as u64);
    assert!(*index < total, "variation index out of range");
    let mut remaining: Vec<u32> = (0..n as u32).collect();
    let mut out = Vec::with_capacity(k);
    let mut rem = index.clone();
    for i in 0..k {
        // Completions after fixing slot i: (n−1−i)·(n−2−i)⋯(n−k+1).
        let block = falling_factorial((n - 1 - i) as u64, (k - 1 - i) as u64);
        let (digit, r) = rem.divrem(&block);
        let digit = digit.to_u64().expect("digit < n fits u64") as usize;
        out.push(remaining.remove(digit));
        rem = r;
    }
    debug_assert!(rem.is_zero());
    out
}

/// Lexicographic rank of a variation (inverse of [`unrank_variation`]).
///
/// # Panics
/// Panics if elements repeat or exceed `n − 1`.
pub fn rank_variation(n: usize, elements: &[u32]) -> Ubig {
    let k = elements.len();
    assert!(k <= n);
    let mut used = vec![false; n];
    let mut acc = Ubig::zero();
    for (i, &e) in elements.iter().enumerate() {
        assert!((e as usize) < n, "element {e} out of range");
        assert!(!used[e as usize], "element {e} repeated");
        // Digit = number of unused elements smaller than e.
        let digit = (0..e as usize).filter(|&s| !used[s]).count() as u64;
        let block = falling_factorial((n - 1 - i) as u64, (k - 1 - i) as u64);
        acc += &block.mul_u64(digit);
        used[e as usize] = true;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn falling_factorial_values() {
        assert_eq!(falling_factorial(5, 0).to_u64(), Some(1));
        assert_eq!(falling_factorial(5, 2).to_u64(), Some(20));
        assert_eq!(falling_factorial(5, 5).to_u64(), Some(120));
        assert_eq!(falling_factorial(10, 3).to_u64(), Some(720));
    }

    #[test]
    fn k_equals_n_matches_permutation_unranking() {
        use crate::rank::unrank_u64;
        for index in 0..120u64 {
            assert_eq!(
                unrank_variation(5, 5, &Ubig::from(index)),
                unrank_u64(5, index).into_vec()
            );
        }
    }

    #[test]
    fn exhaustive_roundtrip_5_choose_3() {
        // 5·4·3 = 60 variations, lexicographically ordered and distinct.
        let mut prev: Option<Vec<u32>> = None;
        for index in 0..60u64 {
            let v = unrank_variation(5, 3, &Ubig::from(index));
            assert_eq!(v.len(), 3);
            let distinct: std::collections::HashSet<_> = v.iter().collect();
            assert_eq!(distinct.len(), 3);
            assert_eq!(rank_variation(5, &v).to_u64(), Some(index));
            if let Some(p) = prev {
                assert!(p < v, "lexicographic order at {index}");
            }
            prev = Some(v);
        }
    }

    #[test]
    fn first_and_last() {
        assert_eq!(unrank_variation(6, 2, &Ubig::zero()), vec![0, 1]);
        let last = falling_factorial(6, 2) - Ubig::one();
        assert_eq!(unrank_variation(6, 2, &last), vec![5, 4]);
    }

    #[test]
    fn k_zero_single_empty_variation() {
        assert_eq!(unrank_variation(7, 0, &Ubig::zero()), Vec::<u32>::new());
        assert_eq!(rank_variation(7, &[]), Ubig::zero());
    }

    #[test]
    fn big_n_variation() {
        // n = 30, k = 10: ~49 bits; still exercises Ubig paths.
        let total = falling_factorial(30, 10);
        let index = total.divrem_u64(3).0;
        let v = unrank_variation(30, 10, &index);
        assert_eq!(rank_variation(30, &v), index);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_overflow_rejected() {
        unrank_variation(4, 2, &Ubig::from(12u64)); // 4·3 = 12
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn rank_rejects_repeats() {
        rank_variation(5, &[1, 1]);
    }
}
