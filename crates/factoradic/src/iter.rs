//! Streaming enumeration of permutations by index range.
//!
//! `IndexedPermutations` unranks a block boundary once (`O(n²)`) and
//! then walks lexicographic successors/predecessors (`O(n)` amortized)
//! — the pattern that lets parallel machines (the paper's motivating
//! application) split `[0, n!)` into disjoint blocks, one per worker.
//! The iterator is double-ended: workers can also drain a block from
//! the high end (`.rev()`), useful for meet-in-the-middle searches.

use crate::rank::unrank;
use hwperm_bignum::Ubig;
use hwperm_perm::Permutation;

/// Double-ended iterator over `(index, permutation)` pairs for indices
/// in `[start, end)`.
#[derive(Clone)]
pub struct IndexedPermutations {
    n: usize,
    /// Next index to yield from the front.
    front: Ubig,
    /// Exclusive upper bound (moves down under back iteration).
    back: Ubig,
    /// Cached permutation at `front`, if already computed.
    front_perm: Option<Permutation>,
    /// Cached permutation at `back − 1`, if already computed.
    back_perm: Option<Permutation>,
}

impl IndexedPermutations {
    /// Enumerates permutations of `{0, …, n−1}` with indices in
    /// `[start, end)`; `end` is clamped to `n!`.
    ///
    /// # Panics
    /// Panics if `start > n!` (an empty range at the top is allowed).
    pub fn new(n: usize, start: Ubig, end: Ubig) -> Self {
        let nfact = Ubig::factorial(n as u64);
        assert!(start <= nfact, "start index beyond n!");
        let end = end.min(nfact);
        IndexedPermutations {
            n,
            front: start,
            back: end,
            front_perm: None,
            back_perm: None,
        }
    }

    /// The whole range `[0, n!)`.
    pub fn all(n: usize) -> Self {
        Self::new(n, Ubig::zero(), Ubig::factorial(n as u64))
    }

    fn remaining(&self) -> Ubig {
        if self.front >= self.back {
            Ubig::zero()
        } else {
            &self.back - &self.front
        }
    }
}

impl Iterator for IndexedPermutations {
    type Item = (Ubig, Permutation);

    fn next(&mut self) -> Option<Self::Item> {
        if self.front >= self.back {
            return None;
        }
        let perm = self
            .front_perm
            .take()
            .unwrap_or_else(|| unrank(self.n, &self.front));
        let index = self.front.clone();
        self.front.add_u64_assign(1);
        if self.front < self.back {
            // One clone per yielded item (`perm` is handed out); the
            // successor itself is computed in place.
            let mut succ = perm.clone();
            let stepped = succ.next_lex_into();
            debug_assert!(stepped, "successor must exist below n!");
            self.front_perm = Some(succ);
        }
        Some((index, perm))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self.remaining().to_u64() {
            Some(r) if r <= usize::MAX as u64 => (r as usize, Some(r as usize)),
            _ => (usize::MAX, None),
        }
    }
}

impl DoubleEndedIterator for IndexedPermutations {
    fn next_back(&mut self) -> Option<Self::Item> {
        if self.front >= self.back {
            return None;
        }
        self.back = self.back.checked_sub(&Ubig::one()).expect("back > 0");
        let perm = self
            .back_perm
            .take()
            .unwrap_or_else(|| unrank(self.n, &self.back));
        if self.front < self.back {
            let mut pred = perm.clone();
            let stepped = pred.prev_lex_into();
            debug_assert!(stepped, "predecessor must exist above 0");
            self.back_perm = Some(pred);
        }
        Some((self.back.clone(), perm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::rank;

    #[test]
    fn full_enumeration_matches_unrank() {
        let mut count = 0u64;
        for (index, perm) in IndexedPermutations::all(5) {
            assert_eq!(rank(&perm), index);
            count += 1;
        }
        assert_eq!(count, 120);
    }

    #[test]
    fn block_covers_exact_range() {
        let block: Vec<_> =
            IndexedPermutations::new(5, Ubig::from(17u64), Ubig::from(42u64)).collect();
        assert_eq!(block.len(), 25);
        assert_eq!(block[0].0.to_u64(), Some(17));
        assert_eq!(block.last().unwrap().0.to_u64(), Some(41));
    }

    #[test]
    fn disjoint_blocks_tile_the_space() {
        // Three workers over n = 4: blocks [0,8), [8,16), [16,24).
        let mut all = Vec::new();
        for w in 0..3u64 {
            let it = IndexedPermutations::new(4, Ubig::from(w * 8), Ubig::from((w + 1) * 8));
            all.extend(it.map(|(_, p)| p));
        }
        assert_eq!(all.len(), 24);
        let uniq: std::collections::HashSet<_> =
            all.iter().map(|p| p.as_slice().to_vec()).collect();
        assert_eq!(uniq.len(), 24);
    }

    #[test]
    fn end_clamped_to_n_factorial() {
        let it = IndexedPermutations::new(3, Ubig::from(4u64), Ubig::from(1000u64));
        assert_eq!(it.count(), 2); // indices 4 and 5 only
    }

    #[test]
    fn empty_range_yields_nothing() {
        let mut it = IndexedPermutations::new(4, Ubig::from(5u64), Ubig::from(5u64));
        assert_eq!(it.next(), None);
        assert_eq!(it.next_back(), None);
    }

    #[test]
    fn size_hint_is_exact_for_small_ranges() {
        let it = IndexedPermutations::new(6, Ubig::from(10u64), Ubig::from(60u64));
        assert_eq!(it.size_hint(), (50, Some(50)));
    }

    #[test]
    fn reverse_iteration_matches_forward_reversed() {
        let forward: Vec<_> = IndexedPermutations::all(5).collect();
        let mut backward: Vec<_> = IndexedPermutations::all(5).rev().collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn meet_in_the_middle_consumption() {
        let mut it = IndexedPermutations::new(4, Ubig::from(2u64), Ubig::from(8u64));
        // Alternate front/back pulls; indices must interleave correctly.
        assert_eq!(it.next().unwrap().0.to_u64(), Some(2));
        assert_eq!(it.next_back().unwrap().0.to_u64(), Some(7));
        assert_eq!(it.next().unwrap().0.to_u64(), Some(3));
        assert_eq!(it.next_back().unwrap().0.to_u64(), Some(6));
        assert_eq!(it.next().unwrap().0.to_u64(), Some(4));
        assert_eq!(it.next_back().unwrap().0.to_u64(), Some(5));
        assert_eq!(it.next(), None);
        assert_eq!(it.next_back(), None);
    }

    #[test]
    fn reverse_permutations_are_correct() {
        for (index, perm) in IndexedPermutations::all(4).rev() {
            assert_eq!(rank(&perm), index);
        }
    }
}
