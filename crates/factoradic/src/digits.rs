//! Index ↔ digit-vector conversion in the factorial number system.
//!
//! Digit vectors are most-significant first: `digits[0] = s_{n−1}, …,
//! digits[n−1] = s_0` (always 0), matching both Table I's column order and
//! the Lehmer code of the corresponding permutation.

use hwperm_bignum::Ubig;

/// The factorials `0!, 1!, …, 20!` that fit in a `u64`.
///
/// # Panics
/// Panics if `n > 20` (use [`Ubig::factorial`] beyond that).
pub fn factorials_u64(n: usize) -> Vec<u64> {
    assert!(
        n <= 20,
        "factorials above 20! overflow u64; use the Ubig path"
    );
    let mut out = Vec::with_capacity(n + 1);
    let mut acc = 1u64;
    out.push(1);
    for k in 1..=n as u64 {
        acc *= k;
        out.push(acc);
    }
    out
}

/// Digits of `index` in the factorial number system for `n` elements,
/// via div/mod (the conventional software algorithm).
///
/// # Panics
/// Panics if `n > 20` or `index >= n!`.
pub fn to_digits_u64(n: usize, index: u64) -> Vec<u32> {
    let facts = factorials_u64(n);
    assert!(
        index < facts[n],
        "index {index} out of range for n = {n} (n! = {})",
        facts[n]
    );
    let mut digits = Vec::with_capacity(n);
    let mut rem = index;
    for i in (0..n).rev() {
        let f = facts[i];
        digits.push((rem / f) as u32);
        rem %= f;
    }
    digits
}

/// Digits of `index`, via the paper's greedy compare-subtract algorithm
/// (observation 3 in Section II.A): "the left digit is the maximum
/// `s_{n−1}` such that `s_{n−1}(n−1)! ≤ N`. Then we form
/// `N − s_{n−1}(n−1)!` and repeat". No division — each digit is found by
/// at most `i` comparisons against the precomputed multiples `1·i!, …,
/// i·i!`, exactly like the Fig. 1 comparator bank.
///
/// # Panics
/// Panics if `n > 20` or `index >= n!`.
pub fn to_digits_greedy(n: usize, index: u64) -> Vec<u32> {
    let facts = factorials_u64(n);
    assert!(index < facts[n], "index {index} out of range for n = {n}");
    let mut digits = Vec::with_capacity(n);
    let mut rem = index;
    for i in (0..n).rev() {
        let f = facts[i];
        // Thermometer comparison: count multiples of i! that fit.
        let mut s = 0u32;
        while (s as u64 + 1) * f <= rem && (s as usize) < i {
            s += 1;
        }
        rem -= s as u64 * f;
        digits.push(s);
    }
    debug_assert_eq!(rem, 0);
    digits
}

/// Digits of an arbitrary-precision `index` for any `n`, via div/mod.
///
/// # Panics
/// Panics if `index >= n!`.
pub fn to_digits(n: usize, index: &Ubig) -> Vec<u32> {
    // Build n!, checking the range.
    let nfact = Ubig::factorial(n as u64);
    assert!(*index < nfact, "index out of range for n = {n}");
    // Divide out radix positions from the least-significant end:
    // rem = index; s_1 = rem % 2, rem /= 2; s_2 = rem % 3, rem /= 3; ...
    // This avoids recomputing large factorials and is how positional
    // systems with mixed radix are normally decomposed.
    let mut ls_digits = vec![0u32]; // s_0 placeholder
    let mut rem = index.clone();
    for radix in 2..=n as u64 {
        let (q, r) = rem.divrem_u64(radix);
        ls_digits.push(r as u32);
        rem = q;
    }
    debug_assert!(rem.is_zero());
    ls_digits.reverse();
    if n == 0 {
        Vec::new()
    } else {
        ls_digits
    }
}

/// Reassembles an index from its factorial-number-system digits
/// (most-significant first): Horner evaluation in the mixed radix.
pub fn from_digits(digits: &[u32]) -> Ubig {
    // Horner evaluation MSD-first: acc ← acc·(n−i) + dᵢ. Digit 0 thereby
    // accumulates the weight (n−1)·(n−2)⋯1 = (n−1)!, digit n−1 weight 1.
    let n = digits.len();
    let mut acc = Ubig::zero();
    for (i, &d) in digits.iter().enumerate() {
        debug_assert!((d as usize) <= n - 1 - i, "digit {d} exceeds bound at {i}");
        acc = acc.mul_u64((n - i) as u64);
        acc.add_u64_assign(d as u64);
    }
    acc
}

/// `u64` fast path of [`from_digits`].
///
/// # Panics
/// Panics if the digit vector is longer than 20 (result may overflow).
pub fn from_digits_u64(digits: &[u32]) -> u64 {
    let n = digits.len();
    assert!(n <= 20, "use from_digits for n > 20");
    let mut acc = 0u64;
    for (i, &d) in digits.iter().enumerate() {
        debug_assert!((d as usize) <= n - 1 - i);
        acc = acc * (n - i) as u64 + d as u64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I of the paper, in full: (N, digits s3 s2 s1 s0).
    const TABLE_I: [(u64, [u32; 4]); 24] = [
        (0, [0, 0, 0, 0]),
        (1, [0, 0, 1, 0]),
        (2, [0, 1, 0, 0]),
        (3, [0, 1, 1, 0]),
        (4, [0, 2, 0, 0]),
        (5, [0, 2, 1, 0]),
        (6, [1, 0, 0, 0]),
        (7, [1, 0, 1, 0]),
        (8, [1, 1, 0, 0]),
        (9, [1, 1, 1, 0]),
        (10, [1, 2, 0, 0]),
        (11, [1, 2, 1, 0]),
        (12, [2, 0, 0, 0]),
        (13, [2, 0, 1, 0]),
        (14, [2, 1, 0, 0]),
        (15, [2, 1, 1, 0]),
        (16, [2, 2, 0, 0]),
        (17, [2, 2, 1, 0]),
        (18, [3, 0, 0, 0]),
        (19, [3, 0, 1, 0]),
        (20, [3, 1, 0, 0]),
        (21, [3, 1, 1, 0]),
        (22, [3, 2, 0, 0]),
        (23, [3, 2, 1, 0]),
    ];

    #[test]
    fn table_i_digits() {
        for (n_val, digits) in TABLE_I {
            assert_eq!(to_digits_u64(4, n_val), digits, "N = {n_val}");
            assert_eq!(from_digits_u64(&digits), n_val);
        }
    }

    #[test]
    fn greedy_matches_divmod_exhaustively_n5() {
        for index in 0..120 {
            assert_eq!(to_digits_greedy(5, index), to_digits_u64(5, index));
        }
    }

    #[test]
    fn ubig_path_matches_u64_path() {
        for n in 1..=8usize {
            let nfact = factorials_u64(n)[n];
            for index in (0..nfact).step_by((nfact as usize / 37).max(1)) {
                assert_eq!(
                    to_digits(n, &Ubig::from(index)),
                    to_digits_u64(n, index),
                    "n = {n}, N = {index}"
                );
            }
        }
    }

    #[test]
    fn max_index_has_digits_i() {
        // Observation 1: N_max is represented by digits (n−1)(n−2)…1 0
        // and equals n! − 1.
        let digits = to_digits_u64(6, 719);
        assert_eq!(digits, vec![5, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn digit_bounds_hold() {
        for index in [0u64, 1, 100, 5039] {
            let d = to_digits_u64(7, index);
            for (i, &s) in d.iter().enumerate() {
                assert!((s as usize) <= 7 - 1 - i);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_equal_to_n_factorial_rejected() {
        to_digits_u64(4, 24);
    }

    #[test]
    fn big_roundtrip_n30() {
        // n = 30 needs 108 bits of index.
        let index = &Ubig::factorial(30) - &Ubig::from(12345u64);
        let digits = to_digits(30, &index);
        assert_eq!(digits.len(), 30);
        assert_eq!(from_digits(&digits), index);
    }

    #[test]
    fn zero_and_one_element() {
        assert_eq!(to_digits(0, &Ubig::zero()), Vec::<u32>::new());
        assert_eq!(to_digits(1, &Ubig::zero()), vec![0]);
        assert_eq!(from_digits(&[]), Ubig::zero());
    }
}
