#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The factorial number system (Section II of the paper) and the
//! rank/unrank maps it induces between indices and permutations.
//!
//! Every integer `N < n!` has a unique representation
//!
//! ```text
//! N = s_{n−1}·(n−1)! + s_{n−2}·(n−2)! + … + s_1·1! + s_0·0!,   0 ≤ s_i ≤ i
//! ```
//!
//! (`s_0` is always 0 and is retained as a placeholder, exactly as in the
//! paper). The digit vector `s_{n−1} … s_0`, read most-significant first,
//! is the Lehmer code of the `N`-th permutation in lexicographic order —
//! Table I of the paper lists all 24 for `n = 4`.
//!
//! Two digit-extraction algorithms are provided:
//! - [`digits::to_digits`] — conventional div/mod (what the paper's C
//!   baseline computes);
//! - [`digits::to_digits_greedy`] — the paper's *hardware* algorithm:
//!   greedy comparison against multiples `i·(r−1)!` followed by a single
//!   subtraction per stage, no division anywhere. This is the exact
//!   dataflow of the Fig. 1 circuit and is differentially tested against
//!   the div/mod form.
//!
//! On top of the digits sit [`rank()`](rank::rank)/[`unrank()`](rank::unrank) (permutations),
//! [`combinadic`] (the companion paper's index → constant-weight-codeword
//! conversion), and [`iter::IndexedPermutations`] for streaming blocks.
//!
//! ```
//! use hwperm_factoradic::{unrank_u64, rank};
//!
//! // Table I, N = 11: digits 1 2 1 0, permutation 1 3 2 0.
//! let p = unrank_u64(4, 11);
//! assert_eq!(p.as_slice(), &[1, 3, 2, 0]);
//! assert_eq!(rank(&p).to_u64(), Some(11));
//! ```

pub mod block;
pub mod combinadic;
pub mod digits;
pub mod iter;
pub mod rank;
pub mod variations;

pub use block::BlockDecoder;
pub use combinadic::{binomial, rank_combination, to_codeword, unrank_combination};
pub use digits::{
    factorials_u64, from_digits, from_digits_u64, to_digits, to_digits_greedy, to_digits_u64,
};
pub use iter::IndexedPermutations;
pub use rank::{rank, rank_u64, try_unrank, unrank, unrank_u64, Unranker};
pub use variations::{falling_factorial, rank_variation, unrank_variation};
