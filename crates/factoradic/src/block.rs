//! Block decoding: amortized bulk unranking into packed words.
//!
//! Unranking every index independently pays the full digit-extraction
//! cascade (O(n) digits, each with a compare bank and a bitboard
//! select) per permutation, plus a `Permutation` allocation. A block
//! decoder pays that price **once per block**: it unranks the block's
//! base index with the branchless [`Unranker`], then walks
//! lexicographic successors in place ([`next_lex_in_slice`] — O(1)
//! amortized per step, since index order *is* lexicographic order) and
//! emits each permutation directly as the paper's packed
//! `n·⌈log₂n⌉`-bit word. No allocation happens after warm-up.
//!
//! This is the software analogue of the paper's pipelined circuit
//! streaming one permutation per clock, and the decode/successor split
//! that Blekos' linear-time unranking and Bassil's generation survey
//! both identify as where bulk permutation generation wins its order of
//! magnitude.

use crate::digits::factorials_u64;
use crate::rank::Unranker;
use hwperm_perm::{bits_per_element, next_lex_in_slice};
use std::ops::Range;

/// Reusable engine decoding contiguous index ranges `[start, end)` of
/// `[0, n!)` into packed `u64` permutation words: one true unranking
/// per range, lexicographic successor stepping for the rest.
#[derive(Debug, Clone)]
pub struct BlockDecoder {
    n: usize,
    total: u64,
    bits: usize,
    unranker: Unranker,
    buf: Vec<u32>,
}

impl BlockDecoder {
    /// A block decoder for `n`-element permutations. The packed word
    /// must fit a `u64`, so `1 ≤ n ≤ 16` (`16·⌈log₂16⌉ = 64` bits).
    ///
    /// # Panics
    /// Panics if `n` is outside `1..=16`.
    pub fn new(n: usize) -> Self {
        assert!(
            (1..=16).contains(&n),
            "n = {n} out of the supported 1..=16 (packed word must fit a u64)"
        );
        BlockDecoder {
            n,
            total: factorials_u64(n)[n],
            bits: bits_per_element(n),
            unranker: Unranker::new(n),
            buf: Vec::with_capacity(n),
        }
    }

    /// Number of elements `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The size of the index space, `n!`.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Packs the current scratch permutation (position 0 in the
    /// most-significant field, identical to `Permutation::pack`).
    #[inline]
    fn word(&self) -> u64 {
        self.buf
            .iter()
            .fold(0u64, |acc, &v| (acc << self.bits) | v as u64)
    }

    /// Calls `f(index, packed_word)` for every index in `range`, in
    /// ascending order. The range's base index is unranked once;
    /// everything after steps by in-place lexicographic successor.
    ///
    /// # Panics
    /// Panics if `range.end > n!` (an empty range anywhere is allowed).
    pub fn for_each_word(&mut self, range: Range<u64>, mut f: impl FnMut(u64, u64)) {
        assert!(
            range.end <= self.total,
            "range end {} beyond n! = {} for n = {}",
            range.end,
            self.total,
            self.n
        );
        if range.start >= range.end {
            return;
        }
        self.unranker.unrank_into(range.start, &mut self.buf);
        f(range.start, self.word());
        for index in range.start + 1..range.end {
            let stepped = next_lex_in_slice(&mut self.buf);
            debug_assert!(stepped, "successor must exist below n!");
            f(index, self.word());
        }
    }

    /// Appends the packed words for every index in `range` to `out`
    /// (which is **not** cleared, so blocks can be concatenated).
    ///
    /// # Panics
    /// Panics if `range.end > n!`.
    pub fn decode_words_into(&mut self, range: Range<u64>, out: &mut Vec<u64>) {
        out.reserve(range.end.saturating_sub(range.start) as usize);
        self.for_each_word(range, |_, word| out.push(word));
    }

    /// Allocating convenience wrapper over
    /// [`BlockDecoder::decode_words_into`].
    ///
    /// # Panics
    /// Panics if `range.end > n!`.
    pub fn decode_words(&mut self, range: Range<u64>) -> Vec<u64> {
        let mut out = Vec::new();
        self.decode_words_into(range, &mut out);
        out
    }

    /// Appends the packed words for every index in `range` to `out` as
    /// little-endian bytes, 8 bytes per word (not cleared, so chunks
    /// concatenate). This is the wire-serialization fast path: the
    /// serve data plane ships packed blocks as LE `u64` frames, and
    /// serializing during the successor walk avoids a second pass over
    /// an intermediate `Vec<u64>`.
    ///
    /// # Panics
    /// Panics if `range.end > n!`.
    pub fn decode_le_bytes_into(&mut self, range: Range<u64>, out: &mut Vec<u8>) {
        out.reserve(range.end.saturating_sub(range.start) as usize * 8);
        self.for_each_word(range, |_, word| out.extend_from_slice(&word.to_le_bytes()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::unrank_u64;

    /// The per-index reference: unrank + pack, one index at a time.
    fn naive_words(n: usize, range: Range<u64>) -> Vec<u64> {
        range
            .map(|i| unrank_u64(n, i).pack().to_u64().expect("fits for n <= 16"))
            .collect()
    }

    #[test]
    fn full_table_matches_per_index_path_n4_to_n6() {
        for n in 4usize..=6 {
            let total = factorials_u64(n)[n];
            let mut decoder = BlockDecoder::new(n);
            assert_eq!(
                decoder.decode_words(0..total),
                naive_words(n, 0..total),
                "n = {n}"
            );
        }
    }

    #[test]
    fn chunked_decoding_tiles_to_the_same_table() {
        // Decoding [0, n!) in blocks of any size must concatenate to
        // exactly the monolithic table (block boundaries invisible).
        let n = 6;
        let total = factorials_u64(n)[n];
        let mut decoder = BlockDecoder::new(n);
        let whole = decoder.decode_words(0..total);
        for block in [1u64, 7, 64, 719, 720] {
            let mut tiled = Vec::new();
            let mut base = 0u64;
            while base < total {
                let end = (base + block).min(total);
                decoder.decode_words_into(base..end, &mut tiled);
                base = end;
            }
            assert_eq!(tiled, whole, "block size {block}");
        }
    }

    #[test]
    fn mid_range_blocks_match() {
        let mut decoder = BlockDecoder::new(7);
        assert_eq!(decoder.decode_words(100..164), naive_words(7, 100..164));
        assert_eq!(decoder.decode_words(5039..5040), naive_words(7, 5039..5040));
    }

    #[test]
    fn le_bytes_are_the_words_serialized() {
        let mut decoder = BlockDecoder::new(6);
        let mut bytes = vec![0xAAu8; 3]; // pre-existing prefix survives
        decoder.decode_le_bytes_into(17..100, &mut bytes);
        assert_eq!(bytes[..3], [0xAA; 3]);
        let expected: Vec<u8> = naive_words(6, 17..100)
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .collect();
        assert_eq!(bytes[3..], expected);
        // Empty range appends nothing.
        decoder.decode_le_bytes_into(5..5, &mut bytes);
        assert_eq!(bytes.len(), 3 + expected.len());
    }

    #[test]
    fn for_each_word_reports_ascending_indices() {
        let mut decoder = BlockDecoder::new(5);
        let mut seen = Vec::new();
        decoder.for_each_word(17..42, |i, w| seen.push((i, w)));
        assert_eq!(seen.len(), 25);
        for (offset, (index, word)) in seen.iter().enumerate() {
            assert_eq!(*index, 17 + offset as u64);
            assert_eq!(
                *word,
                unrank_u64(5, *index).pack().to_u64().unwrap(),
                "index {index}"
            );
        }
    }

    #[test]
    fn empty_ranges_and_degenerate_sizes() {
        let mut decoder = BlockDecoder::new(4);
        assert!(decoder.decode_words(5..5).is_empty());
        let mut one = BlockDecoder::new(1);
        assert_eq!(one.total(), 1);
        assert_eq!(one.decode_words(0..1), vec![0]);
    }

    #[test]
    fn widest_supported_size_packs_correctly() {
        // n = 16: the packed word is exactly 64 bits.
        let mut decoder = BlockDecoder::new(16);
        let words = decoder.decode_words(0..3);
        assert_eq!(words, naive_words(16, 0..3));
    }

    #[test]
    #[should_panic(expected = "out of the supported 1..=16")]
    fn oversized_n_rejected() {
        BlockDecoder::new(17);
    }

    #[test]
    #[should_panic(expected = "beyond n!")]
    fn out_of_range_end_rejected() {
        BlockDecoder::new(4).decode_words(0..25);
    }
}
