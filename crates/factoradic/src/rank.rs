//! Permutation rank/unrank: the bijection `[0, n!) ↔ S_n` realized by
//! the paper's converter circuit (Table I's rightmost column).

use crate::digits::{from_digits, to_digits, to_digits_u64};
use hwperm_bignum::Ubig;
use hwperm_perm::Permutation;

/// The `index`-th permutation of `{0, …, n−1}` in lexicographic order —
/// the software reference for the Fig. 1 circuit.
///
/// # Panics
/// Panics if `index >= n!`.
pub fn unrank(n: usize, index: &Ubig) -> Permutation {
    Permutation::from_lehmer(&to_digits(n, index))
}

/// `u64` fast path of [`unrank`] (requires `n ≤ 20`).
///
/// # Panics
/// Panics if `n > 20` or `index >= n!`.
pub fn unrank_u64(n: usize, index: u64) -> Permutation {
    Permutation::from_lehmer(&to_digits_u64(n, index))
}

/// Reusable state for allocation-free bulk unranking (the Table II CPU
/// baseline in its fastest form): factorials are precomputed once and
/// the remaining-element scratch is reused across calls.
#[derive(Debug, Clone)]
pub struct Unranker {
    n: usize,
    factorials: Vec<u64>,
    scratch: Vec<u32>,
}

impl Unranker {
    /// An unranker for `n`-element permutations (`n ≤ 20`).
    pub fn new(n: usize) -> Self {
        Unranker {
            n,
            factorials: crate::digits::factorials_u64(n),
            scratch: Vec::with_capacity(n),
        }
    }

    /// Writes the `index`-th permutation into `out` (resized to `n`).
    /// No heap allocation after warm-up.
    ///
    /// # Panics
    /// Panics if `index >= n!`.
    pub fn unrank_into(&mut self, index: u64, out: &mut Vec<u32>) {
        let n = self.n;
        assert!(index < self.factorials[n], "index out of range for n = {n}");
        self.scratch.clear();
        self.scratch.extend(0..n as u32);
        out.clear();
        let mut rem = index;
        for i in (0..n).rev() {
            let f = self.factorials[i];
            let digit = (rem / f) as usize;
            rem %= f;
            out.push(self.scratch.remove(digit));
        }
    }

    /// Allocating convenience wrapper (equivalent to [`unrank_u64`]).
    pub fn unrank(&mut self, index: u64) -> Permutation {
        let mut out = Vec::with_capacity(self.n);
        self.unrank_into(index, &mut out);
        Permutation::from_vec_unchecked(out)
    }
}

/// Non-panicking [`unrank`]: `None` when `index >= n!`.
pub fn try_unrank(n: usize, index: &Ubig) -> Option<Permutation> {
    if *index >= Ubig::factorial(n as u64) {
        None
    } else {
        Some(unrank(n, index))
    }
}

/// The lexicographic index of a permutation (inverse of [`unrank`]).
pub fn rank(perm: &Permutation) -> Ubig {
    from_digits(&perm.lehmer())
}

/// `u64` fast path of [`rank`] (requires `n ≤ 20`).
pub fn rank_u64(perm: &Permutation) -> u64 {
    crate::digits::from_digits_u64(&perm.lehmer())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I's rightmost column: the permutation for each N, n = 4.
    const TABLE_I_PERMS: [[u32; 4]; 24] = [
        [0, 1, 2, 3],
        [0, 1, 3, 2],
        [0, 2, 1, 3],
        [0, 2, 3, 1],
        [0, 3, 1, 2],
        [0, 3, 2, 1],
        [1, 0, 2, 3],
        [1, 0, 3, 2],
        [1, 2, 0, 3],
        [1, 2, 3, 0],
        [1, 3, 0, 2],
        [1, 3, 2, 0],
        [2, 0, 1, 3],
        [2, 0, 3, 1],
        [2, 1, 0, 3],
        [2, 1, 3, 0],
        [2, 3, 0, 1],
        [2, 3, 1, 0],
        [3, 0, 1, 2],
        [3, 0, 2, 1],
        [3, 1, 0, 2],
        [3, 1, 2, 0],
        [3, 2, 0, 1],
        [3, 2, 1, 0],
    ];

    #[test]
    fn table_i_permutations() {
        for (i, expected) in TABLE_I_PERMS.iter().enumerate() {
            assert_eq!(unrank_u64(4, i as u64).as_slice(), expected, "N = {i}");
        }
    }

    #[test]
    fn rank_inverts_unrank_exhaustively_n6() {
        for index in 0..720u64 {
            let p = unrank_u64(6, index);
            assert_eq!(rank_u64(&p), index);
            assert_eq!(rank(&p).to_u64(), Some(index));
        }
    }

    #[test]
    fn unrank_order_matches_next_lex() {
        let mut cur = Permutation::identity(5);
        for index in 0..120u64 {
            assert_eq!(unrank_u64(5, index), cur, "N = {index}");
            if let Some(next) = cur.next_lex() {
                cur = next;
            }
        }
    }

    #[test]
    fn big_unrank_agrees_with_small() {
        for index in [0u64, 1, 999, 3_628_799] {
            assert_eq!(unrank(10, &Ubig::from(index)), unrank_u64(10, index));
        }
    }

    #[test]
    fn unrank_n25_extremes() {
        // Beyond u64: first and last permutations of n = 25.
        let last_index = &Ubig::factorial(25) - &Ubig::one();
        assert!(unrank(25, &Ubig::zero()).is_identity());
        assert_eq!(unrank(25, &last_index), Permutation::last_lex(25));
    }

    #[test]
    fn try_unrank_range_check() {
        assert!(try_unrank(4, &Ubig::from(23u64)).is_some());
        assert!(try_unrank(4, &Ubig::from(24u64)).is_none());
    }

    #[test]
    fn unranker_matches_unrank_u64_exhaustively() {
        let mut unranker = Unranker::new(5);
        let mut buf = Vec::new();
        for i in 0..120u64 {
            unranker.unrank_into(i, &mut buf);
            assert_eq!(buf, unrank_u64(5, i).into_vec(), "N = {i}");
            assert_eq!(unranker.unrank(i), unrank_u64(5, i));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unranker_range_check() {
        Unranker::new(4).unrank(24);
    }

    #[test]
    fn rank_of_extremes() {
        assert_eq!(rank(&Permutation::identity(8)), Ubig::zero());
        assert_eq!(rank(&Permutation::last_lex(8)).to_u64(), Some(40320 - 1));
    }
}
