//! Permutation rank/unrank: the bijection `[0, n!) ↔ S_n` realized by
//! the paper's converter circuit (Table I's rightmost column).

use crate::digits::{from_digits, to_digits, to_digits_u64};
use hwperm_bignum::Ubig;
use hwperm_perm::Permutation;

/// The `index`-th permutation of `{0, …, n−1}` in lexicographic order —
/// the software reference for the Fig. 1 circuit.
///
/// # Panics
/// Panics if `index >= n!`.
pub fn unrank(n: usize, index: &Ubig) -> Permutation {
    Permutation::from_lehmer(&to_digits(n, index))
}

/// `u64` fast path of [`unrank`] (requires `n ≤ 20`).
///
/// # Panics
/// Panics if `n > 20` or `index >= n!`.
pub fn unrank_u64(n: usize, index: u64) -> Permutation {
    Permutation::from_lehmer(&to_digits_u64(n, index))
}

/// The position of the `k`-th set bit of `mask` (0-based from the LSB)
/// by branchless popcount halving: six fixed steps, each counting the
/// low half of the remaining window and conditionally descending into
/// the high half with arithmetic (no data-dependent branches).
///
/// `k` must be below `mask.count_ones()` (debug-asserted); the result
/// is unspecified otherwise.
#[inline]
pub(crate) fn select_nth_set(mask: u64, mut k: u32) -> u32 {
    debug_assert!(k < mask.count_ones(), "select past the last set bit");
    let mut window = mask;
    let mut pos = 0u32;
    for shift in [32u32, 16, 8, 4, 2, 1] {
        let low = window & ((1u64 << shift) - 1);
        let count = low.count_ones();
        let descend = u32::from(k >= count);
        k -= count * descend;
        pos += shift * descend;
        window >>= shift * descend;
    }
    pos
}

/// Reusable state for allocation-free bulk unranking (the Table II CPU
/// baseline in its fastest form). Two precomputed tables mirror the
/// paper's Fig. 1 dataflow in software:
///
/// - the digit multiples `s·i!` (`s ≤ i`), so each factoradic digit is
///   extracted by the paper's greedy compare/subtract cascade —
///   branchless comparison counting, no division;
/// - a `u64` occupancy bitboard of the not-yet-used elements, with
///   popcount-based select-nth-set-bit replacing the old `Vec<u32>`
///   scratch and its O(n) `remove()` memmove per digit — the software
///   mirror of the paper's one-hot MUX element-selection column.
#[derive(Debug, Clone)]
pub struct Unranker {
    n: usize,
    factorials: Vec<u64>,
    /// Row `i` (stride `n`) holds `s·i!` for `s = 0..=i`: the Fig. 1
    /// comparator-bank constants.
    multiples: Vec<u64>,
}

impl Unranker {
    /// An unranker for `n`-element permutations (`n ≤ 20`).
    pub fn new(n: usize) -> Self {
        let factorials = crate::digits::factorials_u64(n);
        let mut multiples = vec![0u64; n * n];
        for i in 0..n {
            for s in 0..=i {
                // s ≤ i, so s·i! < (i+1)! ≤ 20! — no overflow.
                multiples[i * n + s] = s as u64 * factorials[i];
            }
        }
        Unranker {
            n,
            factorials,
            multiples,
        }
    }

    /// Writes the `index`-th permutation into `out` (resized to `n`).
    /// No heap allocation after warm-up, no division, no scratch-vector
    /// shifting: digits come from the greedy compare/subtract cascade
    /// and elements from the occupancy bitboard.
    ///
    /// # Panics
    /// Panics if `index >= n!`.
    pub fn unrank_into(&mut self, index: u64, out: &mut Vec<u32>) {
        let n = self.n;
        assert!(index < self.factorials[n], "index out of range for n = {n}");
        out.clear();
        if n == 0 {
            return;
        }
        // Bit e set ⇔ element e not yet placed (n ≤ 20 < 64).
        let mut free: u64 = (1u64 << n) - 1;
        let mut rem = index;
        for i in (0..n).rev() {
            // Greedy digit: the number of multiples s·i! (s = 1..=i)
            // that fit under the remainder — a thermometer comparison,
            // compiled to conditional adds.
            let row = &self.multiples[i * n..i * n + i + 1];
            let mut digit = 0usize;
            for &m in &row[1..] {
                digit += usize::from(rem >= m);
            }
            rem -= row[digit];
            // The digit-th smallest unused element, by bitboard select.
            let elem = select_nth_set(free, digit as u32);
            free &= !(1u64 << elem);
            out.push(elem);
        }
        debug_assert_eq!(rem, 0);
    }

    /// Allocating convenience wrapper (equivalent to [`unrank_u64`]).
    pub fn unrank(&mut self, index: u64) -> Permutation {
        let mut out = Vec::with_capacity(self.n);
        self.unrank_into(index, &mut out);
        Permutation::from_vec_unchecked(out)
    }
}

/// Non-panicking [`unrank`]: `None` when `index >= n!`.
pub fn try_unrank(n: usize, index: &Ubig) -> Option<Permutation> {
    if *index >= Ubig::factorial(n as u64) {
        None
    } else {
        Some(unrank(n, index))
    }
}

/// The lexicographic index of a permutation (inverse of [`unrank`]).
pub fn rank(perm: &Permutation) -> Ubig {
    from_digits(&perm.lehmer())
}

/// `u64` fast path of [`rank`] (requires `n ≤ 20`).
pub fn rank_u64(perm: &Permutation) -> u64 {
    crate::digits::from_digits_u64(&perm.lehmer())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I's rightmost column: the permutation for each N, n = 4.
    const TABLE_I_PERMS: [[u32; 4]; 24] = [
        [0, 1, 2, 3],
        [0, 1, 3, 2],
        [0, 2, 1, 3],
        [0, 2, 3, 1],
        [0, 3, 1, 2],
        [0, 3, 2, 1],
        [1, 0, 2, 3],
        [1, 0, 3, 2],
        [1, 2, 0, 3],
        [1, 2, 3, 0],
        [1, 3, 0, 2],
        [1, 3, 2, 0],
        [2, 0, 1, 3],
        [2, 0, 3, 1],
        [2, 1, 0, 3],
        [2, 1, 3, 0],
        [2, 3, 0, 1],
        [2, 3, 1, 0],
        [3, 0, 1, 2],
        [3, 0, 2, 1],
        [3, 1, 0, 2],
        [3, 1, 2, 0],
        [3, 2, 0, 1],
        [3, 2, 1, 0],
    ];

    #[test]
    fn table_i_permutations() {
        for (i, expected) in TABLE_I_PERMS.iter().enumerate() {
            assert_eq!(unrank_u64(4, i as u64).as_slice(), expected, "N = {i}");
        }
    }

    #[test]
    fn rank_inverts_unrank_exhaustively_n6() {
        for index in 0..720u64 {
            let p = unrank_u64(6, index);
            assert_eq!(rank_u64(&p), index);
            assert_eq!(rank(&p).to_u64(), Some(index));
        }
    }

    #[test]
    fn unrank_order_matches_next_lex() {
        let mut cur = Permutation::identity(5);
        for index in 0..120u64 {
            assert_eq!(unrank_u64(5, index), cur, "N = {index}");
            if let Some(next) = cur.next_lex() {
                cur = next;
            }
        }
    }

    #[test]
    fn big_unrank_agrees_with_small() {
        for index in [0u64, 1, 999, 3_628_799] {
            assert_eq!(unrank(10, &Ubig::from(index)), unrank_u64(10, index));
        }
    }

    #[test]
    fn unrank_n25_extremes() {
        // Beyond u64: first and last permutations of n = 25.
        let last_index = &Ubig::factorial(25) - &Ubig::one();
        assert!(unrank(25, &Ubig::zero()).is_identity());
        assert_eq!(unrank(25, &last_index), Permutation::last_lex(25));
    }

    #[test]
    fn try_unrank_range_check() {
        assert!(try_unrank(4, &Ubig::from(23u64)).is_some());
        assert!(try_unrank(4, &Ubig::from(24u64)).is_none());
    }

    #[test]
    fn unranker_matches_unrank_u64_exhaustively() {
        let mut unranker = Unranker::new(5);
        let mut buf = Vec::new();
        for i in 0..120u64 {
            unranker.unrank_into(i, &mut buf);
            assert_eq!(buf, unrank_u64(5, i).into_vec(), "N = {i}");
            assert_eq!(unranker.unrank(i), unrank_u64(5, i));
        }
    }

    #[test]
    #[should_panic(expected = "index out of range for n = 4")]
    fn unranker_range_check_message_pinned() {
        Unranker::new(4).unrank(24);
    }

    #[test]
    #[should_panic(expected = "index 24 out of range for n = 4 (n! = 24)")]
    fn unrank_u64_range_check_message_pinned() {
        unrank_u64(4, 24);
    }

    #[test]
    fn select_nth_set_matches_naive_scan() {
        // Differential check of the branchless halving select against a
        // clear-lowest-bit reference, across sparse and dense masks.
        let naive = |mask: u64, k: u32| {
            let mut m = mask;
            for _ in 0..k {
                m &= m - 1;
            }
            m.trailing_zeros()
        };
        let masks = [
            1u64,
            0b1010_1100,
            (1u64 << 20) - 1,
            u64::MAX,
            0x8000_0000_0000_0001,
            0x0123_4567_89ab_cdef,
        ];
        for mask in masks {
            for k in 0..mask.count_ones() {
                assert_eq!(
                    select_nth_set(mask, k),
                    naive(mask, k),
                    "mask = {mask:#x}, k = {k}"
                );
            }
        }
    }

    #[test]
    fn unranker_matches_unrank_u64_at_n20_extremes() {
        // The widest u64 size: first, last, and a mid index all agree
        // with the per-index reference path.
        let nfact = crate::digits::factorials_u64(20)[20];
        let mut unranker = Unranker::new(20);
        for index in [0u64, 1, nfact / 2, nfact - 1] {
            assert_eq!(unranker.unrank(index), unrank_u64(20, index), "N = {index}");
        }
    }

    #[test]
    fn unranker_handles_degenerate_sizes() {
        let mut buf = vec![99u32; 3];
        Unranker::new(0).unrank_into(0, &mut buf);
        assert!(buf.is_empty());
        Unranker::new(1).unrank_into(0, &mut buf);
        assert_eq!(buf, [0]);
    }

    #[test]
    fn rank_of_extremes() {
        assert_eq!(rank(&Permutation::identity(8)), Ubig::zero());
        assert_eq!(rank(&Permutation::last_lex(8)).to_u64(), Some(40320 - 1));
    }
}
