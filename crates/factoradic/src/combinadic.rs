//! The combinatorial number system (combinadic): index ↔ combination.
//!
//! The paper presents itself as a companion to Butler & Sasao's
//! *Index to Constant Weight Codeword Converter* (ARC 2011, reference \[4\]):
//! the same index-to-combinatorial-object idea with `C(n, k)` constant-
//! weight codewords instead of `n!` permutations. This module is the
//! software reference for that companion circuit; the netlist version
//! lives in `hwperm-circuits`.
//!
//! A `k`-combination of `{0, …, n−1}` is ranked in lexicographic order of
//! its sorted element list. Unranking greedily picks the smallest leading
//! element whose "suffix block" of `C(n−1−c, k−1)` combinations contains
//! the index — structurally the same compare-subtract cascade as the
//! factorial converter.

use hwperm_bignum::Ubig;

/// Binomial coefficient `C(n, k)` as a [`Ubig`], via the multiplicative
/// formula with exact intermediate division.
pub fn binomial(n: u64, k: u64) -> Ubig {
    if k > n {
        return Ubig::zero();
    }
    let k = k.min(n - k);
    let mut acc = Ubig::one();
    for i in 0..k {
        acc = acc.mul_u64(n - i);
        let (q, r) = acc.divrem_u64(i + 1);
        debug_assert_eq!(r, 0, "binomial intermediate must divide exactly");
        acc = q;
    }
    acc
}

/// The `index`-th `k`-combination of `{0, …, n−1}` in lexicographic order,
/// returned as a sorted element list.
///
/// # Panics
/// Panics if `index >= C(n, k)`.
pub fn unrank_combination(n: usize, k: usize, index: &Ubig) -> Vec<u32> {
    assert!(
        *index < binomial(n as u64, k as u64),
        "combination index out of range for C({n}, {k})"
    );
    let mut out = Vec::with_capacity(k);
    let mut rem = index.clone();
    let mut next_candidate = 0u64; // smallest element still available
    let mut slots_left = k as u64;
    let mut universe_left = n as u64;
    while slots_left > 0 {
        // Greedy: element `c` leads a block of C(universe_left-1, slots_left-1)
        // combinations; advance c until the index falls inside its block.
        let block = binomial(universe_left - 1, slots_left - 1);
        if rem < block {
            out.push(next_candidate as u32);
            slots_left -= 1;
        } else {
            rem = &rem - &block;
        }
        next_candidate += 1;
        universe_left -= 1;
    }
    debug_assert!(rem.is_zero());
    out
}

/// Lexicographic rank of a sorted `k`-combination of `{0, …, n−1}`
/// (inverse of [`unrank_combination`]).
///
/// # Panics
/// Panics if `elements` is not strictly increasing or contains values `>= n`.
pub fn rank_combination(n: usize, elements: &[u32]) -> Ubig {
    let k = elements.len();
    let mut acc = Ubig::zero();
    let mut prev: i64 = -1;
    for (i, &e) in elements.iter().enumerate() {
        assert!((e as usize) < n, "element {e} out of range");
        assert!(e as i64 > prev, "elements must be strictly increasing");
        // All combinations whose i-th element is smaller than e but larger
        // than the (i-1)-th element rank below this one.
        for c in (prev + 1) as u64..e as u64 {
            acc += &binomial((n as u64) - c - 1, (k - i - 1) as u64);
        }
        prev = e as i64;
    }
    acc
}

/// Renders a combination as the constant-weight codeword the companion
/// paper outputs: an `n`-bit word with ones at the chosen positions
/// (bit `n−1−e` set for element `e`, MSB-first like the permutation word).
pub fn to_codeword(n: usize, elements: &[u32]) -> Ubig {
    let mut w = Ubig::zero();
    for &e in elements {
        assert!((e as usize) < n);
        w.set_bit(n - 1 - e as usize, true);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_pascal_row() {
        let row: Vec<u64> = (0..=6).map(|k| binomial(6, k).to_u64().unwrap()).collect();
        assert_eq!(row, vec![1, 6, 15, 20, 15, 6, 1]);
        assert_eq!(binomial(5, 9), Ubig::zero());
    }

    #[test]
    fn binomial_large_exact() {
        // C(100, 50) — 97 bits.
        assert_eq!(
            binomial(100, 50).to_string(),
            "100891344545564193334812497256"
        );
    }

    #[test]
    fn unrank_first_and_last() {
        assert_eq!(unrank_combination(5, 3, &Ubig::zero()), vec![0, 1, 2]);
        let last = binomial(5, 3) - Ubig::one();
        assert_eq!(unrank_combination(5, 3, &last), vec![2, 3, 4]);
    }

    #[test]
    fn rank_unrank_roundtrip_exhaustive() {
        let (n, k) = (7usize, 3usize);
        let total = binomial(n as u64, k as u64).to_u64().unwrap();
        let mut prev: Option<Vec<u32>> = None;
        for i in 0..total {
            let c = unrank_combination(n, k, &Ubig::from(i));
            assert_eq!(c.len(), k);
            assert!(c.windows(2).all(|w| w[0] < w[1]), "sorted strictly");
            assert_eq!(rank_combination(n, &c).to_u64(), Some(i));
            if let Some(p) = prev {
                assert!(p < c, "lexicographic order");
            }
            prev = Some(c);
        }
    }

    #[test]
    fn edge_weights() {
        // k = 0: single empty combination.
        assert_eq!(unrank_combination(5, 0, &Ubig::zero()), Vec::<u32>::new());
        assert_eq!(rank_combination(5, &[]), Ubig::zero());
        // k = n: single full combination.
        assert_eq!(unrank_combination(4, 4, &Ubig::zero()), vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unrank_rejects_overflow_index() {
        unrank_combination(5, 2, &Ubig::from(10u64)); // C(5,2) = 10
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rank_rejects_unsorted() {
        rank_combination(5, &[2, 1]);
    }

    #[test]
    fn codeword_bits() {
        // Elements {0, 3} of n = 5 → bits 4 and 1 → 0b10010.
        assert_eq!(to_codeword(5, &[0, 3]).to_u64(), Some(0b10010));
        // Weight is preserved.
        let c = unrank_combination(10, 4, &Ubig::from(100u64));
        let w = to_codeword(10, &c);
        let ones = (0..10).filter(|&i| w.bit(i)).count();
        assert_eq!(ones, 4);
    }
}
