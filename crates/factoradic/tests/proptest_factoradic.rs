//! Property tests: rank/unrank bijection, digit algorithms agreement,
//! and combinadic invariants.

use hwperm_bignum::Ubig;
use hwperm_factoradic::*;
use hwperm_perm::Permutation;
use proptest::prelude::*;

proptest! {
    #[test]
    fn unrank_then_rank_u64(n in 1usize..=10, seed in any::<u64>()) {
        let nfact = factorials_u64(n)[n];
        let index = seed % nfact;
        let p = unrank_u64(n, index);
        prop_assert_eq!(rank_u64(&p), index);
    }

    #[test]
    fn greedy_digits_match_divmod(n in 1usize..=10, seed in any::<u64>()) {
        let nfact = factorials_u64(n)[n];
        let index = seed % nfact;
        prop_assert_eq!(to_digits_greedy(n, index), to_digits_u64(n, index));
    }

    #[test]
    fn digits_roundtrip_u64(n in 1usize..=12, seed in any::<u64>()) {
        let nfact = factorials_u64(n)[n];
        let index = seed % nfact;
        prop_assert_eq!(from_digits_u64(&to_digits_u64(n, index)), index);
    }

    #[test]
    fn big_unrank_rank_roundtrip(n in 21usize..=30, limbs in prop::collection::vec(any::<u64>(), 3)) {
        // Random big index reduced mod n!.
        let raw = Ubig::from_limbs(limbs);
        let index = raw.divrem(&Ubig::factorial(n as u64)).1;
        let p = unrank(n, &index);
        prop_assert_eq!(rank(&p), index);
    }

    #[test]
    fn adjacent_indices_are_lex_successors(n in 2usize..=9, seed in any::<u64>()) {
        let nfact = factorials_u64(n)[n];
        let index = seed % (nfact - 1);
        let p = unrank_u64(n, index);
        let q = unrank_u64(n, index + 1);
        prop_assert_eq!(p.next_lex().unwrap(), q);
    }

    #[test]
    fn rank_respects_lex_order(n in 2usize..=8, a in any::<u64>(), b in any::<u64>()) {
        let nfact = factorials_u64(n)[n];
        let (ia, ib) = (a % nfact, b % nfact);
        let (pa, pb) = (unrank_u64(n, ia), unrank_u64(n, ib));
        prop_assert_eq!(ia.cmp(&ib), pa.as_slice().cmp(pb.as_slice()));
    }

    #[test]
    fn combination_roundtrip(n in 1usize..=16, k_seed in any::<u64>(), i_seed in any::<u64>()) {
        let k = (k_seed % (n as u64 + 1)) as usize;
        let total = binomial(n as u64, k as u64);
        let index = Ubig::from(i_seed).divrem(&total).1;
        let c = unrank_combination(n, k, &index);
        prop_assert_eq!(c.len(), k);
        prop_assert!(c.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(rank_combination(n, &c), index);
    }

    #[test]
    fn binomial_recurrence(n in 1u64..=40, k_seed in any::<u64>()) {
        let k = k_seed % (n + 1);
        let lhs = binomial(n, k);
        let rhs = if k == 0 || k == n {
            Ubig::one()
        } else {
            binomial(n - 1, k - 1) + binomial(n - 1, k)
        };
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn indexed_iterator_matches_unrank(n in 2usize..=7, seed in any::<u64>()) {
        let nfact = factorials_u64(n)[n];
        let start = seed % nfact;
        let end = (start + 20).min(nfact);
        let collected: Vec<_> =
            IndexedPermutations::new(n, Ubig::from(start), Ubig::from(end)).collect();
        prop_assert_eq!(collected.len() as u64, end - start);
        for (i, (index, p)) in collected.iter().enumerate() {
            prop_assert_eq!(index.to_u64(), Some(start + i as u64));
            prop_assert_eq!(p.clone(), unrank_u64(n, start + i as u64));
        }
    }

    #[test]
    fn variation_roundtrip(n in 1usize..=14, k_seed in any::<u64>(), i_seed in any::<u64>()) {
        let k = (k_seed % (n as u64 + 1)) as usize;
        let total = falling_factorial(n as u64, k as u64);
        let index = Ubig::from(i_seed).divrem(&total).1;
        let v = unrank_variation(n, k, &index);
        prop_assert_eq!(v.len(), k);
        let distinct: std::collections::HashSet<_> = v.iter().collect();
        prop_assert_eq!(distinct.len(), k);
        prop_assert_eq!(rank_variation(n, &v), index);
    }

    #[test]
    fn variation_with_k_n_is_permutation_unrank(n in 2usize..=9, seed in any::<u64>()) {
        let nfact = factorials_u64(n)[n];
        let index = seed % nfact;
        prop_assert_eq!(
            unrank_variation(n, n, &Ubig::from(index)),
            unrank_u64(n, index).into_vec()
        );
    }

    #[test]
    fn variation_order_matches_index_order(n in 2usize..=7, seed in any::<u64>()) {
        let k = 1 + (seed % (n as u64 - 1)) as usize;
        let total = falling_factorial(n as u64, k as u64).to_u64().unwrap();
        let i = seed % (total - 1);
        let a = unrank_variation(n, k, &Ubig::from(i));
        let b = unrank_variation(n, k, &Ubig::from(i + 1));
        prop_assert!(a < b, "lexicographic order broken at {i}");
    }

    #[test]
    fn unrank_produces_valid_permutation(n in 1usize..=20, seed in any::<u64>()) {
        let nfact = factorials_u64(n)[n];
        let p = unrank_u64(n, seed % nfact);
        prop_assert!(Permutation::try_from_slice(p.as_slice()).is_ok());
    }

    #[test]
    fn unrank_roundtrip_with_boundaries(n in 1usize..=20, seed in any::<u64>()) {
        // Every size up to the u64 limit, always including both ends of
        // the index space alongside a random interior index.
        let nfact = factorials_u64(n)[n];
        for index in [0, nfact - 1, seed % nfact] {
            prop_assert_eq!(rank_u64(&unrank_u64(n, index)), index, "n = {}", n);
        }
    }

    #[test]
    fn bitboard_unranker_matches_unrank_u64(n in 1usize..=20, seed in any::<u64>()) {
        // The branchless bitboard engine against the digit-vector
        // reference path, same index.
        let nfact = factorials_u64(n)[n];
        let index = seed % nfact;
        let mut unranker = Unranker::new(n);
        prop_assert_eq!(unranker.unrank(index), unrank_u64(n, index));
    }

    #[test]
    fn block_decoder_matches_per_index_unranking(n in 4usize..=8, a in any::<u64>(), b in any::<u64>()) {
        // A random sub-range of [0, n!): block decoding must equal the
        // per-index unrank + pack path entry for entry.
        let nfact = factorials_u64(n)[n];
        let (a, b) = (a % (nfact + 1), b % (nfact + 1));
        let range = a.min(b)..(a.max(b).min(a.min(b) + 500));
        let naive: Vec<u64> = range
            .clone()
            .map(|i| unrank_u64(n, i).pack().to_u64().unwrap())
            .collect();
        prop_assert_eq!(BlockDecoder::new(n).decode_words(range), naive);
    }
}
