#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Binary decision diagrams and permutation-driven classification.
//!
//! Two of the paper's motivating applications for fast permutation
//! generation, made runnable:
//!
//! - **BDD variable ordering** (intro, citing Bryant): "the BDD of the
//!   Achilles Heel function has polynomial number of nodes for the
//!   optimum ordering and exponential number of nodes for the worst case
//!   ordering. Determining the optimum ordering involves the generation
//!   of typically many permutations." [`Manager`] is a hash-consed ROBDD
//!   engine; [`ordering`] enumerates variable orders via the factorial-
//!   number-system index and measures node counts.
//! - **P-equivalence** (intro, citing Debnath & Sasao): two functions are
//!   P-equivalent if they differ only by a permutation of variables;
//!   [`pclass`] computes the canonical P-representative of a truth table
//!   by scanning all `n!` variable permutations in index order.

pub mod manager;
pub mod ordering;
pub mod pclass;

pub use manager::{Manager, NodeId};
pub use ordering::{achilles_heel, exhaustive_ordering_search, OrderingSearch};
pub use pclass::{apply_var_permutation, p_representative, TruthTable};
