//! Variable-ordering search: the paper's motivating BDD application.
//!
//! "The complexity of the BDD is strongly dependent on the order in
//! which variables are applied. For example, the BDD of the Achilles
//! Heel function has polynomial number of nodes for the optimum ordering
//! and exponential number of nodes for the worst case ordering.
//! Determining the optimum ordering involves the generation of typically
//! many permutations, testing how many nodes are required for each."
//!
//! [`exhaustive_ordering_search`] walks all `n!` orders *in factorial-
//! number-system index order* — exactly the enumeration the paper's
//! converter accelerates in hardware.

use crate::manager::{Manager, NodeId};
use hwperm_factoradic::IndexedPermutations;
use hwperm_perm::Permutation;

/// Builds the Achilles-heel function `⋁ᵢ (a_i ∧ b_i)` over `2k`
/// variables, with logical variable `v` placed at decision level
/// `order[v]`. Logical variables `2i` and `2i+1` form pair `i`.
pub fn achilles_heel(m: &mut Manager, k: usize, order: &Permutation) -> NodeId {
    assert_eq!(order.n(), 2 * k, "order must cover all 2k variables");
    assert_eq!(m.num_vars(), 2 * k);
    let mut f = NodeId::FALSE;
    for i in 0..k {
        let a = m.var(order.at(2 * i) as usize);
        let b = m.var(order.at(2 * i + 1) as usize);
        let pair = m.and(a, b);
        f = m.or(f, pair);
    }
    f
}

/// Result of an exhaustive variable-ordering search.
#[derive(Debug, Clone)]
pub struct OrderingSearch {
    /// Smallest BDD found.
    pub best_size: usize,
    /// An order achieving `best_size`.
    pub best_order: Permutation,
    /// Largest BDD found.
    pub worst_size: usize,
    /// An order achieving `worst_size`.
    pub worst_order: Permutation,
    /// Orders examined (= `n!`).
    pub examined: u64,
}

/// Exhaustively searches all `(2k)!` variable orders of a `build`
/// function, enumerated by factorial-number-system index (the workload
/// the hardware converter feeds at one permutation per clock).
///
/// `build` receives a fresh manager and the order to evaluate.
pub fn exhaustive_ordering_search(
    num_vars: usize,
    mut build: impl FnMut(&mut Manager, &Permutation) -> NodeId,
) -> OrderingSearch {
    let mut best: Option<(usize, Permutation)> = None;
    let mut worst: Option<(usize, Permutation)> = None;
    let mut examined = 0u64;
    for (_index, order) in IndexedPermutations::all(num_vars) {
        let mut m = Manager::new(num_vars);
        let f = build(&mut m, &order);
        let size = m.node_count(f);
        if best.as_ref().is_none_or(|(s, _)| size < *s) {
            best = Some((size, order.clone()));
        }
        if worst.as_ref().is_none_or(|(s, _)| size > *s) {
            worst = Some((size, order));
        }
        examined += 1;
    }
    let (best_size, best_order) = best.expect("at least one order");
    let (worst_size, worst_order) = worst.expect("at least one order");
    OrderingSearch {
        best_size,
        best_order,
        worst_size,
        worst_order,
        examined,
    }
}

/// The known-good interleaved order `a_0 b_0 a_1 b_1 …` (identity).
pub fn interleaved_order(k: usize) -> Permutation {
    Permutation::identity(2 * k)
}

/// The known-bad separated order: all `a_i` first, then all `b_i`
/// (logical variable `2i` → level `i`, variable `2i+1` → level `k + i`).
pub fn separated_order(k: usize) -> Permutation {
    let mut v = vec![0u32; 2 * k];
    for i in 0..k {
        v[2 * i] = i as u32;
        v[2 * i + 1] = (k + i) as u32;
    }
    Permutation::try_from_vec(v).expect("separated order is a permutation")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn achilles_size(k: usize, order: &Permutation) -> usize {
        let mut m = Manager::new(2 * k);
        let f = achilles_heel(&mut m, k, order);
        m.node_count(f)
    }

    #[test]
    fn interleaved_order_is_linear() {
        // Under a_i b_i interleaving the BDD has exactly 2k nodes.
        for k in 1..=6 {
            assert_eq!(achilles_size(k, &interleaved_order(k)), 2 * k, "k = {k}");
        }
    }

    #[test]
    fn separated_order_is_exponential() {
        // Under the separated order the BDD needs ~3·2^k − 2 nodes
        // (2^{k+1} − 2 upper nodes fanning out to the b-levels, plus the
        // k-node tail); check exponential growth rather than a formula.
        let sizes: Vec<usize> = (1..=6)
            .map(|k| achilles_size(k, &separated_order(k)))
            .collect();
        for w in sizes.windows(2) {
            assert!(
                w[1] as f64 >= 1.7 * w[0] as f64,
                "sizes should roughly double: {sizes:?}"
            );
        }
        assert!(sizes[5] > 100, "k = 6 separated should exceed 100 nodes");
    }

    #[test]
    fn achilles_function_semantics() {
        let k = 3;
        let mut m = Manager::new(2 * k);
        let f = achilles_heel(&mut m, k, &interleaved_order(k));
        // Satisfied iff some pair (2i, 2i+1) is both-true.
        for bits in 0..64u32 {
            let assignment: Vec<bool> = (0..6).map(|i| (bits >> i) & 1 == 1).collect();
            let expected = (0..k).any(|i| assignment[2 * i] && assignment[2 * i + 1]);
            assert_eq!(m.eval(f, &assignment), expected, "bits = {bits:06b}");
        }
    }

    #[test]
    fn exhaustive_search_finds_linear_optimum_k2() {
        // 4 variables, 24 orders.
        let search = exhaustive_ordering_search(4, |m, order| achilles_heel(m, 2, order));
        assert_eq!(search.examined, 24);
        assert_eq!(search.best_size, 4, "optimal = 2k");
        assert!(search.worst_size > search.best_size);
        // The identity (interleaved) order must be among the optima.
        assert_eq!(achilles_size(2, &interleaved_order(2)), search.best_size);
    }

    #[test]
    fn search_is_deterministic() {
        let a = exhaustive_ordering_search(4, |m, order| achilles_heel(m, 2, order));
        let b = exhaustive_ordering_search(4, |m, order| achilles_heel(m, 2, order));
        assert_eq!(a.best_size, b.best_size);
        assert_eq!(a.best_order, b.best_order);
        assert_eq!(a.worst_order, b.worst_order);
    }

    #[test]
    fn ordering_invariance_of_semantics() {
        // Any order computes the same function (sat count is invariant).
        let k = 2;
        let counts: Vec<u64> = [interleaved_order(k), separated_order(k)]
            .iter()
            .map(|order| {
                let mut m = Manager::new(2 * k);
                let f = achilles_heel(&mut m, k, order);
                m.sat_count(f)
            })
            .collect();
        assert_eq!(counts[0], counts[1]);
        assert_eq!(counts[0], 7); // 16 − 9: both pairs failing = 3×3
    }
}
