//! P-equivalence classification of Boolean functions.
//!
//! Two functions are *P-equivalent* if one becomes the other under a
//! permutation of input variables (intro, citing Debnath & Sasao's
//! canonical-form computation). The canonical *P-representative* used
//! here is the numerically smallest truth table reachable by permuting
//! variables — computing it scans all `n!` permutations, which is the
//! lookup-table-classification workload the paper's converter feeds.

use hwperm_factoradic::IndexedPermutations;
use hwperm_perm::Permutation;

/// A truth table over `vars ≤ 6` variables, packed LSB-first: bit `i`
/// holds `f(x)` for the assignment whose bit `j` is `(i >> j) & 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TruthTable {
    /// Packed function values.
    pub bits: u64,
    /// Number of input variables.
    pub vars: usize,
}

impl TruthTable {
    /// Builds a table, masking away rows beyond `2^vars`.
    ///
    /// # Panics
    /// Panics if `vars > 6`.
    pub fn new(vars: usize, bits: u64) -> Self {
        assert!(vars <= 6, "packed truth tables support at most 6 variables");
        let rows = 1usize << vars;
        let mask = if rows == 64 {
            u64::MAX
        } else {
            (1u64 << rows) - 1
        };
        TruthTable {
            bits: bits & mask,
            vars,
        }
    }

    /// Evaluates the function on an assignment given as packed bits.
    pub fn eval(&self, assignment: u32) -> bool {
        (self.bits >> assignment) & 1 == 1
    }
}

/// Applies a variable permutation: the returned table computes
/// `f(x_{π(0)}, …, x_{π(n−1)})`, i.e. input `j` of the new function is
/// wired to input `π(j)` of the old one.
pub fn apply_var_permutation(table: TruthTable, perm: &Permutation) -> TruthTable {
    assert_eq!(perm.n(), table.vars, "permutation arity mismatch");
    let rows = 1u32 << table.vars;
    let mut out = 0u64;
    for row in 0..rows {
        // Build the permuted assignment: new variable j takes the value
        // of old row bit, routed through the permutation.
        let mut src = 0u32;
        for j in 0..table.vars {
            if (row >> j) & 1 == 1 {
                src |= 1 << perm.at(j);
            }
        }
        if table.eval(src) {
            out |= 1 << row;
        }
    }
    TruthTable::new(table.vars, out)
}

/// The canonical P-representative: the minimum truth table over all
/// `n!` variable permutations, scanned in factorial-number-system index
/// order. Returns the representative and the index of the permutation
/// achieving it.
pub fn p_representative(table: TruthTable) -> (TruthTable, u64) {
    let mut best = table;
    let mut best_index = 0u64;
    for (index, perm) in IndexedPermutations::all(table.vars) {
        let candidate = apply_var_permutation(table, &perm);
        if candidate.bits < best.bits {
            best = candidate;
            best_index = index.to_u64().expect("n ≤ 6 so n! fits u64");
        }
    }
    (best, best_index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_permutation_is_noop() {
        let t = TruthTable::new(3, 0b1011_0010);
        let id = Permutation::identity(3);
        assert_eq!(apply_var_permutation(t, &id), t);
    }

    #[test]
    fn swapping_vars_of_symmetric_function_is_noop() {
        // AND of 2 vars is symmetric: table 0b1000.
        let t = TruthTable::new(2, 0b1000);
        let swap = Permutation::try_from_slice(&[1, 0]).unwrap();
        assert_eq!(apply_var_permutation(t, &swap), t);
    }

    #[test]
    fn swapping_vars_of_projection() {
        // f = x0 over 2 vars: rows 01, 11 true → 0b1010.
        let x0 = TruthTable::new(2, 0b1010);
        let x1 = TruthTable::new(2, 0b1100);
        let swap = Permutation::try_from_slice(&[1, 0]).unwrap();
        assert_eq!(apply_var_permutation(x0, &swap), x1);
        assert_eq!(apply_var_permutation(x1, &swap), x0);
    }

    #[test]
    fn permutation_action_composes() {
        let t = TruthTable::new(3, 0b1100_1010);
        let a = Permutation::try_from_slice(&[1, 2, 0]).unwrap();
        let b = Permutation::try_from_slice(&[2, 0, 1]).unwrap();
        let lhs = apply_var_permutation(apply_var_permutation(t, &a), &b);
        // Applying a then b wires new input j → a(b(j)).
        let ab = a.compose(&b);
        let rhs = apply_var_permutation(t, &ab);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn p_equivalent_functions_share_representative() {
        // x0 and x1 and x2 are pairwise P-equivalent projections.
        let tables = [
            TruthTable::new(3, 0b1010_1010), // x0
            TruthTable::new(3, 0b1100_1100), // x1
            TruthTable::new(3, 0b1111_0000), // x2
        ];
        let reps: Vec<_> = tables.iter().map(|&t| p_representative(t).0).collect();
        assert_eq!(reps[0], reps[1]);
        assert_eq!(reps[1], reps[2]);
    }

    #[test]
    fn non_equivalent_functions_differ() {
        let and2 = TruthTable::new(2, 0b1000);
        let or2 = TruthTable::new(2, 0b1110);
        assert_ne!(p_representative(and2).0, p_representative(or2).0);
    }

    #[test]
    fn representative_is_idempotent() {
        let t = TruthTable::new(4, 0xBEEF);
        let (rep, _) = p_representative(t);
        let (rep2, index2) = p_representative(rep);
        assert_eq!(rep, rep2);
        assert_eq!(index2, 0, "a representative canonicalizes to itself");
    }

    #[test]
    fn class_counts_for_two_variables() {
        // 16 functions of 2 variables fall into 12 P-classes (the four
        // asymmetric pairs x0/x1, ¬x0/¬x1, x0¬x1 / ¬x0x1 (two such
        // pairs) merge).
        let mut reps = std::collections::HashSet::new();
        for bits in 0..16u64 {
            reps.insert(p_representative(TruthTable::new(2, bits)).0);
        }
        assert_eq!(reps.len(), 12);
    }

    #[test]
    fn representative_never_exceeds_original() {
        for bits in (0..256u64).step_by(7) {
            let t = TruthTable::new(3, bits);
            let (rep, _) = p_representative(t);
            assert!(rep.bits <= t.bits);
        }
    }
}
