//! A compact hash-consed ROBDD manager.
//!
//! Reduced, ordered BDDs in the classic Bryant style: a unique table
//! guarantees canonicity (structural equality ⟺ functional equality for
//! a fixed variable order), and all Boolean operations are expressed
//! through a memoized if-then-else (`ite`).

use std::collections::HashMap;

/// Handle to a BDD node inside a [`Manager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// The constant-false terminal.
    pub const FALSE: NodeId = NodeId(0);
    /// The constant-true terminal.
    pub const TRUE: NodeId = NodeId(1);

    fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Copy)]
struct Node {
    /// Decision level (variables are tested in increasing level order).
    /// Terminals carry `u32::MAX`.
    level: u32,
    low: NodeId,
    high: NodeId,
}

/// Hash-consed ROBDD manager for a fixed number of variables.
#[derive(Debug, Clone)]
pub struct Manager {
    nodes: Vec<Node>,
    unique: HashMap<(u32, NodeId, NodeId), NodeId>,
    ite_cache: HashMap<(NodeId, NodeId, NodeId), NodeId>,
    num_vars: usize,
}

impl Manager {
    /// A manager over `num_vars` decision levels.
    pub fn new(num_vars: usize) -> Self {
        let terminal = Node {
            level: u32::MAX,
            low: NodeId::FALSE,
            high: NodeId::FALSE,
        };
        Manager {
            nodes: vec![terminal, terminal], // FALSE, TRUE
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            num_vars,
        }
    }

    /// Number of decision levels.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total nodes ever created (terminals included) — a capacity gauge.
    pub fn total_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The projection function of the variable at `level`.
    ///
    /// # Panics
    /// Panics if `level >= num_vars`.
    pub fn var(&mut self, level: usize) -> NodeId {
        assert!(level < self.num_vars, "level {level} out of range");
        self.mk(level as u32, NodeId::FALSE, NodeId::TRUE)
    }

    fn level_of(&self, f: NodeId) -> u32 {
        self.nodes[f.index()].level
    }

    /// Decision level of a node (`u32::MAX` for the terminals) — used by
    /// cross-manager structural comparison in `hwperm-verify`.
    pub fn top_level(&self, f: NodeId) -> u32 {
        self.level_of(f)
    }

    /// `(level, low, high)` of an internal node.
    ///
    /// # Panics
    /// Panics if `f` is a terminal.
    pub fn node_triple(&self, f: NodeId) -> (u32, NodeId, NodeId) {
        assert!(
            f != NodeId::FALSE && f != NodeId::TRUE,
            "terminals have no children"
        );
        let node = self.nodes[f.index()];
        (node.level, node.low, node.high)
    }

    /// Reduced, hash-consed node constructor.
    fn mk(&mut self, level: u32, low: NodeId, high: NodeId) -> NodeId {
        if low == high {
            return low; // reduction rule
        }
        if let Some(&id) = self.unique.get(&(level, low, high)) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { level, low, high });
        self.unique.insert((level, low, high), id);
        id
    }

    /// Memoized if-then-else: `f ? g : h`.
    pub fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        // Terminal cases.
        if f == NodeId::TRUE {
            return g;
        }
        if f == NodeId::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == NodeId::TRUE && h == NodeId::FALSE {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let top = self.level_of(f).min(self.level_of(g)).min(self.level_of(h));
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let low = self.ite(f0, g0, h0);
        let high = self.ite(f1, g1, h1);
        let r = self.mk(top, low, high);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    fn cofactors(&self, f: NodeId, level: u32) -> (NodeId, NodeId) {
        let node = self.nodes[f.index()];
        if node.level == level {
            (node.low, node.high)
        } else {
            (f, f)
        }
    }

    /// Conjunction.
    pub fn and(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, g, NodeId::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, NodeId::TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Negation.
    pub fn not(&mut self, f: NodeId) -> NodeId {
        self.ite(f, NodeId::FALSE, NodeId::TRUE)
    }

    /// Evaluates `f` under a variable assignment (`assignment[level]`).
    pub fn eval(&self, f: NodeId, assignment: &[bool]) -> bool {
        let mut cur = f;
        loop {
            match cur {
                NodeId::FALSE => return false,
                NodeId::TRUE => return true,
                _ => {
                    let node = self.nodes[cur.index()];
                    cur = if assignment[node.level as usize] {
                        node.high
                    } else {
                        node.low
                    };
                }
            }
        }
    }

    /// Number of nodes reachable from `f`, terminals excluded — the
    /// size metric the ordering experiments report.
    pub fn node_count(&self, f: NodeId) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(cur) = stack.pop() {
            if cur == NodeId::FALSE || cur == NodeId::TRUE || !seen.insert(cur) {
                continue;
            }
            let node = self.nodes[cur.index()];
            stack.push(node.low);
            stack.push(node.high);
        }
        seen.len()
    }

    /// Number of satisfying assignments over all `num_vars` variables.
    pub fn sat_count(&self, f: NodeId) -> u64 {
        let mut memo: HashMap<NodeId, u64> = HashMap::new();
        self.sat_count_rec(f, &mut memo, 0)
    }

    fn sat_count_rec(&self, f: NodeId, memo: &mut HashMap<NodeId, u64>, _depth: u32) -> u64 {
        // Count assignments of variables at levels >= level_of(f), then
        // scale by skipped levels at the call site. Implemented by
        // normalizing: count below a node covers levels (node.level, n).
        fn rec(mgr: &Manager, f: NodeId, memo: &mut HashMap<NodeId, u64>) -> u64 {
            // Returns count over variables strictly below f's level.
            if f == NodeId::FALSE {
                return 0;
            }
            if f == NodeId::TRUE {
                return 1;
            }
            if let Some(&c) = memo.get(&f) {
                return c;
            }
            let node = mgr.nodes[f.index()];
            let skip = |child: NodeId| {
                let child_level = if child == NodeId::FALSE || child == NodeId::TRUE {
                    mgr.num_vars as u32
                } else {
                    mgr.nodes[child.index()].level
                };
                child_level - node.level - 1
            };
            let lo = rec(mgr, node.low, memo) << skip(node.low);
            let hi = rec(mgr, node.high, memo) << skip(node.high);
            let c = lo + hi;
            memo.insert(f, c);
            c
        }
        let top = if f == NodeId::FALSE || f == NodeId::TRUE {
            self.num_vars as u32
        } else {
            self.level_of(f)
        };
        rec(self, f, memo) << top
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_vars() {
        let mut m = Manager::new(3);
        let x0 = m.var(0);
        assert_ne!(x0, NodeId::FALSE);
        assert!(m.eval(x0, &[true, false, false]));
        assert!(!m.eval(x0, &[false, true, true]));
    }

    #[test]
    fn hash_consing_gives_canonicity() {
        let mut m = Manager::new(2);
        let x0 = m.var(0);
        let x1 = m.var(1);
        let a = m.and(x0, x1);
        let b = m.and(x1, x0);
        assert_eq!(a, b, "AND is canonical regardless of operand order");
        // (x0 ∧ x1) ∨ x0 = x0 — absorption collapses structurally.
        let c = m.or(a, x0);
        assert_eq!(c, x0);
    }

    #[test]
    fn de_morgan() {
        let mut m = Manager::new(2);
        let x0 = m.var(0);
        let x1 = m.var(1);
        let lhs = {
            let a = m.and(x0, x1);
            m.not(a)
        };
        let rhs = {
            let n0 = m.not(x0);
            let n1 = m.not(x1);
            m.or(n0, n1)
        };
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn xor_truth_table() {
        let mut m = Manager::new(2);
        let x0 = m.var(0);
        let x1 = m.var(1);
        let f = m.xor(x0, x1);
        assert!(!m.eval(f, &[false, false]));
        assert!(m.eval(f, &[true, false]));
        assert!(m.eval(f, &[false, true]));
        assert!(!m.eval(f, &[true, true]));
    }

    #[test]
    fn double_negation() {
        let mut m = Manager::new(3);
        let x1 = m.var(1);
        let n = m.not(x1);
        assert_eq!(m.not(n), x1);
    }

    #[test]
    fn node_count_of_var_is_one() {
        let mut m = Manager::new(4);
        let x2 = m.var(2);
        assert_eq!(m.node_count(x2), 1);
        assert_eq!(m.node_count(NodeId::TRUE), 0);
    }

    #[test]
    fn sat_count_basics() {
        let mut m = Manager::new(3);
        let x0 = m.var(0);
        let x1 = m.var(1);
        assert_eq!(m.sat_count(NodeId::TRUE), 8);
        assert_eq!(m.sat_count(NodeId::FALSE), 0);
        assert_eq!(m.sat_count(x0), 4);
        let f = m.and(x0, x1);
        assert_eq!(m.sat_count(f), 2);
        let g = m.or(x0, x1);
        assert_eq!(m.sat_count(g), 6);
    }

    #[test]
    fn eval_agrees_with_sat_count_exhaustively() {
        let mut m = Manager::new(4);
        let x: Vec<_> = (0..4).map(|i| m.var(i)).collect();
        // f = (x0 ∧ x1) ⊕ (x2 ∨ ¬x3)
        let a = m.and(x[0], x[1]);
        let n3 = m.not(x[3]);
        let b = m.or(x[2], n3);
        let f = m.xor(a, b);
        let mut count = 0u64;
        for bits in 0..16u32 {
            let assignment: Vec<bool> = (0..4).map(|i| (bits >> i) & 1 == 1).collect();
            if m.eval(f, &assignment) {
                count += 1;
            }
        }
        assert_eq!(count, m.sat_count(f));
    }
}
