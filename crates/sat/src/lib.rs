#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! SAT-based proof engine for the hwperm workspace.
//!
//! Three layers, bottom up:
//!
//! - [`Solver`] — a self-contained CDCL SAT solver (two-watched-literal
//!   propagation, first-UIP clause learning with backjumping,
//!   VSIDS-style activity, phase saving, Luby restarts, conflict
//!   budgets). No external dependencies, `forbid(unsafe_code)`.
//! - [`Cnf`] — a formula builder with memoized Tseitin gate helpers
//!   (`and`/`or`/`xor`/`mux`, constant folding, structural hashing) so
//!   circuit encodings stay compact and miters of near-identical
//!   circuits collapse their shared halves.
//! - [`encode_combinational`] / [`encode_unrolled`] — lowering of the
//!   compiled simulation tape ([`hwperm_logic::SimProgram`]) to CNF:
//!   one linear walk over the levelized opcode stream for
//!   combinational queries, or a `k + 1`-frame unroll over the DFF
//!   slot pairs for bounded model checking of the pipelined families.
//!
//! The proof *obligations* (miters, table checks, one-hot cones) live
//! in `hwperm-verify` and `hwperm-lint`; this crate only knows how to
//! encode and solve. Why exhaustive simulation isn't enough: sweeps
//! and BDDs both cap out on input width, while the CDCL search is
//! driven by the circuit's structure — the same shift from brute force
//! to algorithmic structure the comparative-sorting literature makes.

mod cnf;
mod encode;
mod solver;

pub use cnf::{lit_value, read_word, Cnf};
pub use encode::{encode_combinational, encode_combinational_with, encode_unrolled, FrameLits};
pub use solver::{Lit, SatResult, Solver, SolverStats, Var};
