//! A CNF formula under construction, with memoized Tseitin gate
//! helpers.
//!
//! The builder mirrors `hwperm_logic::Builder`'s ergonomics at the
//! clause level: [`Cnf::and`], [`Cnf::or`], [`Cnf::xor`] and
//! [`Cnf::mux`] introduce a definitional variable with the standard
//! Tseitin clauses — but first constant-fold, cancel trivial operand
//! patterns (`a∧a`, `a∧¬a`, …) and consult a structural-hash memo, so
//! encoding two near-identical circuits into one formula (the miter
//! construction) collapses their shared structure to shared variables
//! instead of duplicating clauses. One reserved variable pinned true
//! represents both constants, which keeps every helper total.
//!
//! Solving never mutates the formula: [`Cnf::solve`] feeds the clauses
//! to a fresh [`Solver`], so one encoded circuit can back any number of
//! independent queries (each query = the shared clauses plus
//! query-specific assertions added to a clone).

use crate::solver::{Lit, SatResult, Solver, SolverStats};
use std::collections::HashMap;

/// Memo key: operation tag plus canonicalized operand literal codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum GateKey {
    And(u32, u32),
    Xor(u32, u32),
    Mux(u32, u32, u32),
}

/// A growing CNF formula plus the gate-helper memo.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    n_vars: u32,
    /// Flat clause storage: literal arena plus end offsets.
    lits: Vec<Lit>,
    ends: Vec<u32>,
    memo: HashMap<GateKey, Lit>,
    true_lit: Option<Lit>,
}

impl Cnf {
    /// An empty formula.
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.n_vars as usize
    }

    /// Number of clauses added.
    pub fn num_clauses(&self) -> usize {
        self.ends.len()
    }

    /// Allocates a fresh variable, returned as its positive literal.
    pub fn new_var(&mut self) -> Lit {
        let v = self.n_vars;
        self.n_vars += 1;
        Lit::positive(v)
    }

    /// The literal representing constant `value`. Backed by a single
    /// reserved variable pinned true by a unit clause (allocated
    /// lazily).
    pub fn constant(&mut self, value: bool) -> Lit {
        let t = match self.true_lit {
            Some(t) => t,
            None => {
                let t = self.new_var();
                self.add_clause(&[t]);
                self.true_lit = Some(t);
                t
            }
        };
        if value {
            t
        } else {
            !t
        }
    }

    /// `true` iff `lit` is the pinned constant literal for `value`.
    fn is_const(&self, lit: Lit, value: bool) -> bool {
        match self.true_lit {
            Some(t) => lit == if value { t } else { !t },
            None => false,
        }
    }

    /// Adds a clause (disjunction of literals).
    pub fn add_clause(&mut self, clause: &[Lit]) {
        self.lits.extend_from_slice(clause);
        self.ends.push(self.lits.len() as u32);
    }

    /// Asserts a single literal (a unit clause).
    pub fn assert_lit(&mut self, lit: Lit) {
        self.add_clause(&[lit]);
    }

    /// Iterates the clauses added so far.
    pub fn clauses(&self) -> impl Iterator<Item = &[Lit]> + '_ {
        let mut start = 0usize;
        self.ends.iter().map(move |&end| {
            let c = &self.lits[start..end as usize];
            start = end as usize;
            c
        })
    }

    // ---- memoized gate helpers ------------------------------------

    /// `a ∧ b` as a literal (definitional variable or a folded
    /// operand).
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Constant folding and trivial-operand cancellation.
        if self.is_const(a, true) || a == b {
            return b;
        }
        if self.is_const(b, true) {
            return a;
        }
        if self.is_const(a, false) || self.is_const(b, false) || a == !b {
            return self.constant(false);
        }
        let (x, y) = if a.code() <= b.code() { (a, b) } else { (b, a) };
        let key = GateKey::And(x.code() as u32, y.code() as u32);
        if let Some(&hit) = self.memo.get(&key) {
            return hit;
        }
        let out = self.new_var();
        self.add_clause(&[!out, x]);
        self.add_clause(&[!out, y]);
        self.add_clause(&[out, !x, !y]);
        self.memo.insert(key, out);
        out
    }

    /// `a ∨ b`, via De Morgan over the memoized AND (so `a∨b` and
    /// `¬(¬a∧¬b)` share one definition).
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// `a ⊕ b` as a literal.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        if self.is_const(a, false) {
            return b;
        }
        if self.is_const(b, false) {
            return a;
        }
        if self.is_const(a, true) {
            return !b;
        }
        if self.is_const(b, true) {
            return !a;
        }
        if a == b {
            return self.constant(false);
        }
        if a == !b {
            return self.constant(true);
        }
        // Canonicalize: sort operands and strip polarity into the
        // output (a ⊕ b = ¬(¬a ⊕ b) etc.), keying on positive lits.
        let flip = a.is_negated() ^ b.is_negated();
        let (pa, pb) = (Lit::positive(a.var()), Lit::positive(b.var()));
        let (x, y) = if pa.code() <= pb.code() {
            (pa, pb)
        } else {
            (pb, pa)
        };
        let key = GateKey::Xor(x.code() as u32, y.code() as u32);
        let base = match self.memo.get(&key) {
            Some(&hit) => hit,
            None => {
                let out = self.new_var();
                self.add_clause(&[!out, x, y]);
                self.add_clause(&[!out, !x, !y]);
                self.add_clause(&[out, !x, y]);
                self.add_clause(&[out, x, !y]);
                self.memo.insert(key, out);
                out
            }
        };
        if flip {
            !base
        } else {
            base
        }
    }

    /// `sel ? b : a` — the tape's `Mux` semantics
    /// (`(sel ∧ b) ∨ (¬sel ∧ a)`).
    pub fn mux(&mut self, sel: Lit, a: Lit, b: Lit) -> Lit {
        if self.is_const(sel, true) {
            return b;
        }
        if self.is_const(sel, false) {
            return a;
        }
        if a == b {
            return a;
        }
        if a == !b {
            return self.xor(sel, a);
        }
        if self.is_const(b, true) {
            return self.or(sel, a);
        }
        if self.is_const(b, false) {
            return self.and(!sel, a);
        }
        if self.is_const(a, true) {
            return self.or(!sel, b);
        }
        if self.is_const(a, false) {
            return self.and(sel, b);
        }
        let key = GateKey::Mux(sel.code() as u32, a.code() as u32, b.code() as u32);
        if let Some(&hit) = self.memo.get(&key) {
            return hit;
        }
        let out = self.new_var();
        self.add_clause(&[!sel, !b, out]);
        self.add_clause(&[!sel, b, !out]);
        self.add_clause(&[sel, !a, out]);
        self.add_clause(&[sel, a, !out]);
        // Redundant but propagation-strengthening: when a and b agree,
        // out agrees regardless of sel.
        self.add_clause(&[!a, !b, out]);
        self.add_clause(&[a, b, !out]);
        self.memo.insert(key, out);
        out
    }

    /// Disjunction of arbitrarily many literals as a balanced tree
    /// (constant for the empty list).
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        match lits {
            [] => self.constant(false),
            [l] => *l,
            _ => {
                let (lo, hi) = lits.split_at(lits.len() / 2);
                let a = self.or_many(lo);
                let b = self.or_many(hi);
                self.or(a, b)
            }
        }
    }

    /// Conjunction of arbitrarily many literals as a balanced tree.
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        match lits {
            [] => self.constant(true),
            [l] => *l,
            _ => {
                let (lo, hi) = lits.split_at(lits.len() / 2);
                let a = self.and_many(lo);
                let b = self.and_many(hi);
                self.and(a, b)
            }
        }
    }

    /// A literal true iff the little-endian bit vector `bits` is
    /// strictly below the constant `bound` (ripple comparator over the
    /// memoized helpers).
    pub fn less_than_const(&mut self, bits: &[Lit], bound: u64) -> Lit {
        // If the bound has set bits above the vector's width, every
        // representable value is below it.
        if bits.len() < 64 && bound >> bits.len() != 0 {
            return self.constant(true);
        }
        // lt_k: bits[..k] < bound[..k]. Walking LSB→MSB:
        // lt_{k+1} = bound_k ? (¬bits_k ∨ lt_k) : (¬bits_k ∧ lt_k).
        let mut lt = self.constant(false);
        for (k, &b) in bits.iter().enumerate() {
            lt = if k < 64 && (bound >> k) & 1 == 1 {
                self.or(!b, lt)
            } else {
                self.and(!b, lt)
            };
        }
        lt
    }

    // ---- solving --------------------------------------------------

    /// Runs a fresh solver over the clauses, with an optional conflict
    /// budget. Returns the result plus that run's search statistics.
    pub fn solve_budgeted(&self, max_conflicts: Option<u64>) -> (SatResult, SolverStats) {
        let mut solver = Solver::new();
        for _ in 0..self.n_vars {
            solver.new_var();
        }
        for clause in self.clauses() {
            clause.iter().for_each(|l| {
                debug_assert!((l.var() as usize) < self.n_vars as usize);
            });
            solver.add_clause(clause);
        }
        let result = match max_conflicts {
            Some(budget) => solver.solve_budgeted(budget),
            None => solver.solve(),
        };
        (result, solver.stats())
    }

    /// [`Cnf::solve_budgeted`] without a budget.
    pub fn solve(&self) -> (SatResult, SolverStats) {
        self.solve_budgeted(None)
    }
}

/// Evaluates a literal under a model produced by the solver.
pub fn lit_value(model: &[bool], lit: Lit) -> bool {
    model[lit.var() as usize] ^ lit.is_negated()
}

/// Packs little-endian literal values under a model into a word.
pub fn read_word(model: &[bool], bits: &[Lit]) -> u64 {
    bits.iter()
        .enumerate()
        .take(64)
        .filter(|&(_, &l)| lit_value(model, l))
        .fold(0u64, |acc, (i, _)| acc | (1u64 << i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_shared_and_pinned() {
        let mut cnf = Cnf::new();
        let t = cnf.constant(true);
        let f = cnf.constant(false);
        assert_eq!(t, !f);
        assert_eq!(cnf.num_vars(), 1);
        let (res, _) = cnf.solve();
        let m = res.model().expect("pinned constant is satisfiable");
        assert!(lit_value(m, t));
        assert!(!lit_value(m, f));
    }

    #[test]
    fn and_gate_truth_table() {
        for (av, bv) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut cnf = Cnf::new();
            let a = cnf.new_var();
            let b = cnf.new_var();
            let y = cnf.and(a, b);
            cnf.assert_lit(if av { a } else { !a });
            cnf.assert_lit(if bv { b } else { !b });
            let (res, _) = cnf.solve();
            let m = res.model().expect("fully-assigned gate is sat");
            assert_eq!(lit_value(m, y), av && bv, "{av} & {bv}");
        }
    }

    #[test]
    fn xor_and_mux_truth_tables() {
        for bits in 0..8u32 {
            let (sv, av, bv) = (bits & 1 == 1, bits & 2 == 2, bits & 4 == 4);
            let mut cnf = Cnf::new();
            let s = cnf.new_var();
            let a = cnf.new_var();
            let b = cnf.new_var();
            let x = cnf.xor(a, b);
            let m_out = cnf.mux(s, a, b);
            for (lit, v) in [(s, sv), (a, av), (b, bv)] {
                cnf.assert_lit(if v { lit } else { !lit });
            }
            let (res, _) = cnf.solve();
            let m = res.model().expect("sat");
            assert_eq!(lit_value(m, x), av ^ bv);
            assert_eq!(lit_value(m, m_out), if sv { bv } else { av });
        }
    }

    #[test]
    fn structural_hashing_deduplicates() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        let y1 = cnf.and(a, b);
        let y2 = cnf.and(b, a); // commuted
        assert_eq!(y1, y2);
        let o1 = cnf.or(a, b);
        let o2 = cnf.or(b, a);
        assert_eq!(o1, o2);
        let x1 = cnf.xor(a, !b);
        let x2 = cnf.xor(!a, b); // same function
        assert_eq!(x1, x2);
        let x3 = cnf.xor(a, b);
        assert_eq!(x1, !x3);
    }

    #[test]
    fn folding_shortcuts() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let t = cnf.constant(true);
        let f = cnf.constant(false);
        assert_eq!(cnf.and(a, t), a);
        assert_eq!(cnf.and(a, f), f);
        assert_eq!(cnf.and(a, a), a);
        assert_eq!(cnf.and(a, !a), f);
        assert_eq!(cnf.or(a, f), a);
        assert_eq!(cnf.or(a, t), t);
        assert_eq!(cnf.xor(a, f), a);
        assert_eq!(cnf.xor(a, t), !a);
        assert_eq!(cnf.mux(t, a, !a), !a);
        assert_eq!(cnf.mux(f, a, !a), a);
        let s = cnf.new_var();
        assert_eq!(cnf.mux(s, a, a), a);
    }

    #[test]
    fn less_than_const_is_exact() {
        for bound in 0..=16u64 {
            let mut cnf = Cnf::new();
            let bits: Vec<Lit> = (0..4).map(|_| cnf.new_var()).collect();
            let lt = cnf.less_than_const(&bits, bound);
            for x in 0..16u64 {
                let mut q = cnf.clone();
                for (i, &b) in bits.iter().enumerate() {
                    q.assert_lit(if (x >> i) & 1 == 1 { b } else { !b });
                }
                let (res, _) = q.solve();
                let m = res.model().expect("sat");
                assert_eq!(lit_value(m, lt), x < bound, "x={x} bound={bound}");
            }
        }
    }

    #[test]
    fn or_many_and_many_cover_empty_and_wide() {
        let mut cnf = Cnf::new();
        let vars: Vec<Lit> = (0..7).map(|_| cnf.new_var()).collect();
        let any = cnf.or_many(&vars);
        let all = cnf.and_many(&vars);
        let none = cnf.or_many(&[]);
        assert!(cnf.is_const(none, false));
        let mut q = cnf.clone();
        for &v in &vars {
            q.assert_lit(!v);
        }
        let (res, _) = q.solve();
        let m = res.model().expect("sat");
        assert!(!lit_value(m, any));
        assert!(!lit_value(m, all));
        let mut q = cnf.clone();
        for &v in &vars {
            q.assert_lit(v);
        }
        let (res, _) = q.solve();
        let m = res.model().expect("sat");
        assert!(lit_value(m, any));
        assert!(lit_value(m, all));
    }

    #[test]
    fn read_word_packs_little_endian() {
        let mut cnf = Cnf::new();
        let bits: Vec<Lit> = (0..5).map(|_| cnf.new_var()).collect();
        for (i, &b) in bits.iter().enumerate() {
            cnf.assert_lit(if 0b10110 >> i & 1 == 1 { b } else { !b });
        }
        let (res, _) = cnf.solve();
        let m = res.model().expect("sat");
        assert_eq!(read_word(m, &bits), 0b10110);
    }
}
