//! Tseitin lowering of the compiled simulation tape
//! ([`hwperm_logic::SimProgram`]) to CNF.
//!
//! The tape is already exactly what an encoder wants: levelized,
//! slot-resolved, constants baked, DFFs reduced to `(q, d)` slot
//! pairs. Encoding is therefore a single linear walk — op `j` defines
//! the literal for slot `comb_base + j` from already-defined operand
//! literals, through the memoized gate helpers of [`Cnf`] so shared
//! structure (and, in a miter, the whole shared circuit) collapses.
//!
//! Two entry points:
//!
//! - [`encode_combinational`] — one frame; input bits and DFF outputs
//!   become free variables (a register-free netlist has none of the
//!   latter, making this the plain combinational encoding; for a
//!   sequential netlist it encodes the single-cycle transition
//!   relation, which is what cone-of-influence style queries want).
//! - [`encode_unrolled`] — bounded model checking: `k + 1` frames with
//!   frame 0's registers pinned to their reset values and frame
//!   `t + 1`'s register slots equated to frame `t`'s settled `d`
//!   literals. Inputs are fresh per frame unless the caller ties them.
//!
//! Both return a [`FrameLits`] per frame: the full slot → literal map,
//! so ports resolve through the tape's own slot maps
//! (`program.input_slots(name)[bit]` indexes straight into it).

use crate::cnf::Cnf;
use crate::solver::Lit;
use hwperm_logic::{SimProgram, TapeOp};

/// The literal for every value-array slot of one encoded frame.
/// Index with the tape's slot numbers (e.g.
/// `frame.slots[program.output_slots("perm")[bit] as usize]`).
#[derive(Debug, Clone)]
pub struct FrameLits {
    /// Slot → literal, length `program.slot_count()`.
    pub slots: Vec<Lit>,
}

impl FrameLits {
    /// Literals of a named input port, LSB first.
    pub fn input(&self, program: &SimProgram, name: &str) -> Vec<Lit> {
        program
            .input_slots(name)
            .iter()
            .map(|&s| self.slots[s as usize])
            .collect()
    }

    /// Literals of a named output port, LSB first.
    pub fn output(&self, program: &SimProgram, name: &str) -> Vec<Lit> {
        program
            .output_slots(name)
            .iter()
            .map(|&s| self.slots[s as usize])
            .collect()
    }
}

/// Encodes the combinational wave of one frame given literals for the
/// state region (`state[slot]` must be `Some` for every input, DFF and
/// constant slot; constants are filled in by the callers below).
fn encode_wave(program: &SimProgram, cnf: &mut Cnf, state: Vec<Option<Lit>>) -> FrameLits {
    let comb_base = program.comb_base();
    let mut slots: Vec<Lit> = Vec::with_capacity(program.slot_count());
    for (slot, lit) in state.iter().enumerate().take(comb_base) {
        match lit {
            Some(l) => slots.push(*l),
            None => unreachable!("state slot {slot} left undefined"),
        }
    }
    for j in 0..program.op_count() {
        let lit = match program.op(j) {
            TapeOp::Not { a } => !slots[a as usize],
            TapeOp::And { a, b } => cnf.and(slots[a as usize], slots[b as usize]),
            TapeOp::Or { a, b } => cnf.or(slots[a as usize], slots[b as usize]),
            TapeOp::Xor { a, b } => cnf.xor(slots[a as usize], slots[b as usize]),
            TapeOp::Mux { sel, a, b } => {
                cnf.mux(slots[sel as usize], slots[a as usize], slots[b as usize])
            }
            // Fused opcodes (tapes from `SimProgram::compile_fused`)
            // re-expand through the memoized helpers: negations are
            // free literal flips in CNF, so a fused tape encodes to
            // the same clause set as its canonical twin.
            TapeOp::AndNot { a, b } => cnf.and(slots[a as usize], !slots[b as usize]),
            TapeOp::OrNot { a, b } => cnf.or(slots[a as usize], !slots[b as usize]),
            TapeOp::Nand { a, b } => !cnf.and(slots[a as usize], slots[b as usize]),
            TapeOp::Nor { a, b } => !cnf.or(slots[a as usize], slots[b as usize]),
            TapeOp::Xnor { a, b } => !cnf.xor(slots[a as usize], slots[b as usize]),
            TapeOp::And3 { a, b, c } => {
                let ab = cnf.and(slots[a as usize], slots[b as usize]);
                cnf.and(ab, slots[c as usize])
            }
            TapeOp::Or3 { a, b, c } => {
                let ab = cnf.or(slots[a as usize], slots[b as usize]);
                cnf.or(ab, slots[c as usize])
            }
        };
        debug_assert_eq!(slots.len(), comb_base + j);
        slots.push(lit);
    }
    FrameLits { slots }
}

/// The shared state-region scaffold: constants baked, everything else
/// (inputs, DFF outputs) left to the caller.
fn state_scaffold(program: &SimProgram, cnf: &mut Cnf) -> Vec<Option<Lit>> {
    let mut state: Vec<Option<Lit>> = vec![None; program.comb_base()];
    for (slot, value) in program.const_slots() {
        state[slot as usize] = Some(cnf.constant(value));
    }
    state
}

/// Fills every still-undefined state slot with a fresh variable.
fn fill_free(state: &mut [Option<Lit>], cnf: &mut Cnf) {
    for slot in state.iter_mut() {
        if slot.is_none() {
            *slot = Some(cnf.new_var());
        }
    }
}

/// Encodes one combinational frame: constants baked, inputs and DFF
/// output slots free variables. For a register-free netlist this is
/// the complete input/output relation of the circuit.
pub fn encode_combinational(program: &SimProgram, cnf: &mut Cnf) -> FrameLits {
    encode_combinational_with(program, cnf, &[])
}

/// [`encode_combinational`] with selected input ports bound to
/// caller-supplied literals instead of fresh variables — the miter
/// construction: encode circuit A, then encode circuit B with A's
/// input literals, and the shared inputs (plus the gate memo) collapse
/// the common structure. Ports not named in `bound` get fresh
/// variables.
///
/// # Panics
/// Panics if a bound name is not an input port of the program's
/// netlist or its literal count does not match the port width.
pub fn encode_combinational_with(
    program: &SimProgram,
    cnf: &mut Cnf,
    bound: &[(String, Vec<Lit>)],
) -> FrameLits {
    let mut state = state_scaffold(program, cnf);
    for (name, lits) in bound {
        let slots = program.input_slots(name);
        assert_eq!(
            slots.len(),
            lits.len(),
            "bound port {name:?}: {} literals for a {}-bit port",
            lits.len(),
            slots.len()
        );
        for (&slot, &lit) in slots.iter().zip(lits) {
            state[slot as usize] = Some(lit);
        }
    }
    fill_free(&mut state, cnf);
    encode_wave(program, cnf, state)
}

/// Bounded model checking unroll: `frames` copies of the combinational
/// wave chained through the DFF slot pairs. Frame 0's registers hold
/// their reset values; frame `t + 1`'s register slot takes frame `t`'s
/// settled `d` literal (the tape analogue of
/// [`SimProgram::latch`]). Inputs are fresh variables in every frame;
/// when `tie_inputs` is set, all frames share frame 0's input literals
/// instead (the "hold the input steady and let the pipeline drain"
/// query shape).
///
/// # Panics
/// Panics if `frames == 0`.
pub fn encode_unrolled(
    program: &SimProgram,
    cnf: &mut Cnf,
    frames: usize,
    tie_inputs: bool,
) -> Vec<FrameLits> {
    assert!(frames > 0, "BMC unroll needs at least one frame");
    let mut out: Vec<FrameLits> = Vec::with_capacity(frames);
    for t in 0..frames {
        let mut state = state_scaffold(program, cnf);
        for pair in program.dff_slot_pairs() {
            state[pair.q as usize] = Some(match out.last() {
                // Frame 0: reset values, exactly like `initial_values`.
                None => cnf.constant(pair.init),
                // Later frames: latch the previous frame's settled d.
                Some(prev) => prev.slots[pair.d as usize],
            });
        }
        if tie_inputs && t > 0 {
            for port in program.netlist().input_ports() {
                let name = port.name.clone();
                for &slot in program.input_slots(&name) {
                    state[slot as usize] = Some(out[0].slots[slot as usize]);
                }
            }
        }
        fill_free(&mut state, cnf);
        out.push(encode_wave(program, cnf, state));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{lit_value, read_word};
    use crate::solver::SatResult;
    use hwperm_logic::{Builder, SimProgram};

    fn adder_program() -> SimProgram {
        let mut b = Builder::new();
        let x = b.input_bus("x", 4);
        let y = b.input_bus("y", 4);
        let (s, c) = b.add(&x, &y);
        b.output_bus("s", &s);
        b.output_bus("c", &[c]);
        SimProgram::compile(b.finish())
    }

    #[test]
    fn adder_encoding_matches_arithmetic() {
        let p = adder_program();
        for (xv, yv) in [(0u64, 0u64), (3, 5), (9, 9), (15, 15), (7, 12)] {
            let mut cnf = Cnf::new();
            let frame = encode_combinational(&p, &mut cnf);
            for (bits, v) in [(frame.input(&p, "x"), xv), (frame.input(&p, "y"), yv)] {
                for (i, &l) in bits.iter().enumerate() {
                    cnf.assert_lit(if (v >> i) & 1 == 1 { l } else { !l });
                }
            }
            let (res, _) = cnf.solve();
            let m = res.model().expect("pinned inputs are satisfiable");
            let s = read_word(m, &frame.output(&p, "s"));
            let c = read_word(m, &frame.output(&p, "c"));
            assert_eq!(s | (c << 4), xv + yv, "{xv} + {yv}");
        }
    }

    #[test]
    fn impossible_output_is_unsat() {
        // 4-bit x + y with both inputs ≤ 15 can never carry out of bit
        // 4 while the low sum bits are all 1 — 31 is the max total.
        let p = adder_program();
        let mut cnf = Cnf::new();
        let frame = encode_combinational(&p, &mut cnf);
        for &l in &frame.output(&p, "s") {
            cnf.assert_lit(l);
        }
        cnf.assert_lit(frame.output(&p, "c")[0]);
        let (res, _) = cnf.solve();
        assert_eq!(res, SatResult::Unsat);
    }

    #[test]
    fn unrolled_shift_register_delays_by_k() {
        // x -> q1 -> q2, so frame t's output equals frame t-2's input.
        let mut b = Builder::new();
        let x = b.input_bus("x", 1);
        let q1 = b.dff(x[0], false);
        let q2 = b.dff(q1, true);
        b.output_bus("y", &[q2]);
        let p = SimProgram::compile(b.finish());
        let mut cnf = Cnf::new();
        let frames = encode_unrolled(&p, &mut cnf, 4, false);
        // Frame 0 output is the q2 reset value (true), frame 1 output
        // is q1's reset (false), regardless of inputs.
        let (res, _) = cnf.solve();
        let m = res.model().expect("free inputs are satisfiable").to_vec();
        assert!(lit_value(&m, frames[0].output(&p, "y")[0]));
        assert!(!lit_value(&m, frames[1].output(&p, "y")[0]));
        // Frame 3's output differing from frame 1's input is UNSAT.
        let mut q = cnf.clone();
        let want = q.xor(frames[1].input(&p, "x")[0], frames[3].output(&p, "y")[0]);
        q.assert_lit(want);
        let (res, _) = q.solve();
        assert_eq!(res, SatResult::Unsat);
    }

    #[test]
    fn tied_inputs_share_frame0_vars() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 2);
        let q0 = b.dff(x[0], false);
        let q1 = b.dff(x[1], false);
        b.output_bus("y", &[q0, q1]);
        let p = SimProgram::compile(b.finish());
        let mut cnf = Cnf::new();
        let frames = encode_unrolled(&p, &mut cnf, 3, true);
        for t in 1..3 {
            assert_eq!(frames[t].input(&p, "x"), frames[0].input(&p, "x"));
        }
        // With tied inputs, frame 2's output must equal the input.
        let mut q = cnf.clone();
        let miter = {
            let a = q.xor(frames[0].input(&p, "x")[0], frames[2].output(&p, "y")[0]);
            let b2 = q.xor(frames[0].input(&p, "x")[1], frames[2].output(&p, "y")[1]);
            q.or(a, b2)
        };
        q.assert_lit(miter);
        let (res, _) = q.solve();
        assert_eq!(res, SatResult::Unsat);
    }

    #[test]
    fn encoding_agrees_with_simulator_on_a_mixed_netlist() {
        use hwperm_logic::Simulator;
        let build = || {
            let mut b = Builder::new();
            let x = b.input_bus("x", 3);
            let y = b.input_bus("y", 3);
            let t = b.constant(true);
            let n0 = b.not(x[0]);
            let a0 = b.and(n0, y[0]);
            let o0 = b.or(a0, x[1]);
            let x0 = b.xor(o0, y[1]);
            let m0 = b.mux(x[2], x0, t);
            let m1 = b.mux(y[2], m0, a0);
            b.output_bus("z", &[x0, m0, m1]);
            b.finish()
        };
        let p = SimProgram::compile(build());
        let mut sim = Simulator::new(build());
        for xv in 0..8u64 {
            for yv in 0..8u64 {
                let mut cnf = Cnf::new();
                let frame = encode_combinational(&p, &mut cnf);
                for (bits, v) in [(frame.input(&p, "x"), xv), (frame.input(&p, "y"), yv)] {
                    for (i, &l) in bits.iter().enumerate() {
                        cnf.assert_lit(if (v >> i) & 1 == 1 { l } else { !l });
                    }
                }
                let (res, _) = cnf.solve();
                let m = res.model().expect("sat");
                sim.set_input_u64("x", xv);
                sim.set_input_u64("y", yv);
                sim.eval();
                let want = sim.read_output("z").to_u64().unwrap();
                assert_eq!(read_word(m, &frame.output(&p, "z")), want, "x={xv} y={yv}");
            }
        }
    }
}
