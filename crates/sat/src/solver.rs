//! A conflict-driven clause-learning (CDCL) SAT solver in safe Rust.
//!
//! The design is the classic MiniSat architecture, sized for the CNF
//! instances this workspace produces (Tseitin lowerings of permutation
//! circuits plus table/miter constraints — hundreds of thousands of
//! clauses, input spaces of at most a few hundred thousand points):
//!
//! - **Two-watched-literal propagation** with blocker literals, over a
//!   flat literal arena (no per-clause allocation).
//! - **First-UIP clause learning** with non-chronological backjumping.
//! - **VSIDS-style variable activity** (exponential decay, indexed
//!   max-heap) with **phase saving** for decision polarity.
//! - **Luby-sequence restarts**.
//! - **Conflict budgets**: a capped [`Solver::solve_budgeted`] run
//!   returns [`SatResult::Unknown`] instead of looping forever, which
//!   is what lets the lint engine escalate-then-skip explicitly rather
//!   than hang.
//!
//! Learned clauses are kept for the lifetime of the solver (no clause
//! database reduction): the bounded instances here exhaust their input
//! spaces long before memory pressure matters, and keeping every
//! learned clause makes runs deterministic.

use std::fmt;

/// A propositional variable, densely numbered from 0.
pub type Var = u32;

/// A literal: a variable with a polarity, packed as `var << 1 | neg`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    #[inline]
    pub fn positive(var: Var) -> Lit {
        Lit(var << 1)
    }

    /// The negative literal of `var`.
    #[inline]
    pub fn negative(var: Var) -> Lit {
        Lit((var << 1) | 1)
    }

    /// A literal of `var` with the given polarity (`negated == true`
    /// for `¬var`).
    #[inline]
    pub fn new(var: Var, negated: bool) -> Lit {
        Lit((var << 1) | negated as u32)
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        self.0 >> 1
    }

    /// `true` iff this is the negative literal.
    #[inline]
    pub fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// Dense code (`var << 1 | neg`), usable as an array index.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negated() {
            write!(f, "!x{}", self.var())
        } else {
            write!(f, "x{}", self.var())
        }
    }
}

/// Outcome of a solver run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable; the model assigns every variable (index = `Var`).
    Sat(Vec<bool>),
    /// Proven unsatisfiable.
    Unsat,
    /// The conflict budget ran out before a verdict.
    Unknown,
}

impl SatResult {
    /// The model, if the result is `Sat`.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SatResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// Search statistics, cumulative over the solver's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions taken.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Clauses learned.
    pub learned: u64,
    /// Restarts performed.
    pub restarts: u64,
}

/// Ternary assignment value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    Undef,
    True,
    False,
}

impl Value {
    #[inline]
    fn from_bool(b: bool) -> Value {
        if b {
            Value::True
        } else {
            Value::False
        }
    }
}

/// Clause header into the flat literal arena.
#[derive(Debug, Clone, Copy)]
struct Clause {
    start: u32,
    len: u32,
}

/// Watcher entry: the clause plus a blocker literal whose truth lets
/// propagation skip the clause without touching the arena.
#[derive(Debug, Clone, Copy)]
struct Watch {
    clause: u32,
    blocker: Lit,
}

const NO_REASON: u32 = u32::MAX;
const RESTART_BASE: u64 = 128;

/// The CDCL solver. Add variables and clauses, then call
/// [`Solver::solve`] or [`Solver::solve_budgeted`]. Clauses must all be
/// added before solving (the solver is not incremental).
#[derive(Debug, Default)]
pub struct Solver {
    // Clause storage.
    arena: Vec<Lit>,
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>, // indexed by Lit::code
    // Assignment state.
    assigns: Vec<Value>,
    level: Vec<u32>,
    reason: Vec<u32>, // clause index, NO_REASON for decisions/units
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    // Branching state.
    activity: Vec<f64>,
    var_inc: f64,
    heap: Vec<Var>,
    heap_pos: Vec<i32>, // -1 when not in heap
    polarity: Vec<bool>,
    // Scratch.
    seen: Vec<bool>,
    // Status.
    unsat: bool,
    stats: SolverStats,
}

impl Solver {
    /// An empty solver with no variables or clauses.
    pub fn new() -> Solver {
        Solver {
            var_inc: 1.0,
            ..Solver::default()
        }
    }

    /// Allocates a fresh variable and returns it.
    pub fn new_var(&mut self) -> Var {
        let v = self.assigns.len() as Var;
        self.assigns.push(Value::Undef);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.polarity.push(false);
        self.seen.push(false);
        self.heap_pos.push(-1);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap_insert(v);
        v
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of problem clauses added (not counting learned clauses).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len() - self.stats.learned as usize
    }

    /// Search statistics so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Adds a clause (a disjunction of literals). Duplicate literals
    /// are removed; tautologies are dropped; the empty clause marks the
    /// instance unsatisfiable.
    ///
    /// # Panics
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        debug_assert!(self.trail_lim.is_empty(), "clauses must precede solving");
        if self.unsat {
            return;
        }
        // Normalize: sort, dedupe, drop tautologies and false constants
        // (level-0 falsified literals), skip satisfied clauses.
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            assert!(
                (l.var() as usize) < self.assigns.len(),
                "literal {l:?} references an unallocated variable"
            );
            match self.lit_value(l) {
                Value::True => return, // already satisfied at level 0
                Value::False => continue,
                Value::Undef => c.push(l),
            }
        }
        c.sort_unstable();
        c.dedup();
        if c.windows(2).any(|w| w[0] == !w[1]) {
            return; // tautology
        }
        match c.len() {
            0 => self.unsat = true,
            1 => {
                // Level-0 unit: enqueue now; contradiction with a prior
                // unit surfaces as an immediate conflict in solve().
                if self.lit_value(c[0]) == Value::False {
                    self.unsat = true;
                } else if self.lit_value(c[0]) == Value::Undef {
                    self.enqueue(c[0], NO_REASON);
                }
            }
            _ => {
                self.attach(&c);
            }
        }
    }

    /// Stores a (pre-normalized, length ≥ 2) clause and watches its
    /// first two literals. Returns the clause index.
    fn attach(&mut self, c: &[Lit]) -> u32 {
        let idx = self.clauses.len() as u32;
        let start = self.arena.len() as u32;
        self.arena.extend_from_slice(c);
        self.clauses.push(Clause {
            start,
            len: c.len() as u32,
        });
        self.watches[(!c[0]).code()].push(Watch {
            clause: idx,
            blocker: c[1],
        });
        self.watches[(!c[1]).code()].push(Watch {
            clause: idx,
            blocker: c[0],
        });
        idx
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> Value {
        match self.assigns[l.var() as usize] {
            Value::Undef => Value::Undef,
            Value::True => {
                if l.is_negated() {
                    Value::False
                } else {
                    Value::True
                }
            }
            Value::False => {
                if l.is_negated() {
                    Value::True
                } else {
                    Value::False
                }
            }
        }
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    #[inline]
    fn enqueue(&mut self, l: Lit, reason: u32) {
        let v = l.var() as usize;
        debug_assert_eq!(self.assigns[v], Value::Undef);
        self.assigns[v] = Value::from_bool(!l.is_negated());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation. Returns the conflicting clause index, if any.
    fn propagate(&mut self) -> Option<u32> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // Visit clauses watching ¬p (now false). The list is taken
            // out so the arena and other watch lists stay borrowable.
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut kept = 0usize;
            let mut i = 0usize;
            'watches: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.lit_value(w.blocker) == Value::True {
                    ws[kept] = w;
                    kept += 1;
                    continue;
                }
                let cl = self.clauses[w.clause as usize];
                let (start, len) = (cl.start as usize, cl.len as usize);
                // Ensure the false watched literal sits at slot 1.
                if self.arena[start] == !p {
                    self.arena.swap(start, start + 1);
                }
                let first = self.arena[start];
                if first != w.blocker && self.lit_value(first) == Value::True {
                    ws[kept] = Watch {
                        clause: w.clause,
                        blocker: first,
                    };
                    kept += 1;
                    continue;
                }
                // Look for a non-false literal to watch instead.
                for k in 2..len {
                    let l = self.arena[start + k];
                    if self.lit_value(l) != Value::False {
                        self.arena.swap(start + 1, start + k);
                        self.watches[(!l).code()].push(Watch {
                            clause: w.clause,
                            blocker: first,
                        });
                        continue 'watches;
                    }
                }
                // Clause is unit or conflicting under the trail.
                ws[kept] = Watch {
                    clause: w.clause,
                    blocker: first,
                };
                kept += 1;
                if self.lit_value(first) == Value::False {
                    // Conflict: keep the remaining watchers, stop.
                    while i < ws.len() {
                        ws[kept] = ws[i];
                        kept += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(w.clause);
                } else {
                    self.enqueue(first, w.clause);
                }
            }
            ws.truncate(kept);
            self.watches[p.code()] = ws;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    /// First-UIP conflict analysis. Returns the learned clause (with
    /// the asserting literal at slot 0 and a highest-level literal at
    /// slot 1) and the backjump level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::positive(0)]; // slot 0 patched below
        let mut path = 0u32;
        let mut index = self.trail.len();
        let mut p: Option<Lit> = None;
        loop {
            let cl = self.clauses[confl as usize];
            let (start, len) = (cl.start as usize, cl.len as usize);
            // For the conflict clause consider every literal; for a
            // reason clause skip slot 0 (the propagated literal).
            let skip = usize::from(p.is_some());
            for k in skip..len {
                let q = self.arena[start + k];
                let v = q.var() as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump(q.var());
                    if self.level[v] >= self.decision_level() {
                        path += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail back to the next marked literal.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var() as usize] {
                    break;
                }
            }
            let q = self.trail[index];
            self.seen[q.var() as usize] = false;
            path -= 1;
            if path == 0 {
                learnt[0] = !q;
                break;
            }
            confl = self.reason[q.var() as usize];
            debug_assert_ne!(confl, NO_REASON);
            p = Some(q);
        }
        for l in &learnt[1..] {
            self.seen[l.var() as usize] = false;
        }
        // Backjump to the second-highest decision level in the clause.
        let back_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_k = 1;
            for k in 2..learnt.len() {
                if self.level[learnt[k].var() as usize] > self.level[learnt[max_k].var() as usize] {
                    max_k = k;
                }
            }
            learnt.swap(1, max_k);
            self.level[learnt[1].var() as usize]
        };
        (learnt, back_level)
    }

    /// Undoes the trail down to `target` decision level, saving phases.
    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let keep = self.trail_lim[target as usize];
        for k in (keep..self.trail.len()).rev() {
            let l = self.trail[k];
            let v = l.var() as usize;
            self.polarity[v] = !l.is_negated();
            self.assigns[v] = Value::Undef;
            self.reason[v] = NO_REASON;
            self.heap_insert(l.var());
        }
        self.trail.truncate(keep);
        self.trail_lim.truncate(target as usize);
        self.qhead = keep;
    }

    /// Solves without a conflict budget (runs to a verdict).
    pub fn solve(&mut self) -> SatResult {
        self.solve_budgeted(u64::MAX)
    }

    /// Solves with a conflict budget; returns
    /// [`SatResult::Unknown`] once `max_conflicts` conflicts have been
    /// spent in this call.
    pub fn solve_budgeted(&mut self, max_conflicts: u64) -> SatResult {
        if self.unsat {
            return SatResult::Unsat;
        }
        let start_conflicts = self.stats.conflicts;
        let mut restart_at = self.stats.conflicts + RESTART_BASE * luby(self.stats.restarts + 1);
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return SatResult::Unsat;
                }
                let (learnt, back_level) = self.analyze(confl);
                self.cancel_until(back_level);
                let reason = if learnt.len() == 1 {
                    NO_REASON
                } else {
                    self.stats.learned += 1;
                    self.attach(&learnt)
                };
                self.enqueue(learnt[0], reason);
                self.decay();
                if self.stats.conflicts - start_conflicts >= max_conflicts {
                    self.cancel_until(0);
                    return SatResult::Unknown;
                }
                if self.stats.conflicts >= restart_at {
                    self.stats.restarts += 1;
                    restart_at =
                        self.stats.conflicts + RESTART_BASE * luby(self.stats.restarts + 1);
                    self.cancel_until(0);
                }
            } else {
                match self.pick_branch_var() {
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(Lit::new(v, !self.polarity[v as usize]), NO_REASON);
                    }
                    None => {
                        let model = self
                            .assigns
                            .iter()
                            .map(|&a| a == Value::True)
                            .collect::<Vec<bool>>();
                        self.cancel_until(0);
                        return SatResult::Sat(model);
                    }
                }
            }
        }
    }

    // ---- VSIDS machinery ------------------------------------------

    fn bump(&mut self, v: Var) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.heap_pos[v as usize] >= 0 {
            self.heap_sift_up(self.heap_pos[v as usize] as usize);
        }
    }

    fn decay(&mut self) {
        self.var_inc *= 1.0 / 0.95;
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap_pop() {
            if self.assigns[v as usize] == Value::Undef {
                return Some(v);
            }
        }
        None
    }

    // Indexed binary max-heap keyed on activity.

    fn heap_insert(&mut self, v: Var) {
        if self.heap_pos[v as usize] >= 0 {
            return;
        }
        self.heap_pos[v as usize] = self.heap.len() as i32;
        self.heap.push(v);
        self.heap_sift_up(self.heap.len() - 1);
    }

    fn heap_pop(&mut self) -> Option<Var> {
        let top = *self.heap.first()?;
        self.heap_pos[top as usize] = -1;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last as usize] = 0;
            self.heap_sift_down(0);
        }
        Some(top)
    }

    fn heap_sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.activity[self.heap[i] as usize] <= self.activity[self.heap[parent] as usize] {
                break;
            }
            self.heap_swap(i, parent);
            i = parent;
        }
    }

    fn heap_sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len()
                && self.activity[self.heap[l] as usize] > self.activity[self.heap[best] as usize]
            {
                best = l;
            }
            if r < self.heap.len()
                && self.activity[self.heap[r] as usize] > self.activity[self.heap[best] as usize]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.heap_pos[self.heap[i] as usize] = i as i32;
        self.heap_pos[self.heap[j] as usize] = j as i32;
    }
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2,
/// 4, 8, … (`i` is 1-based).
fn luby(mut i: u64) -> u64 {
    // Strip complete subsequences until i lands exactly on the last
    // element of one (which is 2^(k-1)).
    loop {
        let mut k = 1u32;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: i32) -> Lit {
        if i > 0 {
            Lit::positive(i as u32 - 1)
        } else {
            Lit::negative((-i) as u32 - 1)
        }
    }

    fn solver_with(nvars: usize, clauses: &[&[i32]]) -> Solver {
        let mut s = Solver::new();
        for _ in 0..nvars {
            s.new_var();
        }
        for c in clauses {
            let lits: Vec<Lit> = c.iter().map(|&i| lit(i)).collect();
            s.add_clause(&lits);
        }
        s
    }

    #[test]
    fn luby_prefix() {
        let want = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &w) in want.iter().enumerate() {
            assert_eq!(luby(i as u64 + 1), w, "luby({})", i + 1);
        }
    }

    #[test]
    fn empty_instance_is_sat() {
        assert!(matches!(Solver::new().solve(), SatResult::Sat(m) if m.is_empty()));
    }

    #[test]
    fn unit_clauses_propagate() {
        let mut s = solver_with(2, &[&[1], &[-1, 2]]);
        match s.solve() {
            SatResult::Sat(m) => assert!(m[0] && m[1]),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut s = solver_with(1, &[&[1], &[-1]]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn simple_conflict_forces_assignment() {
        // (a ∨ b)(a ∨ ¬b) forces a.
        let mut s = solver_with(2, &[&[1, 2], &[1, -2]]);
        match s.solve() {
            SatResult::Sat(m) => assert!(m[0]),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    /// Encodes pigeonhole(pigeons, holes) — p[i][j]: pigeon i sits in
    /// hole j; each pigeon somewhere, no two pigeons share a hole —
    /// returning the variable grid.
    fn encode_pigeonhole(s: &mut Solver, pigeons: usize, holes: usize) -> Vec<Vec<u32>> {
        let mut v = vec![vec![0u32; holes]; pigeons];
        for row in v.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var();
            }
        }
        for row in &v {
            let c: Vec<Lit> = row.iter().map(|&x| Lit::positive(x)).collect();
            s.add_clause(&c);
        }
        for j in 0..holes {
            for (i1, row1) in v.iter().enumerate() {
                for row2 in &v[i1 + 1..] {
                    s.add_clause(&[Lit::negative(row1[j]), Lit::negative(row2[j])]);
                }
            }
        }
        v
    }

    #[test]
    fn pigeonhole_4_into_3_is_unsat() {
        // Classic small UNSAT instance that genuinely exercises
        // learning and backjumping.
        let mut s = Solver::new();
        encode_pigeonhole(&mut s, 4, 3);
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.stats().conflicts > 0, "search actually happened");
    }

    #[test]
    fn pigeonhole_3_into_3_model_is_a_matching() {
        let (pigeons, holes) = (3, 3);
        let mut s = Solver::new();
        let v = encode_pigeonhole(&mut s, pigeons, holes);
        let SatResult::Sat(m) = s.solve() else {
            panic!("3 pigeons fit in 3 holes");
        };
        for j in 0..holes {
            let occupants = (0..pigeons).filter(|&i| m[v[i][j] as usize]).count();
            assert!(occupants <= 1, "hole {j} double-booked");
        }
        for row in &v {
            assert!(row.iter().any(|&x| m[x as usize]), "homeless pigeon");
        }
    }

    #[test]
    fn budget_zero_returns_unknown_on_hard_instance() {
        // Pigeonhole 6-into-5 needs many conflicts; a tiny budget must
        // give up with Unknown rather than a wrong verdict.
        let mut s = Solver::new();
        encode_pigeonhole(&mut s, 6, 5);
        assert_eq!(s.solve_budgeted(1), SatResult::Unknown);
        // And with the budget lifted the same solver finishes the job.
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn tautologies_and_duplicates_are_harmless() {
        let mut s = solver_with(2, &[&[1, -1], &[2, 2, 2]]);
        match s.solve() {
            SatResult::Sat(m) => assert!(m[1]),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn xor_chain_parity_is_respected() {
        // x1 ⊕ x2 = 1, x2 ⊕ x3 = 1, x1 ⊕ x3 = 1 is UNSAT (odd cycle).
        let xor_clauses: &[&[i32]] = &[&[1, 2], &[-1, -2], &[2, 3], &[-2, -3], &[1, 3], &[-1, -3]];
        let mut s = solver_with(3, xor_clauses);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = solver_with(2, &[&[1, 2], &[1, -2], &[-1, 2]]);
        let _ = s.solve();
        assert!(s.stats().decisions + s.stats().propagations > 0);
    }
}
