#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Multi-pass static analysis (lint) for generated netlists.
//!
//! The generators in `hwperm-circuits` emit netlists by construction
//! rules (topological creation order, builder-folded constants, one-hot
//! MUX routing). This crate checks those rules *after the fact*, so
//! that bugs in a generator — or a deliberately mutated netlist — are
//! caught as machine-readable diagnostics instead of downstream
//! simulation mismatches.
//!
//! Passes, in execution order:
//!
//! | lint id          | default severity | what it finds |
//! |------------------|------------------|---------------|
//! | `structure`      | Error | malformed references, ports mapping to the wrong gates (delegates to [`Netlist::check_structure`], so `validate()` and the linter can never disagree) |
//! | `port-name`      | Error | duplicate, empty, or zero-width port names |
//! | `floating-input` | Error | `Input` gates read by logic but driven by no input port |
//! | `comb-cycle`     | Error | combinational cycles, found by Tarjan SCC over the combinational subgraph (sound on post-[`Netlist::with_gate_replaced`] graphs, where creation order no longer implies topological order) |
//! | `one-hot`        | Error | recorded MUX select banks ([`Netlist::one_hot_banks`]) that are *not* exactly one-hot, proven or refuted by `hwperm-verify`'s bounded cone BDD query — with SAT escalation when the BDD budget is exhausted, and an explicit `skipped` finding when every budget runs out (never a silent pass) |
//! | `range-dont-care`| Error | banks the one-hot pass refuted (or skipped) re-queried under the configured input-range contract (`port < bound`, see [`LintConfig::with_range_bound`]): a violation reachable only by out-of-range inputs is range don't-care (Info); one reachable in range stays an error |
//! | `unused-input`   | Warn  | input port bits that fan out nowhere |
//! | `dead-gate`      | Warn  | gates whose value can never reach an output port |
//! | `const-fold`     | Warn  | gates the builder's folding rules would have simplified away (e.g. `And(x, 0)`) |
//! | `dff-rank`       | Warn  | combinational gates mixing pipeline ranks (a path crossing register-rank boundaries without a register) |
//! | `dup-gate`       | Info  | structurally identical gates (missed CSE) |
//! | `const-output`   | Info  | output port bits tied to constants |
//!
//! Every lint can be suppressed or promoted per run via [`LintConfig`].
//! [`LintReport`] renders human-readable text ([`std::fmt::Display`])
//! or JSON ([`LintReport::to_json`]); `hwperm lint` in the CLI wraps
//! both.

use hwperm_logic::{Gate, NetId, Netlist, StructuralIssue};
use hwperm_verify::{
    check_one_hot_bank_escalated, check_one_hot_bank_sat, OneHotStatus, DEFAULT_NODE_BUDGET,
    DEFAULT_SAT_CONFLICT_BUDGET,
};
use std::collections::HashMap;
use std::fmt;

/// Identifies one lint check. `Display` renders the kebab-case id used
/// in configs, JSON output and CLI flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintId {
    /// Malformed gate/port references (see [`Netlist::check_structure`]).
    Structure,
    /// Duplicate, empty, or zero-width port names.
    PortName,
    /// `Input` gates read by logic but owned by no input port.
    FloatingInput,
    /// Combinational cycles.
    CombCycle,
    /// Recorded one-hot select banks that are not exactly one-hot.
    OneHot,
    /// One-hot violations re-judged under the input-range contract:
    /// reachable in range is an error, confined to the don't-care
    /// region is advisory.
    RangeDontCare,
    /// Input port bits with no fanout.
    UnusedInput,
    /// Gates unreachable from any output port.
    DeadGate,
    /// Gates foldable by the builder's simplification rules.
    ConstFold,
    /// Combinational gates mixing pipeline register ranks.
    DffRank,
    /// Structurally duplicate gates (missed CSE).
    DupGate,
    /// Output port bits tied to constants.
    ConstOutput,
}

/// All lints, in pass execution order.
pub const ALL_LINTS: [LintId; 12] = [
    LintId::Structure,
    LintId::PortName,
    LintId::FloatingInput,
    LintId::CombCycle,
    LintId::OneHot,
    LintId::RangeDontCare,
    LintId::UnusedInput,
    LintId::DeadGate,
    LintId::ConstFold,
    LintId::DffRank,
    LintId::DupGate,
    LintId::ConstOutput,
];

impl LintId {
    /// The kebab-case id.
    pub fn as_str(self) -> &'static str {
        match self {
            LintId::Structure => "structure",
            LintId::PortName => "port-name",
            LintId::FloatingInput => "floating-input",
            LintId::CombCycle => "comb-cycle",
            LintId::OneHot => "one-hot",
            LintId::RangeDontCare => "range-dont-care",
            LintId::UnusedInput => "unused-input",
            LintId::DeadGate => "dead-gate",
            LintId::ConstFold => "const-fold",
            LintId::DffRank => "dff-rank",
            LintId::DupGate => "dup-gate",
            LintId::ConstOutput => "const-output",
        }
    }

    /// Parses a kebab-case id.
    pub fn parse(s: &str) -> Option<LintId> {
        ALL_LINTS.into_iter().find(|l| l.as_str() == s)
    }

    /// The built-in severity before any [`LintConfig`] override.
    pub fn default_severity(self) -> Severity {
        match self {
            LintId::Structure
            | LintId::PortName
            | LintId::FloatingInput
            | LintId::CombCycle
            | LintId::OneHot
            | LintId::RangeDontCare => Severity::Error,
            LintId::UnusedInput | LintId::DeadGate | LintId::ConstFold | LintId::DffRank => {
                Severity::Warn
            }
            LintId::DupGate | LintId::ConstOutput => Severity::Info,
        }
    }
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Diagnostic severity, ordered `Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; never fails a lint run.
    Info,
    /// Suspicious but functional.
    Warn,
    /// The netlist violates a construction invariant.
    Error,
}

impl Severity {
    /// Lower-case label (`"error"`, `"warn"`, `"info"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a lint id, a severity, a message, and the offending
/// nets and/or ports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: LintId,
    /// Severity after config overrides.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Offending net indices (capped per diagnostic; see message).
    pub nets: Vec<usize>,
    /// Offending port names.
    pub ports: Vec<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.lint, self.message)?;
        if !self.nets.is_empty() {
            let nets: Vec<String> = self.nets.iter().map(|n| n.to_string()).collect();
            write!(f, " (nets {})", nets.join(", "))?;
        }
        if !self.ports.is_empty() {
            write!(f, " (ports {})", self.ports.join(", "))?;
        }
        Ok(())
    }
}

/// Per-lint allow/deny configuration plus analysis budgets.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// BDD node budget for each one-hot bank query.
    pub node_budget: usize,
    /// CDCL conflict budget for each SAT escalation or range query.
    pub sat_conflict_budget: u64,
    /// Input-range contract `(input port name, exclusive bound)` for
    /// the `range-dont-care` pass; `None` disables the pass. The CLI
    /// supplies the converter contract (`"index"`, `n!`).
    pub range_bound: Option<(String, u64)>,
    /// `None` = suppressed; `Some(sev)` = overridden severity.
    overrides: HashMap<LintId, Option<Severity>>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            node_budget: DEFAULT_NODE_BUDGET,
            sat_conflict_budget: DEFAULT_SAT_CONFLICT_BUDGET,
            range_bound: None,
            overrides: HashMap::new(),
        }
    }
}

impl LintConfig {
    /// The default configuration (all lints at built-in severities).
    pub fn new() -> Self {
        Self::default()
    }

    /// Suppresses a lint entirely.
    pub fn allow(mut self, lint: LintId) -> Self {
        self.overrides.insert(lint, None);
        self
    }

    /// Promotes a lint to `Error`.
    pub fn deny(mut self, lint: LintId) -> Self {
        self.overrides.insert(lint, Some(Severity::Error));
        self
    }

    /// Sets an explicit severity for a lint.
    pub fn set_severity(mut self, lint: LintId, severity: Severity) -> Self {
        self.overrides.insert(lint, Some(severity));
        self
    }

    /// Sets the CDCL conflict budget for SAT escalation and range
    /// queries.
    pub fn with_sat_conflict_budget(mut self, conflicts: u64) -> Self {
        self.sat_conflict_budget = conflicts;
        self
    }

    /// Declares the input-range contract `port < bound`, enabling the
    /// `range-dont-care` pass.
    pub fn with_range_bound(mut self, port: impl Into<String>, bound: u64) -> Self {
        self.range_bound = Some((port.into(), bound));
        self
    }

    /// The effective severity of a lint, or `None` if suppressed.
    pub fn severity(&self, lint: LintId) -> Option<Severity> {
        match self.overrides.get(&lint) {
            Some(over) => *over,
            None => Some(lint.default_severity()),
        }
    }
}

/// The outcome of a lint run: all diagnostics, pass order preserved.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings that survived the config filter.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Findings at a given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// `true` iff the run produced no `Error` diagnostics — the bar the
    /// generator test suites hold every family to.
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Diagnostics from one lint.
    pub fn of(&self, lint: LintId) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.lint == lint)
    }

    /// Renders the report as a single JSON object (hand-rolled — the
    /// workspace is offline and carries no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"errors\":{},\"warnings\":{},\"infos\":{},\"diagnostics\":[",
            self.error_count(),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"lint\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\"nets\":[{}],\"ports\":[{}]}}",
                d.lint,
                d.severity,
                json_escape(&d.message),
                d.nets
                    .iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
                d.ports
                    .iter()
                    .map(|p| format!("\"{}\"", json_escape(p)))
                    .collect::<Vec<_>>()
                    .join(",")
            ));
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        writeln!(
            f,
            "{} error(s), {} warning(s), {} info(s)",
            self.error_count(),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// How many offending nets a single diagnostic lists before truncating.
const NET_LIST_CAP: usize = 8;

/// Runs every pass over `netlist` under the default [`LintConfig`].
pub fn lint_netlist(netlist: &Netlist) -> LintReport {
    lint_netlist_with(netlist, &LintConfig::default())
}

/// Runs every pass over `netlist` under an explicit config.
pub fn lint_netlist_with(netlist: &Netlist, config: &LintConfig) -> LintReport {
    Linter::new(netlist, config).run()
}

struct Linter<'a> {
    netlist: &'a Netlist,
    config: &'a LintConfig,
    report: LintReport,
    /// Set when the structure pass saw out-of-range references: the
    /// graph passes would index out of bounds, so they are skipped.
    out_of_range: bool,
    /// Banks the one-hot pass could not prove unconditionally
    /// (refuted or skipped), queued for the range-don't-care pass.
    unproved_banks: Vec<(usize, Vec<NetId>)>,
}

impl<'a> Linter<'a> {
    fn new(netlist: &'a Netlist, config: &'a LintConfig) -> Self {
        Linter {
            netlist,
            config,
            report: LintReport::default(),
            out_of_range: false,
            unproved_banks: Vec::new(),
        }
    }

    fn emit(&mut self, lint: LintId, message: String, nets: Vec<usize>, ports: Vec<String>) {
        if let Some(severity) = self.config.severity(lint) {
            self.report.diagnostics.push(Diagnostic {
                lint,
                severity,
                message,
                nets,
                ports,
            });
        }
    }

    /// Like [`Self::emit`], but never above `cap` — for findings that
    /// report an *unknown* or advisory condition under a lint whose
    /// configured severity reflects its refutation case.
    fn emit_capped(
        &mut self,
        lint: LintId,
        cap: Severity,
        message: String,
        nets: Vec<usize>,
        ports: Vec<String>,
    ) {
        if let Some(severity) = self.config.severity(lint) {
            self.report.diagnostics.push(Diagnostic {
                lint,
                severity: severity.min(cap),
                message,
                nets,
                ports,
            });
        }
    }

    fn run(mut self) -> LintReport {
        self.pass_structure();
        if !self.out_of_range {
            self.pass_comb_cycle();
            self.pass_one_hot();
            self.pass_range_dont_care();
            self.pass_unused_input();
            self.pass_dead_gate();
            self.pass_const_fold();
            self.pass_dff_rank();
            self.pass_dup_gate();
            self.pass_const_output();
        }
        self.report
    }

    /// Structure, port-name and floating-input lints, all derived from
    /// the single [`Netlist::check_structure`] enumeration.
    fn pass_structure(&mut self) {
        for issue in self.netlist.check_structure() {
            let message = issue.to_string();
            match issue {
                StructuralIssue::OutOfRangeRef { gate, .. } => {
                    self.out_of_range = true;
                    self.emit(LintId::Structure, message, vec![gate], vec![]);
                }
                StructuralIssue::PortNetOutOfRange { port, .. } => {
                    self.out_of_range = true;
                    self.emit(LintId::Structure, message, vec![], vec![port]);
                }
                StructuralIssue::ForwardRef { gate, .. } => {
                    self.emit(LintId::Structure, message, vec![gate], vec![]);
                }
                StructuralIssue::InputPortNonInput { port, net, .. } => {
                    self.emit(LintId::Structure, message, vec![net.index()], vec![port]);
                }
                StructuralIssue::SharedInputBit { net, port } => {
                    self.emit(LintId::Structure, message, vec![net.index()], vec![port]);
                }
                StructuralIssue::DuplicatePortName { name, .. } => {
                    self.emit(LintId::PortName, message, vec![], vec![name]);
                }
                StructuralIssue::ZeroWidthPort { name, .. } => {
                    self.emit(LintId::PortName, message, vec![], vec![name]);
                }
                StructuralIssue::EmptyPortName { .. } => {
                    self.emit(LintId::PortName, message, vec![], vec![]);
                }
                StructuralIssue::OrphanInputGate { net } => {
                    self.emit(LintId::FloatingInput, message, vec![net.index()], vec![]);
                }
            }
        }
    }

    /// Combinational cycles via iterative Tarjan SCC over the
    /// combinational subgraph (a DFF output is a sequential boundary, so
    /// its fanin edge is not followed). Creation order proves acyclicity
    /// for builder output, but `with_gate_replaced` can produce forward
    /// references — this pass distinguishes a harmless forward wire from
    /// a genuine cycle.
    fn pass_comb_cycle(&mut self) {
        let gates = self.netlist.gates();
        let n = gates.len();
        // Tarjan, iteratively (netlists reach 10^5 gates; recursion
        // would overflow). Successors of net v: the fanins of v's gate,
        // if v is combinational.
        let mut index = vec![u32::MAX; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0u32;
        let mut sccs: Vec<Vec<usize>> = Vec::new();
        // Explicit DFS frames: (node, next-successor cursor).
        let mut frames: Vec<(usize, usize)> = Vec::new();
        let succs = |v: usize| -> Vec<usize> {
            if gates[v].is_combinational() {
                gates[v].fanin().map(|f| f.index()).collect()
            } else {
                Vec::new()
            }
        };
        for root in 0..n {
            if index[root] != u32::MAX {
                continue;
            }
            frames.push((root, 0));
            while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
                if *cursor == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                let ss = succs(v);
                if let Some(&w) = ss.get(*cursor) {
                    *cursor += 1;
                    if index[w] == u32::MAX {
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    // v is done; pop and propagate lowlink.
                    if low[v] == index[v] {
                        let mut scc = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            scc.push(w);
                            if w == v {
                                break;
                            }
                        }
                        // Single nodes are cycles only if self-looping.
                        if scc.len() > 1 || succs(v).contains(&v) {
                            sccs.push(scc);
                        }
                    }
                    frames.pop();
                    if let Some(&mut (parent, _)) = frames.last_mut() {
                        low[parent] = low[parent].min(low[v]);
                    }
                }
            }
        }
        for mut scc in sccs {
            scc.sort_unstable();
            let total = scc.len();
            scc.truncate(NET_LIST_CAP);
            self.emit(
                LintId::CombCycle,
                format!("combinational cycle through {total} gate(s)"),
                scc,
                vec![],
            );
        }
    }

    /// Proves every recorded one-hot select bank exactly one-hot via
    /// `hwperm-verify`'s tiered query: structural, then bounded BDD,
    /// then SAT escalation when the node budget is exhausted.
    /// Refutations are errors; a check that exhausts *every* budget is
    /// reported as an explicit `skipped` finding (capped at Warn — the
    /// property is unknown, not false), never passed silently.
    fn pass_one_hot(&mut self) {
        for (bank_idx, bank) in self.netlist.one_hot_banks().iter().enumerate() {
            let result = check_one_hot_bank_escalated(
                self.netlist,
                bank,
                self.config.node_budget,
                self.config.sat_conflict_budget,
            );
            let nets: Vec<usize> = bank.iter().take(NET_LIST_CAP).map(|n| n.index()).collect();
            match result.status {
                OneHotStatus::ProvedStructural
                | OneHotStatus::ProvedBdd
                | OneHotStatus::ProvedSat => {}
                OneHotStatus::Refuted { assignment } => {
                    let witness: Vec<String> = assignment
                        .iter()
                        .take(NET_LIST_CAP)
                        .map(|(net, v)| format!("net {net}={}", u8::from(*v)))
                        .collect();
                    self.emit(
                        LintId::OneHot,
                        format!(
                            "select bank {bank_idx} ({} lines) is not one-hot; witness: {}",
                            bank.len(),
                            witness.join(", ")
                        ),
                        nets,
                        vec![],
                    );
                    self.unproved_banks.push((bank_idx, bank.clone()));
                }
                // The escalated checker never returns a bare
                // `BudgetExceeded`, but the match stays total: fold it
                // into the skipped report.
                OneHotStatus::BudgetExceeded { nodes } => {
                    let (bdd_nodes, sat_conflicts) = (nodes, self.config.sat_conflict_budget);
                    self.emit_capped(
                        LintId::OneHot,
                        Severity::Warn,
                        format!(
                            "select bank {bank_idx} ({} lines) skipped: unverified after \
                             BDD budget ({bdd_nodes} nodes) and SAT budget ({sat_conflicts} \
                             conflicts) were exhausted",
                            bank.len()
                        ),
                        nets,
                        vec![],
                    );
                    self.unproved_banks.push((bank_idx, bank.clone()));
                }
                OneHotStatus::Skipped {
                    bdd_nodes,
                    sat_conflicts,
                } => {
                    self.emit_capped(
                        LintId::OneHot,
                        Severity::Warn,
                        format!(
                            "select bank {bank_idx} ({} lines) skipped: unverified after \
                             BDD budget ({bdd_nodes} nodes) and SAT budget ({sat_conflicts} \
                             conflicts) were exhausted",
                            bank.len()
                        ),
                        nets,
                        vec![],
                    );
                    self.unproved_banks.push((bank_idx, bank.clone()));
                }
                OneHotStatus::ConeInvalid(why) => {
                    self.emit(
                        LintId::OneHot,
                        format!("select bank {bank_idx} has an invalid fanin cone: {why}"),
                        nets,
                        vec![],
                    );
                }
            }
        }
    }

    /// Range don't-care safety: every bank the one-hot pass could not
    /// prove unconditionally is re-queried by SAT under the configured
    /// input-range contract `port < bound`. A proof means the
    /// violation needs an out-of-range input — advisory (Info), the
    /// circuit is safe wherever the contract holds (the converter's
    /// index port only carries values below `n!`). A refutation is an
    /// in-range violation and keeps the configured (Error) severity.
    fn pass_range_dont_care(&mut self) {
        let Some((port_name, bound)) = self.config.range_bound.clone() else {
            return;
        };
        let banks = std::mem::take(&mut self.unproved_banks);
        if banks.is_empty() {
            return;
        }
        let Some(port) = self.netlist.input_port(&port_name) else {
            self.emit(
                LintId::RangeDontCare,
                format!("range contract references missing input port {port_name}"),
                vec![],
                vec![port_name],
            );
            return;
        };
        let port_nets = port.nets.clone();
        for (bank_idx, bank) in banks {
            let result = check_one_hot_bank_sat(
                self.netlist,
                &bank,
                Some((&port_nets, bound)),
                Some(self.config.sat_conflict_budget),
            );
            let nets: Vec<usize> = bank.iter().take(NET_LIST_CAP).map(|n| n.index()).collect();
            match result.status {
                OneHotStatus::ProvedStructural
                | OneHotStatus::ProvedBdd
                | OneHotStatus::ProvedSat => {
                    self.emit_capped(
                        LintId::RangeDontCare,
                        Severity::Info,
                        format!(
                            "select bank {bank_idx} is one-hot for all {port_name} < {bound}: \
                             remaining violations are range don't-care",
                        ),
                        nets,
                        vec![port_name.clone()],
                    );
                }
                OneHotStatus::Refuted { assignment } => {
                    let witness: Vec<String> = assignment
                        .iter()
                        .take(NET_LIST_CAP)
                        .map(|(net, v)| format!("net {net}={}", u8::from(*v)))
                        .collect();
                    self.emit(
                        LintId::RangeDontCare,
                        format!(
                            "select bank {bank_idx} is not one-hot even within \
                             {port_name} < {bound}; witness: {}",
                            witness.join(", ")
                        ),
                        nets,
                        vec![port_name.clone()],
                    );
                }
                OneHotStatus::Skipped { sat_conflicts, .. } => {
                    self.emit_capped(
                        LintId::RangeDontCare,
                        Severity::Warn,
                        format!(
                            "select bank {bank_idx} skipped: range query exhausted the SAT \
                             budget ({sat_conflicts} conflicts)",
                        ),
                        nets,
                        vec![port_name.clone()],
                    );
                }
                OneHotStatus::BudgetExceeded { .. } => {
                    let sat_conflicts = self.config.sat_conflict_budget;
                    self.emit_capped(
                        LintId::RangeDontCare,
                        Severity::Warn,
                        format!(
                            "select bank {bank_idx} skipped: range query exhausted the SAT \
                             budget ({sat_conflicts} conflicts)",
                        ),
                        nets,
                        vec![port_name.clone()],
                    );
                }
                OneHotStatus::ConeInvalid(why) => {
                    self.emit(
                        LintId::RangeDontCare,
                        format!("select bank {bank_idx} has an invalid fanin cone: {why}"),
                        nets,
                        vec![port_name.clone()],
                    );
                }
            }
        }
    }

    /// Input port bits with zero fanout.
    fn pass_unused_input(&mut self) {
        let fanout = self.netlist.fanout();
        for port in self.netlist.input_ports() {
            let unused: Vec<usize> = port
                .nets
                .iter()
                .enumerate()
                .filter(|(_, net)| fanout[net.index()] == 0)
                .map(|(bit, _)| bit)
                .collect();
            if !unused.is_empty() {
                let bits: Vec<String> = unused
                    .iter()
                    .take(NET_LIST_CAP)
                    .map(usize::to_string)
                    .collect();
                self.emit(
                    LintId::UnusedInput,
                    format!(
                        "input port {} has {} unused bit(s): [{}]",
                        port.name,
                        unused.len(),
                        bits.join(", ")
                    ),
                    unused
                        .iter()
                        .take(NET_LIST_CAP)
                        .map(|&b| port.nets[b].index())
                        .collect(),
                    vec![port.name.clone()],
                );
            }
        }
    }

    /// Gates whose value can never reach an output port (extends
    /// [`Netlist::live_mask`] with a per-kind summary). Synthesis sweeps
    /// these, but a generator emitting them is doing wasted work — the
    /// converter's subtractors, for instance, compute borrow bits that
    /// the narrowing index bus never reads.
    fn pass_dead_gate(&mut self) {
        let mut live = self.netlist.live_mask();
        // Recorded one-hot banks are assertion points: their member nets
        // are observed by the one-hot pass even when every mux consumer
        // folded away (e.g. a select line whose choice column is all
        // constant zero). Treat them as liveness roots so an asserted
        // digit line is not reported dead.
        let mut work: Vec<usize> = self
            .netlist
            .one_hot_banks()
            .iter()
            .flatten()
            .map(|n| n.index())
            .filter(|&i| i < live.len() && !live[i])
            .collect();
        while let Some(i) = work.pop() {
            if live[i] {
                continue;
            }
            live[i] = true;
            for f in self.netlist.gates()[i].fanin() {
                if !live[f.index()] {
                    work.push(f.index());
                }
            }
        }
        let dead: Vec<usize> = (0..self.netlist.len())
            .filter(|&i| !live[i] && self.netlist.gates()[i].is_combinational())
            .collect();
        if dead.is_empty() {
            return;
        }
        let total = dead.len();
        self.emit(
            LintId::DeadGate,
            format!("{total} combinational gate(s) unreachable from any output"),
            dead.into_iter().take(NET_LIST_CAP).collect(),
            vec![],
        );
    }

    /// Gates the builder's peephole rules would have folded: constant
    /// operands, idempotent or complementary operand pairs, `Mux` with a
    /// constant select or equal branches. Builder output contains none
    /// of these, so any hit means the netlist bypassed the builder.
    fn pass_const_fold(&mut self) {
        let gates = self.netlist.gates();
        let is_const = |n: hwperm_logic::NetId| matches!(gates[n.index()], Gate::Const(_));
        let complementary = |x: hwperm_logic::NetId, y: hwperm_logic::NetId| {
            gates[x.index()] == Gate::Not(y) || gates[y.index()] == Gate::Not(x)
        };
        for (i, g) in gates.iter().enumerate() {
            let foldable = match *g {
                Gate::Not(a) => is_const(a) || matches!(gates[a.index()], Gate::Not(_)),
                Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => {
                    is_const(a) || is_const(b) || a == b || complementary(a, b)
                }
                Gate::Mux { sel, a, b } => is_const(sel) || a == b || (is_const(a) && is_const(b)),
                Gate::Const(_) | Gate::Input | Gate::Dff { .. } => false,
            };
            if foldable {
                self.emit(
                    LintId::ConstFold,
                    format!("gate {i} ({g:?}) is foldable by builder rules"),
                    vec![i],
                    vec![],
                );
            }
        }
    }

    /// Pipeline rank discipline: assigns each net a register rank
    /// (inputs are rank 0, a DFF is one more than its data) and flags
    /// combinational gates whose fanins carry *different* defined ranks
    /// — a combinational path spanning a register-rank boundary, which
    /// breaks the "one stage per clock" contract of pipelined
    /// netlists. Nets in register feedback loops (LFSRs) never
    /// stabilise and are excluded, as are constants.
    fn pass_dff_rank(&mut self) {
        let gates = self.netlist.gates();
        let n = gates.len();
        let mut rank: Vec<Option<u32>> = vec![None; n];
        // Iterate to fixpoint. Feed-forward pipelines settle in two
        // sweeps (DFF data normally references earlier nets); feedback
        // loops would grow forever, so divergence is cut off and the
        // still-changing nets are left unranked.
        const MAX_SWEEPS: usize = 4;
        for _ in 0..MAX_SWEEPS {
            let mut changed = false;
            for i in 0..n {
                let new = match gates[i] {
                    Gate::Input => Some(0),
                    Gate::Const(_) => None, // rank-agnostic
                    Gate::Dff { d, .. } => rank[d.index()].map(|r| r + 1),
                    ref g => {
                        // Max over defined fanin ranks; fully undefined
                        // fanins leave the gate unranked.
                        g.fanin().filter_map(|f| rank[f.index()]).max()
                    }
                };
                if new.is_some() && new != rank[i] {
                    rank[i] = new;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // A rank that is still moving after the sweeps belongs to a
        // feedback loop; discard it rather than report phantom skew.
        let mut diverged = vec![false; n];
        for i in 0..n {
            let again = match gates[i] {
                Gate::Input => Some(0),
                Gate::Const(_) => None,
                Gate::Dff { d, .. } => rank[d.index()].map(|r| r + 1),
                ref g => g.fanin().filter_map(|f| rank[f.index()]).max(),
            };
            if again != rank[i] {
                diverged[i] = true;
            }
        }
        // Propagate divergence forward (and through DFF data edges).
        for _ in 0..2 {
            for i in 0..n {
                if gates[i].fanin().any(|f| diverged[f.index()]) {
                    diverged[i] = true;
                }
            }
        }
        let mut flagged = 0usize;
        let mut sample: Vec<usize> = Vec::new();
        for (i, g) in gates.iter().enumerate() {
            if !g.is_combinational() || diverged[i] {
                continue;
            }
            let ranks: Vec<u32> = g
                .fanin()
                .filter(|f| !diverged[f.index()])
                .filter_map(|f| rank[f.index()])
                .collect();
            if ranks.iter().any(|&r| r != ranks[0]) {
                flagged += 1;
                if sample.len() < NET_LIST_CAP {
                    sample.push(i);
                }
            }
        }
        if flagged > 0 {
            self.emit(
                LintId::DffRank,
                format!("{flagged} combinational gate(s) mix pipeline register ranks"),
                sample,
                vec![],
            );
        }
    }

    /// Structural CSE: two gates computing the same function of the
    /// same nets (commutative operands canonicalised). Advisory — the
    /// builder does not CSE, so generators may legitimately repeat
    /// small terms.
    fn pass_dup_gate(&mut self) {
        #[derive(PartialEq, Eq, Hash)]
        enum Key {
            Unary(u8, usize),
            Binary(u8, usize, usize),
            Mux(usize, usize, usize),
        }
        let mut seen: HashMap<Key, usize> = HashMap::new();
        let mut dups: Vec<usize> = Vec::new();
        for (i, g) in self.netlist.gates().iter().enumerate() {
            let key = match *g {
                Gate::Not(a) => Key::Unary(0, a.index()),
                Gate::And(a, b) => {
                    Key::Binary(1, a.index().min(b.index()), a.index().max(b.index()))
                }
                Gate::Or(a, b) => {
                    Key::Binary(2, a.index().min(b.index()), a.index().max(b.index()))
                }
                Gate::Xor(a, b) => {
                    Key::Binary(3, a.index().min(b.index()), a.index().max(b.index()))
                }
                Gate::Mux { sel, a, b } => Key::Mux(sel.index(), a.index(), b.index()),
                Gate::Const(_) | Gate::Input | Gate::Dff { .. } => continue,
            };
            if seen.insert(key, i).is_some() {
                dups.push(i);
            }
        }
        if !dups.is_empty() {
            let total = dups.len();
            self.emit(
                LintId::DupGate,
                format!("{total} gate(s) duplicate an earlier identical gate (missed CSE)"),
                dups.into_iter().take(NET_LIST_CAP).collect(),
                vec![],
            );
        }
    }

    /// Output port bits wired to constants.
    fn pass_const_output(&mut self) {
        for port in self.netlist.output_ports() {
            let tied: Vec<usize> = port
                .nets
                .iter()
                .enumerate()
                .filter(|(_, net)| matches!(self.netlist.gates()[net.index()], Gate::Const(_)))
                .map(|(bit, _)| bit)
                .collect();
            if !tied.is_empty() {
                self.emit(
                    LintId::ConstOutput,
                    format!(
                        "output port {} has {} bit(s) tied to constants",
                        port.name,
                        tied.len()
                    ),
                    tied.iter()
                        .take(NET_LIST_CAP)
                        .map(|&b| port.nets[b].index())
                        .collect(),
                    vec![port.name.clone()],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwperm_logic::Builder;

    fn simple_netlist() -> Netlist {
        let mut b = Builder::new();
        let x = b.input_bus("x", 2);
        let y = b.and(x[0], x[1]);
        b.output_bus("y", &[y]);
        b.finish()
    }

    #[test]
    fn clean_netlist_has_no_findings() {
        let report = lint_netlist(&simple_netlist());
        assert!(report.is_clean());
        assert!(report.diagnostics.is_empty(), "{report}");
    }

    #[test]
    fn config_allow_suppresses_and_deny_promotes() {
        // `finish()` sweeps dead gates, so orphan one after the fact:
        // reroute the Xor to read the And twice, stranding the Or.
        let mut b = Builder::new();
        let x = b.input_bus("x", 2);
        let y = b.and(x[0], x[1]);
        let w = b.or(x[0], x[1]);
        let z = b.xor(y, w);
        b.output_bus("y", &[y]);
        b.output_bus("z", &[z]);
        let nl = b.finish();
        let nl = nl.with_gate_replaced(z.index(), Gate::Xor(y, y));

        let default = lint_netlist(&nl);
        assert_eq!(default.of(LintId::DeadGate).count(), 1);
        assert!(default.is_clean());

        let allowed = lint_netlist_with(&nl, &LintConfig::new().allow(LintId::DeadGate));
        assert_eq!(allowed.of(LintId::DeadGate).count(), 0);

        let denied = lint_netlist_with(&nl, &LintConfig::new().deny(LintId::DeadGate));
        assert!(!denied.is_clean());
    }

    #[test]
    fn comb_cycle_detected_after_mutation() {
        let nl = simple_netlist();
        // Make the And feed on itself: a genuine combinational cycle.
        let and_net = nl.output_port("y").unwrap().nets[0];
        let broken = nl.with_gate_replaced(and_net.index(), Gate::And(and_net, and_net));
        let report = lint_netlist(&broken);
        assert!(report.of(LintId::CombCycle).count() >= 1, "{report}");
        assert!(!report.is_clean());
    }

    #[test]
    fn json_output_is_well_formed() {
        // An unused bit on a port with a quote in its name exercises
        // both the diagnostics array and the string escaping.
        let mut b = Builder::new();
        let x = b.input_bus("x\"quoted", 2);
        b.output_bus("y", &[x[0]]);
        let report = lint_netlist(&b.finish());
        assert_eq!(report.of(LintId::UnusedInput).count(), 1);
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\\\"quoted"));
        assert!(json.contains("\"warnings\":1"));
    }

    /// A decoder bank over adder sum bits with `record_one_hot_bank`:
    /// genuinely one-hot, but too wide for a 4-node BDD budget.
    /// `broken_lines` > 0 drops that many trailing lines, making the
    /// bank refutable (the dropped codes hit zero lines).
    fn adder_decoder_bank(broken_lines: usize) -> Netlist {
        let mut b = Builder::new();
        let x = b.input_bus("x", 8);
        let y = b.input_bus("y", 8);
        let (s, _) = b.add(&x, &y);
        let lines = b.decoder(&s[..3], 8);
        let bank = &lines[..lines.len() - broken_lines];
        b.record_one_hot_bank(bank);
        b.output_bus("hot", bank);
        b.output_bus("sum", &s); // keep every input bit live
        b.finish()
    }

    #[test]
    fn sat_escalation_closes_bdd_budget_gap() {
        // Before the SAT tier this config produced an "unverified"
        // warning; now the escalated proof leaves a clean report.
        let nl = adder_decoder_bank(0);
        let config = LintConfig::new();
        let starved = LintConfig {
            node_budget: 4,
            ..config
        };
        let report = lint_netlist_with(&nl, &starved);
        assert!(report.diagnostics.is_empty(), "{report}");
    }

    #[test]
    fn exhausted_budgets_emit_explicit_skipped_finding() {
        // Satellite pin: with every budget starved the pass must say
        // "skipped" out loud (capped at Warn), never pass silently.
        let nl = adder_decoder_bank(0);
        let starved = LintConfig {
            node_budget: 4,
            ..LintConfig::new()
        }
        .with_sat_conflict_budget(0);
        let report = lint_netlist_with(&nl, &starved);
        let findings: Vec<_> = report.of(LintId::OneHot).collect();
        assert_eq!(findings.len(), 1, "{report}");
        assert_eq!(findings[0].severity, Severity::Warn);
        assert!(findings[0].message.contains("skipped"), "{report}");
    }

    #[test]
    fn mutated_bank_is_refuted_by_escalation_not_skipped() {
        // The SAT tier must produce a real refutation when the BDD
        // budget is starved — a skip here would hide the mutation.
        let nl = adder_decoder_bank(1);
        let starved = LintConfig {
            node_budget: 4,
            ..LintConfig::new()
        };
        let report = lint_netlist_with(&nl, &starved);
        let findings: Vec<_> = report.of(LintId::OneHot).collect();
        assert_eq!(findings.len(), 1, "{report}");
        assert_eq!(findings[0].severity, Severity::Error);
        assert!(findings[0].message.contains("not one-hot"), "{report}");
        assert!(!report.is_clean());
    }

    /// Three decoder lines over a 2-bit port: violated only at
    /// `index == 3`.
    fn truncated_decoder_bank() -> Netlist {
        let mut b = Builder::new();
        let index = b.input_bus("index", 2);
        let lines = b.decoder(&index, 3);
        b.record_one_hot_bank(&lines);
        b.output_bus("hot", &lines);
        b.finish()
    }

    #[test]
    fn range_dont_care_downgrades_out_of_range_violation() {
        let nl = truncated_decoder_bank();
        let config = LintConfig::new().with_range_bound("index", 3);
        let report = lint_netlist_with(&nl, &config);
        // The unconditional refutation still fires as an error...
        assert_eq!(report.of(LintId::OneHot).count(), 1);
        // ...and the range pass proves it confined to the don't-care
        // region.
        let findings: Vec<_> = report.of(LintId::RangeDontCare).collect();
        assert_eq!(findings.len(), 1, "{report}");
        assert_eq!(findings[0].severity, Severity::Info);
        assert!(findings[0].message.contains("don't-care"), "{report}");
    }

    #[test]
    fn range_dont_care_keeps_in_range_violation_as_error() {
        let nl = truncated_decoder_bank();
        let config = LintConfig::new().with_range_bound("index", 4);
        let report = lint_netlist_with(&nl, &config);
        let findings: Vec<_> = report.of(LintId::RangeDontCare).collect();
        assert_eq!(findings.len(), 1, "{report}");
        assert_eq!(findings[0].severity, Severity::Error);
        assert!(findings[0].message.contains("even within"), "{report}");
    }

    #[test]
    fn range_dont_care_is_silent_without_a_contract() {
        let report = lint_netlist(&truncated_decoder_bank());
        assert_eq!(report.of(LintId::RangeDontCare).count(), 0);
        // The missing-port misconfiguration is reported, not ignored.
        let config = LintConfig::new().with_range_bound("no-such-port", 4);
        let report = lint_netlist_with(&truncated_decoder_bank(), &config);
        let findings: Vec<_> = report.of(LintId::RangeDontCare).collect();
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("missing input port"));
    }

    #[test]
    fn lint_id_round_trips() {
        for lint in ALL_LINTS {
            assert_eq!(LintId::parse(lint.as_str()), Some(lint));
        }
        assert_eq!(LintId::parse("no-such-lint"), None);
    }
}
