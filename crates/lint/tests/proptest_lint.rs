//! Property test: netlists assembled from `Builder` combinators are
//! lint-clean by construction. The builder's peephole rules, the
//! structural-hash CSE memo, the dead-code sweep in `finish()`, and the
//! combinators' discipline are exactly what the analyzer checks for
//! — so a random combinator program whose every result is routed to an
//! output must produce zero diagnostics of Warn severity or above.

use hwperm_lint::{lint_netlist, Severity};
use hwperm_logic::{Builder, Bus};
use proptest::prelude::*;

/// A small random combinator program: starting from two input buses,
/// repeatedly combine random pool entries with a random combinator and
/// return everything XOR-folded into one output bus. All intermediate
/// values (including carries and borrows) are folded in, so nothing the
/// builder created is left dead.
fn build_random(ops: &[u64]) -> hwperm_logic::Netlist {
    let mut b = Builder::new();
    let a = b.input_bus("a", 4);
    let c = b.input_bus("c", 3);
    let mut pool: Vec<Bus> = vec![a, c];

    for &op in ops {
        let i = (op >> 8) as usize % pool.len();
        let j = (op >> 24) as usize % pool.len();
        let (x, y) = (pool[i].clone(), pool[j].clone());
        match op % 6 {
            0 => {
                let (sum, carry) = b.add(&x, &y);
                pool.push(sum);
                pool.push(vec![carry]);
            }
            1 => {
                let (diff, borrow) = b.sub(&x, &y);
                pool.push(diff);
                pool.push(vec![borrow]);
            }
            2 => {
                let ge = b.ge(&x, &y);
                pool.push(vec![ge]);
            }
            3 => {
                // One-hot select among pool entries, driven by a real
                // decoder so the recorded bank is provably one-hot.
                let sel = &x[..x.len().min(2)];
                let count = 1usize << sel.len();
                let onehot = b.decoder(sel, count);
                let choices: Vec<&[_]> = (0..count)
                    .map(|k| pool[(j + k) % pool.len()].as_slice())
                    .collect();
                let out = b.one_hot_mux(&onehot, &choices);
                pool.push(out);
            }
            4 => {
                let sel = x[0];
                let m = b.mux_bus(sel, &x, &y);
                pool.push(m);
            }
            _ => {
                // Pure wiring: bit-reverse. (A pure-invert op would push
                // exact complements into the pool, which any boolean
                // fold at the bottom can legitimately cancel to a
                // constant — that would be the harness making a value
                // unobservable, not the builder stranding logic.)
                let rev: Bus = x.iter().rev().copied().collect();
                pool.push(rev);
            }
        }
    }

    // Fold the whole pool into one bus so every result is observable.
    // OR, not XOR: duplicate buses are common (two identical ops fold
    // to the same nets) and `or(x, x) = x` aliases them while
    // `xor(x, x)` would cancel to a constant and hide the operand.
    // Constant bits (a degenerate op like `ge(x, x)` folds to one) are
    // skipped: they observe nothing, and `or(acc, 1) = 1` would swallow
    // the column.
    let width = pool.iter().map(|p| p.len()).max().unwrap();
    let zero = b.constant(false);
    let one = b.constant(true);
    let mut acc = vec![zero; width];
    for bus in &pool {
        let z = b.zext(bus, width);
        acc = acc
            .iter()
            .zip(&z)
            .map(|(&l, &r)| if r == zero || r == one { l } else { b.or(l, r) })
            .collect();
    }
    b.output_bus("out", &acc);
    b.finish()
}

proptest! {
    #[test]
    fn combinator_netlists_are_lint_clean(ops in prop::collection::vec(any::<u64>(), 1..12)) {
        let netlist = build_random(&ops);
        let report = lint_netlist(&netlist);
        let noisy: Vec<String> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity >= Severity::Warn)
            .map(|d| d.to_string())
            .collect();
        prop_assert!(
            noisy.is_empty(),
            "builder output should lint clean for ops {:?}, got:\n{}",
            ops, noisy.join("\n")
        );
    }
}
