//! Lint mutation tests: seed single-gate corruptions into generated
//! netlists with `Netlist::with_gate_replaced` and assert that the
//! analyzer *flags each one* — every pass is proven to fire, not just
//! to stay quiet on clean inputs.
//!
//! Port-level corruption (duplicate names, zero-width ports) cannot be
//! constructed through the public API — the `Builder` rejects it at
//! creation and `Netlist`'s fields are crate-private — so those paths
//! are exercised by `hwperm-logic`'s in-crate `check_structure` tests;
//! the `port-name` lint is a direct mapping of the same enumeration.

use hwperm_bignum::Ubig;
use hwperm_circuits::{converter_netlist, ConverterOptions};
use hwperm_lint::{lint_netlist, LintId, Severity};
use hwperm_logic::{Gate, NetId, Netlist};

/// The Fig. 1 converter at n = 4: combinational, lint-clean, with
/// recorded one-hot select banks — the canonical mutation substrate.
fn clean_converter() -> Netlist {
    let nl = converter_netlist(4, ConverterOptions::default());
    assert!(
        lint_netlist(&nl).is_clean(),
        "substrate must start lint-clean"
    );
    nl
}

/// Asserts `lint` fired on `netlist` at `severity` or stronger.
fn assert_fires(netlist: &Netlist, lint: LintId, at_least: Severity, what: &str) {
    let report = lint_netlist(netlist);
    let hit = report.of(lint).any(|d| d.severity >= at_least);
    assert!(
        hit,
        "{what}: expected {lint} at >= {at_least:?}, report was:\n{report}"
    );
}

/// An index into the gate array chosen so the mutation is observable:
/// the first live And gate (present in every converter stage).
fn first_live_and(netlist: &Netlist) -> usize {
    let live = netlist.live_mask();
    (0..netlist.len())
        .find(|&i| live[i] && matches!(netlist.gates()[i], Gate::And(..)))
        .expect("converter contains a live And")
}

#[test]
fn out_of_range_ref_fires_structure() {
    let nl = clean_converter();
    let i = first_live_and(&nl);
    let bogus = nl.with_gate_replaced(i, Gate::Not(NetId::forged(u32::MAX)));
    assert_fires(
        &bogus,
        LintId::Structure,
        Severity::Error,
        "out-of-range ref",
    );
}

#[test]
fn forward_ref_fires_structure() {
    let nl = clean_converter();
    let i = first_live_and(&nl);
    // Reference a net created *after* gate i: breaks the topological
    // creation-order invariant.
    let fwd = NetId::forged((i + 1) as u32);
    let bogus = nl.with_gate_replaced(i, Gate::Not(fwd));
    assert_fires(&bogus, LintId::Structure, Severity::Error, "forward ref");
}

#[test]
fn self_loop_fires_comb_cycle() {
    let nl = clean_converter();
    let i = first_live_and(&nl);
    let bogus = nl.with_gate_replaced(i, Gate::Not(NetId::forged(i as u32)));
    assert_fires(&bogus, LintId::CombCycle, Severity::Error, "self loop");
}

#[test]
fn input_port_corruption_fires_floating_input() {
    let nl = clean_converter();
    // Net 0 is the first bit of the "index" input port; replacing its
    // Input gate with a constant leaves the port bit floating.
    assert!(matches!(nl.gates()[0], Gate::Input));
    let bogus = nl.with_gate_replaced(0, Gate::Const(false));
    assert_fires(
        &bogus,
        LintId::Structure,
        Severity::Error,
        "input port bit no longer an Input gate",
    );
}

#[test]
fn orphaned_input_gate_fires_floating_input() {
    let nl = clean_converter();
    let i = first_live_and(&nl);
    // An Input gate that no input port owns: dangling stimulus.
    let bogus = nl.with_gate_replaced(i, Gate::Input);
    assert_fires(
        &bogus,
        LintId::FloatingInput,
        Severity::Error,
        "orphan Input gate",
    );
}

#[test]
fn stuck_select_fires_one_hot() {
    // The ISSUE's flagship mutation: force one line of a Fig. 1 select
    // bank high so two lines can be simultaneously hot. The BDD query
    // must refute one-hotness with a concrete witness.
    let nl = clean_converter();
    let banks = nl.one_hot_banks().to_vec();
    assert!(!banks.is_empty(), "converter records its select banks");
    let victim = banks[0][0].index();
    let bogus = nl.with_gate_replaced(victim, Gate::Const(true));
    let report = lint_netlist(&bogus);
    let diag = report
        .of(LintId::OneHot)
        .find(|d| d.severity == Severity::Error)
        .unwrap_or_else(|| panic!("stuck select line must refute one-hot:\n{report}"));
    assert!(
        diag.message.contains("witness"),
        "diagnostic should carry the refutation witness: {diag}"
    );
}

#[test]
fn inverted_select_fires_one_hot() {
    // Subtler than stuck-at: invert a thermometer-derived line, making
    // the bank all-cold for some index and two-hot for others.
    let nl = clean_converter();
    let banks = nl.one_hot_banks().to_vec();
    let bank = &banks[0];
    let victim = bank[bank.len() - 1].index();
    let g = nl.gates()[victim];
    let mutated = match g {
        Gate::Not(a) => Gate::And(a, a),
        Gate::And(a, b) => Gate::Or(a, b),
        Gate::Or(a, b) => Gate::And(a, b),
        other => panic!("unexpected select-line gate {other:?}"),
    };
    let bogus = nl.with_gate_replaced(victim, mutated);
    assert_fires(&bogus, LintId::OneHot, Severity::Error, "inverted select");
}

#[test]
fn unread_input_fires_unused_input() {
    let nl = clean_converter();
    // Cut every reader of input bit 0 by rerouting: replace each gate
    // that reads net 0 with the same gate reading net 1 instead.
    let readers: Vec<usize> = (0..nl.len())
        .filter(|&i| nl.gates()[i].fanin().any(|f| f.index() == 0))
        .collect();
    assert!(!readers.is_empty());
    let mut bogus = nl;
    for i in readers {
        let rerouted = match bogus.gates()[i] {
            Gate::Not(_) => Gate::Not(NetId::forged(1)),
            Gate::And(a, b) => {
                let f = |n: NetId| if n.index() == 0 { NetId::forged(1) } else { n };
                Gate::And(f(a), f(b))
            }
            Gate::Or(a, b) => {
                let f = |n: NetId| if n.index() == 0 { NetId::forged(1) } else { n };
                Gate::Or(f(a), f(b))
            }
            Gate::Xor(a, b) => {
                let f = |n: NetId| if n.index() == 0 { NetId::forged(1) } else { n };
                Gate::Xor(f(a), f(b))
            }
            Gate::Mux { sel, a, b } => {
                let f = |n: NetId| if n.index() == 0 { NetId::forged(1) } else { n };
                Gate::Mux {
                    sel: f(sel),
                    a: f(a),
                    b: f(b),
                }
            }
            other => other,
        };
        bogus = bogus.with_gate_replaced(i, rerouted);
    }
    assert_fires(
        &bogus,
        LintId::UnusedInput,
        Severity::Warn,
        "unread input bit",
    );
}

#[test]
fn severed_cone_fires_dead_gate() {
    let nl = clean_converter();
    // Pick a live gate whose fanin includes a combinational gate with
    // fanout exactly 1 and no port/bank observer: replacing the reader
    // with a constant strands that fanin.
    let live = nl.live_mask();
    let fanout = nl.fanout();
    let observed: std::collections::HashSet<usize> = nl
        .output_ports()
        .iter()
        .flat_map(|p| p.nets.iter())
        .chain(nl.one_hot_banks().iter().flatten())
        .map(|n| n.index())
        .collect();
    let (reader, _victim) = (0..nl.len())
        .filter(|&i| live[i])
        .find_map(|i| {
            nl.gates()[i].fanin().find_map(|f| {
                let fi = f.index();
                (fanout[fi] == 1 && nl.gates()[fi].is_combinational() && !observed.contains(&fi))
                    .then_some((i, fi))
            })
        })
        .expect("some live gate is the sole reader of an unobserved gate");
    let bogus = nl.with_gate_replaced(reader, Gate::Const(false));
    assert_fires(&bogus, LintId::DeadGate, Severity::Warn, "severed cone");
}

#[test]
fn constant_operand_fires_const_fold() {
    // Turn one operand of a live And into a constant: the And becomes
    // builder-foldable, which the const-fold pass must report.
    let nl = clean_converter();
    let (i, a) = {
        let live = nl.live_mask();
        (0..nl.len())
            .find_map(|i| match nl.gates()[i] {
                Gate::And(a, _) if live[i] && nl.gates()[a.index()].is_combinational() => {
                    Some((i, a))
                }
                _ => None,
            })
            .expect("a live And with a combinational operand exists")
    };
    let _ = i;
    let bogus = nl.with_gate_replaced(a.index(), Gate::Const(false));
    assert_fires(&bogus, LintId::ConstFold, Severity::Warn, "And with const0");
}

#[test]
fn skipped_register_fires_dff_rank() {
    // Pipelined substrate: bypass one register (replace Dff d with a
    // buffer of d) so one operand of a downstream gate arrives a rank
    // early — the classic retiming bug.
    let nl = converter_netlist(
        4,
        ConverterOptions {
            pipelined: true,
            ..ConverterOptions::default()
        },
    );
    assert!(lint_netlist(&nl).is_clean());
    let live = nl.live_mask();
    let mut fired = false;
    for (i, gate) in nl.gates().iter().enumerate() {
        let Gate::Dff { d, .. } = *gate else {
            continue;
        };
        if !live[i] || d.index() >= i {
            continue; // skip feedback registers (LFSR-style)
        }
        // A "buffer" standing in for the register: same value, no delay.
        let bogus = nl.with_gate_replaced(i, Gate::Or(d, d));
        let report = lint_netlist(&bogus);
        if report.of(LintId::DffRank).next().is_some() {
            fired = true;
            break;
        }
    }
    assert!(
        fired,
        "bypassing a pipeline register must skew ranks somewhere"
    );
}

#[test]
fn cloned_gate_fires_dup_gate() {
    let nl = clean_converter();
    let i = first_live_and(&nl);
    let clone_source = nl.gates()[i];
    // Find a later live gate whose replacement by a clone keeps the
    // netlist structurally valid (operands of the clone precede i < j).
    let live = nl.live_mask();
    let j = (i + 1..nl.len())
        .find(|&j| live[j] && nl.gates()[j].is_combinational())
        .expect("a later live gate exists");
    let bogus = nl.with_gate_replaced(j, clone_source);
    assert_fires(&bogus, LintId::DupGate, Severity::Info, "cloned gate");
}

#[test]
fn constant_output_bit_fires_const_output() {
    let nl = clean_converter();
    let out_net = nl.output_ports()[0].nets[0].index();
    let bogus = nl.with_gate_replaced(out_net, Gate::Const(false));
    assert_fires(
        &bogus,
        LintId::ConstOutput,
        Severity::Info,
        "const output bit",
    );
}

/// Exhaustively evaluates every index and reports whether each recorded
/// bank is exactly-one-hot for every input (ground truth by simulation).
/// Runs on the batched 64-lane sweep — the mutation sweep below calls
/// this once per mutant, so the 64× fewer netlist walks are what keep
/// the whole-netlist sweep affordable.
fn banks_truly_one_hot(netlist: &Netlist) -> bool {
    hwperm_verify::find_one_hot_violation_batched(netlist, "index").is_none()
}

#[test]
fn mutation_sweep_one_hot_verdicts_match_simulation() {
    // Exhaustive single-gate stuck-at-1 sweep over the n = 4 converter.
    // The linter must survive every mutant without panicking, and its
    // one-hot verdict must agree with ground-truth simulation: an Error
    // iff some input really drives a bank to zero or two hot lines.
    // (Agreement matters in both directions — a stuck line in a 2-line
    // complementary bank keeps the bank exactly-one-hot even though the
    // circuit is functionally wrong, and the lint must NOT claim a
    // one-hot violation there; the functional fault is the exhaustive
    // oracle's to catch, not the bank assertion's.)
    let nl = clean_converter();
    let bank_nets: std::collections::HashSet<usize> = nl
        .one_hot_banks()
        .iter()
        .flatten()
        .map(|n| n.index())
        .collect();
    let mut refuted = 0;
    for i in 0..nl.len() {
        if !nl.gates()[i].is_combinational() {
            continue;
        }
        let bogus = nl.with_gate_replaced(i, Gate::Const(true));
        let report = lint_netlist(&bogus); // must not panic
        let lint_says_broken = report
            .of(LintId::OneHot)
            .any(|d| d.severity == Severity::Error);
        let truly_broken = !banks_truly_one_hot(&bogus);
        assert_eq!(
            lint_says_broken,
            truly_broken,
            "one-hot verdict diverges from simulation for stuck net {i} \
             (bank member: {}):\n{report}",
            bank_nets.contains(&i)
        );
        refuted += usize::from(truly_broken);
    }
    assert!(
        refuted >= 5,
        "expected several genuine one-hot violations in the sweep, got {refuted}"
    );
}

/// Sanity: the oracle used by the sweep — mutating a gate genuinely
/// changes behaviour — still holds for the stuck-select case, tying
/// the lint verdict to a functional fault, not just a structural one.
#[test]
fn stuck_select_is_a_real_functional_fault() {
    use hwperm_logic::Simulator;
    let nl = clean_converter();
    let victim = nl.one_hot_banks()[0][0].index();
    let bogus = nl.with_gate_replaced(victim, Gate::Const(true));
    let mut good = Simulator::new(clean_converter());
    let mut bad = Simulator::new(bogus);
    let mut differs = false;
    for i in 0..24u64 {
        good.set_input("index", &Ubig::from(i));
        bad.set_input("index", &Ubig::from(i));
        good.eval();
        bad.eval();
        if good.read_output("perm") != bad.read_output("perm") {
            differs = true;
            break;
        }
    }
    assert!(
        differs,
        "stuck select must corrupt at least one permutation"
    );
}
