#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Implementation of the `hwperm` command-line tool.
//!
//! All command logic lives here (returning `Result<String, CliError>`)
//! so the test suite can drive it without spawning processes; `main.rs`
//! only does I/O.

use hwperm_bignum::Ubig;
use hwperm_circuits::{
    converter_netlist, shuffle_netlist, ConverterOptions, IndexToPermConverter,
    KnuthShuffleCircuit, PermToIndexConverter, ShuffleOptions, SortingNetwork,
};
use hwperm_core::{CircuitRandomSource, RandomPermSource, SoftwareRandomSource};
use hwperm_factoradic::{
    rank, rank_combination, rank_variation, unrank, unrank_combination, unrank_variation,
    IndexedPermutations,
};
use hwperm_logic::{ResourceReport, SimProgram, W256, W512};
use hwperm_perm::Permutation;
use hwperm_rng::BiasReport;
use hwperm_store::TableSource;
use std::fmt;
use std::path::{Path, PathBuf};

/// Errors reported to the user (exit status 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// The usage text printed by `hwperm help`.
pub const USAGE: &str = "\
hwperm — index ↔ permutation conversion (Butler & Sasao, RAW 2012)

usage: hwperm <command> [args]

  unrank <n> <index>             the <index>-th permutation of {0..n-1}
  rank <e0> <e1> ...             lexicographic index of a permutation
  combination <n> <k> <index>    the <index>-th k-combination
  rank-combination <n> <e...>    index of a sorted k-combination
  variation <n> <k> <index>      the <index>-th ordered k-selection
  rank-variation <n> <e...>      index of an ordered k-selection
  random <n> [count] [seed]      uniform random permutations (software)
  random-circuit <n> [count]     random permutations from the Fig. 3 netlist
  all <n> [start] [end]          list permutations by index range
  resources <circuit> <n>        LUT/ALM/register estimate
                                 (circuit: converter | converter-pipelined |
                                  shuffle | rank)
  lint <circuit|all> <n> [--json]  static analysis of a generated netlist
                                 (circuit: converter | converter-pipelined |
                                  shuffle | shuffle-pipelined | rank |
                                  combination | variation | sort |
                                  random-index | all; exit 2 if any
                                  Error-severity diagnostic fires;
                                  one-hot proofs escalate from BDD to
                                  SAT, and index-port families carry the
                                  range contract index < total for the
                                  range-dont-care pass; --json rows
                                  include the fused tape's op counts,
                                  levels, and fusion savings)
  prove <n> [--family F] [--jobs N] [--store D] [--json]
                                 SAT proof obligations over the compiled
                                 tape: converter table conformance vs
                                 the block-decoded oracle (--store D
                                 loads the oracle table from a
                                 persisted store instead — it must be
                                 built and intact, never a silent
                                 recompute), pipelined
                                 converter k-step unrolling vs its
                                 combinational twin, rank ∘ unrank
                                 identity, combination / variation table
                                 conformance (family: converter |
                                 converter-pipelined | rank |
                                 combination | variation | all; default
                                 converter; n = 2..=9, the n ≥ 8
                                 converter table proof takes minutes;
                                 exit 2 on refuted or invalid
                                 obligations, counterexamples decode to
                                 the exhaustive sweeps' first-mismatch
                                 format)
  bias <m> <k>                   pigeonhole bias of an m-bit LFSR over [0,k)
  sort <key> <key> ...           sort through the selection network
  faults <n> [--family F] [--jobs N] [--width W] [--json]
                                 single-stuck-at fault campaign against
                                 the exhaustive oracle (family:
                                 converter | rank | combination |
                                 variation | sort | all; default
                                 converter); --width W retires W faults
                                 per tape walk (64 | 256 | 512, default
                                 512 — verdicts are byte-identical at
                                 every width); reports detected /
                                 silent / masked verdicts, coverage
                                 percentages, and every silent fault's
                                 witness
  verify <n> [--batch] [--jobs N] [--width W] [--store D]
                                 netlist vs software cross-check
                                 (--batch: word-level gate sweep of the
                                  fused converter tape, one index per
                                  lane; --width W lanes per pass (64 |
                                  256 | 512, default 512); --jobs N:
                                  shard the batched sweep over N worker
                                  threads — reports the same
                                  lowest-index first mismatch as the
                                  sequential sweep; --store D: load the
                                  expectation table from a persisted
                                  store built by `hwperm store build`
                                  instead of recomputing it —
                                  byte-identical words, identical
                                  witnesses)
  verilog <circuit> <n>          emit synthesizable structural Verilog
  serve <addr> [--workers N] [--chunk N] [--store D] [--max-conns N]
        [--idle-timeout-ms T] [--request-deadline-ms T]
                                 permutation-as-a-service: long-running
                                 socket server (addr: host:port, port 0
                                 for ephemeral, or a filesystem path
                                 for a Unix socket) speaking
                                 length-prefixed JSON + binary frames;
                                 requests: unrank | rank | block |
                                 random-stream | verify | stats |
                                 shutdown, multiplexed over a sharded
                                 worker pool (--workers, default 4);
                                 --chunk sets the default packed words
                                 per binary frame (default 8192);
                                 --store D streams verify tables and
                                 block words from a persisted oracle
                                 store when its tables are warm (cold
                                 tables compute, broken tables fail
                                 loudly; wire bytes identical);
                                 hostile-network hardening:
                                 --max-conns N sheds connections past N
                                 with a pinned busy envelope,
                                 --idle-timeout-ms T reaps silent /
                                 trickling connections and deadlines
                                 socket writes, --request-deadline-ms T
                                 cancels long requests between chunks
                                 with a pinned deadline error;
                                 prints \"listening on <addr>\" once
                                 ready, runs until a shutdown request
  client <addr> <request-json> [--retries N] [--backoff-ms T]
                                 send one request to a running server
                                 and print its response envelope (and
                                 a binary chunk tally for block /
                                 random-stream); exit 2 when the
                                 envelope reports an error;
                                 --retries N replays *idempotent*
                                 requests (unrank | rank | block |
                                 verify | stats — never random-stream)
                                 up to N attempts with exponential
                                 --backoff-ms (default 50) and
                                 deterministic jitter, reconnecting
                                 between attempts
  store build|verify|stat <n> [--dir D] [--jobs N] [--json]
                                 persisted oracle store management
                                 (default --dir hwperm-store):
                                 build generates the n-table through
                                 the sharded block decoder as chunked,
                                 content-hashed files — atomic writes,
                                 manifest-backed, resumable after a
                                 kill (--jobs N build workers);
                                 verify re-reads every chunk and
                                 checks headers, hashes and manifest;
                                 stat reports table state; n = 1..=9
  help                           this text
";

/// Every circuit family `hwperm lint all` covers.
const LINT_FAMILIES: [&str; 9] = [
    "converter",
    "converter-pipelined",
    "shuffle",
    "shuffle-pipelined",
    "rank",
    "combination",
    "variation",
    "sort",
    "random-index",
];

/// Builds the named family's netlist at size `n` for linting. Families
/// with extra parameters use derived defaults: combination/variation
/// take k = ⌈n/2⌉, the sorter keys are wide enough to hold n distinct
/// values.
fn lint_family_netlist(family: &str, n: usize) -> Result<hwperm_logic::Netlist, CliError> {
    use hwperm_circuits::{
        IndexToCombinationConverter, IndexToVariationConverter, RandomIndexGenerator,
    };
    let k = n.div_ceil(2);
    let key_width = usize::BITS as usize - (n - 1).leading_zeros() as usize;
    Ok(match family {
        "converter" => converter_netlist(n, ConverterOptions::default()),
        "converter-pipelined" => converter_netlist(
            n,
            ConverterOptions {
                pipelined: true,
                perm_input_port: false,
            },
        ),
        "shuffle" => shuffle_netlist(n, ShuffleOptions::default()),
        "shuffle-pipelined" => shuffle_netlist(
            n,
            ShuffleOptions {
                pipelined: true,
                ..ShuffleOptions::default()
            },
        ),
        "rank" => PermToIndexConverter::new(n).netlist().clone(),
        "combination" => IndexToCombinationConverter::new(n, k).netlist().clone(),
        "variation" => IndexToVariationConverter::new(n, k).netlist().clone(),
        "sort" => SortingNetwork::new(n, key_width.max(2)).netlist().clone(),
        "random-index" => RandomIndexGenerator::new(n, 0x5eed).netlist().clone(),
        other => return Err(err(format!("unknown circuit {other:?}"))),
    })
}

/// The range contract of a family's index input port — `(port, bound)`
/// such that the environment only ever drives `port < bound` — or
/// `None` for families without one (or whose bound overflows `u64`).
/// Feeds the lint `range-dont-care` pass.
fn lint_family_range(family: &str, n: usize) -> Option<(&'static str, u64)> {
    let k = n.div_ceil(2);
    match family {
        "converter" | "converter-pipelined" => {
            Ubig::factorial(n as u64).to_u64().map(|b| ("index", b))
        }
        "combination" => hwperm_factoradic::binomial(n as u64, k as u64)
            .to_u64()
            .map(|b| ("index", b)),
        "variation" => hwperm_factoradic::falling_factorial(n as u64, k as u64)
            .to_u64()
            .map(|b| ("index", b)),
        _ => None,
    }
}

/// Every circuit family `hwperm faults` can campaign over: purely
/// combinational, one input port, one output port.
const CAMPAIGN_FAMILIES: [&str; 5] = ["converter", "rank", "combination", "variation", "sort"];

/// Every proof obligation family `hwperm prove all` discharges.
const PROVE_FAMILIES: [&str; 5] = [
    "converter",
    "converter-pipelined",
    "rank",
    "combination",
    "variation",
];

/// Discharges the named family's proof obligation at size `n`,
/// returning the obligation's description and the solver's verdict.
/// The converter obligation's oracle table comes from `store` when one
/// is given (a missing or broken store is an error, never a silent
/// recompute) and is block-decoded otherwise — byte-identical words.
fn prove_family(
    family: &str,
    n: usize,
    store: Option<&Path>,
) -> Result<(&'static str, hwperm_verify::ProveOutcome), CliError> {
    use hwperm_circuits::{IndexToCombinationConverter, IndexToVariationConverter};
    let k = n.div_ceil(2);
    let factorial: u64 = (1..=n as u64).product();
    let fail = |e: hwperm_verify::VerifyError| err(format!("{family}: invalid obligation: {e}"));
    match family {
        "converter" => {
            let netlist = converter_netlist(n, ConverterOptions::default());
            let source = match store {
                Some(dir) => TableSource::Store {
                    dir: dir.to_path_buf(),
                },
                None => TableSource::Computed { workers: 1 },
            };
            let expected = source
                .permutation_words(n)
                .map_err(|e| err(format!("{family}: store error: {e}")))?;
            let out = hwperm_verify::prove_against_table(&netlist, "index", "perm", &expected)
                .map_err(fail)?;
            Ok(("table conformance vs block-decoded oracle", out))
        }
        "converter-pipelined" => {
            let pipe = converter_netlist(
                n,
                ConverterOptions {
                    pipelined: true,
                    perm_input_port: false,
                },
            );
            let comb = converter_netlist(n, ConverterOptions::default());
            let out = hwperm_verify::prove_pipelined_equivalent(
                &pipe,
                &comb,
                "index",
                "perm",
                n - 1,
                factorial,
                None,
            )
            .map_err(fail)?;
            Ok(("k-step unrolling vs combinational twin", out))
        }
        "rank" => {
            let conv = converter_netlist(n, ConverterOptions::default());
            let rank = PermToIndexConverter::new(n).netlist().clone();
            let out = hwperm_verify::prove_inverse_identity(
                &conv, "index", "perm", &rank, "perm", "index", factorial, None,
            )
            .map_err(fail)?;
            Ok(("rank ∘ unrank identity over all indices", out))
        }
        "combination" => {
            let netlist = IndexToCombinationConverter::new(n, k).netlist().clone();
            let expected = hwperm_verify::expected_combination_words(n, k);
            let out = hwperm_verify::prove_against_table(&netlist, "index", "codeword", &expected)
                .map_err(fail)?;
            Ok(("table conformance vs software unranker", out))
        }
        "variation" => {
            let netlist = IndexToVariationConverter::new(n, k).netlist().clone();
            let expected = hwperm_verify::expected_variation_words(n, k);
            let out = hwperm_verify::prove_against_table(&netlist, "index", "out", &expected)
                .map_err(fail)?;
            Ok(("table conformance vs software unranker", out))
        }
        other => Err(err(format!(
            "unknown prove family {other:?} (families: converter | converter-pipelined | \
             rank | combination | variation | all)"
        ))),
    }
}

/// Wraps a subcommand's JSON result objects in the envelope shared by
/// `lint --json`, `faults --json` and `prove --json`: tool identity,
/// version, subcommand, exit status, and the per-circuit results.
fn json_envelope(command: &str, errors: usize, results: &str) -> String {
    let (status, exit) = if errors == 0 { ("ok", 0) } else { ("error", 2) };
    format!(
        "{{\"tool\":\"hwperm\",\"version\":\"{}\",\"command\":\"{command}\",\
         \"status\":\"{status}\",\"exit\":{exit},\"errors\":{errors},\
         \"results\":[{results}]}}\n",
        env!("CARGO_PKG_VERSION"),
    )
}

/// Builds the named family's netlist at size `n` plus its (input,
/// output) port pair for a fault campaign. Derived parameters match
/// [`lint_family_netlist`]: combination/variation take k = ⌈n/2⌉, the
/// sorter keys are wide enough to hold n distinct values.
fn campaign_family_netlist(
    family: &str,
    n: usize,
) -> Result<(hwperm_logic::Netlist, &'static str, &'static str), CliError> {
    use hwperm_circuits::{IndexToCombinationConverter, IndexToVariationConverter};
    let k = n.div_ceil(2);
    let key_width = (usize::BITS as usize - (n - 1).leading_zeros() as usize).max(2);
    Ok(match family {
        "converter" => (
            converter_netlist(n, ConverterOptions::default()),
            "index",
            "perm",
        ),
        "rank" => (
            PermToIndexConverter::new(n).netlist().clone(),
            "perm",
            "index",
        ),
        "combination" => (
            IndexToCombinationConverter::new(n, k).netlist().clone(),
            "index",
            "codeword",
        ),
        "variation" => (
            IndexToVariationConverter::new(n, k).netlist().clone(),
            "index",
            "out",
        ),
        "sort" => (
            SortingNetwork::new(n, key_width).netlist().clone(),
            "data",
            "sorted",
        ),
        other => {
            return Err(err(format!(
                "unknown campaign family {other:?} (families: converter | rank | \
                 combination | variation | sort | all)"
            )))
        }
    })
}

fn parse_usize(s: &str, what: &str) -> Result<usize, CliError> {
    s.parse().map_err(|_| err(format!("invalid {what}: {s:?}")))
}

/// Escapes a string for embedding in a hand-rolled JSON literal.
/// Store directories are the only free-form text the CLI emits as
/// JSON, so backslash/quote/control coverage is all that's needed.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses a `--width` value into a lane count. Only the three compiled
/// word widths exist — 64 (`u64`), 256 ([`W256`]), 512 ([`W512`]) —
/// anything else is a user error (exit 2).
fn parse_width(s: &str) -> Result<usize, CliError> {
    match s {
        "64" => Ok(64),
        "256" => Ok(256),
        "512" => Ok(512),
        other => Err(err(format!(
            "invalid --width {other:?} (widths: 64 | 256 | 512)"
        ))),
    }
}

/// The default `--width`: the widest compiled word. The wide words
/// autovectorize, so more lanes per tape walk is the fastest choice on
/// every target; `--width 64` remains for baselining.
const DEFAULT_WIDTH: usize = 512;

/// Renders [`TapeStats`](hwperm_logic::TapeStats) for a fused compile
/// of `netlist` as a JSON object — the `"tape"` field of each
/// `lint --json` result row.
fn tape_stats_json(netlist: hwperm_logic::Netlist) -> String {
    let stats = SimProgram::compile_fused(netlist).stats();
    let op_counts = stats
        .op_counts
        .iter()
        .map(|(name, count)| format!("\"{name}\":{count}"))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"ops\":{},\"unfused_ops\":{},\"fused_away\":{},\
         \"levels\":{},\"blocks\":{},\"op_counts\":{{{op_counts}}}}}",
        stats.ops,
        stats.unfused_ops,
        stats.fused_away(),
        stats.levels,
        stats.blocks,
    )
}

fn parse_ubig(s: &str, what: &str) -> Result<Ubig, CliError> {
    Ubig::from_decimal(s).map_err(|e| err(format!("invalid {what} {s:?}: {e}")))
}

fn parse_perm(args: &[String]) -> Result<Permutation, CliError> {
    let v: Vec<u32> = args
        .iter()
        .map(|s| s.parse().map_err(|_| err(format!("invalid element {s:?}"))))
        .collect::<Result<_, _>>()?;
    Permutation::try_from_vec(v).map_err(|e| err(e.to_string()))
}

/// Executes one command; `args` excludes the program name.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Err(err(USAGE));
    };
    let rest = &args[1..];
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        "unrank" => {
            let [n, index] = rest else {
                return Err(err("usage: hwperm unrank <n> <index>"));
            };
            let n = parse_usize(n, "n")?;
            let index = parse_ubig(index, "index")?;
            if index >= Ubig::factorial(n as u64) {
                return Err(err(format!("index must be below {n}!")));
            }
            Ok(format!("{}\n", unrank(n, &index)))
        }
        "rank" => {
            let perm = parse_perm(rest)?;
            Ok(format!("{}\n", rank(&perm)))
        }
        "combination" => {
            let [n, k, index] = rest else {
                return Err(err("usage: hwperm combination <n> <k> <index>"));
            };
            let (n, k) = (parse_usize(n, "n")?, parse_usize(k, "k")?);
            if k > n {
                return Err(err(format!("k = {k} exceeds n = {n}")));
            }
            let index = parse_ubig(index, "index")?;
            if index >= hwperm_factoradic::binomial(n as u64, k as u64) {
                return Err(err(format!("index must be below C({n}, {k})")));
            }
            let c = unrank_combination(n, k, &index);
            Ok(format!("{}\n", join(&c)))
        }
        "rank-combination" => {
            let [n, elems @ ..] = rest else {
                return Err(err("usage: hwperm rank-combination <n> <e0> <e1> ..."));
            };
            let n = parse_usize(n, "n")?;
            let v: Vec<u32> = elems
                .iter()
                .map(|s| s.parse().map_err(|_| err(format!("invalid element {s:?}"))))
                .collect::<Result<_, _>>()?;
            if !v.windows(2).all(|w| w[0] < w[1]) || v.iter().any(|&e| e as usize >= n) {
                return Err(err("elements must be strictly increasing and < n"));
            }
            Ok(format!("{}\n", rank_combination(n, &v)))
        }
        "variation" => {
            let [n, k, index] = rest else {
                return Err(err("usage: hwperm variation <n> <k> <index>"));
            };
            let (n, k) = (parse_usize(n, "n")?, parse_usize(k, "k")?);
            if k > n {
                return Err(err(format!("k = {k} exceeds n = {n}")));
            }
            let index = parse_ubig(index, "index")?;
            if index >= hwperm_factoradic::falling_factorial(n as u64, k as u64) {
                return Err(err("index must be below n!/(n-k)!".to_string()));
            }
            Ok(format!("{}\n", join(&unrank_variation(n, k, &index))))
        }
        "rank-variation" => {
            let [n, elems @ ..] = rest else {
                return Err(err("usage: hwperm rank-variation <n> <e0> <e1> ..."));
            };
            let n = parse_usize(n, "n")?;
            let v: Vec<u32> = elems
                .iter()
                .map(|s| s.parse().map_err(|_| err(format!("invalid element {s:?}"))))
                .collect::<Result<_, _>>()?;
            let distinct: std::collections::HashSet<_> = v.iter().collect();
            if distinct.len() != v.len() || v.iter().any(|&e| e as usize >= n) {
                return Err(err("elements must be distinct and < n"));
            }
            Ok(format!("{}\n", rank_variation(n, &v)))
        }
        "random" => {
            let n = parse_usize(
                rest.first()
                    .ok_or_else(|| err("usage: hwperm random <n> [count] [seed]"))?,
                "n",
            )?;
            let count: usize = rest.get(1).map_or(Ok(1), |s| parse_usize(s, "count"))?;
            let seed: u64 = rest
                .get(2)
                .map_or(Ok(0xD1CE), |s| s.parse().map_err(|_| err("invalid seed")))?;
            let mut src = SoftwareRandomSource::new(n, seed);
            Ok(render_random(&mut src, count))
        }
        "random-circuit" => {
            let n = parse_usize(
                rest.first()
                    .ok_or_else(|| err("usage: hwperm random-circuit <n> [count]"))?,
                "n",
            )?;
            if n < 2 {
                return Err(err("circuit generation requires n >= 2"));
            }
            let count: usize = rest.get(1).map_or(Ok(1), |s| parse_usize(s, "count"))?;
            let mut src = CircuitRandomSource::new(n);
            Ok(render_random(&mut src, count))
        }
        "all" => {
            let n = parse_usize(
                rest.first()
                    .ok_or_else(|| err("usage: hwperm all <n> [start] [end]"))?,
                "n",
            )?;
            let start = rest
                .get(1)
                .map_or(Ok(Ubig::zero()), |s| parse_ubig(s, "start"))?;
            let end = rest
                .get(2)
                .map_or(Ok(Ubig::factorial(n as u64)), |s| parse_ubig(s, "end"))?;
            if start > Ubig::factorial(n as u64) {
                return Err(err("start beyond n!"));
            }
            let mut out = String::new();
            for (index, perm) in IndexedPermutations::new(n, start, end) {
                out.push_str(&format!("{index:>6}  {perm}\n"));
            }
            Ok(out)
        }
        "resources" => {
            let [circuit, n] = rest else {
                return Err(err("usage: hwperm resources <circuit> <n>"));
            };
            let n = parse_usize(n, "n")?;
            if n < 2 {
                return Err(err("circuits require n >= 2"));
            }
            let report = match circuit.as_str() {
                "converter" => {
                    ResourceReport::of(&converter_netlist(n, ConverterOptions::default()))
                }
                "converter-pipelined" => ResourceReport::of(&converter_netlist(
                    n,
                    ConverterOptions {
                        pipelined: true,
                        perm_input_port: false,
                    },
                )),
                "shuffle" => ResourceReport::of(&shuffle_netlist(n, ShuffleOptions::default())),
                "rank" => PermToIndexConverter::new(n).report(),
                other => return Err(err(format!("unknown circuit {other:?}"))),
            };
            Ok(format!("{report}\n"))
        }
        "lint" => {
            let (json, rest): (bool, Vec<&String>) = {
                let flags: Vec<&String> = rest.iter().filter(|a| *a == "--json").collect();
                (
                    !flags.is_empty(),
                    rest.iter().filter(|a| *a != "--json").collect(),
                )
            };
            let [circuit, n] = rest.as_slice() else {
                return Err(err("usage: hwperm lint <circuit|all> <n> [--json]"));
            };
            let n = parse_usize(n, "n")?;
            if n < 2 {
                return Err(err("circuits require n >= 2"));
            }
            let families: Vec<&str> = if circuit.as_str() == "all" {
                LINT_FAMILIES.to_vec()
            } else {
                vec![circuit.as_str()]
            };
            let mut out = String::new();
            let mut errors = 0usize;
            for (i, family) in families.iter().enumerate() {
                let netlist = lint_family_netlist(family, n)?;
                let mut config = hwperm_lint::LintConfig::new();
                if let Some((port, bound)) = lint_family_range(family, n) {
                    config = config.with_range_bound(port, bound);
                }
                let report = hwperm_lint::lint_netlist_with(&netlist, &config);
                errors += report.error_count();
                if json {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"circuit\":\"{family}\",\"n\":{n},\"tape\":{},\"report\":{}}}",
                        tape_stats_json(netlist),
                        report.to_json()
                    ));
                } else {
                    out.push_str(&format!("== {family} (n = {n}) ==\n{report}"));
                }
            }
            if json {
                out = json_envelope("lint", errors, &out);
            }
            if errors > 0 {
                return Err(err(format!(
                    "lint found {errors} error(s)\n{}",
                    out.trim_end()
                )));
            }
            Ok(out)
        }
        "bias" => {
            let [m, k] = rest else {
                return Err(err("usage: hwperm bias <m> <k>"));
            };
            let m = parse_usize(m, "m")?;
            let k: u64 = k.parse().map_err(|_| err("invalid k"))?;
            if !(2..=63).contains(&m) {
                return Err(err("m must be 2..=63"));
            }
            if k == 0 || k as u128 >= (1u128 << m) {
                return Err(err("k must be in 1..2^m"));
            }
            let r = BiasReport::analytic(m, k);
            Ok(format!(
                "m = {m}, k = {k}: counts {}..{}, ratio {:.6}, difference {:.6}%\n",
                r.min_count,
                r.max_count,
                r.probability_ratio(),
                r.difference_percent()
            ))
        }
        "sort" => {
            let keys: Vec<u64> = rest
                .iter()
                .map(|s| s.parse().map_err(|_| err(format!("invalid key {s:?}"))))
                .collect::<Result<_, _>>()?;
            if keys.len() < 2 {
                return Err(err("need at least two keys"));
            }
            let width = keys
                .iter()
                .map(|&k| (64 - k.leading_zeros()) as usize)
                .max()
                .unwrap()
                .max(1);
            if width > 63 {
                return Err(err("keys must fit 63 bits"));
            }
            let mut sorter = SortingNetwork::new(keys.len(), width);
            let sorted = sorter.sort(&keys);
            Ok(format!(
                "{}\n",
                sorted
                    .iter()
                    .map(|k| k.to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            ))
        }
        "verilog" => {
            let [circuit, n] = rest else {
                return Err(err(
                    "usage: hwperm verilog <circuit> <n>  (circuit: converter | converter-pipelined | shuffle)",
                ));
            };
            let n = parse_usize(n, "n")?;
            if n < 2 {
                return Err(err("circuits require n >= 2"));
            }
            let (netlist, name) = match circuit.as_str() {
                "converter" => (
                    converter_netlist(n, ConverterOptions::default()),
                    format!("index_to_perm_{n}"),
                ),
                "converter-pipelined" => (
                    converter_netlist(
                        n,
                        ConverterOptions {
                            pipelined: true,
                            perm_input_port: false,
                        },
                    ),
                    format!("index_to_perm_pipe_{n}"),
                ),
                "shuffle" => (
                    shuffle_netlist(n, ShuffleOptions::default()),
                    format!("knuth_shuffle_{n}"),
                ),
                other => return Err(err(format!("unknown circuit {other:?}"))),
            };
            Ok(hwperm_logic::to_verilog(&netlist, &name))
        }
        "serve" => {
            const SERVE_USAGE: &str = "usage: hwperm serve <addr> [--workers N] [--chunk N] \
                 [--store D] [--max-conns N] [--idle-timeout-ms T] [--request-deadline-ms T]";
            let mut workers = 4usize;
            let mut chunk = hwperm_serve::DEFAULT_CHUNK;
            let mut store: Option<PathBuf> = None;
            let mut max_conns = 0usize;
            let mut idle_timeout_ms: Option<u64> = None;
            let mut request_deadline_ms: Option<u64> = None;
            let mut positional: Vec<&String> = Vec::new();
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--workers" => {
                        let v = it
                            .next()
                            .ok_or_else(|| err("--workers needs a thread count"))?;
                        workers = parse_usize(v, "worker count")?;
                        if !(1..=64).contains(&workers) {
                            return Err(err("--workers must be 1..=64"));
                        }
                    }
                    "--chunk" => {
                        let v = it.next().ok_or_else(|| err("--chunk needs a word count"))?;
                        chunk = parse_usize(v, "chunk size")?;
                        if !(1..=hwperm_serve::CHUNK_CAP).contains(&chunk) {
                            return Err(err(format!(
                                "--chunk must be 1..={}",
                                hwperm_serve::CHUNK_CAP
                            )));
                        }
                    }
                    "--store" => {
                        let v = it.next().ok_or_else(|| err("--store needs a directory"))?;
                        store = Some(PathBuf::from(v));
                    }
                    "--max-conns" => {
                        let v = it
                            .next()
                            .ok_or_else(|| err("--max-conns needs a connection count"))?;
                        max_conns = parse_usize(v, "connection limit")?;
                        if !(1..=100_000).contains(&max_conns) {
                            return Err(err("--max-conns must be 1..=100000"));
                        }
                    }
                    "--idle-timeout-ms" => {
                        let v = it
                            .next()
                            .ok_or_else(|| err("--idle-timeout-ms needs a duration"))?;
                        let ms = parse_usize(v, "idle timeout")? as u64;
                        if !(1..=3_600_000).contains(&ms) {
                            return Err(err("--idle-timeout-ms must be 1..=3600000"));
                        }
                        idle_timeout_ms = Some(ms);
                    }
                    "--request-deadline-ms" => {
                        let v = it
                            .next()
                            .ok_or_else(|| err("--request-deadline-ms needs a duration"))?;
                        let ms = parse_usize(v, "request deadline")? as u64;
                        if !(1..=3_600_000).contains(&ms) {
                            return Err(err("--request-deadline-ms must be 1..=3600000"));
                        }
                        request_deadline_ms = Some(ms);
                    }
                    _ => positional.push(arg),
                }
            }
            let [addr] = positional[..] else {
                return Err(err(SERVE_USAGE));
            };
            let listener = if addr.contains('/') {
                #[cfg(unix)]
                {
                    hwperm_serve::Listener::bind_unix(addr.as_str())
                        .map_err(|e| err(format!("cannot bind {addr}: {e}")))?
                }
                #[cfg(not(unix))]
                return Err(err("Unix-socket paths need a Unix platform"));
            } else {
                hwperm_serve::Listener::bind_tcp(addr.as_str())
                    .map_err(|e| err(format!("cannot bind {addr}: {e}")))?
            };
            let endpoint = listener
                .endpoint()
                .map_err(|e| err(format!("cannot resolve endpoint: {e}")))?;
            // Announce readiness on stdout *before* blocking in the
            // accept loop: with port 0 this line is how callers (and
            // the e2e test) learn the actual ephemeral port.
            {
                use std::io::Write as _;
                println!("listening on {endpoint}");
                let _ = std::io::stdout().flush();
            }
            let summary = hwperm_serve::serve(
                listener,
                hwperm_serve::ServeOptions {
                    workers,
                    default_chunk: chunk,
                    fixed_micros: None,
                    store_dir: store,
                    max_conns,
                    idle_timeout_ms,
                    request_deadline_ms,
                },
            )
            .map_err(|e| err(format!("serve failed: {e}")))?;
            Ok(format!("{summary}\n"))
        }
        "client" => {
            const CLIENT_USAGE: &str =
                "usage: hwperm client <addr> <request-json> [--retries N] [--backoff-ms T]";
            let mut retries = 1usize;
            let mut backoff_ms = 50u64;
            let mut positional: Vec<&String> = Vec::new();
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--retries" => {
                        let v = it
                            .next()
                            .ok_or_else(|| err("--retries needs an attempt count"))?;
                        retries = parse_usize(v, "retry count")?;
                        if !(1..=100).contains(&retries) {
                            return Err(err("--retries must be 1..=100"));
                        }
                    }
                    "--backoff-ms" => {
                        let v = it
                            .next()
                            .ok_or_else(|| err("--backoff-ms needs a duration"))?;
                        backoff_ms = parse_usize(v, "backoff")? as u64;
                        if !(1..=60_000).contains(&backoff_ms) {
                            return Err(err("--backoff-ms must be 1..=60000"));
                        }
                    }
                    _ => positional.push(arg),
                }
            }
            let [addr, request] = positional[..] else {
                return Err(err(CLIENT_USAGE));
            };
            if request.trim().is_empty() {
                return Err(err(CLIENT_USAGE));
            }
            let endpoint;
            if addr.contains('/') {
                #[cfg(unix)]
                {
                    endpoint = hwperm_serve::Endpoint::Unix(PathBuf::from(addr));
                }
                #[cfg(not(unix))]
                {
                    return Err(err("Unix-socket paths need a Unix platform"));
                }
            } else {
                use std::net::ToSocketAddrs as _;
                let resolved = addr
                    .to_socket_addrs()
                    .map_err(|e| err(format!("invalid address {addr:?}: {e}")))?
                    .next()
                    .ok_or_else(|| err(format!("invalid address {addr:?}: no socket address")))?;
                endpoint = hwperm_serve::Endpoint::Tcp(resolved);
            }
            // `--retries 1` (the default) is exactly the old behavior:
            // one attempt, fail loudly. More attempts replay idempotent
            // requests with exponential backoff and reconnect.
            let policy = hwperm_serve::RetryPolicy {
                max_attempts: retries as u32,
                backoff_ms,
                ..hwperm_serve::RetryPolicy::default()
            };
            let mut client = hwperm_serve::RetryClient::new(endpoint, policy);
            let response = client.request(request).map_err(|e| {
                let stats = client.stats();
                err(format!(
                    "request to {addr} failed after {} attempt(s): {e}",
                    stats.attempts
                ))
            })?;
            let envelope = String::from_utf8(response.envelope.clone())
                .map_err(|_| err("server sent a non-UTF-8 envelope"))?;
            let mut out = envelope.trim_end().to_string();
            out.push('\n');
            if !response.chunks.is_empty() {
                out.push_str(&format!(
                    "binary: {} chunk(s), {} word(s)\n",
                    response.chunks.len(),
                    response.words().len(),
                ));
            }
            if response.is_ok() {
                Ok(out)
            } else {
                // Error envelopes still print, but as a CLI error so
                // scripts see exit 2 — matching every other subcommand.
                Err(err(out.trim_end().to_string()))
            }
        }
        "store" => {
            const STORE_USAGE: &str =
                "usage: hwperm store <build|verify|stat> <n> [--dir D] [--jobs N] [--json]";
            let mut json = false;
            let mut jobs = 1usize;
            let mut jobs_given = false;
            let mut dir: Option<&String> = None;
            let mut positional: Vec<&String> = Vec::new();
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--json" => json = true,
                    "--jobs" => {
                        let v = it
                            .next()
                            .ok_or_else(|| err("--jobs needs a worker count"))?;
                        jobs = parse_usize(v, "worker count")?;
                        if !(1..=64).contains(&jobs) {
                            return Err(err("--jobs must be 1..=64"));
                        }
                        jobs_given = true;
                    }
                    "--dir" => {
                        dir = Some(it.next().ok_or_else(|| err("--dir needs a directory"))?);
                    }
                    _ => positional.push(arg),
                }
            }
            let &[action, n] = positional.as_slice() else {
                return Err(err(STORE_USAGE));
            };
            let n = parse_usize(n, "n")?;
            if !(1..=hwperm_store::MAX_STORE_N).contains(&n) {
                return Err(err(format!(
                    "store tables hold the full n! word table; n must be 1..={}",
                    hwperm_store::MAX_STORE_N
                )));
            }
            if jobs_given && action != "build" {
                return Err(err("--jobs only applies to store build"));
            }
            let dir = dir.map_or_else(|| PathBuf::from("hwperm-store"), PathBuf::from);
            let store_fail = |e: hwperm_store::StoreError| err(format!("store error: {e}"));
            let (text, row) = match action.as_str() {
                "build" => {
                    let report = hwperm_store::build(
                        &dir,
                        n,
                        &hwperm_store::BuildOptions {
                            jobs,
                            ..hwperm_store::BuildOptions::default()
                        },
                    )
                    .map_err(store_fail)?;
                    (
                        format!(
                            "store build n = {n}: {} chunk(s) ({} built, {} resumed), \
                             {} byte(s) written, complete, {}\n",
                            report.chunks_total,
                            report.built,
                            report.resumed,
                            report.bytes_written,
                            report.dir.display(),
                        ),
                        format!(
                            "{{\"action\":\"build\",\"n\":{n},\"dir\":\"{}\",\
                             \"chunks\":{},\"built\":{},\"resumed\":{},\
                             \"bytes_written\":{},\"complete\":{}}}",
                            json_escape(&report.dir.display().to_string()),
                            report.chunks_total,
                            report.built,
                            report.resumed,
                            report.bytes_written,
                            report.complete,
                        ),
                    )
                }
                "verify" => {
                    let report = hwperm_store::verify_store(&dir, n).map_err(store_fail)?;
                    (
                        format!(
                            "store verify n = {n}: OK — {} chunk(s), {} word(s), \
                             {} byte(s) validated\n",
                            report.chunks, report.words, report.bytes,
                        ),
                        format!(
                            "{{\"action\":\"verify\",\"n\":{n},\"chunks\":{},\
                             \"words\":{},\"bytes\":{},\"verdict\":\"ok\"}}",
                            report.chunks, report.words, report.bytes,
                        ),
                    )
                }
                "stat" => match hwperm_store::stat(&dir, n).map_err(store_fail)? {
                    Some(s) => (
                        format!(
                            "store stat n = {n}: {} — {}/{} chunk(s) of {} word(s) \
                             ({} words/chunk), {} byte(s)\n",
                            if s.complete { "complete" } else { "partial" },
                            s.chunks_present,
                            s.chunks_total,
                            s.total_words,
                            s.chunk_words,
                            s.bytes,
                        ),
                        format!(
                            "{{\"action\":\"stat\",\"n\":{n},\"present\":true,\
                             \"complete\":{},\"chunks\":{},\"chunks_present\":{},\
                             \"chunk_words\":{},\"total_words\":{},\"bytes\":{}}}",
                            s.complete,
                            s.chunks_total,
                            s.chunks_present,
                            s.chunk_words,
                            s.total_words,
                            s.bytes,
                        ),
                    ),
                    None => (
                        format!("store stat n = {n}: not built\n"),
                        format!("{{\"action\":\"stat\",\"n\":{n},\"present\":false}}"),
                    ),
                },
                other => {
                    return Err(err(format!(
                        "unknown store action {other:?} (actions: build | verify | stat)"
                    )))
                }
            };
            if json {
                Ok(json_envelope("store", 0, &row))
            } else {
                Ok(text)
            }
        }
        "faults" => {
            const FAULTS_USAGE: &str =
                "usage: hwperm faults <n> [--family F] [--jobs N] [--width W] [--json]";
            let mut json = false;
            let mut jobs = 1usize;
            let mut width = DEFAULT_WIDTH;
            let mut family: Option<&String> = None;
            let mut positional: Vec<&String> = Vec::new();
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--json" => json = true,
                    "--jobs" => {
                        let v = it
                            .next()
                            .ok_or_else(|| err("--jobs needs a worker count"))?;
                        let v = parse_usize(v, "worker count")?;
                        if v == 0 {
                            return Err(err("--jobs needs at least one worker"));
                        }
                        jobs = v;
                    }
                    "--width" => {
                        let v = it.next().ok_or_else(|| err("--width needs a lane count"))?;
                        width = parse_width(v)?;
                    }
                    "--family" => {
                        family = Some(
                            it.next()
                                .ok_or_else(|| err("--family needs a circuit family"))?,
                        );
                    }
                    _ => positional.push(arg),
                }
            }
            let n = parse_usize(positional.first().ok_or_else(|| err(FAULTS_USAGE))?, "n")?;
            if !(2..=5).contains(&n) {
                return Err(err(
                    "fault campaigns sweep every fault against every input; n must be 2..=5",
                ));
            }
            let families: Vec<&str> = match family.map(|s| s.as_str()) {
                None => vec!["converter"],
                Some("all") => CAMPAIGN_FAMILIES.to_vec(),
                Some(f) if CAMPAIGN_FAMILIES.contains(&f) => vec![f],
                Some(other) => {
                    return Err(err(format!(
                        "unknown campaign family {other:?} (families: converter | rank | \
                         combination | variation | sort | all)"
                    )))
                }
            };
            let mut out = String::new();
            for (i, fam) in families.iter().enumerate() {
                let (netlist, input, output) = campaign_family_netlist(fam, n)?;
                // The converter checks against the independent
                // block-decoded oracle plus the packed-permutation
                // validity guard; the other families self-golden
                // against their fault-free sweep. The campaign retires
                // `width` faults per tape walk; verdicts are
                // byte-identical at every width.
                let run =
                    |expected: &[u64], valid: Option<&(dyn Fn(u64) -> bool + Sync)>| match width {
                        64 => hwperm_verify::stuck_at_campaign_wide::<u64>(
                            &netlist, input, output, expected, valid, jobs,
                        ),
                        256 => hwperm_verify::stuck_at_campaign_wide::<W256>(
                            &netlist, input, output, expected, valid, jobs,
                        ),
                        _ => hwperm_verify::stuck_at_campaign_wide::<W512>(
                            &netlist, input, output, expected, valid, jobs,
                        ),
                    };
                let report = if *fam == "converter" {
                    let expected = hwperm_verify::expected_permutation_words(n);
                    let valid = move |word: u64| hwperm_perm::packed_is_permutation_u64(n, word);
                    run(&expected, Some(&valid))
                } else {
                    let golden = hwperm_verify::golden_output_words(&netlist, input, output);
                    run(&golden, None)
                };
                let silent: Vec<(String, u64)> = report
                    .silent_faults()
                    .map(|v| {
                        let hwperm_verify::FaultOutcome::Silent { witness } = v.outcome else {
                            unreachable!("silent_faults yields only silent verdicts");
                        };
                        (v.fault.to_string(), witness)
                    })
                    .collect();
                if json {
                    if i > 0 {
                        out.push(',');
                    }
                    let silent_json = silent
                        .iter()
                        .map(|(fault, witness)| {
                            format!("{{\"fault\":\"{fault}\",\"witness\":{witness}}}")
                        })
                        .collect::<Vec<_>>()
                        .join(",");
                    out.push_str(&format!(
                        "{{\"circuit\":\"{fam}\",\"n\":{n},\"workers\":{jobs},\
                         \"width\":{width},\
                         \"faults\":{},\"detected\":{},\"silent\":{},\"masked\":{},\
                         \"coverage_percent\":{:.2},\"guard_coverage_percent\":{:.2},\
                         \"silent_faults\":[{silent_json}]}}",
                        report.total(),
                        report.detected(),
                        report.silent(),
                        report.masked(),
                        report.coverage_percent(),
                        report.guard_coverage_percent(),
                    ));
                } else {
                    out.push_str(&format!(
                        "== {fam} (n = {n}) ==\n\
                         single-stuck-at universe: {} faults\n\
                         detected {} | silent {} | masked {}\n\
                         fault coverage {:.2}% | guard coverage {:.2}%\n",
                        report.total(),
                        report.detected(),
                        report.silent(),
                        report.masked(),
                        report.coverage_percent(),
                        report.guard_coverage_percent(),
                    ));
                    if silent.is_empty() {
                        out.push_str("silent faults: none\n");
                    } else {
                        out.push_str("silent faults:\n");
                        for (fault, witness) in &silent {
                            out.push_str(&format!("  {fault} — witness index {witness}\n"));
                        }
                    }
                }
            }
            if json {
                out = json_envelope("faults", 0, &out);
            }
            Ok(out)
        }
        "prove" => {
            const PROVE_USAGE: &str =
                "usage: hwperm prove <n> [--family F] [--jobs N] [--store D] [--json]";
            let mut json = false;
            let mut jobs = 1usize;
            let mut family: Option<&String> = None;
            let mut store: Option<&String> = None;
            let mut positional: Vec<&String> = Vec::new();
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--json" => json = true,
                    "--jobs" => {
                        let v = it
                            .next()
                            .ok_or_else(|| err("--jobs needs a worker count"))?;
                        let v = parse_usize(v, "worker count")?;
                        if v == 0 {
                            return Err(err("--jobs needs at least one worker"));
                        }
                        jobs = v;
                    }
                    "--family" => {
                        family = Some(
                            it.next()
                                .ok_or_else(|| err("--family needs a circuit family"))?,
                        );
                    }
                    "--store" => {
                        store = Some(it.next().ok_or_else(|| err("--store needs a directory"))?);
                    }
                    _ => positional.push(arg),
                }
            }
            let store = store.map(Path::new);
            let n = parse_usize(positional.first().ok_or_else(|| err(PROVE_USAGE))?, "n")?;
            if !(2..=9).contains(&n) {
                return Err(err(
                    "proof obligations need the n! oracle tables; n must be 2..=9",
                ));
            }
            let families: Vec<&str> = match family.map(|s| s.as_str()) {
                None => vec!["converter"],
                Some("all") => PROVE_FAMILIES.to_vec(),
                Some(f) if PROVE_FAMILIES.contains(&f) => vec![f],
                Some(other) => {
                    return Err(err(format!(
                        "unknown prove family {other:?} (families: converter | \
                         converter-pipelined | rank | combination | variation | all)"
                    )))
                }
            };
            // Obligations are independent; a small worker pool pulls
            // family indices off a shared counter.
            type FamilyVerdict = Result<(&'static str, hwperm_verify::ProveOutcome), CliError>;
            let workers = jobs.min(families.len());
            let next = std::sync::atomic::AtomicUsize::new(0);
            let slots: Vec<std::sync::Mutex<Option<FamilyVerdict>>> = families
                .iter()
                .map(|_| std::sync::Mutex::new(None))
                .collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(fam) = families.get(i) else { break };
                        let verdict = prove_family(fam, n, store);
                        *slots[i].lock().expect("prove slot poisoned") = Some(verdict);
                    });
                }
            });
            let mut out = String::new();
            let mut failures = 0usize;
            for (i, fam) in families.iter().enumerate() {
                let verdict = slots[i]
                    .lock()
                    .expect("prove slot poisoned")
                    .take()
                    .expect("prove worker finished every family");
                if i > 0 && json {
                    out.push(',');
                }
                match verdict {
                    Ok((obligation, outcome)) => {
                        let s = outcome.stats();
                        let stats_text = format!(
                            "vars {}, clauses {}, conflicts {}, decisions {}",
                            s.vars, s.clauses, s.conflicts, s.decisions
                        );
                        let stats_json = format!(
                            "\"vars\":{},\"clauses\":{},\"conflicts\":{},\
                             \"decisions\":{},\"propagations\":{}",
                            s.vars, s.clauses, s.conflicts, s.decisions, s.propagations
                        );
                        match outcome {
                            hwperm_verify::ProveOutcome::Proved(_) => {
                                if json {
                                    out.push_str(&format!(
                                        "{{\"circuit\":\"{fam}\",\"n\":{n},\
                                         \"obligation\":\"{obligation}\",\
                                         \"verdict\":\"proved\",{stats_json}}}"
                                    ));
                                } else {
                                    out.push_str(&format!(
                                        "== {fam} (n = {n}) ==\n\
                                         obligation: {obligation}\n\
                                         proved ({stats_text})\n"
                                    ));
                                }
                            }
                            hwperm_verify::ProveOutcome::Refuted(mismatch, _) => {
                                failures += 1;
                                if json {
                                    out.push_str(&format!(
                                        "{{\"circuit\":\"{fam}\",\"n\":{n},\
                                         \"obligation\":\"{obligation}\",\
                                         \"verdict\":\"refuted\",\
                                         \"counterexample\":{{\"index\":{},\
                                         \"port\":\"{}\",\"got\":{},\"want\":{}}},\
                                         {stats_json}}}",
                                        mismatch.index, mismatch.port, mismatch.got, mismatch.want
                                    ));
                                } else {
                                    out.push_str(&format!(
                                        "== {fam} (n = {n}) ==\n\
                                         obligation: {obligation}\n\
                                         REFUTED: {mismatch} ({stats_text})\n"
                                    ));
                                }
                            }
                            hwperm_verify::ProveOutcome::Unknown(_) => {
                                failures += 1;
                                if json {
                                    out.push_str(&format!(
                                        "{{\"circuit\":\"{fam}\",\"n\":{n},\
                                         \"obligation\":\"{obligation}\",\
                                         \"verdict\":\"unknown\",{stats_json}}}"
                                    ));
                                } else {
                                    out.push_str(&format!(
                                        "== {fam} (n = {n}) ==\n\
                                         obligation: {obligation}\n\
                                         unknown: conflict budget exhausted ({stats_text})\n"
                                    ));
                                }
                            }
                        }
                    }
                    Err(e) => {
                        failures += 1;
                        if json {
                            out.push_str(&format!(
                                "{{\"circuit\":\"{fam}\",\"n\":{n},\
                                 \"verdict\":\"invalid\",\"error\":\"{}\"}}",
                                e.0.replace('"', "\\\"")
                            ));
                        } else {
                            out.push_str(&format!("== {fam} (n = {n}) ==\ninvalid: {e}\n"));
                        }
                    }
                }
            }
            if json {
                out = json_envelope("prove", failures, &out);
            }
            if failures > 0 {
                return Err(err(format!(
                    "prove failed {failures} obligation(s)\n{}",
                    out.trim_end()
                )));
            }
            Ok(out)
        }
        "verify" => {
            const VERIFY_USAGE: &str =
                "usage: hwperm verify <n> [--batch] [--jobs N] [--width W] [--store D]";
            let batch = rest.iter().any(|a| a == "--batch");
            let mut jobs: Option<usize> = None;
            let mut width: Option<usize> = None;
            let mut store: Option<&String> = None;
            let mut positional: Vec<&String> = Vec::new();
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--batch" => {}
                    "--jobs" => {
                        let v = it
                            .next()
                            .ok_or_else(|| err("--jobs needs a worker count"))?;
                        let v = parse_usize(v, "worker count")?;
                        if v == 0 {
                            return Err(err("--jobs needs at least one worker"));
                        }
                        jobs = Some(v);
                    }
                    "--width" => {
                        let v = it.next().ok_or_else(|| err("--width needs a lane count"))?;
                        width = Some(parse_width(v)?);
                    }
                    "--store" => {
                        store = Some(it.next().ok_or_else(|| err("--store needs a directory"))?);
                    }
                    _ => positional.push(arg),
                }
            }
            if jobs.is_some() && !batch {
                return Err(err(
                    "--jobs requires --batch (the sharded sweep is word-level)",
                ));
            }
            if width.is_some() && !batch {
                return Err(err(
                    "--width requires --batch (the lane width is word-level)",
                ));
            }
            if store.is_some() && !batch {
                return Err(err(
                    "--store requires --batch (the expectation table is word-level)",
                ));
            }
            let width = width.unwrap_or(DEFAULT_WIDTH);
            let n = parse_usize(positional.first().ok_or_else(|| err(VERIFY_USAGE))?, "n")?;
            if !(2..=8).contains(&n) {
                return Err(err("verify sweeps exhaustively; n must be 2..=8"));
            }
            let total: u64 = (1..=n as u64).product();
            if batch {
                // Word-level sweep of the gate netlist itself: one index
                // per lane settles per netlist walk of the fused tape,
                // every output bit compared against the software
                // unranker. With --jobs, the index space is sharded into
                // contiguous per-worker blocks over one shared compiled
                // tape; the first-mismatch report is identical to the
                // sequential sweep's at every width.
                let netlist = converter_netlist(n, ConverterOptions::default());
                // The expectation table is loaded from the persisted
                // store when --store is given — a missing or corrupt
                // table is exit 2, never a silent recompute — and is
                // block-decoded otherwise; the words (and therefore
                // any mismatch witness) are byte-identical either way.
                let source = match store {
                    Some(dir) => TableSource::Store {
                        dir: PathBuf::from(dir),
                    },
                    None => TableSource::Computed { workers: 1 },
                };
                let expected = source
                    .permutation_words(n)
                    .map_err(|e| err(format!("store error: {e}")))?;
                match (jobs, width) {
                    (Some(workers), 64) => hwperm_verify::exhaustive_check_parallel(
                        &netlist, "index", "perm", &expected, workers,
                    ),
                    (Some(workers), 256) => hwperm_verify::exhaustive_check_parallel_wide::<W256>(
                        &netlist, "index", "perm", &expected, workers,
                    ),
                    (Some(workers), _) => hwperm_verify::exhaustive_check_parallel_wide::<W512>(
                        &netlist, "index", "perm", &expected, workers,
                    ),
                    (None, 64) => hwperm_verify::exhaustive_check_batched(
                        &netlist, "index", "perm", &expected,
                    ),
                    (None, 256) => hwperm_verify::exhaustive_check_batched_wide::<W256>(
                        &netlist, "index", "perm", &expected,
                    ),
                    (None, _) => hwperm_verify::exhaustive_check_batched_wide::<W512>(
                        &netlist, "index", "perm", &expected,
                    ),
                }
                .map_err(|m| err(format!("MISMATCH: {m}")))?;
            } else {
                let mut conv = IndexToPermConverter::new(n);
                for i in 0..total {
                    if conv.convert_u64(i) != hwperm_factoradic::unrank_u64(n, i) {
                        return Err(err(format!("MISMATCH at index {i}")));
                    }
                }
            }
            // Also one shuffle-circuit output validity check.
            let mut shuffle = KnuthShuffleCircuit::new(n);
            let p = shuffle.next_permutation();
            Permutation::try_from_slice(p.as_slice())
                .map_err(|e| err(format!("shuffle output invalid: {e}")))?;
            let table_note = match store {
                Some(dir) => format!(", store-backed table from {dir}"),
                None => String::new(),
            };
            let mode = match jobs {
                Some(workers) => {
                    format!(" (batched, {width} lanes/pass, {workers} workers{table_note})")
                }
                None if batch => format!(" (batched, {width} lanes/pass{table_note})"),
                None => String::new(),
            };
            Ok(format!(
                "OK: all {total} conversions match software for n = {n}{mode}\n"
            ))
        }
        other => Err(err(format!("unknown command {other:?}\n\n{USAGE}"))),
    }
}

fn render_random(src: &mut dyn RandomPermSource, count: usize) -> String {
    let mut out = String::new();
    for _ in 0..count {
        out.push_str(&format!("{}\n", src.next_permutation()));
    }
    out
}

fn join(v: &[u32]) -> String {
    v.iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(args: &[&str]) -> Result<String, CliError> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&owned)
    }

    #[test]
    fn unrank_and_rank_roundtrip() {
        assert_eq!(call(&["unrank", "4", "11"]).unwrap(), "1 3 2 0\n");
        assert_eq!(call(&["rank", "1", "3", "2", "0"]).unwrap(), "11\n");
    }

    #[test]
    fn unrank_rejects_out_of_range() {
        assert!(call(&["unrank", "4", "24"]).is_err());
        assert!(call(&["unrank", "4", "banana"]).is_err());
    }

    #[test]
    fn big_n_unrank_works() {
        let out = call(&["unrank", "25", "15511210043330985983999999"]).unwrap();
        // Last permutation of 25 elements: 24 23 ... 0.
        assert!(out.starts_with("24 23 22"));
    }

    #[test]
    fn combination_commands() {
        assert_eq!(call(&["combination", "5", "3", "0"]).unwrap(), "0 1 2\n");
        assert_eq!(
            call(&["rank-combination", "5", "2", "3", "4"]).unwrap(),
            "9\n"
        );
        assert!(call(&["combination", "5", "3", "10"]).is_err());
        assert!(call(&["rank-combination", "5", "3", "2"]).is_err());
    }

    #[test]
    fn variation_commands() {
        assert_eq!(call(&["variation", "5", "2", "0"]).unwrap(), "0 1\n");
        assert_eq!(call(&["rank-variation", "5", "0", "1"]).unwrap(), "0\n");
        assert!(call(&["variation", "5", "2", "20"]).is_err());
    }

    #[test]
    fn random_is_seeded_and_counted() {
        let a = call(&["random", "6", "3", "99"]).unwrap();
        let b = call(&["random", "6", "3", "99"]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 3);
        for line in a.lines() {
            assert!(line.parse::<Permutation>().is_ok());
        }
    }

    #[test]
    fn random_circuit_emits_valid_permutations() {
        let out = call(&["random-circuit", "4", "5"]).unwrap();
        assert_eq!(out.lines().count(), 5);
        for line in out.lines() {
            assert!(line.parse::<Permutation>().is_ok());
        }
    }

    #[test]
    fn all_lists_range() {
        let out = call(&["all", "3"]).unwrap();
        assert_eq!(out.lines().count(), 6);
        let out = call(&["all", "4", "10", "13"]).unwrap();
        assert_eq!(out.lines().count(), 3);
        assert!(out.contains("1 3 0 2"));
    }

    #[test]
    fn resources_reports() {
        for circuit in ["converter", "converter-pipelined", "shuffle", "rank"] {
            let out = call(&["resources", circuit, "5"]).unwrap();
            assert!(out.contains("LUTs"), "{circuit}: {out}");
        }
        assert!(call(&["resources", "nonsense", "5"]).is_err());
    }

    #[test]
    fn bias_matches_paper_example() {
        let out = call(&["bias", "5", "24"]).unwrap();
        assert!(out.contains("ratio 2.0"), "{out}");
    }

    #[test]
    fn sort_through_network() {
        assert_eq!(call(&["sort", "9", "3", "7", "3"]).unwrap(), "3 3 7 9\n");
        assert!(call(&["sort", "5"]).is_err());
    }

    #[test]
    fn verify_passes() {
        assert!(call(&["verify", "5"]).unwrap().contains("OK"));
        assert!(call(&["verify", "20"]).is_err());
    }

    #[test]
    fn verify_batch_passes() {
        let out = call(&["verify", "4", "--batch"]).unwrap();
        assert!(out.contains("OK: all 24 conversions"));
        // The default width is the widest compiled word.
        assert!(out.contains("batched, 512 lanes/pass"));
        // Flag order must not matter, and the range check still bites.
        assert!(call(&["verify", "--batch", "5"]).unwrap().contains("OK"));
        assert!(call(&["verify", "--batch", "20"]).is_err());
        assert!(call(&["verify", "--batch"]).is_err());
    }

    #[test]
    fn verify_width_selects_the_lane_count() {
        for width in ["64", "256", "512"] {
            let out = call(&["verify", "4", "--batch", "--width", width]).unwrap();
            assert!(out.contains("OK: all 24 conversions"), "{out}");
            assert!(
                out.contains(&format!("batched, {width} lanes/pass")),
                "width = {width}: {out}"
            );
            let sharded =
                call(&["verify", "5", "--batch", "--width", width, "--jobs", "3"]).unwrap();
            assert!(
                sharded.contains(&format!("batched, {width} lanes/pass, 3 workers")),
                "width = {width}: {sharded}"
            );
        }
    }

    #[test]
    fn verify_jobs_shards_the_batched_sweep() {
        for workers in ["1", "2", "8"] {
            let out = call(&["verify", "5", "--batch", "--jobs", workers]).unwrap();
            assert!(out.contains("OK: all 120 conversions"), "{out}");
            assert!(
                out.contains(&format!("{workers} workers")),
                "workers = {workers}: {out}"
            );
        }
        // Flag order must not matter.
        assert!(call(&["verify", "--jobs", "2", "--batch", "4"])
            .unwrap()
            .contains("OK"));
    }

    #[test]
    fn verify_jobs_rejects_bad_usage() {
        // --jobs without --batch, a missing/zero/garbage count.
        assert!(call(&["verify", "5", "--jobs", "4"]).is_err());
        assert!(call(&["verify", "5", "--batch", "--jobs"]).is_err());
        assert!(call(&["verify", "5", "--batch", "--jobs", "0"]).is_err());
        assert!(call(&["verify", "5", "--batch", "--jobs", "many"]).is_err());
    }

    #[test]
    fn verify_width_rejects_bad_usage() {
        // --width without --batch, a missing/unsupported/garbage width.
        assert!(call(&["verify", "5", "--width", "512"]).is_err());
        assert!(call(&["verify", "5", "--batch", "--width"]).is_err());
        assert!(call(&["verify", "5", "--batch", "--width", "128"]).is_err());
        assert!(call(&["verify", "5", "--batch", "--width", "0"]).is_err());
        assert!(call(&["verify", "5", "--batch", "--width", "wide"]).is_err());
    }

    #[test]
    fn faults_campaign_reports_coverage() {
        let out = call(&["faults", "4"]).unwrap();
        assert!(out.contains("== converter (n = 4) =="), "{out}");
        assert!(out.contains("single-stuck-at universe:"), "{out}");
        assert!(out.contains("fault coverage"), "{out}");
        assert!(out.contains("silent faults:"), "{out}");
        assert!(out.contains("witness index"), "{out}");
    }

    #[test]
    fn faults_all_sweeps_every_campaign_family() {
        let out = call(&["faults", "3", "--family", "all", "--jobs", "2"]).unwrap();
        for family in CAMPAIGN_FAMILIES {
            assert!(out.contains(&format!("== {family} (n = 3) ==")), "{out}");
        }
    }

    #[test]
    fn faults_results_identical_across_worker_counts() {
        let one = call(&["faults", "4", "--jobs", "1"]).unwrap();
        for workers in ["2", "3", "8"] {
            assert_eq!(
                call(&["faults", "4", "--jobs", workers]).unwrap(),
                one,
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn faults_json_is_machine_readable() {
        let out = call(&["faults", "4", "--json"]).unwrap();
        assert!(out.starts_with("{\"tool\":\"hwperm\""), "{out}");
        assert!(out.trim_end().ends_with('}'), "{out}");
        assert!(out.contains("\"command\":\"faults\""), "{out}");
        assert!(out.contains("\"status\":\"ok\",\"exit\":0"), "{out}");
        assert!(out.contains("\"circuit\":\"converter\""), "{out}");
        assert!(out.contains("\"width\":512"), "{out}");
        assert!(out.contains("\"coverage_percent\":"), "{out}");
        assert!(out.contains("\"silent_faults\":[{\"fault\":\""), "{out}");
    }

    #[test]
    fn faults_width_is_reported_and_verdicts_are_width_invariant() {
        // The JSON row records the requested lane width; the text
        // report carries no width so the verdicts must come back
        // byte-identical at 64, 256 and 512 lanes per pass.
        let json = call(&["faults", "3", "--json", "--width", "256"]).unwrap();
        assert!(json.starts_with("{\"tool\":\"hwperm\""), "{json}");
        assert!(json.contains("\"status\":\"ok\",\"exit\":0"), "{json}");
        assert!(json.contains("\"width\":256"), "{json}");
        let narrow = call(&["faults", "3", "--family", "all", "--width", "64"]).unwrap();
        for width in ["256", "512"] {
            assert_eq!(
                call(&["faults", "3", "--family", "all", "--width", width]).unwrap(),
                narrow,
                "width = {width}"
            );
        }
    }

    #[test]
    fn faults_rejects_bad_usage_as_user_errors() {
        // The satellite requirement: --jobs 0 and out-of-range <n> must
        // come back as CliErrors (exit 2 in main), never panics.
        assert!(call(&["faults", "4", "--jobs", "0"]).is_err());
        assert!(call(&["faults", "4", "--jobs"]).is_err());
        assert!(call(&["faults", "4", "--jobs", "many"]).is_err());
        assert!(call(&["faults", "1"]).is_err());
        assert!(call(&["faults", "6"]).is_err());
        assert!(call(&["faults", "banana"]).is_err());
        assert!(call(&["faults"]).is_err());
        assert!(call(&["faults", "4", "--family", "nonsense"]).is_err());
        assert!(call(&["faults", "4", "--family"]).is_err());
        assert!(call(&["faults", "4", "--width"]).is_err());
        assert!(call(&["faults", "4", "--width", "128"]).is_err());
        assert!(call(&["faults", "4", "--width", "0"]).is_err());
        assert!(call(&["faults", "4", "--width", "wide"]).is_err());
    }

    #[test]
    fn verilog_command_emits_module() {
        let out = call(&["verilog", "converter", "4"]).unwrap();
        assert!(out.contains("module index_to_perm_4("));
        assert!(out.contains("endmodule"));
        let pipe = call(&["verilog", "converter-pipelined", "4"]).unwrap();
        assert!(pipe.contains("always @(posedge clk)"));
        assert!(call(&["verilog", "bogus", "4"]).is_err());
    }

    #[test]
    fn lint_clean_family_reports_no_errors() {
        let out = call(&["lint", "converter", "4"]).unwrap();
        assert!(out.contains("== converter (n = 4) =="), "{out}");
        assert!(out.contains("0 error(s)"), "{out}");
    }

    #[test]
    fn lint_all_sweeps_every_family() {
        let out = call(&["lint", "all", "3"]).unwrap();
        for family in LINT_FAMILIES {
            assert!(out.contains(&format!("== {family} (n = 3) ==")), "{out}");
        }
    }

    #[test]
    fn lint_json_is_machine_readable() {
        let out = call(&["lint", "rank", "4", "--json"]).unwrap();
        assert!(out.starts_with("{\"tool\":\"hwperm\""), "{out}");
        assert!(out.trim_end().ends_with('}'), "{out}");
        assert!(out.contains("\"command\":\"lint\""), "{out}");
        assert!(out.contains("\"circuit\":\"rank\""), "{out}");
        assert!(out.contains("\"n\":4"), "{out}");
        assert!(out.contains("\"tape\":{\"ops\":"), "{out}");
        assert!(out.contains("\"fused_away\":"), "{out}");
        assert!(out.contains("\"op_counts\":{\""), "{out}");
        assert!(out.contains("\"diagnostics\""), "{out}");
    }

    /// Pulls the integer value of `key` out of a lint JSON row.
    fn json_usize(out: &str, key: &str) -> usize {
        let key = format!("\"{key}\":");
        let at = out.find(&key).unwrap_or_else(|| panic!("{key} in {out}"));
        out[at + key.len()..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap()
    }

    #[test]
    fn lint_tape_stats_show_fusion_savings_on_every_converter_family() {
        // The acceptance bar: opcode fusion must shorten the tape on
        // every index-to-codeword converter family, and the stats row
        // must reconcile (ops + fused_away = unfused_ops).
        for family in [
            "converter",
            "converter-pipelined",
            "combination",
            "variation",
        ] {
            for n in ["4", "5"] {
                let out = call(&["lint", family, n, "--json"]).unwrap();
                let ops = json_usize(&out, "ops");
                let unfused = json_usize(&out, "unfused_ops");
                let saved = json_usize(&out, "fused_away");
                assert_eq!(ops + saved, unfused, "{family} n={n}: {out}");
                assert!(saved > 0, "{family} n={n}: fusion saved nothing: {out}");
            }
        }
    }

    #[test]
    fn prove_converter_is_proved() {
        let out = call(&["prove", "4"]).unwrap();
        assert!(out.contains("== converter (n = 4) =="), "{out}");
        assert!(out.contains("obligation: "), "{out}");
        assert!(out.contains("proved (vars "), "{out}");
    }

    #[test]
    fn prove_all_discharges_every_family() {
        let out = call(&["prove", "4", "--family", "all", "--jobs", "2"]).unwrap();
        for family in PROVE_FAMILIES {
            assert!(out.contains(&format!("== {family} (n = 4) ==")), "{out}");
        }
        assert!(!out.contains("REFUTED"), "{out}");
        assert!(!out.contains("unknown"), "{out}");
    }

    #[test]
    fn prove_results_identical_across_worker_counts() {
        let one = call(&["prove", "3", "--family", "all", "--jobs", "1"]).unwrap();
        for workers in ["2", "5"] {
            assert_eq!(
                call(&["prove", "3", "--family", "all", "--jobs", workers]).unwrap(),
                one,
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn prove_json_is_machine_readable() {
        let out = call(&["prove", "4", "--family", "rank", "--json"]).unwrap();
        assert!(out.starts_with("{\"tool\":\"hwperm\""), "{out}");
        assert!(out.contains("\"command\":\"prove\""), "{out}");
        assert!(out.contains("\"circuit\":\"rank\""), "{out}");
        assert!(out.contains("\"verdict\":\"proved\""), "{out}");
        assert!(out.contains("\"conflicts\":"), "{out}");
        assert!(out.contains("\"propagations\":"), "{out}");
    }

    #[test]
    fn prove_rejects_bad_usage_as_user_errors() {
        assert!(call(&["prove"]).is_err());
        assert!(call(&["prove", "1"]).is_err());
        assert!(call(&["prove", "10"]).is_err());
        assert!(call(&["prove", "banana"]).is_err());
        assert!(call(&["prove", "4", "--family", "nonsense"]).is_err());
        assert!(call(&["prove", "4", "--family"]).is_err());
        assert!(call(&["prove", "4", "--jobs", "0"]).is_err());
        assert!(call(&["prove", "4", "--jobs"]).is_err());
    }

    #[test]
    fn json_envelope_schema_is_shared_across_subcommands() {
        // Every JSON-emitting subcommand wraps its results in the same
        // envelope so downstream tooling can parse one schema. Keys
        // must appear in the same order for all of them — including
        // the envelopes the serve wire protocol returns.
        let lint = call(&["lint", "converter", "4", "--json"]).unwrap();
        let faults = call(&["faults", "4", "--json"]).unwrap();
        let prove = call(&["prove", "4", "--json"]).unwrap();
        let store_dir =
            std::env::temp_dir().join(format!("hwperm-cli-envelope-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&store_dir);
        let dir_arg = store_dir.to_str().unwrap().to_string();
        let store = call(&["store", "stat", "5", "--dir", &dir_arg, "--json"]).unwrap();
        let _ = std::fs::remove_dir_all(&store_dir);
        // The serve envelope arrives through the `client` subcommand,
        // proving the CLI wrapper is wire-transparent end to end.
        let serve = {
            let listener = hwperm_serve::Listener::bind_tcp("127.0.0.1:0").unwrap();
            let server =
                hwperm_serve::spawn(listener, hwperm_serve::ServeOptions::default()).unwrap();
            let addr = server.endpoint().to_string();
            let out = call(&[
                "client",
                &addr,
                "{\"id\":1,\"cmd\":\"unrank\",\"n\":4,\"index\":11}",
            ])
            .unwrap();
            server.stop().unwrap();
            out
        };
        for (cmd, out) in [
            ("lint", &lint),
            ("faults", &faults),
            ("prove", &prove),
            ("store", &store),
            ("unrank", &serve),
        ] {
            let prefix = format!(
                "{{\"tool\":\"hwperm\",\"version\":\"{}\",\"command\":\"{cmd}\",\
                 \"status\":\"ok\",\"exit\":0,\"errors\":0,\"results\":[",
                env!("CARGO_PKG_VERSION")
            );
            assert!(out.starts_with(&prefix), "{cmd}: {out}");
        }
        // The CLI envelopes end at the results array; serve appends its
        // per-request metrics trailer after the shared prefix.
        for (cmd, out) in [
            ("lint", &lint),
            ("faults", &faults),
            ("prove", &prove),
            ("store", &store),
        ] {
            assert!(out.trim_end().ends_with("]}"), "{cmd}: {out}");
        }
        assert!(
            serve.contains("],\"metrics\":{\"id\":1,"),
            "serve envelope missing metrics trailer: {serve}"
        );
    }

    #[test]
    fn serve_rejects_bad_usage() {
        assert!(call(&["serve"]).is_err());
        assert!(call(&["serve", "a", "b"]).is_err());
        assert!(call(&["serve", "127.0.0.1:0", "--workers", "0"]).is_err());
        assert!(call(&["serve", "127.0.0.1:0", "--workers", "65"]).is_err());
        assert!(call(&["serve", "127.0.0.1:0", "--workers"]).is_err());
        assert!(call(&["serve", "127.0.0.1:0", "--chunk", "0"]).is_err());
        assert!(call(&["serve", "127.0.0.1:0", "--chunk", "70000"]).is_err());
        // Hardening flags: zero, out-of-range, and missing values are
        // all exit-2 usage errors.
        assert!(call(&["serve", "127.0.0.1:0", "--max-conns", "0"]).is_err());
        assert!(call(&["serve", "127.0.0.1:0", "--max-conns", "100001"]).is_err());
        assert!(call(&["serve", "127.0.0.1:0", "--max-conns"]).is_err());
        assert!(call(&["serve", "127.0.0.1:0", "--idle-timeout-ms", "0"]).is_err());
        assert!(call(&["serve", "127.0.0.1:0", "--idle-timeout-ms", "3600001"]).is_err());
        assert!(call(&["serve", "127.0.0.1:0", "--idle-timeout-ms"]).is_err());
        assert!(call(&["serve", "127.0.0.1:0", "--request-deadline-ms", "0"]).is_err());
        assert!(call(&["serve", "127.0.0.1:0", "--request-deadline-ms", "nope"]).is_err());
        assert!(call(&["serve", "127.0.0.1:0", "--request-deadline-ms"]).is_err());
        // An unbindable address fails fast instead of serving.
        assert!(call(&["serve", "256.0.0.1:9"]).is_err());
    }

    #[test]
    fn client_rejects_bad_usage_and_dead_servers() {
        assert!(call(&["client"]).is_err());
        assert!(call(&["client", "127.0.0.1:1"]).is_err());
        assert!(call(&["client", "127.0.0.1:1", "  "]).is_err());
        assert!(call(&["client", "not an address", "{}"]).is_err());
        // A resolvable address with nothing listening is a connect error.
        assert!(call(&["client", "127.0.0.1:1", "{\"id\":1,\"cmd\":\"stats\"}"]).is_err());
        // Retry flags: validation is exit-2, and a retrying client
        // against a dead server still fails (loudly, after its budget).
        assert!(call(&["client", "127.0.0.1:1", "{}", "--retries", "0"]).is_err());
        assert!(call(&["client", "127.0.0.1:1", "{}", "--retries", "101"]).is_err());
        assert!(call(&["client", "127.0.0.1:1", "{}", "--retries"]).is_err());
        assert!(call(&["client", "127.0.0.1:1", "{}", "--backoff-ms", "0"]).is_err());
        assert!(call(&["client", "127.0.0.1:1", "{}", "--backoff-ms", "60001"]).is_err());
        assert!(call(&["client", "127.0.0.1:1", "{}", "--backoff-ms"]).is_err());
        let dead = call(&[
            "client",
            "127.0.0.1:1",
            "{\"id\":1,\"cmd\":\"stats\"}",
            "--retries",
            "2",
            "--backoff-ms",
            "1",
        ]);
        let message = dead.unwrap_err().0;
        assert!(
            message.contains("failed after 2 attempt(s)"),
            "retrying client must report its attempt count: {message}"
        );
    }

    #[test]
    fn client_retries_reach_a_live_server() {
        let listener = hwperm_serve::Listener::bind_tcp("127.0.0.1:0").unwrap();
        let server = hwperm_serve::spawn(listener, hwperm_serve::ServeOptions::default()).unwrap();
        let addr = server.endpoint().to_string();
        let out = call(&[
            "client",
            &addr,
            "{\"id\":3,\"cmd\":\"unrank\",\"n\":4,\"index\":11}",
            "--retries",
            "3",
            "--backoff-ms",
            "5",
        ])
        .unwrap();
        server.stop().unwrap();
        assert!(out.contains("\"command\":\"unrank\""), "{out}");
        assert!(out.contains("\"status\":\"ok\""), "{out}");
    }

    #[test]
    fn serve_hardening_flags_reach_the_server() {
        // A gated single-slot server started through the CLI arm:
        // checks the flags parse into ServeOptions and the stats
        // envelope carries the new counters end to end.
        let listener = hwperm_serve::Listener::bind_tcp("127.0.0.1:0").unwrap();
        let server = hwperm_serve::spawn(
            listener,
            hwperm_serve::ServeOptions {
                max_conns: 8,
                idle_timeout_ms: Some(5_000),
                request_deadline_ms: Some(30_000),
                ..hwperm_serve::ServeOptions::default()
            },
        )
        .unwrap();
        let addr = server.endpoint().to_string();
        let out = call(&["client", &addr, "{\"id\":1,\"cmd\":\"stats\"}"]).unwrap();
        server.stop().unwrap();
        for key in [
            "\"uptime_ms\":",
            "\"conns_rejected\":0",
            "\"requests_timed_out\":0",
            "\"retries_observed\":0",
        ] {
            assert!(out.contains(key), "stats envelope missing {key}: {out}");
        }
    }

    #[test]
    fn client_surfaces_error_envelopes_as_exit_2() {
        let listener = hwperm_serve::Listener::bind_tcp("127.0.0.1:0").unwrap();
        let server = hwperm_serve::spawn(listener, hwperm_serve::ServeOptions::default()).unwrap();
        let addr = server.endpoint().to_string();
        // A block request reports its binary chunk tally after the envelope.
        let ok = call(&[
            "client",
            &addr,
            "{\"id\":7,\"cmd\":\"block\",\"n\":4,\"start\":0,\"end\":24}",
        ])
        .unwrap();
        assert!(ok.contains("\"command\":\"block\""), "{ok}");
        assert!(ok.contains("binary: 1 chunk(s), 24 word(s)"), "{ok}");
        // An in-protocol error envelope still prints, but as exit 2.
        let bad = call(&["client", &addr, "{\"id\":8,\"cmd\":\"unrank\",\"n\":99}"]);
        server.stop().unwrap();
        let message = bad.unwrap_err().0;
        assert!(
            message.contains("\"status\":\"error\""),
            "error envelope not surfaced: {message}"
        );
    }

    #[test]
    fn store_rejects_bad_usage_as_user_errors() {
        assert!(call(&["store"]).is_err());
        assert!(call(&["store", "build"]).is_err());
        assert!(call(&["store", "polish", "5"]).is_err());
        assert!(call(&["store", "build", "0"]).is_err());
        assert!(call(&["store", "build", "10"]).is_err());
        assert!(call(&["store", "build", "5", "--jobs", "0"]).is_err());
        assert!(call(&["store", "build", "5", "--jobs", "65"]).is_err());
        assert!(call(&["store", "build", "5", "--dir"]).is_err());
        assert!(call(&["store", "stat", "5", "--jobs", "2"]).is_err());
        // Word-level expectation tables only exist for batched sweeps.
        assert!(call(&["verify", "4", "--store", "somewhere"]).is_err());
    }

    #[test]
    fn store_lifecycle_build_stat_verify_and_sweep() {
        let dir =
            std::env::temp_dir().join(format!("hwperm-cli-store-lifecycle-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_arg = dir.to_str().unwrap().to_string();
        // Cold stat: present but not built.
        let cold = call(&["store", "stat", "5", "--dir", &dir_arg]).unwrap();
        assert!(cold.contains("not built"), "{cold}");
        // Cold verify is a loud miss, never a silent recompute.
        let missing = call(&["store", "verify", "5", "--dir", &dir_arg]).unwrap_err();
        assert!(
            missing.0.contains("no complete store table"),
            "{}",
            missing.0
        );
        // Build, then everything downstream goes warm.
        let built = call(&["store", "build", "5", "--dir", &dir_arg, "--jobs", "2"]).unwrap();
        assert!(built.contains("complete"), "{built}");
        let again = call(&["store", "build", "5", "--dir", &dir_arg]).unwrap();
        assert!(again.contains("(0 built, 1 resumed)"), "{again}");
        let stat = call(&["store", "stat", "5", "--dir", &dir_arg]).unwrap();
        assert!(stat.contains("complete"), "{stat}");
        let verified = call(&["store", "verify", "5", "--dir", &dir_arg]).unwrap();
        assert!(verified.contains("OK"), "{verified}");
        // Store-backed sweep and proof match the computed paths.
        let sweep = call(&["verify", "5", "--batch", "--store", &dir_arg]).unwrap();
        assert!(sweep.contains("OK"), "{sweep}");
        assert!(sweep.contains("store-backed table"), "{sweep}");
        let computed = call(&["verify", "5", "--batch"]).unwrap();
        assert!(computed.contains("OK"), "{computed}");
        let prove = call(&["prove", "5", "--family", "converter", "--store", &dir_arg]).unwrap();
        assert!(prove.contains("proved"), "{prove}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lint_rejects_bad_input() {
        assert!(call(&["lint", "nonsense", "4"]).is_err());
        assert!(call(&["lint", "converter", "1"]).is_err());
        assert!(call(&["lint", "converter"]).is_err());
    }

    #[test]
    fn unknown_command_shows_usage() {
        let e = call(&["frobnicate"]).unwrap_err();
        assert!(e.0.contains("usage"));
    }

    #[test]
    fn help_prints_usage() {
        assert!(call(&["help"]).unwrap().contains("unrank"));
    }
}
