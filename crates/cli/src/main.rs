//! The `hwperm` binary: thin I/O shell over [`hwperm_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match hwperm_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("hwperm: {e}");
            std::process::exit(2);
        }
    }
}
