#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Permutations of `{0, …, n−1}` and the operations the paper's circuits
//! are specified against.
//!
//! The paper writes a permutation as the sequence of elements it places at
//! positions `0, 1, …, n−1` (one-line notation); e.g. for `n = 4`,
//! "`1 0 2 3`" maps position 0 to element 1. [`Permutation`] stores exactly
//! that sequence.
//!
//! Provided here:
//! - group operations: [`Permutation::compose`], [`Permutation::inverse`],
//!   parity, cycle structure;
//! - combinatorial structure: [`Permutation::lehmer`] codes (the digit
//!   vector of the factorial number system), fixed points, derangements;
//! - enumeration: [`Permutation::next_lex`] / [`Permutation::prev_lex`];
//! - the paper's packed single-word encoding (`n·⌈log₂n⌉` bits,
//!   [`Permutation::pack`]);
//! - the software Knuth (Fisher–Yates) shuffle ([`shuffle::knuth_shuffle`]),
//!   the reference for the Section III circuit.
//!
//! ```
//! use hwperm_perm::Permutation;
//!
//! let p = Permutation::try_from_slice(&[1, 0, 2, 3]).unwrap();
//! assert_eq!(p.lehmer(), vec![1, 0, 0, 0]);          // Table I, N = 6
//! assert_eq!(p.inverse(), p);                        // a transposition
//! assert_eq!(p.fixed_points(), vec![2, 3]);
//! ```

mod group;
mod lex;
mod ops;
mod pack;
mod permutation;
pub mod shuffle;

pub use lex::{next_lex_in_slice, prev_lex_in_slice, AllPermutations};
pub use pack::{packed_identity_u64, packed_is_derangement, packed_is_permutation_u64};
pub use permutation::{PermError, Permutation};

/// Bits needed to represent one element of an `n`-element permutation:
/// `⌈log₂ n⌉`, with a minimum of 1 bit (the paper's per-element width).
///
/// ```
/// use hwperm_perm::bits_per_element;
/// assert_eq!(bits_per_element(4), 2);  // the paper's 8-bit word for n = 4
/// assert_eq!(bits_per_element(9), 4);  // 36-bit word for n = 9
/// ```
pub fn bits_per_element(n: usize) -> usize {
    if n <= 2 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_per_element_matches_paper() {
        // The paper: "each word has n log2(n) bits, which is 36 for n = 9".
        assert_eq!(9 * bits_per_element(9), 36);
        assert_eq!(bits_per_element(1), 1);
        assert_eq!(bits_per_element(2), 1);
        assert_eq!(bits_per_element(3), 2);
        assert_eq!(bits_per_element(8), 3);
        assert_eq!(bits_per_element(16), 4);
        assert_eq!(bits_per_element(17), 5);
    }
}
