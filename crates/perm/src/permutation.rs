//! The [`Permutation`] type: construction, validation, and basic queries.

use std::fmt;
use std::str::FromStr;

/// Errors from constructing a [`Permutation`] out of untrusted data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PermError {
    /// An element is `>= n`.
    OutOfRange {
        /// Position of the offending element.
        index: usize,
        /// The offending element.
        value: u32,
        /// The permutation length.
        n: usize,
    },
    /// An element occurs twice.
    Duplicate {
        /// The repeated element.
        value: u32,
    },
}

impl fmt::Display for PermError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PermError::OutOfRange { index, value, n } => write!(
                f,
                "element {value} at position {index} is out of range for a {n}-element permutation"
            ),
            PermError::Duplicate { value } => write!(f, "element {value} occurs more than once"),
        }
    }
}

impl std::error::Error for PermError {}

/// A permutation of `{0, …, n−1}` in one-line notation: `self[i]` is the
/// element placed at position `i`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Permutation {
    map: Vec<u32>,
}

impl Permutation {
    /// The identity permutation `0 1 … n−1` (the paper's default input
    /// permutation to both circuits).
    pub fn identity(n: usize) -> Self {
        Permutation {
            map: (0..n as u32).collect(),
        }
    }

    /// Validates that `v` is a permutation of `{0, …, n−1}`.
    pub fn try_from_vec(v: Vec<u32>) -> Result<Self, PermError> {
        let n = v.len();
        let mut seen = vec![false; n];
        for (index, &value) in v.iter().enumerate() {
            if value as usize >= n {
                return Err(PermError::OutOfRange { index, value, n });
            }
            if std::mem::replace(&mut seen[value as usize], true) {
                return Err(PermError::Duplicate { value });
            }
        }
        Ok(Permutation { map: v })
    }

    /// Like [`Permutation::try_from_vec`], from a borrowed slice.
    pub fn try_from_slice(v: &[u32]) -> Result<Self, PermError> {
        Self::try_from_vec(v.to_vec())
    }

    /// Builds a permutation without validation.
    ///
    /// Debug builds still assert validity; callers must guarantee `v` is a
    /// permutation of `{0, …, n−1}` (e.g. output of a verified generator).
    pub fn from_vec_unchecked(v: Vec<u32>) -> Self {
        debug_assert!(
            Self::try_from_slice(&v).is_ok(),
            "from_vec_unchecked received a non-permutation"
        );
        Permutation { map: v }
    }

    /// Number of elements `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.map.len()
    }

    /// The underlying one-line notation.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.map
    }

    /// Consumes the permutation, returning its one-line notation.
    pub fn into_vec(self) -> Vec<u32> {
        self.map
    }

    /// Mutable view of the one-line notation for in-place rearrangement
    /// within this crate. Callers must preserve the permutation
    /// invariant (only element-preserving rewrites are allowed).
    #[inline]
    pub(crate) fn as_mut_slice(&mut self) -> &mut [u32] {
        &mut self.map
    }

    /// Resets to the identity in place, without reallocating.
    pub fn reset_identity(&mut self) {
        for (i, v) in self.map.iter_mut().enumerate() {
            *v = i as u32;
        }
    }

    /// Element at position `i`.
    #[inline]
    pub fn at(&self, i: usize) -> u32 {
        self.map[i]
    }

    /// `true` iff this is the identity.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &v)| i as u32 == v)
    }

    /// Positions `i` with `self[i] == i`.
    pub fn fixed_points(&self) -> Vec<usize> {
        self.map
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i as u32 == v)
            .map(|(i, _)| i)
            .collect()
    }

    /// A derangement has no fixed points (Section III.C of the paper).
    pub fn is_derangement(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &v)| i as u32 != v)
    }

    /// Swaps the elements at positions `i` and `j` in place.
    #[inline]
    pub fn swap_positions(&mut self, i: usize, j: usize) {
        self.map.swap(i, j);
    }

    /// Reorders `src` by this permutation: `out[i] = src[self[i]]`.
    ///
    /// This is the data-permutation reading used by the paper's FFT /
    /// data-stream-reordering motivation.
    pub fn apply<T: Clone>(&self, src: &[T]) -> Vec<T> {
        assert_eq!(src.len(), self.n(), "apply: length mismatch");
        self.map.iter().map(|&j| src[j as usize].clone()).collect()
    }

    /// Scatters `src` by this permutation: `out[self[i]] = src[i]`
    /// (the inverse of [`Permutation::apply`]).
    pub fn scatter<T: Clone + Default>(&self, src: &[T]) -> Vec<T> {
        assert_eq!(src.len(), self.n(), "scatter: length mismatch");
        let mut out = vec![T::default(); src.len()];
        for (i, &j) in self.map.iter().enumerate() {
            out[j as usize] = src[i].clone();
        }
        out
    }
}

impl fmt::Display for Permutation {
    /// One-line notation separated by spaces, e.g. `2 0 1 3`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for v in &self.map {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{v}")?;
            first = false;
        }
        Ok(())
    }
}

impl fmt::Debug for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Permutation[{self}]")
    }
}

impl FromStr for Permutation {
    type Err = String;

    /// Parses whitespace-separated one-line notation, e.g. `"2 0 1 3"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let v: Vec<u32> = s
            .split_whitespace()
            .map(|t| {
                t.parse::<u32>()
                    .map_err(|e| format!("bad element {t:?}: {e}"))
            })
            .collect::<Result<_, _>>()?;
        Permutation::try_from_vec(v).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_properties() {
        let id = Permutation::identity(5);
        assert!(id.is_identity());
        assert_eq!(id.fixed_points(), vec![0, 1, 2, 3, 4]);
        assert!(!id.is_derangement());
    }

    #[test]
    fn zero_length_permutation_is_fine() {
        let id = Permutation::identity(0);
        assert!(id.is_identity());
        assert!(id.is_derangement()); // vacuously
        assert_eq!(id.n(), 0);
    }

    #[test]
    fn validation_rejects_out_of_range() {
        assert_eq!(
            Permutation::try_from_slice(&[0, 4, 1]),
            Err(PermError::OutOfRange {
                index: 1,
                value: 4,
                n: 3
            })
        );
    }

    #[test]
    fn validation_rejects_duplicates() {
        assert_eq!(
            Permutation::try_from_slice(&[0, 1, 1, 2]),
            Err(PermError::Duplicate { value: 1 })
        );
    }

    #[test]
    fn paper_example_derangements() {
        // From Section III.C: "0123" has four fixed points, "0132" has ... ,
        // "1032" is a derangement. (Paper text: permutation 3210-style
        // examples; these are the canonical ones.)
        assert_eq!(
            Permutation::try_from_slice(&[0, 1, 2, 3])
                .unwrap()
                .fixed_points()
                .len(),
            4
        );
        assert_eq!(
            Permutation::try_from_slice(&[0, 1, 3, 2])
                .unwrap()
                .fixed_points()
                .len(),
            2
        );
        assert!(Permutation::try_from_slice(&[1, 0, 3, 2])
            .unwrap()
            .is_derangement());
    }

    #[test]
    fn apply_and_scatter_are_inverse() {
        let p = Permutation::try_from_slice(&[2, 0, 3, 1]).unwrap();
        let data = vec!["a", "b", "c", "d"];
        let forward = p.apply(&data);
        assert_eq!(forward, vec!["c", "a", "d", "b"]);
        let back = p.scatter(&forward);
        assert_eq!(back, data);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn apply_checks_length() {
        Permutation::identity(3).apply(&[1, 2]);
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let p = Permutation::try_from_slice(&[3, 1, 0, 2]).unwrap();
        assert_eq!(p.to_string(), "3 1 0 2");
        assert_eq!("3 1 0 2".parse::<Permutation>().unwrap(), p);
    }

    #[test]
    fn parse_rejects_invalid() {
        assert!("0 0 1".parse::<Permutation>().is_err());
        assert!("0 x".parse::<Permutation>().is_err());
        // Empty string is the length-0 identity.
        assert_eq!("".parse::<Permutation>().unwrap(), Permutation::identity(0));
    }
}
