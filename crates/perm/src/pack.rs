//! The paper's packed single-word encoding of a permutation.
//!
//! "In the circuit described by the Verilog code, each permutation was
//! represented by a single word. Here, each word has `n log₂(n)` bits,
//! which is 36 for n = 9." Element at position `i` occupies bits
//! `[(n−1−i)·b, (n−i)·b)` where `b = ⌈log₂ n⌉` — position 0 is the
//! most-significant field, matching the paper's example where `1 0 2 3`
//! is the 8-bit binary number `01 00 10 11`.

use crate::{bits_per_element, Permutation};
use hwperm_bignum::Ubig;

impl Permutation {
    /// Packs the permutation into a single `n·⌈log₂n⌉`-bit word.
    ///
    /// ```
    /// use hwperm_perm::Permutation;
    /// // Paper Fig. 4 text: "0100 0010" ... for n = 4, permutation 1 0 2 3
    /// // packs as 0b01_00_10_11.
    /// let p = Permutation::try_from_slice(&[1, 0, 2, 3]).unwrap();
    /// assert_eq!(p.pack().to_u64(), Some(0b01_00_10_11));
    /// ```
    pub fn pack(&self) -> Ubig {
        let b = bits_per_element(self.n());
        let mut out = Ubig::zero();
        for (i, &v) in self.as_slice().iter().enumerate() {
            let base = (self.n() - 1 - i) * b;
            for bit in 0..b {
                if (v >> bit) & 1 == 1 {
                    out.set_bit(base + bit, true);
                }
            }
        }
        out
    }

    /// Unpacks a word produced by [`Permutation::pack`], validating that
    /// the fields form a permutation.
    pub fn unpack(n: usize, word: &Ubig) -> Result<Permutation, crate::PermError> {
        let b = bits_per_element(n);
        let mut v = Vec::with_capacity(n);
        for i in 0..n {
            let base = (n - 1 - i) * b;
            let mut e = 0u32;
            for bit in 0..b {
                if word.bit(base + bit) {
                    e |= 1 << bit;
                }
            }
            v.push(e);
        }
        Permutation::try_from_vec(v)
    }

    /// Total width of the packed word in bits.
    pub fn packed_width(n: usize) -> usize {
        n * bits_per_element(n)
    }

    /// `u64` fast path of [`Permutation::pack`]: the same
    /// `n·⌈log₂n⌉`-bit word, assembled by a single shift/or fold with no
    /// bignum allocation.
    ///
    /// # Panics
    /// Panics if the packed word exceeds 64 bits (`n > 16`).
    pub fn pack_u64(&self) -> u64 {
        let n = self.n();
        let b = bits_per_element(n);
        assert!(
            n * b <= 64,
            "packed width {} exceeds the u64 fast path (n = {n})",
            n * b
        );
        // Position 0 is the most-significant field, so a left-to-right
        // fold lands every element at the same offset as pack().
        self.as_slice()
            .iter()
            .fold(0u64, |acc, &v| (acc << b) | v as u64)
    }
}

/// The packed word of the identity permutation (`0 1 … n−1`), on the
/// `u64` fast path. Fixed points of any packed word are exactly the
/// fields where it agrees with this constant.
///
/// # Panics
/// Panics if the packed word exceeds 64 bits (`n > 16`).
pub fn packed_identity_u64(n: usize) -> u64 {
    let b = bits_per_element(n);
    assert!(
        n * b <= 64,
        "packed width {} exceeds the u64 fast path (n = {n})",
        n * b
    );
    (0..n as u64).fold(0u64, |acc, v| (acc << b) | v)
}

/// Derangement test directly on a packed `u64` word, without unpacking:
/// XOR against the packed identity and require every `⌈log₂n⌉`-bit
/// field to be non-zero (a zero field is a fixed point). This is the
/// allocation-free predicate behind the Monte-Carlo fast path.
///
/// # Panics
/// Panics if the packed word exceeds 64 bits (`n > 16`).
pub fn packed_is_derangement(n: usize, word: u64) -> bool {
    let b = bits_per_element(n);
    let field = (1u64 << b) - 1;
    let mut diff = word ^ packed_identity_u64(n);
    for _ in 0..n {
        if diff & field == 0 {
            return false;
        }
        diff >>= b;
    }
    true
}

/// Permutation-validity test directly on a packed `u64` word, without
/// unpacking: every `⌈log₂n⌉`-bit field must name an element below `n`,
/// the bits above the `n·⌈log₂n⌉`-bit payload must be zero, and the
/// popcount of the seen-element bitboard must equal `n` (an element
/// seen twice folds onto one bit, so duplicates shrink the popcount).
/// This is the cheap output checker behind `GuardedPermSource`.
///
/// # Panics
/// Panics if the packed word exceeds 64 bits (`n > 16`).
pub fn packed_is_permutation_u64(n: usize, word: u64) -> bool {
    let b = bits_per_element(n);
    let width = n * b;
    assert!(
        width <= 64,
        "packed width {width} exceeds the u64 fast path (n = {n})"
    );
    if width < 64 && word >> width != 0 {
        return false;
    }
    if n == 0 {
        return true;
    }
    let field = (1u64 << b) - 1;
    let mut seen = 0u64;
    let mut w = word;
    for _ in 0..n {
        let e = w & field;
        if e >= n as u64 {
            return false;
        }
        seen |= 1u64 << e;
        w >>= b;
    }
    seen.count_ones() as usize == n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_byte_examples() {
        // Section III.C: "00011011 and 00011110 represent 0123 and 0132".
        let id = Permutation::identity(4);
        assert_eq!(id.pack().to_u64(), Some(0b00_01_10_11));
        let p = Permutation::try_from_slice(&[0, 1, 3, 2]).unwrap();
        assert_eq!(p.pack().to_u64(), Some(0b00_01_11_10));
    }

    #[test]
    fn fig4_corner_values() {
        // Fig. 4: permutations 0123 and 3210 correspond to binary values
        // 00011011 = 27 and 11100100 = 228.
        assert_eq!(Permutation::identity(4).pack().to_u64(), Some(27));
        assert_eq!(Permutation::last_lex(4).pack().to_u64(), Some(228));
    }

    #[test]
    fn pack_unpack_roundtrip_exhaustive_n5() {
        for p in Permutation::all(5) {
            let w = p.pack();
            assert_eq!(Permutation::unpack(5, &w).unwrap(), p);
        }
    }

    #[test]
    fn packed_width_matches_paper() {
        assert_eq!(Permutation::packed_width(9), 36);
        assert_eq!(Permutation::packed_width(4), 8);
    }

    #[test]
    fn unpack_rejects_non_permutation_words() {
        // 0b00_00_10_11: element 0 appears twice.
        assert!(Permutation::unpack(4, &Ubig::from(0b00_00_10_11u64)).is_err());
    }

    #[test]
    fn wide_permutation_packs_beyond_u64() {
        // n = 20 needs 100 bits.
        let p = Permutation::last_lex(20);
        let w = p.pack();
        assert!(w.bit_len() > 64);
        assert_eq!(Permutation::unpack(20, &w).unwrap(), p);
    }

    #[test]
    fn pack_u64_matches_pack_exhaustive_n5_and_at_the_width_limit() {
        for p in Permutation::all(5) {
            assert_eq!(Some(p.pack_u64()), p.pack().to_u64());
        }
        // n = 16 is exactly 64 bits — the widest the fast path accepts.
        let wide = Permutation::last_lex(16);
        assert_eq!(Some(wide.pack_u64()), wide.pack().to_u64());
    }

    #[test]
    #[should_panic(expected = "exceeds the u64 fast path")]
    fn pack_u64_rejects_wide_permutations() {
        Permutation::identity(17).pack_u64();
    }

    #[test]
    fn packed_identity_agrees_with_identity_pack() {
        for n in [1usize, 2, 4, 9, 16] {
            assert_eq!(packed_identity_u64(n), Permutation::identity(n).pack_u64());
        }
    }

    #[test]
    fn packed_permutation_check_matches_unpack_exhaustively() {
        // Every 8-bit word either unpacks to a valid n = 4 permutation
        // or fails the packed predicate — the two must agree bit for
        // bit over the whole word space.
        for word in 0..256u64 {
            assert_eq!(
                packed_is_permutation_u64(4, word),
                Permutation::unpack(4, &Ubig::from(word)).is_ok(),
                "word = {word:#010b}"
            );
        }
    }

    #[test]
    fn packed_permutation_check_accepts_all_valid_words() {
        for n in [1usize, 2, 3, 5, 8] {
            for p in Permutation::all(n) {
                assert!(packed_is_permutation_u64(n, p.pack_u64()), "p = {p}");
            }
        }
    }

    #[test]
    fn packed_permutation_check_rejects_corrupt_words() {
        // Any single-bit flip of a packed n = 4 word collides two fields
        // (the 2-bit fields cover 0..4 exactly), so every flip must be
        // caught.
        for p in Permutation::all(4) {
            let w = p.pack_u64();
            for bit in 0..64 {
                assert!(
                    !packed_is_permutation_u64(4, w ^ (1u64 << bit)),
                    "p = {p}, bit = {bit}"
                );
            }
        }
        // Out-of-range field (element 5 for n = 5) and high-bit garbage.
        let w5 = Permutation::identity(5).pack_u64();
        assert!(!packed_is_permutation_u64(5, w5 | 0b101 << 12));
        assert!(!packed_is_permutation_u64(5, w5 | 1u64 << 63));
        // n = 16 fills the whole u64: no high-bit check applies.
        assert!(packed_is_permutation_u64(
            16,
            Permutation::last_lex(16).pack_u64()
        ));
    }

    #[test]
    fn packed_derangement_matches_slice_predicate_exhaustively() {
        for n in [1usize, 2, 4, 5] {
            for p in Permutation::all(n) {
                assert_eq!(
                    packed_is_derangement(n, p.pack_u64()),
                    p.is_derangement(),
                    "n = {n}, p = {p}"
                );
            }
        }
    }
}
