//! Group operations and combinatorial structure: composition, inversion,
//! parity, inversions, cycles, and Lehmer codes.

use crate::Permutation;

impl Permutation {
    /// Composition `(self ∘ other)[i] = self[other[i]]` — apply `other`
    /// first, then `self`.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.n(), other.n(), "compose: size mismatch");
        Permutation::from_vec_unchecked(
            other
                .as_slice()
                .iter()
                .map(|&j| self.at(j as usize))
                .collect(),
        )
    }

    /// The inverse permutation: `inv[self[i]] = i`.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0u32; self.n()];
        for (i, &v) in self.as_slice().iter().enumerate() {
            inv[v as usize] = i as u32;
        }
        Permutation::from_vec_unchecked(inv)
    }

    /// `true` iff `self ∘ self` is the identity.
    pub fn is_involution(&self) -> bool {
        self.as_slice()
            .iter()
            .enumerate()
            .all(|(i, &v)| self.at(v as usize) == i as u32)
    }

    /// Number of inversions: pairs `i < j` with `self[i] > self[j]`.
    ///
    /// Merge-sort counting, `O(n log n)`; the inversion count equals the
    /// sum of the Lehmer digits, i.e. the digit sum of the paper's
    /// factorial-number-system index in unary weights.
    pub fn inversions(&self) -> u64 {
        fn sort_count(v: &mut [u32], buf: &mut [u32]) -> u64 {
            let n = v.len();
            if n <= 1 {
                return 0;
            }
            let mid = n / 2;
            let mut count = sort_count(&mut v[..mid], buf) + sort_count(&mut v[mid..], buf);
            let (mut i, mut j, mut k) = (0, mid, 0);
            while i < mid && j < n {
                if v[i] <= v[j] {
                    buf[k] = v[i];
                    i += 1;
                } else {
                    buf[k] = v[j];
                    j += 1;
                    count += (mid - i) as u64;
                }
                k += 1;
            }
            buf[k..k + mid - i].copy_from_slice(&v[i..mid]);
            let copied = k + mid - i;
            v[..copied].copy_from_slice(&buf[..copied]);
            count
        }
        let mut v = self.as_slice().to_vec();
        let mut buf = vec![0u32; v.len()];
        sort_count(&mut v, &mut buf)
    }

    /// Parity: `true` for an even permutation (even number of inversions).
    pub fn is_even(&self) -> bool {
        self.inversions().is_multiple_of(2)
    }

    /// Sign: `+1` for even, `−1` for odd.
    pub fn sign(&self) -> i8 {
        if self.is_even() {
            1
        } else {
            -1
        }
    }

    /// Cycle decomposition; each cycle starts at its smallest element,
    /// cycles sorted by starting element. Fixed points are length-1 cycles.
    pub fn cycles(&self) -> Vec<Vec<u32>> {
        let n = self.n();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut cycle = Vec::new();
            let mut cur = start;
            while !seen[cur] {
                seen[cur] = true;
                cycle.push(cur as u32);
                cur = self.at(cur) as usize;
            }
            out.push(cycle);
        }
        out
    }

    /// Multiset of cycle lengths, sorted ascending.
    pub fn cycle_type(&self) -> Vec<usize> {
        let mut t: Vec<usize> = self.cycles().iter().map(Vec::len).collect();
        t.sort_unstable();
        t
    }

    /// The Lehmer code `L` of this permutation:
    /// `L[i] = #{ j > i : self[j] < self[i] }`.
    ///
    /// This is exactly the digit vector of the paper's factorial number
    /// system: the index of the permutation is
    /// `Σ L[i] · (n−1−i)!` (Section II, Table I). Always `L[i] ≤ n−1−i`
    /// and `L[n−1] = 0` (the placeholder digit `s_0`).
    pub fn lehmer(&self) -> Vec<u32> {
        let n = self.n();
        let v = self.as_slice();
        let mut code = vec![0u32; n];
        // O(n²); fine for the sizes circuits are generated at. The
        // factoradic crate provides the O(n log n) ranking for bulk use.
        for i in 0..n {
            code[i] = v[i + 1..].iter().filter(|&&x| x < v[i]).count() as u32;
        }
        code
    }

    /// Reconstructs a permutation from its Lehmer code (inverse of
    /// [`Permutation::lehmer`]). This is the *software reference* for the
    /// paper's one-hot-MUX element-selection cascade: digit `L[i]` selects
    /// the `L[i]`-th smallest of the not-yet-used elements.
    ///
    /// # Panics
    /// Panics if any digit exceeds its bound `L[i] ≤ n−1−i`.
    pub fn from_lehmer(code: &[u32]) -> Permutation {
        let n = code.len();
        let mut remaining: Vec<u32> = (0..n as u32).collect();
        let mut out = Vec::with_capacity(n);
        for (i, &d) in code.iter().enumerate() {
            assert!(
                (d as usize) < remaining.len(),
                "Lehmer digit {d} at position {i} out of range (≤ {})",
                n - 1 - i
            );
            out.push(remaining.remove(d as usize));
        }
        Permutation::from_vec_unchecked(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: &[u32]) -> Permutation {
        Permutation::try_from_slice(v).unwrap()
    }

    #[test]
    fn compose_applies_right_then_left() {
        let a = p(&[1, 2, 0]); // position i -> element
        let b = p(&[0, 2, 1]);
        // (a∘b)[i] = a[b[i]]
        assert_eq!(a.compose(&b), p(&[1, 0, 2]));
    }

    #[test]
    fn compose_with_identity() {
        let a = p(&[3, 0, 2, 1]);
        let id = Permutation::identity(4);
        assert_eq!(a.compose(&id), a);
        assert_eq!(id.compose(&a), a);
    }

    #[test]
    fn inverse_cancels() {
        let a = p(&[2, 0, 3, 1]);
        assert!(a.compose(&a.inverse()).is_identity());
        assert!(a.inverse().compose(&a).is_identity());
    }

    #[test]
    fn involutions() {
        assert!(p(&[1, 0, 3, 2]).is_involution());
        assert!(Permutation::identity(4).is_involution());
        assert!(!p(&[1, 2, 0]).is_involution());
    }

    #[test]
    fn inversions_small_cases() {
        assert_eq!(Permutation::identity(5).inversions(), 0);
        assert_eq!(p(&[1, 0]).inversions(), 1);
        assert_eq!(p(&[3, 2, 1, 0]).inversions(), 6); // n(n-1)/2 for reversal
        assert_eq!(p(&[2, 0, 1]).inversions(), 2);
    }

    #[test]
    fn inversions_equal_lehmer_digit_sum() {
        for v in [&[2u32, 0, 3, 1][..], &[4, 3, 2, 1, 0], &[0, 2, 1, 4, 3]] {
            let perm = p(v);
            let sum: u64 = perm.lehmer().iter().map(|&d| d as u64).sum();
            assert_eq!(perm.inversions(), sum);
        }
    }

    #[test]
    fn sign_of_transposition_is_negative() {
        assert_eq!(p(&[1, 0, 2, 3]).sign(), -1);
        assert_eq!(Permutation::identity(4).sign(), 1);
        // Sign is multiplicative.
        let a = p(&[1, 0, 2, 3]);
        let b = p(&[0, 2, 1, 3]);
        assert_eq!(a.compose(&b).sign(), a.sign() * b.sign());
    }

    #[test]
    fn cycles_cover_all_elements() {
        let a = p(&[1, 2, 0, 4, 3, 5]);
        assert_eq!(a.cycles(), vec![vec![0, 1, 2], vec![3, 4], vec![5]]);
        assert_eq!(a.cycle_type(), vec![1, 2, 3]);
    }

    #[test]
    fn lehmer_of_identity_and_reversal() {
        assert_eq!(Permutation::identity(4).lehmer(), vec![0, 0, 0, 0]);
        assert_eq!(p(&[3, 2, 1, 0]).lehmer(), vec![3, 2, 1, 0]);
    }

    #[test]
    fn lehmer_roundtrip_all_of_s4() {
        // Exhaustive over all 24 permutations of n = 4 (Table I's domain).
        let mut cur = Permutation::identity(4);
        loop {
            let code = cur.lehmer();
            assert_eq!(Permutation::from_lehmer(&code), cur);
            match cur.next_lex() {
                Some(next) => cur = next,
                None => break,
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_lehmer_rejects_bad_digit() {
        Permutation::from_lehmer(&[4, 0, 0, 0]); // digit 4 > 3
    }
}
