//! Additional group structure: powers, order, conjugation.

use crate::Permutation;

impl Permutation {
    /// `self` composed with itself `k` times (`k = 0` gives the
    //// identity). Binary exponentiation, `O(n log k)`.
    pub fn power(&self, k: u64) -> Permutation {
        let mut result = Permutation::identity(self.n());
        let mut base = self.clone();
        let mut k = k;
        while k > 0 {
            if k & 1 == 1 {
                result = base.compose(&result);
            }
            base = base.compose(&base);
            k >>= 1;
        }
        result
    }

    /// The order of the permutation in `S_n`: the least `k > 0` with
    /// `self^k = id`, i.e. the lcm of the cycle lengths. `u128` covers
    /// Landau's function comfortably for any practical `n`.
    pub fn order(&self) -> u128 {
        self.cycle_type()
            .into_iter()
            .fold(1u128, |acc, len| lcm(acc, len as u128))
    }

    /// Conjugation: `g ∘ self ∘ g⁻¹` — the relabeling of `self` by `g`.
    /// Conjugate permutations always share a cycle type.
    pub fn conjugate_by(&self, g: &Permutation) -> Permutation {
        g.compose(self).compose(&g.inverse())
    }
}

fn gcd(a: u128, b: u128) -> u128 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u128, b: u128) -> u128 {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: &[u32]) -> Permutation {
        Permutation::try_from_slice(v).unwrap()
    }

    #[test]
    fn power_basics() {
        let a = p(&[1, 2, 0]); // 3-cycle
        assert!(a.power(0).is_identity());
        assert_eq!(a.power(1), a);
        assert_eq!(a.power(2), a.compose(&a));
        assert!(a.power(3).is_identity());
        assert_eq!(a.power(4), a);
    }

    #[test]
    fn power_large_exponent() {
        let a = p(&[1, 2, 3, 4, 0]); // 5-cycle
        assert_eq!(a.power(1_000_000_000_001), a.power(1_000_000_000_001 % 5));
    }

    #[test]
    fn order_is_lcm_of_cycles() {
        // (0 1 2)(3 4): order lcm(3, 2) = 6.
        let a = p(&[1, 2, 0, 4, 3]);
        assert_eq!(a.order(), 6);
        assert!(a.power(6).is_identity());
        assert!(!a.power(3).is_identity());
        assert_eq!(Permutation::identity(7).order(), 1);
    }

    #[test]
    fn order_divides_group_order() {
        // Lagrange: element order divides n! — spot check over S_5.
        for perm in Permutation::all(5) {
            assert_eq!(120 % perm.order(), 0, "{perm}");
        }
    }

    #[test]
    fn conjugation_preserves_cycle_type() {
        let a = p(&[1, 2, 0, 4, 3]);
        let g = p(&[4, 2, 0, 1, 3]);
        let c = a.conjugate_by(&g);
        assert_eq!(c.cycle_type(), a.cycle_type());
        assert_ne!(c, a, "this pair is not commuting");
    }

    #[test]
    fn conjugation_by_identity_is_noop() {
        let a = p(&[3, 1, 0, 2]);
        assert_eq!(a.conjugate_by(&Permutation::identity(4)), a);
    }
}
