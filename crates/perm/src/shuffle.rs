//! Software Knuth (Fisher–Yates) shuffle — the reference algorithm for the
//! Section III circuit — plus the biased-integer variant the paper's Fig. 2
//! random-integer block actually computes.

use crate::Permutation;

/// A source of uniform random integers: `next_below(k)` returns a value in
/// `[0, k)`. Implementations live in `hwperm-rng` (LFSR-based, exactly the
/// hardware behaviour) and in tests (deterministic sequences).
pub trait RandomBelow {
    /// A uniformly (or hardware-approximately-uniformly) distributed
    /// integer in `[0, k)`. `k` must be at least 1.
    fn next_below(&mut self, k: u64) -> u64;
}

/// Blanket impl so closures can be used directly in tests and examples.
impl<F: FnMut(u64) -> u64> RandomBelow for F {
    fn next_below(&mut self, k: u64) -> u64 {
        self(k)
    }
}

/// In-place Knuth shuffle, exactly the dataflow of the paper's Fig. 3
/// cascade: stage `j` swaps position `j` with a random position in
/// `[j, n)` ("an element is interchanged with itself or any of the
/// elements to its right"). The final stage (`j = n−2`) either swaps the
/// last two elements or not, with equal probability.
pub fn knuth_shuffle_in_place<R: RandomBelow + ?Sized>(perm: &mut Permutation, rng: &mut R) {
    let n = perm.n();
    for j in 0..n.saturating_sub(1) {
        let choices = (n - j) as u64;
        let offset = rng.next_below(choices);
        debug_assert!(offset < choices);
        perm.swap_positions(j, j + offset as usize);
    }
}

/// Applies the Knuth shuffle to the identity, producing a fresh uniformly
/// random permutation (the paper's "Input Permutation" default).
pub fn knuth_shuffle<R: RandomBelow + ?Sized>(n: usize, rng: &mut R) -> Permutation {
    let mut p = Permutation::identity(n);
    knuth_shuffle_in_place(&mut p, rng);
    p
}

/// The *sorted-biased* generator of Oommen & Ng (cited in Section III.A as
/// motivation: distributions producing "almost sorted" permutations with
/// greater frequency). Each stage draws from a geometric-like distribution
/// that favours offset 0 with weight `bias` (0 ⇒ uniform, large ⇒ nearly
/// sorted). Used by the sorting-assessment example.
pub fn biased_shuffle<R: RandomBelow + ?Sized>(n: usize, bias: u32, rng: &mut R) -> Permutation {
    let mut p = Permutation::identity(n);
    for j in 0..n.saturating_sub(1) {
        let choices = (n - j) as u64;
        // Take the min of (bias+1) uniform draws: skews toward 0, keeping
        // support over the whole range so every permutation stays reachable.
        let mut offset = rng.next_below(choices);
        for _ in 0..bias {
            offset = offset.min(rng.next_below(choices));
        }
        p.swap_positions(j, j + offset as usize);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Deterministic counter-based "RNG" for structural tests.
    struct Cycler(u64);
    impl RandomBelow for Cycler {
        fn next_below(&mut self, k: u64) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 33) % k
        }
    }

    #[test]
    fn shuffle_outputs_valid_permutations() {
        let mut rng = Cycler(42);
        for n in [0usize, 1, 2, 5, 16, 64] {
            let p = knuth_shuffle(n, &mut rng);
            assert_eq!(p.n(), n);
            // Constructed through swaps of the identity, so validity is
            // structural; re-validate anyway.
            assert!(Permutation::try_from_slice(p.as_slice()).is_ok());
        }
    }

    #[test]
    fn zero_offsets_leave_identity() {
        let mut rng = |_k: u64| 0u64;
        let p = knuth_shuffle(6, &mut rng);
        assert!(p.is_identity());
    }

    #[test]
    fn max_offsets_rotate() {
        // Always choosing the largest offset swaps j with n-1 at each stage.
        let mut rng = |k: u64| k - 1;
        let p = knuth_shuffle(4, &mut rng);
        // Trace: 0123 -> 3120 -> 3021 -> 3012
        assert_eq!(p.as_slice(), &[3, 0, 1, 2]);
    }

    #[test]
    fn every_s3_permutation_reachable() {
        // Drive the shuffle with all 3×2 = 6 offset combinations; each must
        // yield a distinct permutation (the bijectivity that makes the
        // Knuth shuffle uniform).
        let mut seen = HashMap::new();
        for a in 0..3u64 {
            for b in 0..2u64 {
                let mut seq = vec![a, b].into_iter();
                let mut rng = |_k: u64| seq.next().unwrap();
                let p = knuth_shuffle(3, &mut rng);
                *seen.entry(p.as_slice().to_vec()).or_insert(0) += 1;
            }
        }
        assert_eq!(seen.len(), 6);
        assert!(seen.values().all(|&c| c == 1));
    }

    #[test]
    fn shuffle_is_roughly_uniform() {
        // Chi-square sanity check on n = 3 over 6000 samples.
        let mut rng = Cycler(7);
        let mut counts = HashMap::new();
        let trials = 6000;
        for _ in 0..trials {
            let p = knuth_shuffle(3, &mut rng);
            *counts.entry(p.as_slice().to_vec()).or_insert(0u64) += 1;
        }
        assert_eq!(counts.len(), 6);
        let expected = trials as f64 / 6.0;
        let chi2: f64 = counts
            .values()
            .map(|&c| (c as f64 - expected).powi(2) / expected)
            .sum();
        // 5 degrees of freedom; 99.9th percentile ≈ 20.5.
        assert!(chi2 < 20.5, "chi2 = {chi2}");
    }

    #[test]
    fn biased_shuffle_prefers_sortedness() {
        let mut rng = Cycler(123);
        let trials = 500;
        let n = 8;
        let mut inv_uniform = 0u64;
        let mut inv_biased = 0u64;
        for _ in 0..trials {
            inv_uniform += knuth_shuffle(n, &mut rng).inversions();
            inv_biased += biased_shuffle(n, 3, &mut rng).inversions();
        }
        assert!(
            inv_biased < inv_uniform,
            "biased shuffle should average fewer inversions ({inv_biased} vs {inv_uniform})"
        );
    }

    #[test]
    fn biased_with_zero_bias_is_plain_shuffle() {
        let p1 = {
            let mut rng = Cycler(99);
            biased_shuffle(10, 0, &mut rng)
        };
        let p2 = {
            let mut rng = Cycler(99);
            knuth_shuffle(10, &mut rng)
        };
        assert_eq!(p1, p2);
    }
}
