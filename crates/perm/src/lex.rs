//! Lexicographic order: successor, predecessor, first/last, and an
//! iterator over all `n!` permutations.
//!
//! Lexicographic order over one-line notation is exactly the order induced
//! by the factorial-number-system index (Table I of the paper), so these
//! are used to cross-check the converter and to let parallel workers walk
//! a block `[lo, hi)` after unranking `lo`.

use crate::Permutation;

impl Permutation {
    /// The next permutation in lexicographic order, or `None` if `self`
    /// is the last one (descending sequence). Classic Knuth Algorithm L.
    pub fn next_lex(&self) -> Option<Permutation> {
        let mut v = self.as_slice().to_vec();
        let n = v.len();
        if n < 2 {
            return None;
        }
        // Longest descending suffix; pivot is just before it.
        let mut i = n - 1;
        while i > 0 && v[i - 1] >= v[i] {
            i -= 1;
        }
        if i == 0 {
            return None;
        }
        let pivot = i - 1;
        // Smallest element in the suffix greater than the pivot.
        let mut j = n - 1;
        while v[j] <= v[pivot] {
            j -= 1;
        }
        v.swap(pivot, j);
        v[i..].reverse();
        Some(Permutation::from_vec_unchecked(v))
    }

    /// The previous permutation in lexicographic order, or `None` if
    /// `self` is the identity.
    pub fn prev_lex(&self) -> Option<Permutation> {
        let mut v = self.as_slice().to_vec();
        let n = v.len();
        if n < 2 {
            return None;
        }
        let mut i = n - 1;
        while i > 0 && v[i - 1] <= v[i] {
            i -= 1;
        }
        if i == 0 {
            return None;
        }
        let pivot = i - 1;
        let mut j = n - 1;
        while v[j] >= v[pivot] {
            j -= 1;
        }
        v.swap(pivot, j);
        v[i..].reverse();
        Some(Permutation::from_vec_unchecked(v))
    }

    /// The lexicographically last permutation `n−1 … 1 0` (index `n!−1`).
    pub fn last_lex(n: usize) -> Permutation {
        Permutation::from_vec_unchecked((0..n as u32).rev().collect())
    }

    /// Iterator over all `n!` permutations in lexicographic (= index)
    /// order, starting from the identity.
    pub fn all(n: usize) -> AllPermutations {
        AllPermutations {
            next: Some(Permutation::identity(n)),
        }
    }
}

/// Iterator returned by [`Permutation::all`].
#[derive(Clone)]
pub struct AllPermutations {
    next: Option<Permutation>,
}

impl Iterator for AllPermutations {
    type Item = Permutation;

    fn next(&mut self) -> Option<Permutation> {
        let cur = self.next.take()?;
        self.next = cur.next_lex();
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_lex_first_steps() {
        let id = Permutation::identity(4);
        let p1 = id.next_lex().unwrap();
        assert_eq!(p1.as_slice(), &[0, 1, 3, 2]); // Table I, N = 1
        let p2 = p1.next_lex().unwrap();
        assert_eq!(p2.as_slice(), &[0, 2, 1, 3]); // Table I, N = 2
    }

    #[test]
    fn last_has_no_successor_and_identity_no_predecessor() {
        assert_eq!(Permutation::last_lex(4).next_lex(), None);
        assert_eq!(Permutation::identity(4).prev_lex(), None);
    }

    #[test]
    fn next_and_prev_are_inverse() {
        let mut cur = Permutation::identity(5);
        for _ in 0..50 {
            let next = cur.next_lex().unwrap();
            assert_eq!(next.prev_lex().unwrap(), cur);
            cur = next;
        }
    }

    #[test]
    fn all_enumerates_n_factorial_distinct() {
        let perms: Vec<_> = Permutation::all(5).collect();
        assert_eq!(perms.len(), 120);
        let set: std::collections::HashSet<_> =
            perms.iter().map(|p| p.as_slice().to_vec()).collect();
        assert_eq!(set.len(), 120);
        // Strictly increasing in lexicographic order.
        for w in perms.windows(2) {
            assert!(w[0].as_slice() < w[1].as_slice());
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(Permutation::all(0).count(), 1);
        assert_eq!(Permutation::all(1).count(), 1);
        assert_eq!(Permutation::all(2).count(), 2);
    }
}
