//! Lexicographic order: successor, predecessor, first/last, and an
//! iterator over all `n!` permutations.
//!
//! Lexicographic order over one-line notation is exactly the order induced
//! by the factorial-number-system index (Table I of the paper), so these
//! are used to cross-check the converter and to let parallel workers walk
//! a block `[lo, hi)` after unranking `lo`.

use crate::Permutation;

/// Advances `v` to its lexicographic successor in place (classic Knuth
/// Algorithm L: pivot, swap, reverse suffix — no allocation). Returns
/// `false` and leaves `v` untouched when it is already the last
/// permutation (descending sequence).
///
/// This is the slice-level core behind [`Permutation::next_lex_into`],
/// exposed so bulk decoders can step raw element buffers without
/// constructing a `Permutation` per item.
pub fn next_lex_in_slice(v: &mut [u32]) -> bool {
    let n = v.len();
    if n < 2 {
        return false;
    }
    // Longest descending suffix; pivot is just before it.
    let mut i = n - 1;
    while i > 0 && v[i - 1] >= v[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let pivot = i - 1;
    // Smallest element in the suffix greater than the pivot.
    let mut j = n - 1;
    while v[j] <= v[pivot] {
        j -= 1;
    }
    v.swap(pivot, j);
    v[i..].reverse();
    true
}

/// Steps `v` back to its lexicographic predecessor in place. Returns
/// `false` and leaves `v` untouched when it is already the first
/// permutation (ascending sequence). Mirror of [`next_lex_in_slice`].
pub fn prev_lex_in_slice(v: &mut [u32]) -> bool {
    let n = v.len();
    if n < 2 {
        return false;
    }
    let mut i = n - 1;
    while i > 0 && v[i - 1] <= v[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let pivot = i - 1;
    let mut j = n - 1;
    while v[j] >= v[pivot] {
        j -= 1;
    }
    v.swap(pivot, j);
    v[i..].reverse();
    true
}

impl Permutation {
    /// Advances `self` to its lexicographic successor in place —
    /// allocation-free, O(n) worst case and O(1) amortized over a
    /// sequential walk. Returns `false` (leaving `self` unchanged) when
    /// `self` is already the last permutation.
    pub fn next_lex_into(&mut self) -> bool {
        next_lex_in_slice(self.as_mut_slice())
    }

    /// Steps `self` back to its lexicographic predecessor in place.
    /// Returns `false` (leaving `self` unchanged) when `self` is
    /// already the identity. Mirror of [`Permutation::next_lex_into`].
    pub fn prev_lex_into(&mut self) -> bool {
        prev_lex_in_slice(self.as_mut_slice())
    }

    /// The next permutation in lexicographic order, or `None` if `self`
    /// is the last one (descending sequence). Allocating wrapper over
    /// the in-place [`Permutation::next_lex_into`].
    pub fn next_lex(&self) -> Option<Permutation> {
        let mut succ = self.clone();
        succ.next_lex_into().then_some(succ)
    }

    /// The previous permutation in lexicographic order, or `None` if
    /// `self` is the identity. Allocating wrapper over the in-place
    /// [`Permutation::prev_lex_into`].
    pub fn prev_lex(&self) -> Option<Permutation> {
        let mut pred = self.clone();
        pred.prev_lex_into().then_some(pred)
    }

    /// The lexicographically last permutation `n−1 … 1 0` (index `n!−1`).
    pub fn last_lex(n: usize) -> Permutation {
        Permutation::from_vec_unchecked((0..n as u32).rev().collect())
    }

    /// Iterator over all `n!` permutations in lexicographic (= index)
    /// order, starting from the identity.
    pub fn all(n: usize) -> AllPermutations {
        AllPermutations {
            next: Some(Permutation::identity(n)),
        }
    }
}

/// Iterator returned by [`Permutation::all`].
#[derive(Clone)]
pub struct AllPermutations {
    next: Option<Permutation>,
}

impl Iterator for AllPermutations {
    type Item = Permutation;

    fn next(&mut self) -> Option<Permutation> {
        let cur = self.next.take()?;
        // One clone per yielded item (unavoidable: `cur` is handed out),
        // but the successor itself is computed in place.
        let mut succ = cur.clone();
        if succ.next_lex_into() {
            self.next = Some(succ);
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_lex_first_steps() {
        let id = Permutation::identity(4);
        let p1 = id.next_lex().unwrap();
        assert_eq!(p1.as_slice(), &[0, 1, 3, 2]); // Table I, N = 1
        let p2 = p1.next_lex().unwrap();
        assert_eq!(p2.as_slice(), &[0, 2, 1, 3]); // Table I, N = 2
    }

    #[test]
    fn last_has_no_successor_and_identity_no_predecessor() {
        assert_eq!(Permutation::last_lex(4).next_lex(), None);
        assert_eq!(Permutation::identity(4).prev_lex(), None);
    }

    #[test]
    fn next_and_prev_are_inverse() {
        let mut cur = Permutation::identity(5);
        for _ in 0..50 {
            let next = cur.next_lex().unwrap();
            assert_eq!(next.prev_lex().unwrap(), cur);
            cur = next;
        }
    }

    #[test]
    fn all_enumerates_n_factorial_distinct() {
        let perms: Vec<_> = Permutation::all(5).collect();
        assert_eq!(perms.len(), 120);
        let set: std::collections::HashSet<_> =
            perms.iter().map(|p| p.as_slice().to_vec()).collect();
        assert_eq!(set.len(), 120);
        // Strictly increasing in lexicographic order.
        for w in perms.windows(2) {
            assert!(w[0].as_slice() < w[1].as_slice());
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(Permutation::all(0).count(), 1);
        assert_eq!(Permutation::all(1).count(), 1);
        assert_eq!(Permutation::all(2).count(), 2);
    }

    #[test]
    fn in_place_walk_matches_allocating_wrappers_exhaustively() {
        // Forward: step a single permutation through all of S_5 in place
        // and compare every state against the allocating successor chain.
        let mut walker = Permutation::identity(5);
        let mut reference = Permutation::identity(5);
        for _ in 0..119 {
            assert!(walker.next_lex_into());
            reference = reference.next_lex().unwrap();
            assert_eq!(walker, reference);
        }
        assert!(!walker.next_lex_into(), "last permutation has no successor");
        assert_eq!(walker, Permutation::last_lex(5), "failed step leaves value");
        // Backward, all the way home.
        for _ in 0..119 {
            assert!(walker.prev_lex_into());
            assert_eq!(Some(walker.clone()), reference.prev_lex());
            reference = reference.prev_lex().unwrap();
        }
        assert!(!walker.prev_lex_into(), "identity has no predecessor");
        assert!(walker.is_identity(), "failed step leaves value");
    }

    #[test]
    fn slice_core_handles_degenerate_lengths() {
        let mut empty: [u32; 0] = [];
        assert!(!next_lex_in_slice(&mut empty));
        assert!(!prev_lex_in_slice(&mut empty));
        let mut single = [0u32];
        assert!(!next_lex_in_slice(&mut single));
        assert!(!prev_lex_in_slice(&mut single));
        let mut pair = [0u32, 1];
        assert!(next_lex_in_slice(&mut pair));
        assert_eq!(pair, [1, 0]);
        assert!(prev_lex_in_slice(&mut pair));
        assert_eq!(pair, [0, 1]);
    }
}
