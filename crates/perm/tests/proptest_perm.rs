//! Property-based tests for permutation group laws and encodings.

use hwperm_perm::{shuffle, Permutation};
use proptest::prelude::*;

/// Strategy producing a random permutation of size `2..=max_n` by shuffling
/// with a proptest-driven offset sequence.
fn permutation(max_n: usize) -> impl Strategy<Value = Permutation> {
    (2usize..=max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut rng = move |k: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % k
        };
        shuffle::knuth_shuffle(n, &mut rng)
    })
}

proptest! {
    #[test]
    fn double_inverse_is_identity_map(p in permutation(40)) {
        prop_assert_eq!(p.inverse().inverse(), p);
    }

    #[test]
    fn compose_inverse_cancels(p in permutation(40)) {
        prop_assert!(p.compose(&p.inverse()).is_identity());
        prop_assert!(p.inverse().compose(&p).is_identity());
    }

    #[test]
    fn lehmer_roundtrip(p in permutation(40)) {
        prop_assert_eq!(Permutation::from_lehmer(&p.lehmer()), p);
    }

    #[test]
    fn lehmer_digits_within_bounds(p in permutation(40)) {
        let n = p.n();
        for (i, &d) in p.lehmer().iter().enumerate() {
            prop_assert!((d as usize) <= n - 1 - i);
        }
    }

    #[test]
    fn pack_unpack_roundtrip(p in permutation(30)) {
        let n = p.n();
        prop_assert_eq!(Permutation::unpack(n, &p.pack()).unwrap(), p);
    }

    #[test]
    fn inversions_of_inverse_equal(p in permutation(30)) {
        // A pair is inverted in p iff it is inverted in p^{-1}.
        prop_assert_eq!(p.inversions(), p.inverse().inversions());
    }

    #[test]
    fn sign_multiplicative(n in 2usize..=12, s1 in any::<u64>(), s2 in any::<u64>()) {
        let make = |seed: u64| {
            let mut state = seed | 1;
            let mut rng = move |k: u64| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % k
            };
            shuffle::knuth_shuffle(n, &mut rng)
        };
        let (a, b) = (make(s1), make(s2));
        prop_assert_eq!(a.compose(&b).sign(), a.sign() * b.sign());
    }

    #[test]
    fn cycle_lengths_sum_to_n(p in permutation(40)) {
        let total: usize = p.cycle_type().iter().sum();
        prop_assert_eq!(total, p.n());
    }

    #[test]
    fn next_lex_increases(p in permutation(20)) {
        if let Some(next) = p.next_lex() {
            prop_assert!(p.as_slice() < next.as_slice());
            prop_assert_eq!(next.prev_lex().unwrap(), p);
        } else {
            // Only the descending permutation lacks a successor.
            let n = p.n();
            prop_assert_eq!(p, Permutation::last_lex(n));
        }
    }

    #[test]
    fn in_place_lex_steps_match_allocating_wrappers(p in permutation(20)) {
        // next_lex_into/prev_lex_into must agree with next_lex/prev_lex
        // on both the stepped value and boundary behaviour (false ⇒
        // value untouched).
        let mut fwd = p.clone();
        match p.next_lex() {
            Some(next) => {
                prop_assert!(fwd.next_lex_into());
                prop_assert_eq!(&fwd, &next);
            }
            None => {
                prop_assert!(!fwd.next_lex_into());
                prop_assert_eq!(&fwd, &p);
            }
        }
        let mut bwd = p.clone();
        match p.prev_lex() {
            Some(prev) => {
                prop_assert!(bwd.prev_lex_into());
                prop_assert_eq!(&bwd, &prev);
            }
            None => {
                prop_assert!(!bwd.prev_lex_into());
                prop_assert_eq!(&bwd, &p);
            }
        }
    }

    #[test]
    fn pack_u64_matches_general_pack(p in permutation(16)) {
        // The u64 fast path against the Ubig packing, over the whole
        // supported width range (n = 16 packs to exactly 64 bits).
        prop_assert_eq!(Some(p.pack_u64()), p.pack().to_u64());
    }

    #[test]
    fn packed_derangement_matches_unpacked(p in permutation(16)) {
        prop_assert_eq!(
            hwperm_perm::packed_is_derangement(p.n(), p.pack_u64()),
            p.is_derangement()
        );
    }

    #[test]
    fn apply_then_inverse_apply_restores(p in permutation(25)) {
        let data: Vec<u32> = (0..p.n() as u32).map(|x| x * 10 + 3).collect();
        let permuted = p.apply(&data);
        prop_assert_eq!(p.inverse().apply(&permuted), data);
    }

    #[test]
    fn scatter_inverts_apply(p in permutation(25)) {
        let data: Vec<u32> = (100..100 + p.n() as u32).collect();
        prop_assert_eq!(p.scatter(&p.apply(&data)), data);
    }
}
