//! Every generated circuit family must be lint-clean.
//!
//! This is the integration contract between the generators and the static
//! analyzer: a freshly built netlist of any family, at any supported size,
//! produces zero Error-level diagnostics. Warnings are tolerated only where
//! noted (e.g. a one-hot proof that exceeds its BDD node budget degrades to
//! a warning rather than a false Error).

use hwperm_circuits::{
    converter_netlist, shuffle_netlist, ConverterOptions, IndexToCombinationConverter,
    IndexToVariationConverter, PermToIndexConverter, RandomIndexGenerator, ShuffleOptions,
    SortingNetwork,
};
use hwperm_lint::{lint_netlist, LintId, LintReport, Severity};
use hwperm_logic::Netlist;

/// Lint `netlist` and fail the test with the full report if any diagnostic
/// reaches Error severity.
fn assert_lint_clean(label: &str, netlist: &Netlist) -> LintReport {
    let report = lint_netlist(netlist);
    assert!(
        report.is_clean(),
        "{label}: expected lint-clean netlist, got {} error(s):\n{report}",
        report.error_count()
    );
    report
}

/// Assert that every one-hot bank in the netlist was actually *proved*
/// one-hot (no BudgetExceeded fallback warnings slipped through).
fn assert_one_hot_proved(label: &str, report: &LintReport) {
    let unproved: Vec<_> = report.of(LintId::OneHot).collect();
    assert!(
        unproved.is_empty(),
        "{label}: one-hot pass left diagnostics (budget exceeded or worse):\n{}",
        unproved
            .iter()
            .map(|d| format!("  {d}\n"))
            .collect::<String>()
    );
}

/// BDD-independent cross-check of the one-hot verdict: exhaustively
/// simulate every input value on the batched 64-lane path and confirm
/// no bank violation exists. Only applicable (and only run) for
/// combinational netlists with a single input port narrow enough to
/// sweep; wider or sequential families rely on the BDD proof alone.
fn assert_banks_one_hot_by_simulation(label: &str, netlist: &Netlist) {
    if netlist.register_count() > 0 || netlist.one_hot_banks().is_empty() {
        return;
    }
    let [port] = netlist.input_ports() else {
        return;
    };
    if port.nets.len() > 16 {
        return;
    }
    let name = port.name.clone();
    assert_eq!(
        hwperm_verify::find_one_hot_violation_batched(netlist, &name),
        None,
        "{label}: exhaustive simulation refutes a bank the BDD pass proved"
    );
}

#[test]
fn converter_families_are_lint_clean() {
    for n in [2usize, 3, 4, 5, 6, 8] {
        let comb = converter_netlist(n, ConverterOptions::default());
        let report = assert_lint_clean(&format!("converter n={n}"), &comb);
        assert_one_hot_proved(&format!("converter n={n}"), &report);
        assert_banks_one_hot_by_simulation(&format!("converter n={n}"), &comb);

        let piped = converter_netlist(
            n,
            ConverterOptions {
                pipelined: true,
                ..ConverterOptions::default()
            },
        );
        let report = assert_lint_clean(&format!("converter-pipelined n={n}"), &piped);
        assert_one_hot_proved(&format!("converter-pipelined n={n}"), &report);
    }
}

#[test]
fn shuffle_family_is_lint_clean() {
    for n in [2usize, 3, 4, 6] {
        for pipelined in [false, true] {
            let opts = ShuffleOptions {
                pipelined,
                ..ShuffleOptions::default()
            };
            let nl = shuffle_netlist(n, opts);
            assert_lint_clean(&format!("shuffle n={n} pipelined={pipelined}"), &nl);
        }
    }
}

#[test]
fn rank_family_is_lint_clean() {
    for n in [2usize, 3, 4, 5, 6, 8] {
        let rank = PermToIndexConverter::new(n);
        let report = assert_lint_clean(&format!("rank n={n}"), rank.netlist());
        assert_one_hot_proved(&format!("rank n={n}"), &report);
        assert_banks_one_hot_by_simulation(&format!("rank n={n}"), rank.netlist());
    }
}

#[test]
fn combination_family_is_lint_clean() {
    for (n, k) in [(3usize, 1usize), (4, 2), (5, 2), (6, 3), (8, 4)] {
        let comb = IndexToCombinationConverter::new(n, k);
        assert_lint_clean(&format!("combination n={n} k={k}"), comb.netlist());
        assert_banks_one_hot_by_simulation(&format!("combination n={n} k={k}"), comb.netlist());
    }
}

#[test]
fn variation_family_is_lint_clean() {
    for (n, k) in [(3usize, 2usize), (4, 2), (5, 3), (6, 3), (8, 4)] {
        let var = IndexToVariationConverter::new(n, k);
        assert_lint_clean(&format!("variation n={n} k={k}"), var.netlist());
        assert_banks_one_hot_by_simulation(&format!("variation n={n} k={k}"), var.netlist());
    }
}

#[test]
fn sorter_family_is_lint_clean() {
    for (n, w) in [(2usize, 2usize), (3, 3), (4, 3), (6, 4)] {
        let sorter = SortingNetwork::new(n, w);
        let report = assert_lint_clean(&format!("sort n={n} w={w}"), sorter.netlist());
        assert_one_hot_proved(&format!("sort n={n} w={w}"), &report);
        assert_banks_one_hot_by_simulation(&format!("sort n={n} w={w}"), sorter.netlist());
    }
}

/// At n = 8 the sorter's priority banks depend on all 32 data input
/// bits and their BDDs blow the default node budget. The contract is
/// graceful degradation: the one-hot pass must downgrade to a
/// Warn-level "unverified" diagnostic, never a false Error.
#[test]
fn sorter_over_budget_degrades_to_warning() {
    let sorter = SortingNetwork::new(8, 4);
    let report = assert_lint_clean("sort n=8 w=4", sorter.netlist());
    for d in report.of(LintId::OneHot) {
        assert_eq!(
            d.severity,
            Severity::Warn,
            "over-budget one-hot check must warn, not error: {d}"
        );
        assert!(
            d.message.contains("budget"),
            "unexpected one-hot diagnostic at n=8: {d}"
        );
    }
}

#[test]
fn random_index_family_is_lint_clean() {
    for n in [2usize, 3, 5, 8] {
        let gen = RandomIndexGenerator::new(n, 0x5eed);
        assert_lint_clean(&format!("random-index n={n}"), gen.netlist());
    }
}

/// The sweep above tolerates Warn-level diagnostics; this test pins down
/// that the flagship Fig. 1 converter is *fully* quiet — not even warnings —
/// so regressions in the generators (dead gates, foldable constants,
/// rank-skewed pipelines) surface immediately.
#[test]
fn converter_has_no_diagnostics_at_all() {
    for n in [3usize, 5, 8] {
        for pipelined in [false, true] {
            let nl = converter_netlist(
                n,
                ConverterOptions {
                    pipelined,
                    ..ConverterOptions::default()
                },
            );
            let report = lint_netlist(&nl);
            let noisy: Vec<_> = report
                .diagnostics
                .iter()
                .filter(|d| d.severity >= Severity::Warn)
                .collect();
            assert!(
                noisy.is_empty(),
                "converter n={n} pipelined={pipelined}: expected zero warnings, got:\n{}",
                noisy.iter().map(|d| format!("  {d}\n")).collect::<String>()
            );
        }
    }
}
