//! Mutation (fault-injection) tests: flip individual gates in the
//! generated converter and check that the exhaustive differential
//! comparison against software unranking *detects* the fault. This
//! validates that the correctness tests elsewhere in the workspace have
//! actual discriminating power over the netlists — a silent simulator
//! or a vacuous comparison would pass them without this guarantee.

use hwperm_bignum::Ubig;
use hwperm_circuits::{converter_netlist, ConverterOptions};
use hwperm_logic::{Gate, Netlist, Simulator};
use hwperm_perm::Permutation;
use hwperm_verify::{
    exhaustive_check_batched, exhaustive_check_scalar, expected_permutation_words,
};

/// Packed expectation table for the n = 4 sweep: `pack(unrank(4, i))`
/// for all 24 indices.
fn n4_expected() -> Vec<u64> {
    expected_permutation_words(4)
}

/// Runs the n = 4 exhaustive differential check on a netlist; returns
/// `true` iff every index produces the correct permutation. Uses the
/// batched 64-lane sweep — all 24 indices settle in one netlist walk —
/// so the full mutant population below stays cheap.
fn behaves_correctly(netlist: Netlist) -> bool {
    exhaustive_check_batched(&netlist, "index", "perm", &n4_expected()).is_ok()
}

/// A gate with the same fanin but different function, if one exists.
fn mutate(gate: Gate) -> Option<Gate> {
    match gate {
        Gate::And(a, b) => Some(Gate::Or(a, b)),
        Gate::Or(a, b) => Some(Gate::And(a, b)),
        Gate::Xor(a, b) => Some(Gate::Or(a, b)),
        Gate::Not(a) => Some(Gate::And(a, a)), // identity instead of inversion
        Gate::Mux { sel, a, b } => Some(Gate::Mux { sel, a: b, b: a }),
        Gate::Const(v) => Some(Gate::Const(!v)),
        Gate::Input | Gate::Dff { .. } => None,
    }
}

#[test]
fn pristine_netlist_passes_the_oracle() {
    let netlist = converter_netlist(4, ConverterOptions::default());
    assert!(behaves_correctly(netlist));
}

#[test]
fn every_live_mutation_is_caught() {
    // Flipping ANY live combinational gate must be detected by the
    // exhaustive oracle. (A mutation that survived would mean either
    // undetected dead logic in the generator or a blind spot in the
    // oracle.) Dead gates — e.g. the subtractors' unread borrow-out
    // cones, which synthesis sweeps — are excluded via the same
    // liveness analysis the resource estimator uses.
    let netlist = converter_netlist(4, ConverterOptions::default());
    let live = netlist.live_mask();
    let mut mutants = 0;
    let mut caught = 0;
    let mut survivors = Vec::new();
    for i in 0..netlist.len() {
        if !live[i] {
            continue;
        }
        let Some(mutated_gate) = mutate(netlist.gates()[i]) else {
            continue;
        };
        if mutated_gate == netlist.gates()[i] {
            continue;
        }
        mutants += 1;
        if behaves_correctly(netlist.with_gate_replaced(i, mutated_gate)) {
            survivors.push(i);
        } else {
            caught += 1;
        }
    }
    assert!(
        mutants > 40,
        "expected a substantial mutant population, got {mutants}"
    );
    assert_eq!(
        caught, mutants,
        "mutants at gates {survivors:?} survived the exhaustive oracle"
    );
}

#[test]
fn batched_oracle_matches_scalar_on_every_mutant() {
    // Survivor-set parity: the batched 64-lane oracle and the scalar
    // reference oracle must agree mutant-by-mutant — same verdict AND,
    // on detection, the same first-mismatch witness (index, port, got,
    // want). A divergence in either direction would mean the fast path
    // changed what the test suite proves.
    let netlist = converter_netlist(4, ConverterOptions::default());
    let expected = n4_expected();
    let mut scalar_survivors = Vec::new();
    let mut batched_survivors = Vec::new();
    let mut mutants = 0;
    for i in 0..netlist.len() {
        let Some(mutated_gate) = mutate(netlist.gates()[i]) else {
            continue;
        };
        if mutated_gate == netlist.gates()[i] {
            continue;
        }
        mutants += 1;
        let mutant = netlist.with_gate_replaced(i, mutated_gate);
        let scalar = exhaustive_check_scalar(&mutant, "index", "perm", &expected);
        let batched = exhaustive_check_batched(&mutant, "index", "perm", &expected);
        assert_eq!(
            scalar, batched,
            "oracle divergence at gate {i}: scalar {scalar:?} vs batched {batched:?}"
        );
        if scalar.is_ok() {
            scalar_survivors.push(i);
        }
        if batched.is_ok() {
            batched_survivors.push(i);
        }
    }
    // Dead gates are included here (unlike the detection test above), so
    // survivors exist — and the two sets must be bit-identical.
    assert!(mutants > 40, "mutant population too small: {mutants}");
    assert_eq!(scalar_survivors, batched_survivors);
}

#[test]
fn shuffle_circuit_mutations_are_mostly_caught() {
    // Sequential case: mutate live gates of the Knuth shuffle circuit
    // and compare one full LFSR period of output permutations against
    // the software mirror. Sequential faults can hide behind inputs the
    // datapath never produces, so the detection bar is high-but-not-total.
    use hwperm_circuits::{shuffle_netlist, KnuthShuffleModel, ShuffleOptions};

    let opts = ShuffleOptions {
        lfsr_width: 8,
        pipelined: false,
        seed: 0xFEED,
    };
    let netlist = shuffle_netlist(3, opts);
    let live = netlist.live_mask();

    // One full LFSR period so every reachable state is exercised.
    let behaves = |netlist: Netlist| -> bool {
        let mut sim = Simulator::new(netlist);
        let mut model = KnuthShuffleModel::with_options(3, opts);
        for _ in 0..255 {
            sim.eval();
            let word = sim.read_output("perm");
            let expected = model.next_permutation();
            match Permutation::unpack(3, &word) {
                Ok(p) if p == expected => {}
                _ => return false,
            }
            sim.step();
        }
        true
    };

    let mut mutants = 0;
    let mut caught = 0;
    for i in 0..netlist.len() {
        if !live[i] {
            continue;
        }
        let Some(mutated_gate) = mutate(netlist.gates()[i]) else {
            continue;
        };
        if mutated_gate == netlist.gates()[i] {
            continue;
        }
        mutants += 1;
        if !behaves(netlist.with_gate_replaced(i, mutated_gate)) {
            caught += 1;
        }
    }
    assert!(mutants > 30, "mutant population too small: {mutants}");
    let rate = caught as f64 / mutants as f64;
    // 100% is unreachable here even over the full period: some gates are
    // only distinguishable under input patterns the datapath can never
    // produce (e.g. decoder minterms for offsets ⌊r·x/2^m⌋ ≥ r —
    // reachability don't-cares, the sequential analogue of untestable
    // faults). Empirically 39/45 are caught; require ≥ 85%.
    assert!(
        rate >= 0.85,
        "only {caught}/{mutants} shuffle mutants detected over a full LFSR period"
    );
}

#[test]
fn single_sample_oracle_is_weaker_than_exhaustive() {
    // Sanity check on the methodology: an oracle that only looks at
    // index 0 (whose output is the identity permutation) must miss some
    // mutants that the exhaustive oracle catches — demonstrating why
    // the test suite sweeps the whole index space.
    let netlist = converter_netlist(4, ConverterOptions::default());
    let weak_oracle = |netlist: Netlist| {
        let mut sim = Simulator::new(netlist);
        sim.set_input("index", &Ubig::zero());
        sim.eval();
        Permutation::unpack(4, &sim.read_output("perm")) == Ok(Permutation::identity(4))
    };
    let mut survived_weak = 0;
    for i in 0..netlist.len() {
        let Some(mutated_gate) = mutate(netlist.gates()[i]) else {
            continue;
        };
        if mutated_gate == netlist.gates()[i] {
            continue;
        }
        if weak_oracle(netlist.with_gate_replaced(i, mutated_gate)) {
            survived_weak += 1;
        }
    }
    assert!(
        survived_weak > 0,
        "the single-sample oracle should miss some faults; exhaustive coverage is load-bearing"
    );
}
