//! Differential property tests between the scalar `Simulator` and the
//! word-level `BatchSim<W>` at every compiled width: lane `l` of a
//! batched run must be indistinguishable from a scalar run fed lane
//! `l`'s input vector (or input *sequence*, for the registered
//! families) — whether the word carries 64 (`u64`), 256 (`W256`) or
//! 512 (`W512`) lanes. Covers every family the lint driver knows,
//! combinational and sequential alike.

use hwperm_bignum::Ubig;
use hwperm_circuits::{
    converter_netlist, shuffle_netlist, ConverterOptions, IndexToCombinationConverter,
    IndexToVariationConverter, PermToIndexConverter, RandomIndexGenerator, ShuffleOptions,
    SortingNetwork,
};
use hwperm_logic::{BatchSim, Netlist, SimWord, Simulator, W256, W512};
use proptest::prelude::*;

/// Every circuit family `hwperm lint all` covers, mirrored here so the
/// lane-equivalence property is pinned to the same nine netlists the
/// static passes gate.
const FAMILIES: [&str; 9] = [
    "converter",
    "converter-pipelined",
    "shuffle",
    "shuffle-pipelined",
    "rank",
    "combination",
    "variation",
    "sort",
    "random-index",
];

/// Same derived defaults as the CLI's lint driver: combination and
/// variation take k = ⌈n/2⌉, sorter keys are wide enough for n distinct
/// values.
fn family_netlist(family: &str, n: usize) -> Netlist {
    let k = n.div_ceil(2);
    let key_width = (usize::BITS as usize - (n - 1).leading_zeros() as usize).max(2);
    match family {
        "converter" => converter_netlist(n, ConverterOptions::default()),
        "converter-pipelined" => converter_netlist(
            n,
            ConverterOptions {
                pipelined: true,
                perm_input_port: false,
            },
        ),
        "shuffle" => shuffle_netlist(n, ShuffleOptions::default()),
        "shuffle-pipelined" => shuffle_netlist(
            n,
            ShuffleOptions {
                pipelined: true,
                ..ShuffleOptions::default()
            },
        ),
        "rank" => PermToIndexConverter::new(n).netlist().clone(),
        "combination" => IndexToCombinationConverter::new(n, k).netlist().clone(),
        "variation" => IndexToVariationConverter::new(n, k).netlist().clone(),
        "sort" => SortingNetwork::new(n, key_width).netlist().clone(),
        "random-index" => RandomIndexGenerator::new(n, 0x5eed).netlist().clone(),
        other => panic!("unknown family {other:?}"),
    }
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// A uniformly random value that fits a `width`-bit port. Arbitrary bit
/// patterns are fair game: the property is lane equivalence of the two
/// simulators, not functional correctness of the circuit, so e.g. the
/// rank family's `perm` port may legitimately see non-permutations.
fn rand_value(rng: &mut u64, width: usize) -> Ubig {
    let mut v = Ubig::zero();
    let mut bit = 0;
    while bit < width {
        let word = xorshift(rng);
        let take = (width - bit).min(64);
        for b in 0..take {
            if word >> b & 1 == 1 {
                v.set_bit(bit + b, true);
            }
        }
        bit += take;
    }
    v
}

/// One cycle's worth of input data: for each input port, one value per
/// lane.
fn random_cycle(netlist: &Netlist, lanes: usize, rng: &mut u64) -> Vec<(String, Vec<Ubig>)> {
    netlist
        .input_ports()
        .iter()
        .map(|p| {
            let width = p.nets.len();
            let values: Vec<Ubig> = (0..lanes).map(|_| rand_value(rng, width)).collect();
            (p.name.clone(), values)
        })
        .collect()
}

/// Combinational check: one batched `eval` at width `W` against
/// `W::LANES` scalar `eval`s.
fn assert_eval_lane_equivalent<W: SimWord>(family: &str, netlist: &Netlist, seed: u64) {
    let mut rng = seed | 1;
    let cycle = random_cycle(netlist, W::LANES, &mut rng);
    let mut batch = BatchSim::<W>::new(netlist.clone());
    for (name, lanes) in &cycle {
        batch.set_input_lanes(name, lanes);
    }
    batch.eval();

    let mut scalar = Simulator::new(netlist.clone());
    for lane in 0..W::LANES {
        for (name, lanes) in &cycle {
            scalar.set_input(name, &lanes[lane]);
        }
        scalar.eval();
        for port in netlist.output_ports() {
            assert_eq!(
                batch.read_output_lane(&port.name, lane),
                scalar.read_output(&port.name),
                "{family}: output {:?} diverges in lane {lane} of {}",
                port.name,
                W::LANES
            );
        }
    }
}

/// Sequential check: a multi-cycle `step` schedule, batched once at
/// width `W`, then replayed lane by lane on a scalar simulator reset
/// between lanes. Every cycle's post-step outputs must agree in every
/// lane.
fn assert_step_lane_equivalent<W: SimWord>(
    family: &str,
    netlist: &Netlist,
    cycles: usize,
    seed: u64,
) {
    let mut rng = seed | 1;
    let schedule: Vec<Vec<(String, Vec<Ubig>)>> = (0..cycles)
        .map(|_| random_cycle(netlist, W::LANES, &mut rng))
        .collect();

    let mut batch = BatchSim::<W>::new(netlist.clone());
    // [cycle][port][lane] snapshots of every output after each step.
    let mut snapshots: Vec<Vec<Vec<Ubig>>> = Vec::with_capacity(cycles);
    for cycle in &schedule {
        for (name, lanes) in cycle {
            batch.set_input_lanes(name, lanes);
        }
        batch.step();
        batch.eval();
        snapshots.push(
            netlist
                .output_ports()
                .iter()
                .map(|p| {
                    (0..W::LANES)
                        .map(|l| batch.read_output_lane(&p.name, l))
                        .collect()
                })
                .collect(),
        );
    }

    let mut scalar = Simulator::new(netlist.clone());
    for lane in 0..W::LANES {
        scalar.reset();
        for (c, cycle) in schedule.iter().enumerate() {
            for (name, lanes) in cycle {
                scalar.set_input(name, &lanes[lane]);
            }
            scalar.step();
            scalar.eval();
            for (pi, port) in netlist.output_ports().iter().enumerate() {
                assert_eq!(
                    snapshots[c][pi][lane],
                    scalar.read_output(&port.name),
                    "{family}: output {:?} diverges in lane {lane} of {} at cycle {c}",
                    port.name,
                    W::LANES
                );
            }
        }
    }
}

/// Cross-width check: the first 64 lanes of a wide batched run, fed
/// the exact inputs of a `u64` run, must read back bit-identical
/// outputs — the wide words are transposition-compatible with the
/// narrow one, not merely scalar-equivalent.
fn assert_wide_matches_u64<W: SimWord>(family: &str, netlist: &Netlist, seed: u64) {
    let mut rng = seed | 1;
    let cycle = random_cycle(netlist, 64, &mut rng);
    let mut narrow = BatchSim::<u64>::new(netlist.clone());
    let mut wide = BatchSim::<W>::new(netlist.clone());
    for (name, lanes) in &cycle {
        narrow.set_input_lanes(name, lanes);
        wide.set_input_lanes(name, lanes);
    }
    narrow.step();
    narrow.eval();
    wide.step();
    wide.eval();
    for port in netlist.output_ports() {
        for lane in 0..64 {
            assert_eq!(
                wide.read_output_lane(&port.name, lane),
                narrow.read_output_lane(&port.name, lane),
                "{family}: output {:?} diverges between u64 and {}-lane words in lane {lane}",
                port.name,
                W::LANES
            );
        }
    }
}

proptest! {
    // Each case sweeps 64 lanes x all output bits, so modest case
    // counts already cover thousands of vectors per family.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Lane equivalence across all nine lint families, dispatching on
    /// whether the family's netlist holds registered state.
    #[test]
    fn all_families_lane_equivalent(n in 3usize..=5, seed in any::<u64>()) {
        for family in FAMILIES {
            let netlist = family_netlist(family, n);
            if netlist.register_count() == 0 {
                assert_eval_lane_equivalent::<u64>(family, &netlist, seed);
            } else {
                assert_step_lane_equivalent::<u64>(family, &netlist, 4, seed);
            }
        }
    }

    /// The same nine-family property at the wide widths: every one of
    /// the 256 / 512 lanes must match its scalar replay (comb and
    /// multi-cycle step alike), and the first 64 lanes must be
    /// bit-identical to a `u64` run fed the same inputs. Fewer cases
    /// than the narrow sweep — each one replays up to 512 scalar
    /// simulations per family.
    #[test]
    fn all_families_lane_equivalent_wide(n in 3usize..=4, seed in any::<u64>()) {
        for family in FAMILIES {
            let netlist = family_netlist(family, n);
            if netlist.register_count() == 0 {
                assert_eval_lane_equivalent::<W256>(family, &netlist, seed);
                assert_eval_lane_equivalent::<W512>(family, &netlist, seed);
            } else {
                // n + 3 cycles: deeper than the pipelined families'
                // DFF depth at these sizes, so latching is exercised.
                assert_step_lane_equivalent::<W256>(family, &netlist, n + 3, seed);
                assert_step_lane_equivalent::<W512>(family, &netlist, n + 3, seed);
            }
            assert_wide_matches_u64::<W256>(family, &netlist, seed);
            assert_wide_matches_u64::<W512>(family, &netlist, seed);
        }
    }

    /// The pipelined converter gets a deeper dedicated schedule: enough
    /// cycles for values to traverse the whole DFF pipeline, so
    /// per-lane latching (not just combinational agreement) is what is
    /// actually exercised.
    #[test]
    fn pipelined_converter_multi_cycle_lane_equivalent(
        n in 3usize..=6,
        seed in any::<u64>(),
    ) {
        let netlist = converter_netlist(
            n,
            ConverterOptions { pipelined: true, perm_input_port: false },
        );
        prop_assert!(netlist.register_count() > 0);
        // n + 3 cycles: strictly more than the pipeline depth, so every
        // lane's first vector has flushed all the way through.
        assert_step_lane_equivalent::<u64>("converter-pipelined", &netlist, n + 3, seed);
    }
}
