//! Differential property tests between the scalar `Simulator` and the
//! 64-lane `BatchSimulator`: lane `l` of a batched run must be
//! indistinguishable from a scalar run fed lane `l`'s input vector (or
//! input *sequence*, for the registered families). Covers every family
//! the lint driver knows, combinational and sequential alike.

use hwperm_bignum::Ubig;
use hwperm_circuits::{
    converter_netlist, shuffle_netlist, ConverterOptions, IndexToCombinationConverter,
    IndexToVariationConverter, PermToIndexConverter, RandomIndexGenerator, ShuffleOptions,
    SortingNetwork,
};
use hwperm_logic::{BatchSimulator, Netlist, Simulator, LANES};
use proptest::prelude::*;

/// Every circuit family `hwperm lint all` covers, mirrored here so the
/// lane-equivalence property is pinned to the same nine netlists the
/// static passes gate.
const FAMILIES: [&str; 9] = [
    "converter",
    "converter-pipelined",
    "shuffle",
    "shuffle-pipelined",
    "rank",
    "combination",
    "variation",
    "sort",
    "random-index",
];

/// Same derived defaults as the CLI's lint driver: combination and
/// variation take k = ⌈n/2⌉, sorter keys are wide enough for n distinct
/// values.
fn family_netlist(family: &str, n: usize) -> Netlist {
    let k = n.div_ceil(2);
    let key_width = (usize::BITS as usize - (n - 1).leading_zeros() as usize).max(2);
    match family {
        "converter" => converter_netlist(n, ConverterOptions::default()),
        "converter-pipelined" => converter_netlist(
            n,
            ConverterOptions {
                pipelined: true,
                perm_input_port: false,
            },
        ),
        "shuffle" => shuffle_netlist(n, ShuffleOptions::default()),
        "shuffle-pipelined" => shuffle_netlist(
            n,
            ShuffleOptions {
                pipelined: true,
                ..ShuffleOptions::default()
            },
        ),
        "rank" => PermToIndexConverter::new(n).netlist().clone(),
        "combination" => IndexToCombinationConverter::new(n, k).netlist().clone(),
        "variation" => IndexToVariationConverter::new(n, k).netlist().clone(),
        "sort" => SortingNetwork::new(n, key_width).netlist().clone(),
        "random-index" => RandomIndexGenerator::new(n, 0x5eed).netlist().clone(),
        other => panic!("unknown family {other:?}"),
    }
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// A uniformly random value that fits a `width`-bit port. Arbitrary bit
/// patterns are fair game: the property is lane equivalence of the two
/// simulators, not functional correctness of the circuit, so e.g. the
/// rank family's `perm` port may legitimately see non-permutations.
fn rand_value(rng: &mut u64, width: usize) -> Ubig {
    let mut v = Ubig::zero();
    let mut bit = 0;
    while bit < width {
        let word = xorshift(rng);
        let take = (width - bit).min(64);
        for b in 0..take {
            if word >> b & 1 == 1 {
                v.set_bit(bit + b, true);
            }
        }
        bit += take;
    }
    v
}

/// One cycle's worth of input data: for each input port, one value per
/// lane.
fn random_cycle(netlist: &Netlist, rng: &mut u64) -> Vec<(String, Vec<Ubig>)> {
    netlist
        .input_ports()
        .iter()
        .map(|p| {
            let width = p.nets.len();
            let lanes: Vec<Ubig> = (0..LANES).map(|_| rand_value(rng, width)).collect();
            (p.name.clone(), lanes)
        })
        .collect()
}

/// Combinational check: one batched `eval` against 64 scalar `eval`s.
fn assert_eval_lane_equivalent(family: &str, netlist: &Netlist, seed: u64) {
    let mut rng = seed | 1;
    let cycle = random_cycle(netlist, &mut rng);
    let mut batch = BatchSimulator::new(netlist.clone());
    for (name, lanes) in &cycle {
        batch.set_input_lanes(name, lanes);
    }
    batch.eval();

    let mut scalar = Simulator::new(netlist.clone());
    for lane in 0..LANES {
        for (name, lanes) in &cycle {
            scalar.set_input(name, &lanes[lane]);
        }
        scalar.eval();
        for port in netlist.output_ports() {
            assert_eq!(
                batch.read_output_lane(&port.name, lane),
                scalar.read_output(&port.name),
                "{family}: output {:?} diverges in lane {lane}",
                port.name
            );
        }
    }
}

/// Sequential check: a multi-cycle `step` schedule, batched once, then
/// replayed lane by lane on a scalar simulator reset between lanes.
/// Every cycle's post-step outputs must agree in every lane.
fn assert_step_lane_equivalent(family: &str, netlist: &Netlist, cycles: usize, seed: u64) {
    let mut rng = seed | 1;
    let schedule: Vec<Vec<(String, Vec<Ubig>)>> = (0..cycles)
        .map(|_| random_cycle(netlist, &mut rng))
        .collect();

    let mut batch = BatchSimulator::new(netlist.clone());
    // [cycle][port][lane] snapshots of every output after each step.
    let mut snapshots: Vec<Vec<Vec<Ubig>>> = Vec::with_capacity(cycles);
    for cycle in &schedule {
        for (name, lanes) in cycle {
            batch.set_input_lanes(name, lanes);
        }
        batch.step();
        batch.eval();
        snapshots.push(
            netlist
                .output_ports()
                .iter()
                .map(|p| {
                    (0..LANES)
                        .map(|l| batch.read_output_lane(&p.name, l))
                        .collect()
                })
                .collect(),
        );
    }

    let mut scalar = Simulator::new(netlist.clone());
    for lane in 0..LANES {
        scalar.reset();
        for (c, cycle) in schedule.iter().enumerate() {
            for (name, lanes) in cycle {
                scalar.set_input(name, &lanes[lane]);
            }
            scalar.step();
            scalar.eval();
            for (pi, port) in netlist.output_ports().iter().enumerate() {
                assert_eq!(
                    snapshots[c][pi][lane],
                    scalar.read_output(&port.name),
                    "{family}: output {:?} diverges in lane {lane} at cycle {c}",
                    port.name
                );
            }
        }
    }
}

proptest! {
    // Each case sweeps 64 lanes x all output bits, so modest case
    // counts already cover thousands of vectors per family.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Lane equivalence across all nine lint families, dispatching on
    /// whether the family's netlist holds registered state.
    #[test]
    fn all_families_lane_equivalent(n in 3usize..=5, seed in any::<u64>()) {
        for family in FAMILIES {
            let netlist = family_netlist(family, n);
            if netlist.register_count() == 0 {
                assert_eval_lane_equivalent(family, &netlist, seed);
            } else {
                assert_step_lane_equivalent(family, &netlist, 4, seed);
            }
        }
    }

    /// The pipelined converter gets a deeper dedicated schedule: enough
    /// cycles for values to traverse the whole DFF pipeline, so
    /// per-lane latching (not just combinational agreement) is what is
    /// actually exercised.
    #[test]
    fn pipelined_converter_multi_cycle_lane_equivalent(
        n in 3usize..=6,
        seed in any::<u64>(),
    ) {
        let netlist = converter_netlist(
            n,
            ConverterOptions { pipelined: true, perm_input_port: false },
        );
        prop_assert!(netlist.register_count() > 0);
        // n + 3 cycles: strictly more than the pipeline depth, so every
        // lane's first vector has flushed all the way through.
        assert_step_lane_equivalent("converter-pipelined", &netlist, n + 3, seed);
    }
}
