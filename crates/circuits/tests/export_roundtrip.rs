//! Interchange-format round trips: every circuit family the CLI can
//! lint exports to both structural Verilog and BLIF, and the BLIF of
//! each *combinational* family parses back into a netlist that is
//! simulation-identical to the original over its full input space —
//! proving the exporter's gate covers encode exactly the functions the
//! simulator computes, not just well-formed syntax.

use hwperm_circuits::{
    converter_netlist, shuffle_netlist, ConverterOptions, IndexToCombinationConverter,
    IndexToVariationConverter, PermToIndexConverter, RandomIndexGenerator, ShuffleOptions,
    SortingNetwork,
};
use hwperm_logic::{to_blif, to_verilog, Builder, NetId, Netlist};
use hwperm_verify::golden_output_words;
use std::collections::HashMap;

/// The nine lintable families at n = 4, mirroring the CLI's builders.
fn all_families() -> Vec<(&'static str, Netlist)> {
    let n = 4usize;
    let k = n.div_ceil(2);
    let key_width = (usize::BITS as usize - (n - 1).leading_zeros() as usize).max(2);
    vec![
        (
            "converter",
            converter_netlist(n, ConverterOptions::default()),
        ),
        (
            "converter_pipelined",
            converter_netlist(
                n,
                ConverterOptions {
                    pipelined: true,
                    perm_input_port: false,
                },
            ),
        ),
        ("shuffle", shuffle_netlist(n, ShuffleOptions::default())),
        (
            "shuffle_pipelined",
            shuffle_netlist(
                n,
                ShuffleOptions {
                    pipelined: true,
                    ..ShuffleOptions::default()
                },
            ),
        ),
        ("rank", PermToIndexConverter::new(n).netlist().clone()),
        (
            "combination",
            IndexToCombinationConverter::new(n, k).netlist().clone(),
        ),
        (
            "variation",
            IndexToVariationConverter::new(n, k).netlist().clone(),
        ),
        ("sort", SortingNetwork::new(n, key_width).netlist().clone()),
        (
            "random_index",
            RandomIndexGenerator::new(n, 0x5eed).netlist().clone(),
        ),
    ]
}

/// The combinational families' differential sweep ports.
const SWEEP_PORTS: [(&str, &str, &str); 5] = [
    ("converter", "index", "perm"),
    ("rank", "perm", "index"),
    ("combination", "index", "codeword"),
    ("variation", "index", "out"),
    ("sort", "data", "sorted"),
];

/// A minimal BLIF reader for the dialect `to_blif` emits: buffers,
/// the fixed covers for Not/And/Or/Xor/Mux, constant covers, and
/// `.latch`. Rebuilds through `Builder`, so the round trip also
/// survives the builder's folding and structural hashing.
fn parse_blif(text: &str) -> Netlist {
    let mut b = Builder::new();
    // Signal name ("x[0]" or "n17") → net in the rebuilt netlist.
    let mut net_of: HashMap<String, NetId> = HashMap::new();

    let lines: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
    let mut outputs_decl: Vec<String> = Vec::new();
    // (.names header tokens, cover lines) in file order.
    let mut covers: Vec<(Vec<String>, Vec<String>)> = Vec::new();
    let mut latches: Vec<(String, String, bool)> = Vec::new(); // (d, q, init)

    let mut i = 0;
    while i < lines.len() {
        let line = lines[i];
        let tokens: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        match tokens.first().map(String::as_str) {
            Some(".inputs") => {
                // Group per-bit signals "name[i]" into ordered buses.
                let mut buses: Vec<(String, usize)> = Vec::new();
                for t in &tokens[1..] {
                    let name = t.split('[').next().unwrap().to_string();
                    match buses.last_mut() {
                        Some((last, w)) if *last == name => *w += 1,
                        _ => buses.push((name, 1)),
                    }
                }
                for (name, w) in buses {
                    let bus = b.input_bus(&name, w);
                    for (bit, net) in bus.iter().enumerate() {
                        net_of.insert(format!("{name}[{bit}]"), *net);
                    }
                }
                i += 1;
            }
            Some(".outputs") => {
                outputs_decl = tokens[1..].to_vec();
                i += 1;
            }
            Some(".names") => {
                let mut cover = Vec::new();
                i += 1;
                while i < lines.len() && !lines[i].starts_with('.') {
                    cover.push(lines[i].to_string());
                    i += 1;
                }
                covers.push((tokens[1..].to_vec(), cover));
            }
            Some(".latch") => {
                // ".latch d q re clk init"
                latches.push((tokens[1].clone(), tokens[2].clone(), tokens[5] == "1"));
                i += 1;
            }
            _ => i += 1, // .model / .end / blank
        }
    }

    // DFF feedback can reference nets defined later in the file, so
    // latch outputs are created deferred first and wired to their `d`
    // signals once every cover has been rebuilt.
    for (_, q, init) in &latches {
        let dff = b.dff_deferred(*init);
        net_of.insert(q.clone(), dff);
    }

    for (sig, cover) in covers {
        let (target, ins) = sig.split_last().expect(".names has a target");
        let get = |name: &String| {
            *net_of
                .get(name)
                .unwrap_or_else(|| panic!("undefined {name}"))
        };
        let cover: Vec<&str> = cover.iter().map(String::as_str).collect();
        let net = match (ins, cover.as_slice()) {
            ([], ["1"]) => b.constant(true),
            ([], []) => b.constant(false),
            ([a], ["1 1"]) => get(a), // buffer: alias
            ([a], ["0 1"]) => {
                let a = get(a);
                b.not(a)
            }
            ([a, c], ["11 1"]) => {
                let (a, c) = (get(a), get(c));
                b.and(a, c)
            }
            ([a, c], ["1- 1", "-1 1"]) => {
                let (a, c) = (get(a), get(c));
                b.or(a, c)
            }
            ([a, c], ["10 1", "01 1"]) => {
                let (a, c) = (get(a), get(c));
                b.xor(a, c)
            }
            ([s, a, c], ["01- 1", "1-1 1"]) => {
                let (s, a, c) = (get(s), get(a), get(c));
                b.mux(s, a, c)
            }
            other => panic!("unrecognized cover {other:?}"),
        };
        net_of.insert(target.clone(), net);
    }

    // Close the feedback: every `d` signal is resolvable now.
    for (d, q, _) in &latches {
        let d = *net_of
            .get(d)
            .unwrap_or_else(|| panic!("undefined latch d {d}"));
        b.connect_dff(net_of[q], d);
    }

    // Output buses in declaration order.
    let mut buses: Vec<(String, Vec<NetId>)> = Vec::new();
    for t in &outputs_decl {
        let name = t.split('[').next().unwrap().to_string();
        let net = *net_of
            .get(t)
            .unwrap_or_else(|| panic!("undriven output {t}"));
        match buses.last_mut() {
            Some((last, bits)) if *last == name => bits.push(net),
            _ => buses.push((name, vec![net])),
        }
    }
    for (name, bits) in buses {
        b.output_bus(&name, &bits);
    }
    b.finish()
}

#[test]
fn every_family_exports_wellformed_verilog() {
    for (family, netlist) in all_families() {
        let v = to_verilog(&netlist, family);
        assert!(v.contains(&format!("module {family}(")), "{family}");
        assert!(v.trim_end().ends_with("endmodule"), "{family}");
        let sequential = netlist.register_count() > 0;
        assert_eq!(v.contains("always @(posedge clk)"), sequential, "{family}");
        assert_eq!(v.contains("  input clk;"), sequential, "{family}");
        for p in netlist.input_ports() {
            let decl = format!("  input [{}:0] {};", p.nets.len() - 1, p.name);
            assert!(v.contains(&decl), "{family}: missing {decl:?}");
        }
        for p in netlist.output_ports() {
            let decl = format!("  output [{}:0] {};", p.nets.len() - 1, p.name);
            assert!(v.contains(&decl), "{family}: missing {decl:?}");
            for bit in 0..p.nets.len() {
                assert!(
                    v.contains(&format!("  assign {}[{bit}] = n", p.name)),
                    "{family}: output bit {}[{bit}] undriven",
                    p.name
                );
            }
        }
    }
}

#[test]
fn every_family_exports_wellformed_blif() {
    for (family, netlist) in all_families() {
        let blif = to_blif(&netlist, family);
        assert!(blif.contains(&format!(".model {family}")), "{family}");
        assert!(blif.trim_end().ends_with(".end"), "{family}");
        let latches = blif.matches(".latch").count();
        assert_eq!(latches, netlist.register_count(), "{family}");
        for p in netlist.input_ports().iter().chain(netlist.output_ports()) {
            assert!(
                blif.contains(&format!("{}[0]", p.name)),
                "{family}: port {} absent",
                p.name
            );
        }
    }
}

#[test]
fn combinational_blif_roundtrips_simulation_identical() {
    let families = all_families();
    for (family, input, output) in SWEEP_PORTS {
        let netlist = &families.iter().find(|(f, _)| *f == family).unwrap().1;
        let parsed = parse_blif(&to_blif(netlist, family));
        assert_eq!(
            golden_output_words(netlist, input, output),
            golden_output_words(&parsed, input, output),
            "{family}: BLIF round trip changed the circuit's function"
        );
    }
}

#[test]
fn sequential_blif_parses_with_latches_intact() {
    // The sequential families round-trip structurally: same latch
    // count, same ports. (Cycle-accurate replay is covered by the
    // combinational sweep above plus the simulator's own DFF tests.)
    let families = all_families();
    for family in [
        "converter_pipelined",
        "shuffle",
        "shuffle_pipelined",
        "random_index",
    ] {
        let netlist = &families.iter().find(|(f, _)| *f == family).unwrap().1;
        let parsed = parse_blif(&to_blif(netlist, family));
        assert_eq!(
            parsed.register_count(),
            netlist.register_count(),
            "{family}"
        );
        for p in netlist.output_ports() {
            let q = parsed
                .output_port(&p.name)
                .unwrap_or_else(|| panic!("{family}: round trip lost output port {}", p.name));
            assert_eq!(q.nets.len(), p.nets.len(), "{family}:{}", p.name);
        }
    }
}

#[test]
fn tiny_netlist_verilog_and_blif_golden_snapshot() {
    // An exact-text golden: a half adder. Any formatting or encoding
    // change to the exporters must be a conscious edit of this test.
    let mut b = Builder::new();
    let x = b.input_bus("x", 2);
    let s = b.xor(x[0], x[1]);
    let c = b.and(x[0], x[1]);
    b.output_bus("sum", &[s]);
    b.output_bus("carry", &[c]);
    let nl = b.finish();

    let verilog = to_verilog(&nl, "half_adder");
    assert_eq!(
        verilog,
        "// Generated by hwperm-logic from a verified netlist.\n\
         module half_adder(x, sum, carry);\n\
         \x20 input [1:0] x;\n\
         \x20 output [0:0] sum;\n\
         \x20 output [0:0] carry;\n\
         \n\
         \x20 wire n0;\n\
         \x20 wire n1;\n\
         \x20 wire n2;\n\
         \x20 wire n3;\n\
         \n\
         \x20 assign n0 = x[0];\n\
         \x20 assign n1 = x[1];\n\
         \x20 assign n2 = n0 ^ n1;\n\
         \x20 assign n3 = n0 & n1;\n\
         \n\
         \x20 assign sum[0] = n2;\n\
         \x20 assign carry[0] = n3;\n\
         endmodule\n"
    );

    let blif = to_blif(&nl, "half_adder");
    assert_eq!(
        blif,
        "# Generated by hwperm-logic\n\
         .model half_adder\n\
         .inputs x[0] x[1]\n\
         .outputs sum[0] carry[0]\n\
         .names x[0] n0\n\
         1 1\n\
         .names x[1] n1\n\
         1 1\n\
         .names n0 n1 n2\n\
         10 1\n\
         01 1\n\
         .names n0 n1 n3\n\
         11 1\n\
         .names n2 sum[0]\n\
         1 1\n\
         .names n3 carry[0]\n\
         1 1\n\
         .end\n"
    );
}
