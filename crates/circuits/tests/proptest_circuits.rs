//! Differential property tests: every generated circuit must agree with
//! its software reference on random parameters and inputs.

use hwperm_bignum::Ubig;
use hwperm_circuits::*;
use hwperm_factoradic::{factorials_u64, rank_u64, unrank_combination, unrank_u64};
use proptest::prelude::*;

proptest! {
    // Circuit construction dominates runtime, so keep case counts modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn converter_matches_unrank(n in 2usize..=8, seed in any::<u64>()) {
        let nfact = factorials_u64(n)[n];
        let mut conv = IndexToPermConverter::new(n);
        // Several indices per constructed circuit.
        for step in 0..8u64 {
            let index = seed.wrapping_mul(step.wrapping_add(1)) % nfact;
            prop_assert_eq!(conv.convert_u64(index), unrank_u64(n, index));
        }
    }

    #[test]
    fn converter_rank_roundtrip(n in 2usize..=7, seed in any::<u64>()) {
        let nfact = factorials_u64(n)[n];
        let index = seed % nfact;
        let mut conv = IndexToPermConverter::new(n);
        prop_assert_eq!(rank_u64(&conv.convert_u64(index)), index);
    }

    #[test]
    fn pipelined_stream_matches_software(n in 3usize..=6, seed in any::<u64>()) {
        let nfact = factorials_u64(n)[n];
        let opts = ConverterOptions { pipelined: true, perm_input_port: false };
        let mut conv = IndexToPermConverter::with_options(n, opts);
        let indices: Vec<u64> = (0..12).map(|i| seed.rotate_left(i * 5) % nfact).collect();
        let ubigs: Vec<Ubig> = indices.iter().map(|&i| Ubig::from(i)).collect();
        let out = conv.convert_stream(&ubigs);
        prop_assert_eq!(out.len(), indices.len());
        for (i, p) in indices.iter().zip(&out) {
            prop_assert_eq!(p, &unrank_u64(n, *i));
        }
    }

    #[test]
    fn shuffle_circuit_tracks_model(n in 2usize..=5, seed in any::<u64>()) {
        let opts = ShuffleOptions { lfsr_width: 12, pipelined: false, seed };
        let mut hw = KnuthShuffleCircuit::with_options(n, opts);
        let mut sw = KnuthShuffleModel::with_options(n, opts);
        for _ in 0..40 {
            prop_assert_eq!(hw.next_permutation(), sw.next_permutation());
        }
    }

    #[test]
    fn combination_converter_matches_unrank(
        n in 2usize..=9,
        k_seed in any::<u64>(),
        i_seed in any::<u64>(),
    ) {
        let k = (k_seed % (n as u64 + 1)) as usize;
        let mut conv = IndexToCombinationConverter::new(n, k);
        let total = conv.total().to_u64().unwrap();
        let index = i_seed % total;
        prop_assert_eq!(
            conv.convert(&Ubig::from(index)),
            unrank_combination(n, k, &Ubig::from(index))
        );
    }

    #[test]
    fn sorter_matches_std_sort(seed in any::<u64>()) {
        let mut sorter = SortingNetwork::new(6, 10);
        let mut s = seed | 1;
        let keys: Vec<u64> = (0..6).map(|_| {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            s % 1024
        }).collect();
        let mut expected = keys.clone();
        expected.sort_unstable();
        prop_assert_eq!(sorter.sort(&keys), expected);
    }

    #[test]
    fn random_index_generator_yields_valid_permutations(
        n in 2usize..=5,
        seed in any::<u64>(),
    ) {
        let mut generator = RandomIndexGenerator::new(n, seed);
        let mut model = RandomIndexModel::with_lfsr_width(n, generator.lfsr_width(), seed);
        for _ in 0..25 {
            prop_assert_eq!(generator.next_permutation(), model.next_permutation());
        }
    }
}
