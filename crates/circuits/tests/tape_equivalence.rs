//! Golden-output equivalence of the compiled simulation tape.
//!
//! The tape refactor replaced the simulators' direct index-order
//! netlist walk with a levelized `SimProgram` opcode stream. This suite
//! pins the refactor to the *pre-refactor* semantics: `ReferenceSim`
//! below is a verbatim replica of the old `Simulator` (creation-order
//! gate walk, separate DFF state array), and every one of the nine
//! circuit families must produce identical outputs through the
//! tape-backed scalar and 64-lane batched paths — exhaustively for the
//! converter at n = 4..6 (cross-checked against software unranking as
//! an independent golden), property-tested elsewhere, including
//! multi-cycle `step` schedules through the pipelined converters.

use hwperm_bignum::Ubig;
use hwperm_circuits::{
    converter_netlist, shuffle_netlist, ConverterOptions, IndexToCombinationConverter,
    IndexToVariationConverter, PermToIndexConverter, RandomIndexGenerator, ShuffleOptions,
    SortingNetwork,
};
use hwperm_logic::{BatchSimulator, Gate, Netlist, Simulator, LANES};
use hwperm_verify::expected_permutation_words;
use proptest::prelude::*;

/// Verbatim replica of the pre-refactor scalar `Simulator`: one `bool`
/// per net, gates evaluated in creation (index) order, DFFs reading a
/// separate state array that latches on `step`. This is the golden
/// semantics the compiled tape must reproduce bit for bit.
struct ReferenceSim {
    netlist: Netlist,
    values: Vec<bool>,
    state: Vec<bool>,
}

impl ReferenceSim {
    fn new(netlist: Netlist) -> Self {
        let n = netlist.len();
        let mut state = vec![false; n];
        for (i, g) in netlist.gates().iter().enumerate() {
            if let Gate::Dff { init, .. } = g {
                state[i] = *init;
            }
        }
        ReferenceSim {
            netlist,
            values: vec![false; n],
            state,
        }
    }

    fn set_input(&mut self, name: &str, value: &Ubig) {
        let port = self.netlist.input_port(name).expect("input port").clone();
        for (i, net) in port.nets.iter().enumerate() {
            self.values[net.index()] = value.bit(i);
        }
    }

    fn eval(&mut self) {
        for i in 0..self.netlist.len() {
            let v = match self.netlist.gates()[i] {
                Gate::Const(c) => c,
                Gate::Input => continue, // externally driven
                Gate::Not(x) => !self.values[x.index()],
                Gate::And(x, y) => self.values[x.index()] & self.values[y.index()],
                Gate::Or(x, y) => self.values[x.index()] | self.values[y.index()],
                Gate::Xor(x, y) => self.values[x.index()] ^ self.values[y.index()],
                Gate::Mux { sel, a, b } => {
                    if self.values[sel.index()] {
                        self.values[b.index()]
                    } else {
                        self.values[a.index()]
                    }
                }
                Gate::Dff { .. } => self.state[i],
            };
            self.values[i] = v;
        }
    }

    fn step(&mut self) {
        self.eval();
        for i in 0..self.netlist.len() {
            if let Gate::Dff { d, .. } = self.netlist.gates()[i] {
                self.state[i] = self.values[d.index()];
            }
        }
    }

    fn reset(&mut self) {
        for (i, g) in self.netlist.gates().iter().enumerate() {
            if let Gate::Dff { init, .. } = g {
                self.state[i] = *init;
            }
        }
    }

    fn read_output(&self, name: &str) -> Ubig {
        let port = self.netlist.output_port(name).expect("output port");
        let mut out = Ubig::zero();
        for (i, net) in port.nets.iter().enumerate() {
            if self.values[net.index()] {
                out.set_bit(i, true);
            }
        }
        out
    }
}

/// Every circuit family `hwperm lint all` covers.
const FAMILIES: [&str; 9] = [
    "converter",
    "converter-pipelined",
    "shuffle",
    "shuffle-pipelined",
    "rank",
    "combination",
    "variation",
    "sort",
    "random-index",
];

/// Same derived defaults as the CLI's lint driver.
fn family_netlist(family: &str, n: usize) -> Netlist {
    let k = n.div_ceil(2);
    let key_width = (usize::BITS as usize - (n - 1).leading_zeros() as usize).max(2);
    match family {
        "converter" => converter_netlist(n, ConverterOptions::default()),
        "converter-pipelined" => converter_netlist(
            n,
            ConverterOptions {
                pipelined: true,
                perm_input_port: false,
            },
        ),
        "shuffle" => shuffle_netlist(n, ShuffleOptions::default()),
        "shuffle-pipelined" => shuffle_netlist(
            n,
            ShuffleOptions {
                pipelined: true,
                ..ShuffleOptions::default()
            },
        ),
        "rank" => PermToIndexConverter::new(n).netlist().clone(),
        "combination" => IndexToCombinationConverter::new(n, k).netlist().clone(),
        "variation" => IndexToVariationConverter::new(n, k).netlist().clone(),
        "sort" => SortingNetwork::new(n, key_width).netlist().clone(),
        "random-index" => RandomIndexGenerator::new(n, 0x5eed).netlist().clone(),
        other => panic!("unknown family {other:?}"),
    }
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// A uniformly random value that fits a `width`-bit port.
fn rand_value(rng: &mut u64, width: usize) -> Ubig {
    let mut v = Ubig::zero();
    let mut bit = 0;
    while bit < width {
        let word = xorshift(rng);
        let take = (width - bit).min(64);
        for b in 0..take {
            if word >> b & 1 == 1 {
                v.set_bit(bit + b, true);
            }
        }
        bit += take;
    }
    v
}

/// One cycle's worth of input data: for each input port, one value per
/// lane.
fn random_cycle(netlist: &Netlist, rng: &mut u64) -> Vec<(String, Vec<Ubig>)> {
    netlist
        .input_ports()
        .iter()
        .map(|p| {
            let width = p.nets.len();
            let lanes: Vec<Ubig> = (0..LANES).map(|_| rand_value(rng, width)).collect();
            (p.name.clone(), lanes)
        })
        .collect()
}

/// Drives a multi-cycle schedule through the reference walk, the
/// tape-backed scalar simulator (lane by lane) and the tape-backed
/// batch simulator (all lanes at once); every post-step output of every
/// cycle must be identical across all three.
fn assert_schedule_matches_reference(family: &str, netlist: &Netlist, cycles: usize, seed: u64) {
    let mut rng = seed | 1;
    let schedule: Vec<Vec<(String, Vec<Ubig>)>> = (0..cycles)
        .map(|_| random_cycle(netlist, &mut rng))
        .collect();

    let mut batch = BatchSimulator::new(netlist.clone());
    let mut snapshots: Vec<Vec<Vec<Ubig>>> = Vec::with_capacity(cycles);
    for cycle in &schedule {
        for (name, lanes) in cycle {
            batch.set_input_lanes(name, lanes);
        }
        batch.step();
        batch.eval();
        snapshots.push(
            netlist
                .output_ports()
                .iter()
                .map(|p| {
                    (0..LANES)
                        .map(|l| batch.read_output_lane(&p.name, l))
                        .collect()
                })
                .collect(),
        );
    }

    let mut golden = ReferenceSim::new(netlist.clone());
    let mut tape = Simulator::new(netlist.clone());
    for lane in 0..LANES {
        golden.reset();
        tape.reset();
        for (c, cycle) in schedule.iter().enumerate() {
            for (name, lanes) in cycle {
                golden.set_input(name, &lanes[lane]);
                tape.set_input(name, &lanes[lane]);
            }
            golden.step();
            golden.eval();
            tape.step();
            tape.eval();
            for (pi, port) in netlist.output_ports().iter().enumerate() {
                let want = golden.read_output(&port.name);
                assert_eq!(
                    tape.read_output(&port.name),
                    want,
                    "{family}: tape scalar diverges from pre-refactor walk, \
                     output {:?}, lane {lane}, cycle {c}",
                    port.name
                );
                assert_eq!(
                    snapshots[c][pi][lane], want,
                    "{family}: tape batch diverges from pre-refactor walk, \
                     output {:?}, lane {lane}, cycle {c}",
                    port.name
                );
            }
        }
    }
}

/// Exhaustive converter check at one n: every index through the
/// reference walk, the tape scalar, the tape batch and the software
/// unranker — four-way agreement on every output word.
fn assert_converter_exhaustive(n: usize) {
    let netlist = converter_netlist(n, ConverterOptions::default());
    let golden_words = expected_permutation_words(n);
    let mut golden = ReferenceSim::new(netlist.clone());
    let mut tape = Simulator::new(netlist.clone());
    let mut batch = BatchSimulator::new(netlist.clone());
    let total = golden_words.len();
    let mut base = 0usize;
    while base < total {
        let count = (total - base).min(LANES);
        let lanes: Vec<u64> = (0..count).map(|l| (base + l) as u64).collect();
        batch.set_input_lanes_u64("index", &lanes);
        batch.eval();
        for (lane, &index) in lanes.iter().enumerate() {
            let value = Ubig::from(index);
            golden.set_input("index", &value);
            golden.eval();
            tape.set_input("index", &value);
            tape.eval();
            let want = golden.read_output("perm");
            assert_eq!(
                want.to_u64(),
                Some(golden_words[index as usize]),
                "n={n}: pre-refactor walk disagrees with software unranking at index {index}"
            );
            assert_eq!(
                tape.read_output("perm"),
                want,
                "n={n}: tape scalar diverges at index {index}"
            );
            assert_eq!(
                batch.read_output_lane("perm", lane),
                want,
                "n={n}: tape batch diverges at index {index}"
            );
        }
        base += count;
    }
}

#[test]
fn converter_exhaustive_matches_pre_refactor_golden_n4_to_n6() {
    for n in 4..=6 {
        assert_converter_exhaustive(n);
    }
}

proptest! {
    // Each case compares 64 lanes x all output bits x all cycles across
    // three simulators, so modest case counts cover thousands of
    // vectors per family.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// All nine families: tape-backed scalar and batched runs equal the
    /// pre-refactor reference walk. Combinational families get a
    /// 1-cycle schedule (step on a register-free netlist is just eval);
    /// registered families get a real multi-cycle schedule.
    #[test]
    fn all_families_match_pre_refactor_golden(n in 3usize..=5, seed in any::<u64>()) {
        for family in FAMILIES {
            let netlist = family_netlist(family, n);
            let cycles = if netlist.register_count() == 0 { 1 } else { 4 };
            assert_schedule_matches_reference(family, &netlist, cycles, seed);
        }
    }

    /// The pipelined converter gets a schedule deeper than its DFF
    /// pipeline, so latching order (not just combinational agreement)
    /// is what the tape is held to.
    #[test]
    fn pipelined_converter_deep_schedule_matches_golden(
        n in 3usize..=6,
        seed in any::<u64>(),
    ) {
        let netlist = converter_netlist(
            n,
            ConverterOptions { pipelined: true, perm_input_port: false },
        );
        prop_assert!(netlist.register_count() > 0);
        assert_schedule_matches_reference("converter-pipelined", &netlist, n + 3, seed);
    }
}
