//! The inverse circuit: permutation → index (hardware ranking).
//!
//! The paper builds index → permutation; the obvious companion — needed
//! wherever a permutation must be *stored or compared compactly* (the
//! compressed-permutation motivation in the intro) — is the inverse.
//! Stage `j` computes the Lehmer digit
//! `L_j = #{ i > j : π(i) < π(j) }` with a bank of `n−1−j` comparators
//! and a population count, scales it by the constant `(n−1−j)!` with a
//! shift-and-add multiplier, and accumulates. Same `n(n−1)/2`
//! comparator complexity as the forward converter, `O(n)` stage delay.

use crate::converter::index_width;
use hwperm_bignum::Ubig;
use hwperm_logic::{Builder, Bus, Netlist, ResourceReport, Simulator};
use hwperm_perm::{bits_per_element, Permutation};

/// Permutation → index converter (hardware rank).
///
/// ```
/// use hwperm_circuits::PermToIndexConverter;
/// use hwperm_perm::Permutation;
///
/// let mut conv = PermToIndexConverter::new(4);
/// let p = Permutation::try_from_slice(&[1, 3, 2, 0]).unwrap();
/// assert_eq!(conv.rank(&p).to_u64(), Some(11)); // Table I, N = 11
/// ```
#[derive(Debug, Clone)]
pub struct PermToIndexConverter {
    sim: Simulator,
    n: usize,
}

impl PermToIndexConverter {
    /// Builds the ranking circuit for `n`-element permutations.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "rank circuit requires n >= 2");
        PermToIndexConverter {
            sim: Simulator::new(build_rank_circuit(n)),
            n,
        }
    }

    /// Number of elements `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The generated netlist.
    pub fn netlist(&self) -> &Netlist {
        self.sim.netlist()
    }

    /// Resource estimate.
    pub fn report(&self) -> ResourceReport {
        ResourceReport::of(self.sim.netlist())
    }

    /// Ranks a permutation: the inverse of the Fig. 1 conversion.
    pub fn rank(&mut self, perm: &Permutation) -> Ubig {
        assert_eq!(perm.n(), self.n, "permutation size mismatch");
        self.sim.set_input("perm", &perm.pack());
        self.sim.eval();
        self.sim.read_output("index")
    }
}

fn build_rank_circuit(n: usize) -> Netlist {
    let mut builder = Builder::new();
    let b = &mut builder;
    let bits = bits_per_element(n);
    let w = index_width(n);

    // Unpack the paper's single-word representation (position 0 = MSB
    // field), elements LSB-first.
    let word = b.input_bus("perm", n * bits);
    let elems: Vec<Bus> = (0..n)
        .map(|p| {
            let base = (n - 1 - p) * bits;
            word[base..base + bits].to_vec()
        })
        .collect();

    // Accumulate Σ L_j · (n−1−j)!.
    let mut acc: Bus = vec![b.constant(false); w];
    for j in 0..n - 1 {
        // Comparator bank: lt_i = (π(i) < π(j)) for i > j.
        let lt: Vec<_> = (j + 1..n)
            .map(|i| {
                let ge = b.ge(&elems[i], &elems[j]);
                b.not(ge)
            })
            .collect();
        let digit = b.popcount(&lt);
        let weight = Ubig::factorial((n - 1 - j) as u64);
        let term = b.mul_const(&digit, &weight);
        let (sum, _carry) = b.add(&acc, &term[..term.len().min(w)]);
        acc = sum[..w].to_vec();
    }
    b.output_bus("index", &acc);
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwperm_factoradic::{rank, unrank_u64};

    #[test]
    fn ranks_table_i_exhaustively() {
        let mut conv = PermToIndexConverter::new(4);
        for i in 0..24u64 {
            let p = unrank_u64(4, i);
            assert_eq!(conv.rank(&p).to_u64(), Some(i), "N = {i}");
        }
    }

    #[test]
    fn inverts_the_forward_converter() {
        use crate::IndexToPermConverter;
        let mut forward = IndexToPermConverter::new(6);
        let mut backward = PermToIndexConverter::new(6);
        for i in (0..720u64).step_by(13) {
            let p = forward.convert_u64(i);
            assert_eq!(backward.rank(&p).to_u64(), Some(i), "N = {i}");
        }
    }

    #[test]
    fn matches_software_rank_for_larger_n() {
        let mut conv = PermToIndexConverter::new(9);
        for i in [0u64, 1, 54_321, 362_879] {
            let p = unrank_u64(9, i);
            assert_eq!(conv.rank(&p), rank(&p), "N = {i}");
        }
    }

    #[test]
    fn big_index_n22() {
        use hwperm_factoradic::unrank;
        let mut conv = PermToIndexConverter::new(22);
        let index = &Ubig::factorial(22) - &Ubig::from(98_765u64);
        let p = unrank(22, &index);
        assert_eq!(conv.rank(&p), index);
    }

    #[test]
    fn extremes() {
        let mut conv = PermToIndexConverter::new(7);
        assert_eq!(conv.rank(&Permutation::identity(7)), Ubig::zero());
        assert_eq!(
            conv.rank(&Permutation::last_lex(7)).to_u64(),
            Some(5040 - 1)
        );
    }

    #[test]
    fn comparator_complexity_matches_forward() {
        // Same O(n²) comparator structure as the converter.
        let g6 = PermToIndexConverter::new(6).netlist().combinational_count();
        let g12 = PermToIndexConverter::new(12)
            .netlist()
            .combinational_count();
        let ratio = g12 as f64 / g6 as f64;
        assert!((3.0..=14.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_size_rejected() {
        PermToIndexConverter::new(4).rank(&Permutation::identity(5));
    }
}
