//! The Fig. 2 random permutation generator: LFSR → ×n! → ≫m → converter.
//!
//! "The output of the random number generator can be viewed as a number
//! x, such that 0 < x < 1 … Multiplying this by integer k yields a value
//! y such that 0 ≤ y < k. We choose k appropriately" — here `k = n!`, so
//! the truncated product is a random index fed straight into the Fig. 1
//! converter. The whole thing is one netlist; each clock yields one
//! random permutation.

use crate::converter::{emit_converter_stages, emit_packed_output, index_width};
use hwperm_bignum::Ubig;
use hwperm_factoradic::unrank;
use hwperm_logic::{Builder, Netlist, ResourceReport, Simulator};
use hwperm_perm::{bits_per_element, Permutation};
use hwperm_rng::lfsr::build_lfsr;
use hwperm_rng::Lfsr;

/// The Fig. 2 generator wrapped in a simulator.
///
/// The paper notes its disadvantage — "the large size of the index"
/// (for n = 64 the index needs ⌈log₂ 64!⌉ = 296 bits) — which is why the
/// LFSR width is capped at 64 here and larger `n` should use the Knuth
/// shuffle circuit instead.
#[derive(Debug, Clone)]
pub struct RandomIndexGenerator {
    sim: Simulator,
    n: usize,
    m: usize,
    nfact: Ubig,
}

impl RandomIndexGenerator {
    /// Default LFSR width: 8 bits above the index width (keeps the
    /// pigeonhole bias below ~0.4%), capped at 63.
    pub fn new(n: usize, seed: u64) -> Self {
        let m = (index_width(n) + 8).min(63);
        Self::with_lfsr_width(n, m, seed)
    }

    /// Explicit LFSR width `m` (the paper's bias knob).
    ///
    /// # Panics
    /// Panics if `n < 2`, or if `m < ⌈log₂ n!⌉` (every index must be
    /// reachable), or `m > 64`.
    pub fn with_lfsr_width(n: usize, m: usize, seed: u64) -> Self {
        assert!(n >= 2, "generator requires n >= 2");
        let w = index_width(n);
        assert!(
            m >= w,
            "LFSR width {m} cannot cover the {w}-bit index space"
        );
        let nfact = Ubig::factorial(n as u64);
        let netlist = build_random_index_generator(n, m, seed);
        let mut sim = Simulator::new(netlist);
        sim.eval();
        RandomIndexGenerator { sim, n, m, nfact }
    }

    /// Number of elements.
    pub fn n(&self) -> usize {
        self.n
    }

    /// LFSR width `m`.
    pub fn lfsr_width(&self) -> usize {
        self.m
    }

    /// The generated netlist.
    pub fn netlist(&self) -> &Netlist {
        self.sim.netlist()
    }

    /// Resource estimate.
    pub fn report(&self) -> ResourceReport {
        ResourceReport::of(self.sim.netlist())
    }

    /// One clock: returns the permutation for the current LFSR state and
    /// advances the LFSR. Also exposes the raw index on port `rand_index`.
    pub fn next_permutation(&mut self) -> Permutation {
        let word = self.sim.read_output("perm");
        let perm =
            Permutation::unpack(self.n, &word).expect("generator output is always a permutation");
        debug_assert!(self.sim.read_output("rand_index") < self.nfact);
        self.sim.step();
        self.sim.eval();
        perm
    }
}

/// Software mirror of [`RandomIndexGenerator`] for differential tests
/// and fast Monte-Carlo use.
#[derive(Debug, Clone)]
pub struct RandomIndexModel {
    lfsr: Lfsr,
    n: usize,
    nfact: Ubig,
}

impl RandomIndexModel {
    /// Mirror of [`RandomIndexGenerator::with_lfsr_width`].
    pub fn with_lfsr_width(n: usize, m: usize, seed: u64) -> Self {
        RandomIndexModel {
            lfsr: Lfsr::new(m, seed),
            n,
            nfact: Ubig::factorial(n as u64),
        }
    }

    /// Next permutation: `index = ⌊n!·x / 2^m⌋`, unranked in software.
    pub fn next_permutation(&mut self) -> Permutation {
        let x = self.lfsr.state();
        let m = self.lfsr.width();
        let index = self.nfact.mul_u64(x).shr_bits(m);
        self.lfsr.step();
        unrank(self.n, &index)
    }
}

/// Generates the Fig. 2 netlist: LFSR, shift-add multiplier by `n!`,
/// truncation, then the shared Fig. 1 stage cascade.
fn build_random_index_generator(n: usize, m: usize, seed: u64) -> Netlist {
    let mut builder = Builder::new();
    let b = &mut builder;
    let bits = bits_per_element(n);
    let nfact = Ubig::factorial(n as u64);
    let w = index_width(n);

    let x = build_lfsr(b, m, seed);
    let product = b.mul_const(&x, &nfact);
    // Right_Shift & Truncate: keep bits [m, m + w).
    let zero = b.constant(false);
    let index: Vec<_> = (0..w)
        .map(|i| product.get(m + i).copied().unwrap_or(zero))
        .collect();
    b.output_bus("rand_index", &index);

    let remaining: Vec<_> = (0..n)
        .map(|e| b.constant_bus(bits, &Ubig::from(e as u64)))
        .collect();
    let outputs = emit_converter_stages(b, index, remaining, false);
    emit_packed_output(b, &outputs, bits);
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circuit_matches_software_model() {
        for (n, m) in [(3usize, 8usize), (4, 10), (5, 16)] {
            let seed = 0xFACE + n as u64;
            let mut hw = RandomIndexGenerator::with_lfsr_width(n, m, seed);
            let mut sw = RandomIndexModel::with_lfsr_width(n, m, seed);
            for cycle in 0..150 {
                assert_eq!(
                    hw.next_permutation(),
                    sw.next_permutation(),
                    "n = {n}, m = {m}, cycle = {cycle}"
                );
            }
        }
    }

    #[test]
    fn index_stays_below_n_factorial() {
        // Even with the minimal legal m (= index width), the truncated
        // product is < n!.
        let w = index_width(4);
        let mut generator = RandomIndexGenerator::with_lfsr_width(4, w, 1);
        for _ in 0..100 {
            let p = generator.next_permutation();
            assert!(Permutation::try_from_slice(p.as_slice()).is_ok());
        }
    }

    #[test]
    fn covers_whole_permutation_space() {
        // m = 10 over n = 4: one LFSR period emits every index.
        let mut generator = RandomIndexGenerator::with_lfsr_width(4, 10, 5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1023 {
            seen.insert(generator.next_permutation().into_vec());
        }
        assert_eq!(seen.len(), 24, "all 24 permutations reachable");
    }

    #[test]
    fn bias_matches_pigeonhole_for_m5_n4() {
        // The paper's example: m = 5, k = 24 — seven permutations occur
        // twice per period, 17 once.
        let mut generator = RandomIndexGenerator::with_lfsr_width(4, 5, 1);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..31 {
            *counts
                .entry(generator.next_permutation().into_vec())
                .or_insert(0u32) += 1;
        }
        let twos = counts.values().filter(|&&c| c == 2).count();
        let ones = counts.values().filter(|&&c| c == 1).count();
        assert_eq!((twos, ones), (7, 17));
    }

    #[test]
    #[should_panic(expected = "cannot cover")]
    fn undersized_lfsr_rejected() {
        RandomIndexGenerator::with_lfsr_width(5, 3, 1);
    }

    #[test]
    fn resource_report_includes_lfsr_registers() {
        let generator = RandomIndexGenerator::with_lfsr_width(4, 12, 1);
        assert_eq!(generator.report().registers, 12);
    }
}
