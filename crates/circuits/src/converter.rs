//! The Fig. 1 index → permutation converter.
//!
//! `n` cascaded stages. Stage `j` holds `r = n − j` still-unassigned
//! elements and the running index (known `< r!`). It:
//!
//! 1. compares the index against the multiples `i·(r−1)!` (thermometer
//!    comparator bank — these are the "`>6 >12 >18`"-style boxes of
//!    Fig. 1);
//! 2. converts the thermometer to a one-hot digit `s_{r−1} = d`;
//! 3. subtracts `d·(r−1)!` with the stage's `A−B` block, narrowing the
//!    index bus to `⌈log₂ (r−1)!⌉` bits;
//! 4. routes the `d`-th remaining element to output position `j` through
//!    the one-hot MUX, and compacts the remaining elements (thermometer-
//!    controlled 2:1 muxes).
//!
//! With [`ConverterOptions::pipelined`], a register rank is inserted
//! after every stage: latency `n − 1` clocks, throughput one permutation
//! per clock — the paper's headline operating mode.

use hwperm_bignum::Ubig;
use hwperm_logic::{Builder, Bus, Netlist, ResourceReport, Simulator};
use hwperm_perm::{bits_per_element, Permutation};

/// Build-time options for [`IndexToPermConverter`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ConverterOptions {
    /// Insert a pipeline register rank after every stage (the paper's
    /// "easily pipelined" variant; latency `n − 1`, one permutation per
    /// clock).
    pub pipelined: bool,
    /// Expose the input permutation as a port named `inperm` instead of
    /// hard-wiring the identity. The paper notes the input permutation
    /// "is typically fixed (e.g. as the identity permutation)".
    pub perm_input_port: bool,
}

/// The paper's index → permutation converter (Fig. 1) wrapped in a
/// simulator.
///
/// ```
/// use hwperm_circuits::IndexToPermConverter;
/// use hwperm_bignum::Ubig;
///
/// let mut conv = IndexToPermConverter::new(4);
/// // Table I, N = 11 → permutation 1 3 2 0.
/// let p = conv.convert(&Ubig::from(11u64));
/// assert_eq!(p.as_slice(), &[1, 3, 2, 0]);
/// ```
#[derive(Debug, Clone)]
pub struct IndexToPermConverter {
    sim: Simulator,
    n: usize,
    index_width: usize,
    options: ConverterOptions,
    latency: usize,
}

impl IndexToPermConverter {
    /// Combinational converter with the identity input permutation.
    ///
    /// # Panics
    /// Panics if `n < 2` (there is nothing to convert below that; the
    /// software path in `hwperm-factoradic` handles degenerate sizes).
    pub fn new(n: usize) -> Self {
        Self::with_options(n, ConverterOptions::default())
    }

    /// Converter with explicit [`ConverterOptions`].
    pub fn with_options(n: usize, options: ConverterOptions) -> Self {
        let netlist = build_converter(n, options);
        let index_width = index_width(n);
        let latency = if options.pipelined { n - 1 } else { 0 };
        IndexToPermConverter {
            sim: Simulator::new(netlist),
            n,
            index_width,
            options,
            latency,
        }
    }

    /// Number of permutation elements `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Width of the `index` input port: `⌈log₂ n!⌉` bits.
    pub fn index_width(&self) -> usize {
        self.index_width
    }

    /// Pipeline latency in clocks (0 for the combinational build).
    pub fn latency(&self) -> usize {
        self.latency
    }

    /// The generated netlist.
    pub fn netlist(&self) -> &Netlist {
        self.sim.netlist()
    }

    /// Resource estimate (a Tables III/IV row).
    pub fn report(&self) -> ResourceReport {
        ResourceReport::of(self.sim.netlist())
    }

    fn drive_identity_if_ported(&mut self) {
        if self.options.perm_input_port {
            let id = Permutation::identity(self.n).pack();
            self.sim.set_input("inperm", &id);
        }
    }

    /// Converts one index. Combinational: a single settle. Pipelined:
    /// feeds the index and clocks the pipe `latency` times (use
    /// [`IndexToPermConverter::convert_stream`] for full throughput).
    ///
    /// # Panics
    /// Panics if `index >= n!`.
    pub fn convert(&mut self, index: &Ubig) -> Permutation {
        assert!(
            *index < Ubig::factorial(self.n as u64),
            "index out of range for n = {}",
            self.n
        );
        self.drive_identity_if_ported();
        self.sim.set_input("index", index);
        if self.options.pipelined {
            for _ in 0..self.latency {
                self.sim.step();
            }
        }
        self.sim.eval();
        self.read_perm()
    }

    /// `u64` convenience wrapper over [`IndexToPermConverter::convert`].
    pub fn convert_u64(&mut self, index: u64) -> Permutation {
        self.convert(&Ubig::from(index))
    }

    /// Converts a permutation with an explicit input permutation (only
    /// for builds with [`ConverterOptions::perm_input_port`]). The output
    /// is `input_perm` reordered by the `index`-th permutation.
    pub fn convert_with_input(&mut self, index: &Ubig, input: &Permutation) -> Permutation {
        assert!(
            self.options.perm_input_port,
            "converter was built without an input permutation port"
        );
        assert_eq!(input.n(), self.n);
        self.sim.set_input("inperm", &input.pack());
        self.sim.set_input("index", index);
        if self.options.pipelined {
            for _ in 0..self.latency {
                self.sim.step();
            }
        }
        self.sim.eval();
        self.read_perm()
    }

    /// Streams indices through the pipeline at one permutation per clock,
    /// demonstrating the paper's throughput claim. Also valid (but
    /// unremarkable) for combinational builds.
    pub fn convert_stream(&mut self, indices: &[Ubig]) -> Vec<Permutation> {
        self.drive_identity_if_ported();
        if !self.options.pipelined {
            return indices.iter().map(|i| self.convert(i)).collect();
        }
        // A value fed before the step at cycle c crosses one register rank
        // per step, so it appears at the output after cycle c + latency − 1.
        let mut out = Vec::with_capacity(indices.len());
        let total_cycles = indices.len() + self.latency - 1;
        for cycle in 0..total_cycles {
            if cycle < indices.len() {
                self.sim.set_input("index", &indices[cycle]);
            }
            self.sim.step();
            self.sim.eval();
            if cycle + 1 >= self.latency {
                out.push(self.read_perm());
            }
        }
        out
    }

    fn read_perm(&self) -> Permutation {
        let word = self.sim.read_output("perm");
        Permutation::unpack(self.n, &word).expect("converter output is always a permutation")
    }
}

/// Index bus width: `⌈log₂ n!⌉` (bit length of `n! − 1`).
pub(crate) fn index_width(n: usize) -> usize {
    index_width_for(&Ubig::factorial(n as u64))
}

/// Bus width covering indices `[0, total)`.
pub(crate) fn index_width_for(total: &Ubig) -> usize {
    (total - &Ubig::one()).bit_len().max(1)
}

/// One still-unassigned element flowing between stages.
type Element = Bus;

/// Generates the Fig. 1 netlist.
fn build_converter(n: usize, options: ConverterOptions) -> Netlist {
    assert!(n >= 2, "converter requires n >= 2");
    let mut builder = Builder::new();
    let b = &mut builder;
    let bits = bits_per_element(n);
    let w0 = index_width(n);
    let index: Bus = b.input_bus("index", w0);

    // Input permutation: identity constants or an unpacked port.
    let remaining: Vec<Element> = if options.perm_input_port {
        let word = b.input_bus("inperm", n * bits);
        // Field for position p sits at bit base (n-1-p)·bits, LSB-first.
        (0..n)
            .map(|p| {
                let base = (n - 1 - p) * bits;
                word[base..base + bits].to_vec()
            })
            .collect()
    } else {
        (0..n)
            .map(|e| b.constant_bus(bits, &Ubig::from(e as u64)))
            .collect()
    };

    let outputs = emit_converter_stages(b, index, remaining, options.pipelined);
    emit_packed_output(b, &outputs, bits);
    builder.finish()
}

/// Packs per-position element buses into the paper's single output word
/// (position 0 = most significant field) on port `perm`.
pub(crate) fn emit_packed_output(b: &mut Builder, outputs: &[Element], bits: usize) {
    let n = outputs.len();
    let mut word = vec![b.constant(false); n * bits];
    for (p, elem) in outputs.iter().enumerate() {
        let base = (n - 1 - p) * bits;
        for (i, &net) in elem.iter().enumerate() {
            word[base + i] = net;
        }
    }
    b.output_bus("perm", &word);
}

/// Emits the n-stage Fig. 1 cascade on an existing builder: consumes the
/// running index bus and the vector of unassigned elements, returns the
/// per-position output element buses. Shared between the converter and
/// the Fig. 2 random-index generator.
pub(crate) fn emit_converter_stages(
    b: &mut Builder,
    index: Bus,
    remaining: Vec<Element>,
    pipelined: bool,
) -> Vec<Element> {
    let n = remaining.len();
    let blocks: Vec<Ubig> = (0..n)
        .map(|j| Ubig::factorial((n - 1 - j) as u64))
        .collect();
    emit_selection_stages(b, index, remaining, pipelined, &blocks)
}

/// The generalized select-and-compact cascade. Stage `j` extracts digit
/// `d = ⌊index / blocks[j]⌋` by thermometer comparison against the
/// multiples of `blocks[j]`, subtracts `d·blocks[j]`, and routes the
/// `d`-th remaining element out. With `blocks[j] = (n−1−j)!` this is the
/// paper's converter; with falling factorials it enumerates variations
/// (the truncated cascade); a single stage with block 1 is a plain
/// selector.
///
/// `blocks.len()` determines how many elements are emitted; it may be
/// shorter than `remaining.len()` (truncated cascade).
pub(crate) fn emit_selection_stages(
    b: &mut Builder,
    mut index: Bus,
    mut remaining: Vec<Element>,
    pipelined: bool,
    blocks: &[Ubig],
) -> Vec<Element> {
    let n = remaining.len();
    let stages = blocks.len();
    assert!(stages <= n, "more stages than elements");
    let mut outputs: Vec<Element> = Vec::with_capacity(stages);

    for (j, f) in blocks.iter().enumerate() {
        let r = n - j; // elements still unassigned
        if r == 1 {
            outputs.push(remaining.pop().expect("one element left"));
            break;
        }
        let f = f.clone();

        // 1. Thermometer comparator bank: t[i] = (index >= i*f), i = 1..r-1.
        let thermo: Vec<_> = (1..r)
            .map(|i| {
                let c = f.mul_u64(i as u64);
                b.ge_const(&index, &c)
            })
            .collect();

        // 2. One-hot digit.
        let mut onehot = Vec::with_capacity(r);
        for d in 0..r {
            let net = if d == 0 {
                b.not(thermo[0])
            } else if d == r - 1 {
                thermo[r - 2]
            } else {
                let hi = b.not(thermo[d]);
                b.and(thermo[d - 1], hi)
            };
            onehot.push(net);
        }

        // 3. Subtract the selected multiple (the stage's A−B block) and
        //    narrow the index bus for the next stage. Because the true
        //    difference is < blocks[j], the subtraction can be performed
        //    modulo 2^next_width on truncated operands — no logic is
        //    spent on high bits that provably cancel. The final stage
        //    with remaining choices skips the subtract entirely (nothing
        //    downstream reads the index).
        let next_stage_reads_index = j + 1 < stages && n - (j + 1) > 1;
        if next_stage_reads_index {
            let next_width = (&f - &Ubig::one()).bit_len().max(1);
            let trunc = next_width.min(index.len());
            let index_low: Bus = index[..trunc].to_vec();
            let multiples: Vec<Bus> = (0..r)
                .map(|d| {
                    let c = f.mul_u64(d as u64).low_bits(next_width);
                    b.constant_bus(next_width, &c)
                })
                .collect();
            let multiple_refs: Vec<&[_]> = multiples.iter().map(|m| m.as_slice()).collect();
            let subtrahend = b.one_hot_mux(&onehot, &multiple_refs);
            let diff = b.sub_mod(&index_low, &subtrahend);
            index = diff[..next_width.min(diff.len())].to_vec();
        } else {
            index = Vec::new();
        }

        // 4. Route the selected element to output position j...
        let remaining_refs: Vec<&[_]> = remaining.iter().map(|e| e.as_slice()).collect();
        let out_elem = b.one_hot_mux(&onehot, &remaining_refs);
        outputs.push(out_elem);

        // ...and compact the remaining vector: slot i keeps cur[i] while
        // the removed position is still to the right (t[i+1] high),
        // otherwise shifts cur[i+1] down.
        let mut next_remaining = Vec::with_capacity(r - 1);
        for i in 0..r - 1 {
            let keep_cur = thermo[i]; // t_{i+1} in 1-based digit terms
            let shifted = &remaining[i + 1];
            let cur = &remaining[i];
            next_remaining.push(b.mux_bus(keep_cur, shifted, cur));
        }
        remaining = next_remaining;

        // Pipeline rank after each stage except the last.
        if pipelined && j < stages - 1 {
            index = b.register_bus(&index, false);
            remaining = remaining.iter().map(|e| b.register_bus(e, false)).collect();
            outputs = outputs.iter().map(|e| b.register_bus(e, false)).collect();
        }
    }
    outputs
}

/// Pure netlist generation (for resource analysis without a simulator).
pub fn converter_netlist(n: usize, options: ConverterOptions) -> Netlist {
    build_converter(n, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwperm_factoradic::{unrank, unrank_u64};

    #[test]
    fn matches_table_i_exhaustively() {
        let mut conv = IndexToPermConverter::new(4);
        for i in 0..24u64 {
            assert_eq!(conv.convert_u64(i), unrank_u64(4, i), "N = {i}");
        }
    }

    #[test]
    fn matches_software_exhaustively_n5_n6() {
        for n in [5usize, 6] {
            let mut conv = IndexToPermConverter::new(n);
            let total: u64 = (1..=n as u64).product();
            for i in 0..total {
                assert_eq!(conv.convert_u64(i), unrank_u64(n, i), "n = {n}, N = {i}");
            }
        }
    }

    #[test]
    fn spot_checks_larger_n() {
        let mut conv = IndexToPermConverter::new(9);
        for i in [0u64, 1, 12345, 362_879, 362_880 - 1] {
            assert_eq!(conv.convert_u64(i), unrank_u64(9, i), "N = {i}");
        }
    }

    #[test]
    fn very_wide_converter_n32() {
        // n = 32: 118-bit index bus, 496 comparators, multi-limb
        // constants throughout. One differential conversion proves the
        // generator scales structurally.
        let mut conv = IndexToPermConverter::new(32);
        assert_eq!(conv.index_width(), 118);
        let index = Ubig::factorial(32).divrem_u64(7).0;
        assert_eq!(conv.convert(&index), unrank(32, &index));
    }

    #[test]
    fn big_index_n22() {
        // n = 22: index needs 70 bits — beyond u64.
        let mut conv = IndexToPermConverter::new(22);
        let nfact = Ubig::factorial(22);
        for index in [
            Ubig::zero(),
            Ubig::from(123_456_789u64),
            &nfact - &Ubig::one(),
        ] {
            assert_eq!(conv.convert(&index), unrank(22, &index));
        }
    }

    #[test]
    fn pipelined_matches_combinational() {
        let options = ConverterOptions {
            pipelined: true,
            perm_input_port: false,
        };
        let mut pipe = IndexToPermConverter::with_options(5, options);
        assert_eq!(pipe.latency(), 4);
        for i in [0u64, 7, 59, 119] {
            assert_eq!(pipe.convert_u64(i), unrank_u64(5, i), "N = {i}");
        }
    }

    #[test]
    fn pipelined_stream_one_per_clock() {
        let options = ConverterOptions {
            pipelined: true,
            perm_input_port: false,
        };
        let mut pipe = IndexToPermConverter::with_options(4, options);
        let indices: Vec<Ubig> = (0..24u64).map(Ubig::from).collect();
        let perms = pipe.convert_stream(&indices);
        assert_eq!(perms.len(), 24);
        for (i, p) in perms.iter().enumerate() {
            assert_eq!(p, &unrank_u64(4, i as u64), "N = {i}");
        }
    }

    #[test]
    fn input_permutation_port_routes_data() {
        let options = ConverterOptions {
            pipelined: false,
            perm_input_port: true,
        };
        let mut conv = IndexToPermConverter::with_options(4, options);
        let input = Permutation::try_from_slice(&[3, 1, 0, 2]).unwrap();
        for i in 0..24u64 {
            let got = conv.convert_with_input(&Ubig::from(i), &input);
            // The circuit applies the index-selected permutation to the
            // provided element vector.
            let expected_elems = unrank_u64(4, i).apply(input.as_slice());
            assert_eq!(got.as_slice(), expected_elems.as_slice(), "N = {i}");
        }
    }

    #[test]
    fn index_width_matches_paper_examples() {
        assert_eq!(index_width(4), 5); // paper: "index be a 5-bit quantity"
        assert_eq!(index_width(64), 296); // ⌈log₂ 64!⌉
    }

    #[test]
    fn comparator_count_structure() {
        // Thermometer comparators per stage = r−1 → n(n−1)/2 comparators,
        // each O(W) gates with W = ⌈log₂ n!⌉ = O(n log n); total gate
        // count is O(n³ log n), so doubling n multiplies gates by ~8–10.
        let small = converter_netlist(6, ConverterOptions::default()).combinational_count();
        let large = converter_netlist(12, ConverterOptions::default()).combinational_count();
        let ratio = large as f64 / small as f64;
        assert!(
            (4.0..=14.0).contains(&ratio),
            "super-quadratic gate growth expected, ratio = {ratio}"
        );
    }

    #[test]
    fn pipelined_register_count_grows_quadratically() {
        let opts = ConverterOptions {
            pipelined: true,
            perm_input_port: false,
        };
        let r6 = converter_netlist(6, opts).register_count();
        let r12 = converter_netlist(12, opts).register_count();
        assert!(r6 > 0);
        let ratio = r12 as f64 / r6 as f64;
        assert!((2.5..=8.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_index_at_n_factorial() {
        IndexToPermConverter::new(4).convert_u64(24);
    }

    #[test]
    #[should_panic(expected = "n >= 2")]
    fn rejects_n_below_two() {
        IndexToPermConverter::new(1);
    }
}
