#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The paper's circuits, generated gate-by-gate on the `hwperm-logic`
//! substrate.
//!
//! | Paper artifact | Type here |
//! |---|---|
//! | Fig. 1 — index to permutation converter (factorial number system) | [`IndexToPermConverter`] |
//! | Fig. 2 — random permutation generator (LFSR → ×k → ≫m → converter) | [`RandomIndexGenerator`] |
//! | Fig. 3 — Knuth shuffle random permutation generator | [`KnuthShuffleCircuit`] |
//! | Companion paper \[4\] — index to constant-weight codeword | [`IndexToCombinationConverter`] |
//! | Conclusion remark — "can also serve as a sorting network" | [`SortingNetwork`] |
//! | Extension: inverse circuit (permutation → index) | [`PermToIndexConverter`] |
//! | Extension: truncated cascade (index → k-permutation) | [`IndexToVariationConverter`] |
//!
//! Every circuit type wraps a generated [`hwperm_logic::Netlist`] in a
//! simulator plus the port bookkeeping to move `Ubig` indices and
//! [`hwperm_perm::Permutation`]s across the boundary, and exposes
//! [`hwperm_logic::ResourceReport`] for the Tables III/IV experiments.
//! All of them are differentially tested against the software references
//! in `hwperm-factoradic` / `hwperm-perm`.

mod cascade;
mod combination;
mod converter;
mod random_index;
mod rank_circuit;
mod shuffle;
mod sorter;
mod variation;

pub use cascade::LutCascadeConverter;
pub use combination::IndexToCombinationConverter;
pub use converter::{converter_netlist, ConverterOptions, IndexToPermConverter};
pub use random_index::{RandomIndexGenerator, RandomIndexModel};
pub use rank_circuit::PermToIndexConverter;
pub use shuffle::{shuffle_netlist, KnuthShuffleCircuit, KnuthShuffleModel, ShuffleOptions};
pub use sorter::SortingNetwork;
pub use variation::IndexToVariationConverter;

/// Comparators in the Fig. 1 converter: stage `j` compares the running
/// index against the multiples `1·(r−1)!, …, (r−1)·(r−1)!` where
/// `r = n − j`, so the total is `(n−1) + (n−2) + … + 1 + 0 = n(n−1)/2`
/// — the paper's `O(n²)` complexity claim.
pub fn converter_comparator_count(n: usize) -> usize {
    n * (n - 1) / 2
}

/// Crossovers in the Fig. 3 shuffle: stage `j` can route element `j`
/// against any of `n − j − 1` others, totalling `n(n−1)/2` — "identical
/// to the complexity of the index to permutation generator".
pub fn shuffle_crossover_count(n: usize) -> usize {
    n * (n - 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complexity_formulas() {
        assert_eq!(converter_comparator_count(4), 6);
        assert_eq!(converter_comparator_count(10), 45);
        assert_eq!(shuffle_crossover_count(4), 6);
        assert_eq!(
            converter_comparator_count(17),
            shuffle_crossover_count(17),
            "the paper notes the two complexities are identical"
        );
    }
}
