//! Index → variation (k-permutation) converter: the Fig. 1 cascade
//! truncated after `k` stages.
//!
//! The paper's circuit assigns all `n` output positions; stopping after
//! `k` stages enumerates the `n·(n−1)⋯(n−k+1)` ordered selections of
//! `k` distinct elements instead — same comparator banks, same one-hot
//! MUXes, with the per-stage weights changed from factorials to falling
//! factorials. A natural extension the stage structure supports
//! unchanged (DESIGN.md §6).

use crate::converter::{emit_selection_stages, index_width_for};
use hwperm_bignum::Ubig;
use hwperm_factoradic::falling_factorial;
#[cfg(test)]
use hwperm_factoradic::unrank_variation;
use hwperm_logic::{Builder, Netlist, ResourceReport, Simulator};
use hwperm_perm::bits_per_element;

/// Index → ordered `k`-selection converter.
///
/// ```
/// use hwperm_circuits::IndexToVariationConverter;
/// use hwperm_bignum::Ubig;
///
/// let mut conv = IndexToVariationConverter::new(5, 2);    // 20 variations
/// assert_eq!(conv.convert(&Ubig::zero()), vec![0, 1]);
/// assert_eq!(conv.convert(&Ubig::from(19u64)), vec![4, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct IndexToVariationConverter {
    sim: Simulator,
    n: usize,
    k: usize,
    total: Ubig,
}

impl IndexToVariationConverter {
    /// Builds the truncated cascade for `k`-selections of `{0, …, n−1}`.
    ///
    /// # Panics
    /// Panics if `n < 2`, `k == 0`, or `k > n`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(n >= 2, "converter requires n >= 2");
        assert!((1..=n).contains(&k), "k must be 1..=n");
        let total = falling_factorial(n as u64, k as u64);
        let netlist = build_variation_converter(n, k, &total);
        IndexToVariationConverter {
            sim: Simulator::new(netlist),
            n,
            k,
            total,
        }
    }

    /// Universe size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Selection length `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of variations `n!/(n−k)!`.
    pub fn total(&self) -> &Ubig {
        &self.total
    }

    /// The generated netlist.
    pub fn netlist(&self) -> &Netlist {
        self.sim.netlist()
    }

    /// Resource estimate.
    pub fn report(&self) -> ResourceReport {
        ResourceReport::of(self.sim.netlist())
    }

    /// Converts an index to the `index`-th variation.
    ///
    /// # Panics
    /// Panics if `index >= n!/(n−k)!`.
    pub fn convert(&mut self, index: &Ubig) -> Vec<u32> {
        assert!(*index < self.total, "variation index out of range");
        self.sim.set_input("index", index);
        self.sim.eval();
        let word = self.sim.read_output("out");
        let b = bits_per_element(self.n);
        (0..self.k)
            .map(|p| {
                let base = (self.k - 1 - p) * b;
                let mut e = 0u32;
                for bit in 0..b {
                    if word.bit(base + bit) {
                        e |= 1 << bit;
                    }
                }
                e
            })
            .collect()
    }
}

fn build_variation_converter(n: usize, k: usize, total: &Ubig) -> Netlist {
    let mut builder = Builder::new();
    let b = &mut builder;
    let bits = bits_per_element(n);
    let w = index_width_for(total);
    let index = b.input_bus("index", w);
    let remaining: Vec<_> = (0..n)
        .map(|e| b.constant_bus(bits, &Ubig::from(e as u64)))
        .collect();
    let blocks: Vec<Ubig> = (0..k)
        .map(|j| falling_factorial((n - 1 - j) as u64, (k - 1 - j) as u64))
        .collect();
    let outputs = emit_selection_stages(b, index, remaining, false, &blocks);

    let mut word = vec![b.constant(false); k * bits];
    for (p, elem) in outputs.iter().enumerate() {
        let base = (k - 1 - p) * bits;
        for (i, &net) in elem.iter().enumerate() {
            word[base + i] = net;
        }
    }
    b.output_bus("out", &word);
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_software_exhaustively() {
        for (n, k) in [(4usize, 1usize), (4, 2), (5, 3), (6, 2), (5, 5)] {
            let mut conv = IndexToVariationConverter::new(n, k);
            let total = conv.total().to_u64().unwrap();
            for i in 0..total {
                let idx = Ubig::from(i);
                assert_eq!(
                    conv.convert(&idx),
                    unrank_variation(n, k, &idx),
                    "n={n} k={k} i={i}"
                );
            }
        }
    }

    #[test]
    fn k_equals_n_matches_full_converter() {
        use crate::IndexToPermConverter;
        let mut full = IndexToPermConverter::new(5);
        let mut vark = IndexToVariationConverter::new(5, 5);
        for i in (0..120u64).step_by(7) {
            let idx = Ubig::from(i);
            assert_eq!(vark.convert(&idx), full.convert(&idx).into_vec());
        }
    }

    #[test]
    fn truncation_shrinks_the_circuit() {
        let full = IndexToVariationConverter::new(8, 8).report().total_luts;
        let half = IndexToVariationConverter::new(8, 3).report().total_luts;
        assert!(half < full, "{half} vs {full}");
    }

    #[test]
    fn elements_are_distinct() {
        let mut conv = IndexToVariationConverter::new(9, 4);
        for i in (0..3024u64).step_by(101) {
            let v = conv.convert(&Ubig::from(i));
            let set: std::collections::HashSet<_> = v.iter().collect();
            assert_eq!(set.len(), 4, "i = {i}: {v:?}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_overflow() {
        IndexToVariationConverter::new(4, 2).convert(&Ubig::from(12u64));
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn rejects_zero_k() {
        IndexToVariationConverter::new(4, 0);
    }
}
