//! LUT-cascade realization of the converter (Section II.B: "Note that
//! this circuit can be implemented as an LUT cascade", citing Sasao's
//! *Memory Based Logic Synthesis*).
//!
//! In the cascade form, each stage's digit-extraction logic — the
//! comparator bank plus the `A−B` subtractor of Fig. 1 — collapses into
//! one memory lookup: a ROM indexed by the running index that returns
//! the stage digit and the reduced index ("inputs and outputs that
//! carry index reduced by the values contributed by higher order
//! digits"). The partially completed permutation travels on
//! pass-through rails, exactly as in the paper's description; here the
//! digits are folded into the permutation at the end via the Lehmer
//! decoding, which is what the rails compute.
//!
//! The trade-off this realization exposes (and the reason memory-based
//! synthesis is attractive on FPGAs with block RAM): stage `j` needs
//! `2^(W_j)` words where `W_j = ⌈log₂ (n−j)!⌉` — the first stages are
//! BRAM-sized for small `n` and blow up quickly, while the comparator
//! form stays `O(n²)` LUTs. [`LutCascadeConverter::memory_bits`]
//! quantifies that.

use hwperm_bignum::Ubig;
use hwperm_perm::Permutation;

/// Per-stage ROM of the cascade.
#[derive(Debug, Clone)]
struct CascadeStage {
    /// Packed entries: `(digit << next_bits) | reduced_index`.
    rom: Vec<u32>,
    /// Input address width `W_j`.
    in_bits: usize,
    /// Digit field width.
    digit_bits: usize,
    /// Reduced-index field width `W_{j+1}`.
    next_bits: usize,
}

/// Memory-based (LUT cascade) realization of the index → permutation
/// converter.
///
/// ```
/// use hwperm_circuits::LutCascadeConverter;
/// use hwperm_bignum::Ubig;
///
/// let mut cascade = LutCascadeConverter::new(4);
/// assert_eq!(cascade.convert(&Ubig::from(11u64)).as_slice(), &[1, 3, 2, 0]);
/// ```
#[derive(Debug, Clone)]
pub struct LutCascadeConverter {
    stages: Vec<CascadeStage>,
    n: usize,
    total: Ubig,
}

impl LutCascadeConverter {
    /// Builds the cascade ROMs for `n`-element permutations.
    ///
    /// # Panics
    /// Panics if `n < 2`, or if the first-stage ROM would exceed 2²⁴
    /// entries (`n > 10`) — the point of the cascade analysis is exactly
    /// that this representation stops scaling there.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "cascade requires n >= 2");
        let total = Ubig::factorial(n as u64);
        let w0 = (&total - &Ubig::one()).bit_len().max(1);
        assert!(
            w0 <= 24,
            "first-stage ROM would need 2^{w0} entries; the LUT cascade form \
             is only practical for small n (use IndexToPermConverter instead)"
        );
        let mut stages = Vec::with_capacity(n - 1);
        for j in 0..n - 1 {
            let r = (n - j) as u64; // remaining elements at this stage
            let f = Ubig::factorial(r - 1).to_u64().expect("n ≤ 10");
            let span = f * r; // index domain size at this stage
            let in_bits = (64 - (span - 1).leading_zeros()).max(1) as usize;
            let digit_bits = (64 - (r - 1).leading_zeros()).max(1) as usize;
            let next_bits = if f > 1 {
                (64 - (f - 1).leading_zeros()) as usize
            } else {
                1
            };
            let mut rom = vec![0u32; 1usize << in_bits];
            for (idx, entry) in rom.iter_mut().enumerate() {
                let idx = idx as u64;
                if idx < span {
                    let digit = (idx / f) as u32;
                    let reduced = (idx % f) as u32;
                    *entry = (digit << next_bits) | reduced;
                }
                // Addresses ≥ span are unreachable; left as zero.
            }
            stages.push(CascadeStage {
                rom,
                in_bits,
                digit_bits,
                next_bits,
            });
        }
        LutCascadeConverter { stages, n, total }
    }

    /// Number of elements `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of cascade cells (`n − 1`).
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Total ROM bits across all stages (the Table-III-equivalent cost
    /// metric for the memory-based realization).
    pub fn memory_bits(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| (s.rom.len() as u64) * (s.digit_bits + s.next_bits) as u64)
            .sum()
    }

    /// Per-stage `(address_bits, data_bits)` — what would map to BRAMs.
    pub fn stage_shapes(&self) -> Vec<(usize, usize)> {
        self.stages
            .iter()
            .map(|s| (s.in_bits, s.digit_bits + s.next_bits))
            .collect()
    }

    /// Converts an index by walking the ROM cascade and decoding the
    /// collected digits.
    ///
    /// # Panics
    /// Panics if `index >= n!`.
    pub fn convert(&mut self, index: &Ubig) -> Permutation {
        assert!(*index < self.total, "index out of range for n = {}", self.n);
        let mut running = index.to_u64().expect("n ≤ 10 so the index fits u64");
        let mut digits = Vec::with_capacity(self.n);
        for stage in &self.stages {
            let entry = stage.rom[running as usize];
            let digit = entry >> stage.next_bits;
            let reduced = entry & ((1u32 << stage.next_bits) - 1);
            debug_assert!(digit < (1 << stage.digit_bits));
            digits.push(digit);
            running = reduced as u64;
        }
        digits.push(0); // the s_0 placeholder
        debug_assert_eq!(running, 0);
        Permutation::from_lehmer(&digits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwperm_factoradic::unrank_u64;

    #[test]
    fn matches_software_exhaustively_n4_n5() {
        for n in [4usize, 5] {
            let mut cascade = LutCascadeConverter::new(n);
            let total: u64 = (1..=n as u64).product();
            for i in 0..total {
                assert_eq!(
                    cascade.convert(&Ubig::from(i)),
                    unrank_u64(n, i),
                    "n = {n}, N = {i}"
                );
            }
        }
    }

    #[test]
    fn matches_gate_level_converter() {
        use crate::IndexToPermConverter;
        let mut cascade = LutCascadeConverter::new(7);
        let mut gates = IndexToPermConverter::new(7);
        for i in (0..5040u64).step_by(97) {
            assert_eq!(cascade.convert(&Ubig::from(i)), gates.convert_u64(i));
        }
    }

    #[test]
    fn stage_shapes_shrink_down_the_cascade() {
        let cascade = LutCascadeConverter::new(6);
        let shapes = cascade.stage_shapes();
        assert_eq!(shapes.len(), 5);
        for w in shapes.windows(2) {
            assert!(w[0].0 > w[1].0, "address width must shrink: {shapes:?}");
        }
        // First stage covers the whole index: ⌈log₂ 720⌉ = 10 bits.
        assert_eq!(shapes[0].0, 10);
    }

    #[test]
    fn memory_grows_factorially_not_quadratically() {
        let m6 = LutCascadeConverter::new(6).memory_bits();
        let m8 = LutCascadeConverter::new(8).memory_bits();
        // 8!/6! = 56× index-space growth dominates the ROM cost.
        assert!(m8 > m6 * 20, "{m6} -> {m8}");
    }

    #[test]
    #[should_panic(expected = "only practical for small n")]
    fn oversized_cascade_rejected() {
        LutCascadeConverter::new(12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_range_checked() {
        LutCascadeConverter::new(4).convert(&Ubig::from(24u64));
    }
}
