//! The Fig. 3 Knuth shuffle random permutation generator.
//!
//! A cascade of `n − 1` crossover stages. Stage `j` draws a random
//! integer `i ∈ [0, n−j)` from its own embedded random-integer generator
//! (an LFSR through the Fig. 2 multiply-shift block — the paper: "a
//! 31-bit random integer generator similar to that shown in Fig. 2 was
//! included in each stage") and swaps element `j` with element `j + i`.
//! After the last stage the output is a uniformly random permutation
//! (up to the LFSR bias analysed in `hwperm_rng::randint`).

use hwperm_bignum::Ubig;
use hwperm_logic::{Builder, Bus, Netlist, ResourceReport, Simulator};
use hwperm_perm::{bits_per_element, Permutation};
use hwperm_rng::lfsr::build_lfsr;
use hwperm_rng::{random_integer, Lfsr};

/// Build-time options for [`KnuthShuffleCircuit`].
#[derive(Debug, Clone, Copy)]
pub struct ShuffleOptions {
    /// LFSR width per stage (the paper uses 31/32-bit generators; smaller
    /// widths increase the Fig. 2 bias but shrink the circuit).
    pub lfsr_width: usize,
    /// Insert a pipeline rank after every crossover stage.
    pub pipelined: bool,
    /// Base seed; per-stage seeds are derived by splitmix64.
    pub seed: u64,
}

impl Default for ShuffleOptions {
    fn default() -> Self {
        ShuffleOptions {
            lfsr_width: 31,
            pipelined: false,
            seed: 0x5EED0F1B75,
        }
    }
}

/// splitmix64 — used only to derive independent per-stage LFSR seeds.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The Fig. 3 circuit wrapped in a simulator; every call to
/// [`KnuthShuffleCircuit::next_permutation`] is one clock and yields one
/// fresh random permutation.
///
/// ```
/// use hwperm_circuits::KnuthShuffleCircuit;
///
/// let mut gen = KnuthShuffleCircuit::new(4);
/// let a = gen.next_permutation();
/// let b = gen.next_permutation();
/// assert_eq!(a.n(), 4);
/// assert_ne!(a.pack(), b.pack()); // overwhelmingly likely
/// ```
#[derive(Debug, Clone)]
pub struct KnuthShuffleCircuit {
    sim: Simulator,
    n: usize,
    options: ShuffleOptions,
}

impl KnuthShuffleCircuit {
    /// Default-configured generator (31-bit LFSRs, combinational).
    pub fn new(n: usize) -> Self {
        Self::with_options(n, ShuffleOptions::default())
    }

    /// Generator with explicit options.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn with_options(n: usize, options: ShuffleOptions) -> Self {
        let netlist = build_shuffle(n, options);
        let mut sim = Simulator::new(netlist);
        let mut gen = KnuthShuffleCircuit {
            n,
            options,
            sim: {
                sim.eval();
                sim
            },
        };
        if options.pipelined {
            // Fill the pipe so every subsequent clock emits a permutation.
            for _ in 0..n - 1 {
                gen.sim.step();
            }
            gen.sim.eval();
        }
        gen
    }

    /// Number of elements.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The options this circuit was built with.
    pub fn options(&self) -> ShuffleOptions {
        self.options
    }

    /// The generated netlist.
    pub fn netlist(&self) -> &Netlist {
        self.sim.netlist()
    }

    /// Resource estimate (a Table IV row).
    pub fn report(&self) -> ResourceReport {
        ResourceReport::of(self.sim.netlist())
    }

    /// One clock: reads the permutation formed by the current LFSR
    /// states, then advances every stage's LFSR.
    pub fn next_permutation(&mut self) -> Permutation {
        let word = self.sim.read_output("perm");
        let perm =
            Permutation::unpack(self.n, &word).expect("shuffle output is always a permutation");
        self.sim.step();
        self.sim.eval();
        perm
    }

    /// Derangement Monte-Carlo (Section III.C): generates `samples`
    /// permutations and returns `(derangement_count, e_estimate)` where
    /// `e ≈ samples / derangements` since `d_n = ⌊n!/e⌉`.
    pub fn estimate_e(&mut self, samples: u64) -> (u64, f64) {
        let mut derangements = 0u64;
        for _ in 0..samples {
            if self.next_permutation().is_derangement() {
                derangements += 1;
            }
        }
        (derangements, samples as f64 / derangements as f64)
    }
}

/// Software mirror of the circuit: same per-stage LFSRs, same Fig. 2
/// truncation, same crossover order — used for differential testing and
/// for the fast Monte-Carlo harnesses (identical output sequence at
/// ~100× the simulation speed).
#[derive(Debug, Clone)]
pub struct KnuthShuffleModel {
    lfsrs: Vec<Lfsr>,
    n: usize,
    m: usize,
}

impl KnuthShuffleModel {
    /// Mirror of [`KnuthShuffleCircuit::with_options`].
    pub fn with_options(n: usize, options: ShuffleOptions) -> Self {
        assert!(n >= 2);
        let lfsrs = (0..n - 1)
            .map(|j| {
                Lfsr::new(
                    options.lfsr_width,
                    splitmix64(options.seed.wrapping_add(j as u64)),
                )
            })
            .collect();
        KnuthShuffleModel {
            lfsrs,
            n,
            m: options.lfsr_width,
        }
    }

    /// Mirror of [`KnuthShuffleCircuit::new`].
    pub fn new(n: usize) -> Self {
        Self::with_options(n, ShuffleOptions::default())
    }

    /// Number of elements.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Next permutation: stage `j` swaps positions `j` and `j + offset_j`
    /// with `offset_j = ⌊(n−j)·x_j / 2^m⌋` from the current LFSR state.
    pub fn next_permutation(&mut self) -> Permutation {
        let mut perm = Permutation::identity(self.n);
        for j in 0..self.n - 1 {
            let x = self.lfsrs[j].state();
            let offset = random_integer(self.m, x, (self.n - j) as u64);
            perm.swap_positions(j, j + offset as usize);
            self.lfsrs[j].step();
        }
        perm
    }
}

/// Generates the Fig. 3 netlist.
fn build_shuffle(n: usize, options: ShuffleOptions) -> Netlist {
    assert!(n >= 2, "shuffle requires n >= 2");
    let mut builder = Builder::new();
    let b = &mut builder;
    let bits = bits_per_element(n);
    let m = options.lfsr_width;

    // Input permutation: the identity, as in the paper's experiment.
    let mut elems: Vec<Bus> = (0..n)
        .map(|e| b.constant_bus(bits, &Ubig::from(e as u64)))
        .collect();

    for j in 0..n - 1 {
        let r = n - j;
        // Per-stage random integer generator (Fig. 2): LFSR -> x*r >> m.
        let seed = splitmix64(options.seed.wrapping_add(j as u64));
        let lfsr = build_lfsr(b, m, seed);
        let offset = hwperm_rng::randint::build_random_integer(b, &lfsr, r as u64);
        let onehot = b.decoder(&offset, r);

        // Crossover: out[j] = elems[j + offset]; the displaced slot gets
        // the old elems[j]; everything else passes through.
        let choices: Vec<&[_]> = elems[j..].iter().map(|e| e.as_slice()).collect();
        let new_j = b.one_hot_mux(&onehot, &choices);
        let old_j = elems[j].clone();
        for i in 1..r {
            let swapped = b.mux_bus(onehot[i], &elems[j + i], &old_j);
            elems[j + i] = swapped;
        }
        elems[j] = new_j;

        if options.pipelined && j < n - 2 {
            elems = elems.iter().map(|e| b.register_bus(e, false)).collect();
        }
    }

    // Pack (position 0 = most significant field).
    let mut word = vec![b.constant(false); n * bits];
    for (p, elem) in elems.iter().enumerate() {
        let base = (n - 1 - p) * bits;
        for (i, &net) in elem.iter().enumerate() {
            word[base + i] = net;
        }
    }
    b.output_bus("perm", &word);
    builder.finish()
}

/// Pure netlist generation (for resource analysis).
pub fn shuffle_netlist(n: usize, options: ShuffleOptions) -> Netlist {
    build_shuffle(n, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn circuit_matches_software_model() {
        for n in [2usize, 3, 4, 6] {
            let opts = ShuffleOptions {
                lfsr_width: 16,
                pipelined: false,
                seed: 0xABCD + n as u64,
            };
            let mut hw = KnuthShuffleCircuit::with_options(n, opts);
            let mut sw = KnuthShuffleModel::with_options(n, opts);
            for cycle in 0..200 {
                assert_eq!(
                    hw.next_permutation(),
                    sw.next_permutation(),
                    "n = {n}, cycle = {cycle}"
                );
            }
        }
    }

    #[test]
    fn outputs_are_valid_permutations() {
        let mut gen = KnuthShuffleCircuit::new(5);
        for _ in 0..100 {
            let p = gen.next_permutation();
            assert!(Permutation::try_from_slice(p.as_slice()).is_ok());
        }
    }

    #[test]
    fn distribution_roughly_uniform_n3() {
        let mut gen = KnuthShuffleCircuit::with_options(
            3,
            ShuffleOptions {
                lfsr_width: 16,
                pipelined: false,
                seed: 99,
            },
        );
        let trials = 3000u64;
        let mut counts: HashMap<Vec<u32>, u64> = HashMap::new();
        for _ in 0..trials {
            *counts.entry(gen.next_permutation().into_vec()).or_default() += 1;
        }
        assert_eq!(counts.len(), 6);
        let expected = trials as f64 / 6.0;
        let chi2: f64 = counts
            .values()
            .map(|&c| (c as f64 - expected).powi(2) / expected)
            .sum();
        assert!(chi2 < 20.5, "chi2 = {chi2}"); // 5 dof, 99.9th pct
    }

    #[test]
    fn pipelined_variant_produces_valid_permutations() {
        let opts = ShuffleOptions {
            lfsr_width: 12,
            pipelined: true,
            seed: 7,
        };
        let mut gen = KnuthShuffleCircuit::with_options(5, opts);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..60 {
            let p = gen.next_permutation();
            assert!(Permutation::try_from_slice(p.as_slice()).is_ok());
            distinct.insert(p.into_vec());
        }
        assert!(distinct.len() > 20, "pipelined outputs should vary");
    }

    #[test]
    fn lfsr_registers_dominate_resource_count() {
        let opts = ShuffleOptions {
            lfsr_width: 31,
            pipelined: false,
            seed: 1,
        };
        let nl = shuffle_netlist(6, opts);
        // 5 stages × 31-bit LFSRs.
        assert_eq!(nl.register_count(), 5 * 31);
    }

    #[test]
    fn crossover_structure_grows_quadratically() {
        let opts = ShuffleOptions {
            lfsr_width: 8,
            pipelined: false,
            seed: 1,
        };
        let g6 = shuffle_netlist(6, opts).combinational_count();
        let g12 = shuffle_netlist(12, opts).combinational_count();
        let ratio = g12 as f64 / g6 as f64;
        assert!((2.0..=8.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn e_estimate_is_plausible() {
        let mut gen = KnuthShuffleCircuit::with_options(
            4,
            ShuffleOptions {
                lfsr_width: 16,
                pipelined: false,
                seed: 3,
            },
        );
        let (derangements, e) = gen.estimate_e(4000);
        assert!(derangements > 0);
        // P(derangement, n=4) = 9/24 = 0.375; e ≈ 2.718 ± sampling noise.
        assert!((2.4..=3.1).contains(&e), "e = {e}");
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let a: Vec<_> = {
            let mut g = KnuthShuffleModel::with_options(
                5,
                ShuffleOptions {
                    lfsr_width: 16,
                    pipelined: false,
                    seed: 1,
                },
            );
            (0..10).map(|_| g.next_permutation()).collect()
        };
        let b: Vec<_> = {
            let mut g = KnuthShuffleModel::with_options(
                5,
                ShuffleOptions {
                    lfsr_width: 16,
                    pipelined: false,
                    seed: 2,
                },
            );
            (0..10).map(|_| g.next_permutation()).collect()
        };
        assert_ne!(a, b);
    }
}
