//! The conclusion's remark, made concrete: "The alert reader will note
//! that the factorial number system circuit and the Knuth shuffle
//! circuit can also serve as a sorting network."
//!
//! The converter's datapath is a cascade of select-one-and-compact
//! stages; replacing the index-comparator bank with *key* comparators
//! turns it into a hardware selection sort. Stage `j` finds the minimum
//! of the `r = n − j` remaining keys (comparator scan), raises a
//! priority one-hot on its first occurrence (so duplicate keys stay
//! well-defined — a stable selection), routes it to output `j` through
//! the same one-hot MUX, and compacts the remainder with the same
//! thermometer-controlled 2:1 muxes. `O(n²)` comparators, `O(n)` stage
//! delay — the converter's complexity exactly.

use hwperm_bignum::Ubig;
use hwperm_logic::{Builder, Bus, Netlist, ResourceReport, Simulator};

/// An `n`-input, `w`-bit-key sorting network built from the converter's
/// stage datapath.
///
/// ```
/// use hwperm_circuits::SortingNetwork;
///
/// let mut sorter = SortingNetwork::new(5, 8);
/// assert_eq!(sorter.sort(&[9, 3, 200, 3, 0]), vec![0, 3, 3, 9, 200]);
/// ```
#[derive(Debug, Clone)]
pub struct SortingNetwork {
    sim: Simulator,
    n: usize,
    w: usize,
}

impl SortingNetwork {
    /// Builds the network for `n` keys of `w` bits each.
    ///
    /// # Panics
    /// Panics if `n < 2` or `w == 0` or `w > 63`.
    pub fn new(n: usize, w: usize) -> Self {
        assert!(n >= 2, "sorting fewer than 2 keys is trivial");
        assert!((1..=63).contains(&w), "key width must be 1..=63 bits");
        let netlist = build_sorter(n, w);
        SortingNetwork {
            sim: Simulator::new(netlist),
            n,
            w,
        }
    }

    /// Number of keys.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Key width in bits.
    pub fn key_width(&self) -> usize {
        self.w
    }

    /// The generated netlist.
    pub fn netlist(&self) -> &Netlist {
        self.sim.netlist()
    }

    /// Resource estimate.
    pub fn report(&self) -> ResourceReport {
        ResourceReport::of(self.sim.netlist())
    }

    /// Sorts `keys` ascending through the netlist.
    ///
    /// # Panics
    /// Panics if `keys.len() != n` or any key exceeds `w` bits.
    pub fn sort(&mut self, keys: &[u64]) -> Vec<u64> {
        assert_eq!(keys.len(), self.n, "expected exactly {} keys", self.n);
        let mut word = Ubig::zero();
        for (i, &key) in keys.iter().enumerate() {
            assert!(key < (1u64 << self.w), "key {key} exceeds {} bits", self.w);
            for bit in 0..self.w {
                if (key >> bit) & 1 == 1 {
                    word.set_bit(i * self.w + bit, true);
                }
            }
        }
        self.sim.set_input("data", &word);
        self.sim.eval();
        let out = self.sim.read_output("sorted");
        (0..self.n)
            .map(|i| {
                let mut v = 0u64;
                for bit in 0..self.w {
                    if out.bit(i * self.w + bit) {
                        v |= 1 << bit;
                    }
                }
                v
            })
            .collect()
    }
}

/// Generates the selection-sort netlist.
fn build_sorter(n: usize, w: usize) -> Netlist {
    let mut builder = Builder::new();
    let b = &mut builder;
    let data = b.input_bus("data", n * w);
    let mut remaining: Vec<Bus> = (0..n).map(|i| data[i * w..(i + 1) * w].to_vec()).collect();
    let mut outputs: Vec<Bus> = Vec::with_capacity(n);

    for _stage in 0..n {
        let r = remaining.len();
        if r == 1 {
            outputs.push(remaining.pop().unwrap());
            break;
        }
        // Minimum scan: the converter's comparator bank, keyed on data.
        let mut min = remaining[0].clone();
        for item in remaining.iter().skip(1) {
            let keep = b.ge(item, &min); // item >= min → keep current min
            min = b.mux_bus(keep, item, &min);
        }
        // Priority one-hot on the first occurrence of the minimum.
        let mut onehot = Vec::with_capacity(r);
        let mut taken = b.constant(false);
        for item in remaining.iter() {
            let is_min = b.eq(item, &min);
            let not_taken = b.not(taken);
            onehot.push(b.and(is_min, not_taken));
            taken = b.or(taken, is_min);
        }
        // The priority encoding is exactly one-hot for every input (the
        // minimum always occurs at least once); declare the intent so
        // the lint engine's one-hot checker verifies it.
        b.record_one_hot_bank(&onehot);
        outputs.push(min);
        // Compaction, exactly as in the converter: slot i keeps its value
        // while the removed position is still to the right.
        // "selected index ≥ i+1" ⟺ none of onehot[0..=i].
        let mut any_before = onehot[0];
        let mut next = Vec::with_capacity(r - 1);
        for i in 0..r - 1 {
            let keep_cur = b.not(any_before); // removal strictly right of i
            let shifted = &remaining[i + 1];
            let cur = &remaining[i];
            next.push(b.mux_bus(keep_cur, shifted, cur));
            any_before = b.or(any_before, onehot[i + 1]);
        }
        remaining = next;
    }

    let mut out_bus = Vec::with_capacity(n * w);
    for bus in &outputs {
        out_bus.extend_from_slice(bus);
    }
    b.output_bus("sorted", &out_bus);
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(sorter: &mut SortingNetwork, keys: &[u64]) {
        let mut expected = keys.to_vec();
        expected.sort_unstable();
        assert_eq!(sorter.sort(keys), expected, "keys = {keys:?}");
    }

    #[test]
    fn sorts_exhaustively_n4_w2() {
        let mut sorter = SortingNetwork::new(4, 2);
        for a in 0..4u64 {
            for c in 0..4u64 {
                for d in 0..4u64 {
                    for e in 0..4u64 {
                        check(&mut sorter, &[a, c, d, e]);
                    }
                }
            }
        }
    }

    #[test]
    fn sorts_random_vectors() {
        let mut sorter = SortingNetwork::new(8, 16);
        let mut state = 0x1357_9BDFu64;
        for _ in 0..50 {
            let keys: Vec<u64> = (0..8)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state & 0xFFFF
                })
                .collect();
            check(&mut sorter, &keys);
        }
    }

    #[test]
    fn handles_duplicates_and_extremes() {
        let mut sorter = SortingNetwork::new(5, 8);
        check(&mut sorter, &[7, 7, 7, 7, 7]);
        check(&mut sorter, &[255, 0, 255, 0, 128]);
        check(&mut sorter, &[0, 0, 0, 0, 1]);
    }

    #[test]
    fn already_sorted_and_reversed() {
        let mut sorter = SortingNetwork::new(6, 8);
        check(&mut sorter, &[1, 2, 3, 4, 5, 6]);
        check(&mut sorter, &[6, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn comparator_complexity_matches_converter_claim() {
        // O(n²) growth, like the converter.
        let g4 = SortingNetwork::new(4, 8).netlist().combinational_count();
        let g8 = SortingNetwork::new(8, 8).netlist().combinational_count();
        let ratio = g8 as f64 / g4 as f64;
        assert!((2.5..=7.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_key_rejected() {
        SortingNetwork::new(3, 4).sort(&[16, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "expected exactly")]
    fn wrong_arity_rejected() {
        SortingNetwork::new(3, 4).sort(&[1, 2]);
    }
}
