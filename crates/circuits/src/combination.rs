//! The companion paper's circuit: index → constant-weight codeword.
//!
//! Butler & Sasao, *Index to Constant Weight Codeword Converter* (ARC
//! 2011) — reference [4], which this paper presents itself as a companion
//! to. The structure mirrors Fig. 1: a cascade of `n` stages, one per
//! candidate element `c`. Stage `c` compares the running index against
//! the block size `C(r−1, k′−1)` (combinations that *include* `c`, where
//! `r` is the remaining universe and `k′` the ones still to place):
//! smaller → emit a 1 and decrement `k′`; otherwise subtract the block
//! and emit a 0. Unlike the permutation converter the block size depends
//! on the *runtime* value `k′`, so each stage selects its constant
//! through a small mux tree indexed by the `k′` register bus.

use hwperm_bignum::Ubig;
use hwperm_factoradic::binomial;
use hwperm_logic::{Builder, Netlist, ResourceReport, Simulator};

/// Index → `k`-of-`n` constant-weight codeword converter.
///
/// ```
/// use hwperm_circuits::IndexToCombinationConverter;
/// use hwperm_bignum::Ubig;
///
/// let mut conv = IndexToCombinationConverter::new(5, 2);
/// // Index 0 is the lexicographically first combination {0, 1}:
/// // codeword 11000.
/// assert_eq!(conv.convert(&Ubig::zero()), vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct IndexToCombinationConverter {
    sim: Simulator,
    n: usize,
    k: usize,
    total: Ubig,
}

impl IndexToCombinationConverter {
    /// Builds the converter for `k`-element subsets of `{0, …, n−1}`.
    ///
    /// # Panics
    /// Panics if `n < 1` or `k > n`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(n >= 1, "need at least one element");
        assert!(k <= n, "cannot choose {k} of {n}");
        let total = binomial(n as u64, k as u64);
        let netlist = build_combination_converter(n, k);
        IndexToCombinationConverter {
            sim: Simulator::new(netlist),
            n,
            k,
            total,
        }
    }

    /// Universe size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Codeword weight `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of codewords `C(n, k)`.
    pub fn total(&self) -> &Ubig {
        &self.total
    }

    /// The generated netlist.
    pub fn netlist(&self) -> &Netlist {
        self.sim.netlist()
    }

    /// Resource estimate.
    pub fn report(&self) -> ResourceReport {
        ResourceReport::of(self.sim.netlist())
    }

    /// Converts an index to the sorted element list of the `index`-th
    /// combination in lexicographic order.
    ///
    /// # Panics
    /// Panics if `index >= C(n, k)`.
    pub fn convert(&mut self, index: &Ubig) -> Vec<u32> {
        assert!(*index < self.total, "combination index out of range");
        self.sim.set_input("index", index);
        self.sim.eval();
        let word = self.sim.read_output("codeword");
        // Bit n−1−c set ⟺ element c chosen.
        (0..self.n as u32)
            .filter(|&c| word.bit(self.n - 1 - c as usize))
            .collect()
    }

    /// Converts an index directly to the packed codeword (MSB = element 0).
    pub fn convert_to_codeword(&mut self, index: &Ubig) -> Ubig {
        assert!(*index < self.total, "combination index out of range");
        self.sim.set_input("index", index);
        self.sim.eval();
        self.sim.read_output("codeword")
    }
}

/// Generates the converter netlist.
fn build_combination_converter(n: usize, k: usize) -> Netlist {
    let mut builder = Builder::new();
    let b = &mut builder;
    let total = binomial(n as u64, k as u64);
    let w = (&total - &Ubig::one()).bit_len().max(1);
    let kw = (usize::BITS - k.leading_zeros()).max(1) as usize; // holds 0..=k

    let mut index = b.input_bus("index", w);
    let mut slots = b.constant_bus(kw, &Ubig::from(k as u64)); // k' register bus
    let one = b.constant_bus(kw, &Ubig::one());
    let mut bits_out = Vec::with_capacity(n);

    for c in 0..n {
        let r = (n - c) as u64; // remaining universe size
                                // Block size C(r-1, k'-1) selected by the runtime k' bus
                                // (k' = 0 → block 0 → never include).
                                // Constants at their natural width: states with k' near k can be
                                // unreachable at late stages and carry blocks wider than the
                                // index bus; the mux/comparator combinators zero-extend as needed.
        let blocks: Vec<Vec<_>> = (0..=k as u64)
            .map(|j| {
                let v = if j == 0 {
                    Ubig::zero()
                } else {
                    binomial(r - 1, j - 1)
                };
                let width = v.bit_len().max(1);
                b.constant_bus(width, &v)
            })
            .collect();
        let block_refs: Vec<&[_]> = blocks.iter().map(|x| x.as_slice()).collect();
        let block = b.binary_mux(&slots, &block_refs);

        // include ⟺ index < block.
        let ge = b.ge(&index, &block);
        let include = b.not(ge);
        bits_out.push(include);

        // index' = include ? index : index − block.
        let diff = b.sub_mod(&index, &block);
        index = b.mux_bus(include, &diff[..w], &index);

        // k'' = include ? k' − 1 : k'.
        let dec = b.sub_mod(&slots, &one);
        slots = b.mux_bus(include, &slots, &dec[..kw]);
    }

    // Codeword port: bit n−1−c ⟺ element c chosen (MSB-first rendering,
    // matching `hwperm_factoradic::combinadic::to_codeword`).
    let mut word = vec![b.constant(false); n];
    for (c, &bit) in bits_out.iter().enumerate() {
        word[n - 1 - c] = bit;
    }
    b.output_bus("codeword", &word);
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwperm_factoradic::{rank_combination, to_codeword, unrank_combination};

    #[test]
    fn matches_software_exhaustively() {
        for (n, k) in [(4usize, 2usize), (5, 0), (5, 5), (6, 3), (7, 2)] {
            let mut conv = IndexToCombinationConverter::new(n, k);
            let total = conv.total().to_u64().unwrap();
            for i in 0..total {
                let idx = Ubig::from(i);
                let got = conv.convert(&idx);
                let expected = unrank_combination(n, k, &idx);
                assert_eq!(got, expected, "n={n} k={k} i={i}");
            }
        }
    }

    #[test]
    fn codeword_rendering_matches_reference() {
        let mut conv = IndexToCombinationConverter::new(8, 3);
        for i in [0u64, 5, 20, 55] {
            let idx = Ubig::from(i);
            let elems = unrank_combination(8, 3, &idx);
            assert_eq!(conv.convert_to_codeword(&idx), to_codeword(8, &elems));
        }
    }

    #[test]
    fn weight_is_constant() {
        let mut conv = IndexToCombinationConverter::new(10, 4);
        for i in (0..210u64).step_by(11) {
            let cw = conv.convert_to_codeword(&Ubig::from(i));
            let ones = (0..10).filter(|&b| cw.bit(b)).count();
            assert_eq!(ones, 4, "i = {i}");
        }
    }

    #[test]
    fn ranks_roundtrip_through_circuit() {
        let mut conv = IndexToCombinationConverter::new(9, 4);
        for i in (0..126u64).step_by(7) {
            let got = conv.convert(&Ubig::from(i));
            assert_eq!(rank_combination(9, &got).to_u64(), Some(i));
        }
    }

    #[test]
    fn extreme_weights() {
        // k = 0: the only codeword is all zeros.
        let mut c0 = IndexToCombinationConverter::new(6, 0);
        assert_eq!(c0.convert(&Ubig::zero()), Vec::<u32>::new());
        // k = n: the only codeword is all ones.
        let mut cn = IndexToCombinationConverter::new(6, 6);
        assert_eq!(cn.convert(&Ubig::zero()), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_overflow_index() {
        IndexToCombinationConverter::new(5, 2).convert(&Ubig::from(10u64));
    }

    #[test]
    fn resources_grow_with_n() {
        let small = IndexToCombinationConverter::new(6, 3).report().total_luts;
        let large = IndexToCombinationConverter::new(12, 6).report().total_luts;
        assert!(large > small * 2, "{small} vs {large}");
    }
}
