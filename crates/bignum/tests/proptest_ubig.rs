//! Property-based tests: `Ubig` arithmetic must agree with `u128` on the
//! range where both are defined, and must satisfy ring axioms beyond it.

use hwperm_bignum::Ubig;
use proptest::prelude::*;

/// Strategy for a Ubig with up to `limbs` random limbs.
fn ubig(limbs: usize) -> impl Strategy<Value = Ubig> {
    prop::collection::vec(any::<u64>(), 0..=limbs).prop_map(Ubig::from_limbs)
}

proptest! {
    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let sum = &Ubig::from(a) + &Ubig::from(b);
        prop_assert_eq!(sum.to_u128(), Some(a as u128 + b as u128));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let p = &Ubig::from(a) * &Ubig::from(b);
        prop_assert_eq!(p.to_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn divrem_matches_u128(a in any::<u128>(), b in 1u128..) {
        let (q, r) = Ubig::from(a).divrem(&Ubig::from(b));
        prop_assert_eq!(q.to_u128(), Some(a / b));
        prop_assert_eq!(r.to_u128(), Some(a % b));
    }

    #[test]
    fn add_commutes(a in ubig(6), b in ubig(6)) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associates(a in ubig(4), b in ubig(4), c in ubig(4)) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_commutes(a in ubig(5), b in ubig(5)) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes(a in ubig(3), b in ubig(3), c in ubig(3)) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn sub_inverts_add(a in ubig(6), b in ubig(6)) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn divrem_reconstructs(a in ubig(8), b in ubig(4)) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.divrem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn divrem_u64_agrees_with_divrem(a in ubig(8), d in 1u64..) {
        let (q1, r1) = a.divrem_u64(d);
        let (q2, r2) = a.divrem(&Ubig::from(d));
        prop_assert_eq!(q1, q2);
        prop_assert_eq!(Ubig::from(r1), r2);
    }

    #[test]
    fn shl_shr_roundtrip(a in ubig(6), bits in 0usize..512) {
        prop_assert_eq!(a.shl_bits(bits).shr_bits(bits), a);
    }

    #[test]
    fn shl_is_mul_by_power_of_two(a in ubig(6), bits in 0usize..63) {
        prop_assert_eq!(a.shl_bits(bits), a.mul_u64(1u64 << bits));
    }

    #[test]
    fn decimal_roundtrip(a in ubig(6)) {
        let s = a.to_string();
        prop_assert_eq!(Ubig::from_decimal(&s).unwrap(), a);
    }

    #[test]
    fn ordering_consistent_with_subtraction(a in ubig(6), b in ubig(6)) {
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert!(a.checked_sub(&b).is_none()),
            _ => prop_assert!(a.checked_sub(&b).is_some()),
        }
    }

    #[test]
    fn bit_len_bounds_value(a in ubig(6)) {
        prop_assume!(!a.is_zero());
        let n = a.bit_len();
        prop_assert!(a.bit(n - 1));
        prop_assert!(!a.bit(n));
        // 2^(n-1) <= a < 2^n
        prop_assert!(Ubig::one().shl_bits(n - 1) <= a);
        prop_assert!(a < Ubig::one().shl_bits(n));
    }
}
