//! Addition, subtraction, multiplication, and shifts for [`Ubig`].

use crate::Ubig;
use std::ops::{Add, AddAssign, Mul, Shl, Shr, Sub, SubAssign};

impl Ubig {
    /// `self + rhs` where `rhs` is a single limb.
    pub fn add_u64(&self, rhs: u64) -> Ubig {
        let mut out = self.clone();
        out.add_u64_assign(rhs);
        out
    }

    /// In-place `self += rhs` for a single limb.
    pub fn add_u64_assign(&mut self, rhs: u64) {
        let mut carry = rhs;
        for limb in &mut self.limbs {
            let (s, c) = limb.overflowing_add(carry);
            *limb = s;
            carry = c as u64;
            if carry == 0 {
                return;
            }
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// Checked subtraction: `None` if `rhs > self`.
    pub fn checked_sub(&self, rhs: &Ubig) -> Option<Ubig> {
        if self < rhs {
            return None;
        }
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let r = rhs.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(r);
            let (d2, b2) = d1.overflowing_sub(borrow);
            limbs.push(d2);
            borrow = (b1 | b2) as u64;
        }
        debug_assert_eq!(borrow, 0);
        Some(Ubig::from_limbs(limbs))
    }

    /// `self * rhs` where `rhs` is a single limb.
    pub fn mul_u64(&self, rhs: u64) -> Ubig {
        if rhs == 0 || self.is_zero() {
            return Ubig::zero();
        }
        let mut limbs = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let p = l as u128 * rhs as u128 + carry;
            limbs.push(p as u64);
            carry = p >> 64;
        }
        if carry != 0 {
            limbs.push(carry as u64);
        }
        Ubig::from_limbs(limbs)
    }

    /// Schoolbook multiplication. Operand sizes in this workspace are tiny
    /// (a few dozen limbs at most — `⌈log₂ n!⌉/64`), so the quadratic
    /// algorithm is both simplest and fastest here.
    fn mul_big(&self, rhs: &Ubig) -> Ubig {
        if self.is_zero() || rhs.is_zero() {
            return Ubig::zero();
        }
        let mut acc = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let p = a as u128 * b as u128 + acc[i + j] as u128 + carry;
                acc[i + j] = p as u64;
                carry = p >> 64;
            }
            let mut k = i + rhs.limbs.len();
            while carry != 0 {
                let s = acc[k] as u128 + carry;
                acc[k] = s as u64;
                carry = s >> 64;
                k += 1;
            }
        }
        Ubig::from_limbs(acc)
    }

    /// Left shift by an arbitrary bit count.
    pub fn shl_bits(&self, bits: usize) -> Ubig {
        if self.is_zero() {
            return Ubig::zero();
        }
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        Ubig::from_limbs(limbs)
    }

    /// The low `bits` bits of the value (i.e. `self mod 2^bits`).
    pub fn low_bits(&self, bits: usize) -> Ubig {
        let (limb_count, rem) = (bits / 64, bits % 64);
        if limb_count >= self.limbs.len() {
            return self.clone();
        }
        let mut limbs = self.limbs[..=limb_count].to_vec();
        let last = limbs.last_mut().expect("at least one limb");
        *last &= if rem == 0 { 0 } else { u64::MAX >> (64 - rem) };
        Ubig::from_limbs(limbs)
    }

    /// Right shift by an arbitrary bit count (floor).
    pub fn shr_bits(&self, bits: usize) -> Ubig {
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        if limb_shift >= self.limbs.len() {
            return Ubig::zero();
        }
        let src = &self.limbs[limb_shift..];
        let mut limbs = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            limbs.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                limbs.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        Ubig::from_limbs(limbs)
    }
}

impl Add<&Ubig> for &Ubig {
    type Output = Ubig;
    fn add(self, rhs: &Ubig) -> Ubig {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut limbs = Vec::with_capacity(long.limbs.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.limbs.len() {
            let s = short.limbs.get(i).copied().unwrap_or(0);
            let (a, c1) = long.limbs[i].overflowing_add(s);
            let (a, c2) = a.overflowing_add(carry);
            limbs.push(a);
            carry = (c1 | c2) as u64;
        }
        if carry != 0 {
            limbs.push(carry);
        }
        Ubig::from_limbs(limbs)
    }
}

impl Sub<&Ubig> for &Ubig {
    type Output = Ubig;
    /// Panics on underflow, like built-in unsigned subtraction in debug mode.
    fn sub(self, rhs: &Ubig) -> Ubig {
        self.checked_sub(rhs).expect("Ubig subtraction underflow")
    }
}

impl Mul<&Ubig> for &Ubig {
    type Output = Ubig;
    fn mul(self, rhs: &Ubig) -> Ubig {
        self.mul_big(rhs)
    }
}

macro_rules! forward_value_binops {
    ($($trait:ident :: $method:ident),*) => {$(
        impl $trait<Ubig> for Ubig {
            type Output = Ubig;
            fn $method(self, rhs: Ubig) -> Ubig { $trait::$method(&self, &rhs) }
        }
        impl $trait<&Ubig> for Ubig {
            type Output = Ubig;
            fn $method(self, rhs: &Ubig) -> Ubig { $trait::$method(&self, rhs) }
        }
        impl $trait<Ubig> for &Ubig {
            type Output = Ubig;
            fn $method(self, rhs: Ubig) -> Ubig { $trait::$method(self, &rhs) }
        }
    )*};
}
forward_value_binops!(Add::add, Sub::sub, Mul::mul);

impl AddAssign<&Ubig> for Ubig {
    fn add_assign(&mut self, rhs: &Ubig) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&Ubig> for Ubig {
    fn sub_assign(&mut self, rhs: &Ubig) {
        *self = &*self - rhs;
    }
}

impl Shl<usize> for &Ubig {
    type Output = Ubig;
    fn shl(self, bits: usize) -> Ubig {
        self.shl_bits(bits)
    }
}

impl Shr<usize> for &Ubig {
    type Output = Ubig;
    fn shr(self, bits: usize) -> Ubig {
        self.shr_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use crate::Ubig;

    #[test]
    fn add_with_carry_chain() {
        let a = Ubig::from(u64::MAX);
        let b = Ubig::from(1u64);
        assert_eq!((&a + &b).to_u128(), Some(u64::MAX as u128 + 1));
    }

    #[test]
    fn add_u64_assign_propagates_carry() {
        let mut a = Ubig::from(u128::MAX);
        a.add_u64_assign(1);
        assert_eq!(a.limbs(), &[0, 0, 1]);
    }

    #[test]
    fn sub_exact_and_underflow() {
        let a = Ubig::from(100u64);
        let b = Ubig::from(58u64);
        assert_eq!((&a - &b).to_u64(), Some(42));
        assert_eq!(b.checked_sub(&a), None);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_panics_on_underflow() {
        let _ = &Ubig::from(1u64) - &Ubig::from(2u64);
    }

    #[test]
    fn sub_borrows_across_limbs() {
        let a = Ubig::from(1u128 << 64);
        let b = Ubig::from(1u64);
        assert_eq!((&a - &b).to_u64(), Some(u64::MAX));
    }

    #[test]
    fn mul_matches_u128() {
        let a = 0xdead_beef_cafe_babeu64;
        let b = 0x1234_5678_9abc_def0u64;
        let p = (&Ubig::from(a) * &Ubig::from(b)).to_u128();
        assert_eq!(p, Some(a as u128 * b as u128));
    }

    #[test]
    fn mul_u64_matches_mul_big() {
        let a = Ubig::factorial(30);
        assert_eq!(a.mul_u64(31), &a * &Ubig::from(31u64));
    }

    #[test]
    fn mul_by_zero() {
        assert!((&Ubig::factorial(10) * &Ubig::zero()).is_zero());
        assert!(Ubig::zero().mul_u64(7).is_zero());
    }

    #[test]
    fn shifts_roundtrip() {
        let v = Ubig::factorial(40);
        for bits in [0usize, 1, 17, 63, 64, 65, 128, 200] {
            assert_eq!((&v.shl_bits(bits)).shr_bits(bits), v, "bits = {bits}");
        }
    }

    #[test]
    fn shr_discards_low_bits() {
        let v = Ubig::from(0b1011u64);
        assert_eq!(v.shr_bits(2).to_u64(), Some(0b10));
        assert_eq!(v.shr_bits(100), Ubig::zero());
    }

    #[test]
    fn low_bits_is_mod_power_of_two() {
        let v = Ubig::factorial(30);
        for bits in [0usize, 1, 7, 63, 64, 65, 100, 1000] {
            let expect = &v - &v.shr_bits(bits).shl_bits(bits);
            assert_eq!(v.low_bits(bits), expect, "bits = {bits}");
        }
        assert_eq!(Ubig::from(0b1011u64).low_bits(2).to_u64(), Some(0b11));
    }

    #[test]
    fn shl_matches_mul_by_power_of_two() {
        let v = Ubig::factorial(25);
        assert_eq!(v.shl_bits(5), v.mul_u64(32));
    }
}
