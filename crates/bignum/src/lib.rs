#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Arbitrary-precision unsigned integer arithmetic.
//!
//! The index fed to the paper's converter ranges over `[0, n!)`, and
//! `n!` overflows `u64` at `n = 21` and `u128` at `n = 35`. The circuit
//! generator sizes its index bus as `⌈log₂ n!⌉` bits for arbitrary `n`,
//! so the software side needs exact big-integer arithmetic. This crate
//! provides [`Ubig`], a little-endian `u64`-limb unsigned integer with
//! exactly the operations the rest of the workspace needs: schoolbook
//! multiplication, Knuth Algorithm D division, shifts, bit access,
//! decimal I/O, and factorials.
//!
//! No `unsafe`, no dependencies.
//!
//! # Example
//!
//! ```
//! use hwperm_bignum::Ubig;
//!
//! let f = Ubig::factorial(25);
//! assert_eq!(f.to_string(), "15511210043330985984000000");
//! assert_eq!(f.bit_len(), 84); // the paper's index bus width for n = 25
//! ```

mod arith;
mod convert;
mod div;
mod fmt;
mod ubig;

pub use ubig::Ubig;

/// Errors produced when parsing a [`Ubig`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseUbigError {
    /// The input was empty.
    Empty,
    /// The input contained a non-digit character at the given byte offset.
    InvalidDigit(usize),
}

impl std::fmt::Display for ParseUbigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseUbigError::Empty => write!(f, "cannot parse an empty string as Ubig"),
            ParseUbigError::InvalidDigit(pos) => {
                write!(f, "invalid decimal digit at byte offset {pos}")
            }
        }
    }
}

impl std::error::Error for ParseUbigError {}
