//! `Display`/`Debug`/binary formatting for [`Ubig`].

use crate::convert::{DEC_CHUNK, DEC_CHUNK_DIGITS};
use crate::Ubig;
use std::fmt;

impl fmt::Display for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        // Peel 19-digit chunks off the low end, then print high-to-low.
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divrem_u64(DEC_CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut s = chunks.last().unwrap().to_string();
        for chunk in chunks.iter().rev().skip(1) {
            s.push_str(&format!("{chunk:0width$}", width = DEC_CHUNK_DIGITS));
        }
        f.pad_integral(true, "", &s)
    }
}

impl fmt::Debug for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ubig({self})")
    }
}

impl fmt::Binary for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "0b", "0");
        }
        let mut s = String::with_capacity(self.bit_len());
        for i in (0..self.bit_len()).rev() {
            s.push(if self.bit(i) { '1' } else { '0' });
        }
        f.pad_integral(true, "0b", &s)
    }
}

#[cfg(test)]
mod tests {
    use crate::Ubig;

    #[test]
    fn display_zero_and_small() {
        assert_eq!(Ubig::zero().to_string(), "0");
        assert_eq!(Ubig::from(987654321u64).to_string(), "987654321");
    }

    #[test]
    fn display_pads_interior_chunks_with_zeros() {
        // 10^19 + 7 must print as 1 followed by eighteen zeros and a 7,
        // not as "1" + "7".
        let v = Ubig::from(10_000_000_000_000_000_007u128);
        assert_eq!(v.to_string(), "10000000000000000007");
    }

    #[test]
    fn display_known_large_factorials() {
        assert_eq!(
            Ubig::factorial(30).to_string(),
            "265252859812191058636308480000000"
        );
        assert_eq!(
            Ubig::factorial(52).to_string(),
            "80658175170943878571660636856403766975289505440883277824000000000000"
        );
    }

    #[test]
    fn binary_format() {
        assert_eq!(format!("{:b}", Ubig::from(10u64)), "1010");
        assert_eq!(format!("{:#b}", Ubig::from(5u64)), "0b101");
        assert_eq!(format!("{:b}", Ubig::zero()), "0");
    }

    #[test]
    fn debug_wraps_display() {
        assert_eq!(format!("{:?}", Ubig::from(7u64)), "Ubig(7)");
    }
}
