//! The [`Ubig`] type: representation, construction, and bit-level access.

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian `u64` limbs with the invariant that the most
/// significant limb is nonzero (zero is the empty limb vector). All
/// arithmetic panics on underflow (subtraction below zero) and division
/// by zero, mirroring the built-in integer types in debug builds.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Ubig {
    /// Little-endian limbs; `limbs.last() != Some(&0)`.
    pub(crate) limbs: Vec<u64>,
}

impl Ubig {
    /// The value `0`.
    #[inline]
    pub fn zero() -> Self {
        Ubig { limbs: Vec::new() }
    }

    /// The value `1`.
    #[inline]
    pub fn one() -> Self {
        Ubig { limbs: vec![1] }
    }

    /// Builds a `Ubig` from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Ubig { limbs }
    }

    /// A read-only view of the little-endian limbs.
    #[inline]
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// `true` iff the value is `0`.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff the value is `1`.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Number of significant bits (`0` has bit length `0`).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// The `i`-th bit (bit 0 is least significant). Out-of-range bits are `0`.
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|&l| (l >> off) & 1 == 1)
    }

    /// Sets the `i`-th bit, growing the limb vector if needed.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        let (limb, off) = (i / 64, i % 64);
        if value {
            if self.limbs.len() <= limb {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= 1u64 << off;
        } else if limb < self.limbs.len() {
            self.limbs[limb] &= !(1u64 << off);
            self.normalize();
        }
    }

    /// The low 64 bits of the value (truncating).
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Exact conversion to `u64`, if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Exact conversion to `u128`, if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }

    /// Lossy conversion to `f64` (for reporting ratios in benchmarks).
    pub fn to_f64(&self) -> f64 {
        self.limbs
            .iter()
            .rev()
            .fold(0.0, |acc, &l| acc * 2f64.powi(64) + l as f64)
    }

    /// `n!` as a `Ubig`.
    ///
    /// ```
    /// use hwperm_bignum::Ubig;
    /// assert_eq!(Ubig::factorial(0), Ubig::one());
    /// assert_eq!(Ubig::factorial(10).to_u64(), Some(3_628_800));
    /// ```
    pub fn factorial(n: u64) -> Self {
        let mut acc = Ubig::one();
        for k in 2..=n {
            acc = acc.mul_u64(k);
        }
        acc
    }

    /// Restores the no-trailing-zero-limbs invariant.
    #[inline]
    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }
}

impl From<u64> for Ubig {
    fn from(v: u64) -> Self {
        if v == 0 {
            Ubig::zero()
        } else {
            Ubig { limbs: vec![v] }
        }
    }
}

impl From<u32> for Ubig {
    fn from(v: u32) -> Self {
        Ubig::from(v as u64)
    }
}

impl From<usize> for Ubig {
    fn from(v: usize) -> Self {
        Ubig::from(v as u64)
    }
}

impl From<u128> for Ubig {
    fn from(v: u128) -> Self {
        Ubig::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl PartialOrd for Ubig {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ubig {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_empty() {
        assert!(Ubig::zero().is_zero());
        assert_eq!(Ubig::from(0u64), Ubig::zero());
        assert_eq!(Ubig::zero().bit_len(), 0);
    }

    #[test]
    fn from_limbs_normalizes() {
        let v = Ubig::from_limbs(vec![5, 0, 0]);
        assert_eq!(v.limbs(), &[5]);
    }

    #[test]
    fn bit_len_matches_u64() {
        for v in [1u64, 2, 3, 255, 256, u64::MAX] {
            assert_eq!(Ubig::from(v).bit_len(), (64 - v.leading_zeros()) as usize);
        }
    }

    #[test]
    fn bit_get_set_roundtrip() {
        let mut v = Ubig::zero();
        v.set_bit(130, true);
        assert!(v.bit(130));
        assert!(!v.bit(129));
        assert_eq!(v.bit_len(), 131);
        v.set_bit(130, false);
        assert!(v.is_zero());
    }

    #[test]
    fn u128_roundtrip() {
        let x = 0x1234_5678_9abc_def0_1122_3344_5566_7788u128;
        assert_eq!(Ubig::from(x).to_u128(), Some(x));
    }

    #[test]
    fn ordering_by_length_then_lexicographic() {
        assert!(Ubig::from(u64::MAX) < Ubig::from(u64::MAX as u128 + 1));
        assert!(Ubig::from(7u64) < Ubig::from(9u64));
        assert_eq!(
            Ubig::from(9u64).cmp(&Ubig::from(9u64)),
            std::cmp::Ordering::Equal
        );
    }

    #[test]
    fn factorial_small_values() {
        let expected: [u64; 11] = [1, 1, 2, 6, 24, 120, 720, 5040, 40320, 362880, 3628800];
        for (n, &e) in expected.iter().enumerate() {
            assert_eq!(Ubig::factorial(n as u64).to_u64(), Some(e), "n = {n}");
        }
    }

    #[test]
    fn factorial_20_and_21_straddle_u64() {
        assert_eq!(
            Ubig::factorial(20).to_u64(),
            Some(2_432_902_008_176_640_000)
        );
        assert_eq!(Ubig::factorial(21).to_u64(), None);
        assert_eq!(
            Ubig::factorial(21).to_u128(),
            Some(51_090_942_171_709_440_000)
        );
    }

    #[test]
    fn to_f64_is_close() {
        let v = Ubig::factorial(30);
        let exact = 2.6525285981219105e32;
        assert!((v.to_f64() - exact).abs() / exact < 1e-12);
    }
}
