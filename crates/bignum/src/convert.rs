//! Decimal parsing for [`Ubig`].

use crate::{ParseUbigError, Ubig};
use std::str::FromStr;

/// 10^19, the largest power of ten that fits in a `u64` limb.
pub(crate) const DEC_CHUNK: u64 = 10_000_000_000_000_000_000;
pub(crate) const DEC_CHUNK_DIGITS: usize = 19;

impl Ubig {
    /// Parses a decimal string (ASCII digits only, optional leading zeros).
    pub fn from_decimal(s: &str) -> Result<Ubig, ParseUbigError> {
        if s.is_empty() {
            return Err(ParseUbigError::Empty);
        }
        let bytes = s.as_bytes();
        if let Some(pos) = bytes.iter().position(|b| !b.is_ascii_digit()) {
            return Err(ParseUbigError::InvalidDigit(pos));
        }
        let mut acc = Ubig::zero();
        let mut i = 0;
        while i < bytes.len() {
            let take = (bytes.len() - i).min(DEC_CHUNK_DIGITS);
            let chunk: u64 = s[i..i + take].parse().expect("validated digits");
            let scale = 10u64.pow(take as u32);
            acc = acc.mul_u64(scale);
            acc.add_u64_assign(chunk);
            i += take;
        }
        Ok(acc)
    }
}

impl FromStr for Ubig {
    type Err = ParseUbigError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ubig::from_decimal(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_small() {
        assert_eq!(Ubig::from_decimal("0").unwrap(), Ubig::zero());
        assert_eq!(Ubig::from_decimal("42").unwrap().to_u64(), Some(42));
    }

    #[test]
    fn parse_leading_zeros() {
        assert_eq!(Ubig::from_decimal("000123").unwrap().to_u64(), Some(123));
    }

    #[test]
    fn parse_known_factorial() {
        let f = Ubig::from_decimal("15511210043330985984000000").unwrap();
        assert_eq!(f, Ubig::factorial(25));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(Ubig::from_decimal(""), Err(ParseUbigError::Empty));
        assert_eq!(
            Ubig::from_decimal("12a3"),
            Err(ParseUbigError::InvalidDigit(2))
        );
        assert_eq!(
            Ubig::from_decimal("-5"),
            Err(ParseUbigError::InvalidDigit(0))
        );
    }

    #[test]
    fn fromstr_trait() {
        let v: Ubig = "3628800".parse().unwrap();
        assert_eq!(v, Ubig::factorial(10));
    }

    #[test]
    fn display_parse_roundtrip() {
        for n in [0u64, 1, 5, 20, 21, 34, 35, 50, 100] {
            let f = Ubig::factorial(n);
            assert_eq!(Ubig::from_decimal(&f.to_string()).unwrap(), f, "n = {n}");
        }
    }
}
