//! Division: single-limb fast path and Knuth Algorithm D for the general case.

use crate::Ubig;
use std::ops::{Div, Rem};

impl Ubig {
    /// Divides by a single limb, returning `(quotient, remainder)`.
    ///
    /// This is the hot path for factoradic digit extraction (divisors are
    /// at most `n`, which always fits in a limb).
    ///
    /// # Panics
    /// Panics if `rhs == 0`.
    pub fn divrem_u64(&self, rhs: u64) -> (Ubig, u64) {
        assert!(rhs != 0, "Ubig division by zero");
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / rhs as u128) as u64;
            rem = cur % rhs as u128;
        }
        (Ubig::from_limbs(q), rem as u64)
    }

    /// Full division, returning `(quotient, remainder)`.
    ///
    /// Single-limb divisors take the fast path; multi-limb divisors use
    /// Knuth's Algorithm D (TAOCP Vol. 2, 4.3.1) with 64-bit limbs.
    ///
    /// # Panics
    /// Panics if `rhs` is zero.
    pub fn divrem(&self, rhs: &Ubig) -> (Ubig, Ubig) {
        assert!(!rhs.is_zero(), "Ubig division by zero");
        if rhs.limbs.len() == 1 {
            let (q, r) = self.divrem_u64(rhs.limbs[0]);
            return (q, Ubig::from(r));
        }
        if self < rhs {
            return (Ubig::zero(), self.clone());
        }
        let n = rhs.limbs.len();
        // D1: normalize so the divisor's top limb has its MSB set.
        let shift = rhs.limbs[n - 1].leading_zeros() as usize;
        let vn = rhs.shl_bits(shift);
        debug_assert_eq!(vn.limbs.len(), n);
        let mut un = self.shl_bits(shift).limbs;
        let ulen = self.limbs.len();
        un.resize(ulen + 1, 0); // one extra high limb for the algorithm
        let m = ulen - n;
        let mut q = vec![0u64; m + 1];
        let vtop = vn.limbs[n - 1] as u128;
        let vsec = vn.limbs[n - 2] as u128;
        for j in (0..=m).rev() {
            // D3: estimate the quotient digit from the top two limbs.
            let num = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = num / vtop;
            let mut rhat = num % vtop;
            while qhat >> 64 != 0
                || qhat.wrapping_mul(vsec) > ((rhat << 64) | un[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += vtop;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // D4: multiply and subtract qhat * vn from un[j .. j+n+1].
            let mut carry = 0u128;
            let mut borrow = 0i128;
            for i in 0..n {
                let p = qhat * vn.limbs[i] as u128 + carry;
                carry = p >> 64;
                let t = un[i + j] as i128 - (p as u64) as i128 - borrow;
                if t < 0 {
                    un[i + j] = (t + (1i128 << 64)) as u64;
                    borrow = 1;
                } else {
                    un[i + j] = t as u64;
                    borrow = 0;
                }
            }
            let t = un[j + n] as i128 - carry as i128 - borrow;
            if t < 0 {
                // D6: the estimate was one too large; add the divisor back.
                un[j + n] = (t + (1i128 << 64)) as u64;
                qhat -= 1;
                let mut c = 0u128;
                for i in 0..n {
                    let s = un[i + j] as u128 + vn.limbs[i] as u128 + c;
                    un[i + j] = s as u64;
                    c = s >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(c as u64);
            } else {
                un[j + n] = t as u64;
            }
            q[j] = qhat as u64;
        }
        // D8: denormalize the remainder.
        let rem = Ubig::from_limbs(un[..n].to_vec()).shr_bits(shift);
        (Ubig::from_limbs(q), rem)
    }
}

impl Div<&Ubig> for &Ubig {
    type Output = Ubig;
    fn div(self, rhs: &Ubig) -> Ubig {
        self.divrem(rhs).0
    }
}

impl Rem<&Ubig> for &Ubig {
    type Output = Ubig;
    fn rem(self, rhs: &Ubig) -> Ubig {
        self.divrem(rhs).1
    }
}

#[cfg(test)]
mod tests {
    use crate::Ubig;

    fn check(u: &Ubig, v: &Ubig) {
        let (q, r) = u.divrem(v);
        assert!(r < *v, "remainder must be smaller than divisor");
        assert_eq!(&(&q * v) + &r, *u, "q*v + r must reconstruct u");
    }

    #[test]
    fn divrem_u64_basic() {
        let (q, r) = Ubig::from(1000u64).divrem_u64(7);
        assert_eq!(q.to_u64(), Some(142));
        assert_eq!(r, 6);
    }

    #[test]
    fn divrem_u64_multi_limb() {
        let v = Ubig::factorial(30);
        let (q, r) = v.divrem_u64(30);
        assert_eq!(q, Ubig::factorial(29));
        assert_eq!(r, 0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Ubig::from(1u64).divrem(&Ubig::zero());
    }

    #[test]
    fn small_over_large_is_zero() {
        let (q, r) = Ubig::from(5u64).divrem(&Ubig::factorial(25));
        assert!(q.is_zero());
        assert_eq!(r.to_u64(), Some(5));
    }

    #[test]
    fn knuth_d_reconstruction_on_factorials() {
        for n in [22u64, 25, 30, 40, 60] {
            for d in [21u64, 23, 34, 50] {
                if d < n {
                    check(&Ubig::factorial(n), &Ubig::factorial(d));
                }
            }
        }
    }

    #[test]
    fn knuth_d_matches_u128() {
        let cases: [(u128, u128); 5] = [
            (u128::MAX, 3),
            (u128::MAX, u64::MAX as u128 + 1),
            (0xdead_beef_cafe_babe_0123_4567_89ab_cdef, 0x1_0000_0001),
            (1 << 127, (1 << 65) - 1),
            (12345, 12345),
        ];
        for (a, b) in cases {
            let (q, r) = Ubig::from(a).divrem(&Ubig::from(b));
            assert_eq!(q.to_u128(), Some(a / b), "{a} / {b}");
            assert_eq!(r.to_u128(), Some(a % b), "{a} % {b}");
        }
    }

    #[test]
    fn add_back_branch_is_exercised() {
        // Crafted so the qhat estimate overshoots: u = (b^2)*top where the
        // divisor's second limb forces a correction. This classic pattern
        // (Hacker's Delight 9-4) triggers the D6 add-back path.
        let u = Ubig::from_limbs(vec![0, 0, 0x8000_0000_0000_0000, 0x7fff_ffff_ffff_ffff]);
        let v = Ubig::from_limbs(vec![1, 0x8000_0000_0000_0000]);
        check(&u, &v);
    }

    #[test]
    fn div_and_rem_operators() {
        let a = Ubig::factorial(25);
        let b = Ubig::factorial(20);
        assert_eq!((&a / &b) * &b + (&a % &b), a);
    }
}
