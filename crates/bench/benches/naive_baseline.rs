//! The intro's enumerate-and-discard baseline vs direct conversion:
//! time to produce all n! permutations each way.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hwperm_bignum::Ubig;
use hwperm_factoradic::{factorials_u64, unrank_u64, IndexedPermutations};
use hwperm_perm::{bits_per_element, Permutation};

fn naive_enumerate(n: usize) -> u64 {
    let bits = n * bits_per_element(n);
    let mut count = 0u64;
    for w in 0..(1u64 << bits) {
        if Permutation::unpack(n, &Ubig::from(w)).is_ok() {
            count += 1;
        }
    }
    count
}

fn bench_all_permutations(c: &mut Criterion) {
    for n in [4usize, 5] {
        let mut group = c.benchmark_group(format!("all_perms_n{n}"));
        let nfact = factorials_u64(n)[n];

        group.bench_function(BenchmarkId::new("naive_enumerate_discard", n), |b| {
            b.iter(|| {
                let c = naive_enumerate(black_box(n));
                assert_eq!(c, nfact);
                black_box(c)
            })
        });

        group.bench_function(BenchmarkId::new("unrank_each_index", n), |b| {
            b.iter(|| {
                for i in 0..nfact {
                    black_box(unrank_u64(n, i));
                }
            })
        });

        group.bench_function(BenchmarkId::new("unrank_then_successors", n), |b| {
            b.iter(|| {
                black_box(IndexedPermutations::all(n).count());
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_all_permutations);
criterion_main!(benches);
