//! Parallel block-generation scaling (DESIGN.md §6.5): derangement
//! counting over all of S_9 with increasing worker counts.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hwperm_core::{parallel_count, ParallelPlan};

fn bench_parallel_derangements(c: &mut Criterion) {
    let n = 9usize; // 362,880 permutations
    let total: u64 = (1..=n as u64).product();
    let mut group = c.benchmark_group("parallel_derangement_count");
    group.throughput(Throughput::Elements(total));
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let plan = ParallelPlan::full(n, workers);
                    black_box(parallel_count(&plan, |p| p.is_derangement()))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_derangements);
criterion_main!(benches);
