//! SAT proof-obligation throughput — the criterion view of
//! `tables provebench`. CI compile-checks this target
//! (`cargo bench --no-run`) on every push so the miter API cannot
//! silently rot out of the bench.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hwperm_circuits::{converter_netlist, ConverterOptions, PermToIndexConverter};
use hwperm_verify::{
    expected_permutation_words, prove_against_table, prove_inverse_identity, ProveOutcome,
};

fn factorial(n: usize) -> u64 {
    (1..=n as u64).product()
}

fn bench_table_proof(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_prove_table");
    for n in [4usize, 5, 6] {
        group.throughput(Throughput::Elements(factorial(n)));
        group.bench_with_input(BenchmarkId::new("converter", n), &n, |b, &n| {
            let netlist = converter_netlist(n, ConverterOptions::default());
            let expected = expected_permutation_words(n);
            b.iter(|| {
                let out =
                    prove_against_table(black_box(&netlist), "index", "perm", &expected).unwrap();
                assert!(matches!(out, ProveOutcome::Proved(_)));
                out
            })
        });
    }
    group.finish();
}

fn bench_inverse_proof(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_prove_inverse");
    for n in [4usize, 5] {
        group.throughput(Throughput::Elements(factorial(n)));
        group.bench_with_input(BenchmarkId::new("rank_unrank", n), &n, |b, &n| {
            let conv = converter_netlist(n, ConverterOptions::default());
            let rank = PermToIndexConverter::new(n).netlist().clone();
            b.iter(|| {
                let out = prove_inverse_identity(
                    black_box(&conv),
                    "index",
                    "perm",
                    &rank,
                    "perm",
                    "index",
                    factorial(n),
                    None,
                )
                .unwrap();
                assert!(matches!(out, ProveOutcome::Proved(_)));
                out
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table_proof, bench_inverse_proof);
criterion_main!(benches);
