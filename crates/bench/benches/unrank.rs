//! Table II's software side: unranking rate vs n, plus the
//! div/mod-vs-greedy digit extraction ablation (DESIGN.md §6.1).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hwperm_bignum::Ubig;
use hwperm_factoradic::{factorials_u64, to_digits_greedy, to_digits_u64, unrank, unrank_u64};

fn bench_unrank_by_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("unrank_u64");
    for n in [2usize, 4, 6, 8, 10, 16, 20] {
        let nfact = factorials_u64(n)[n];
        let mut i = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                i = (i + 1) % nfact;
                black_box(unrank_u64(n, black_box(i)))
            })
        });
    }
    group.finish();
}

fn bench_unrank_zero_alloc(c: &mut Criterion) {
    // The allocation ablation: fresh Vecs per call vs a reused workspace.
    let mut group = c.benchmark_group("unrank_n10_alloc");
    let nfact = factorials_u64(10)[10];
    let mut i = 0u64;
    group.bench_function("allocating", |b| {
        b.iter(|| {
            i = (i + 1) % nfact;
            black_box(unrank_u64(10, black_box(i)))
        })
    });
    let mut unranker = hwperm_factoradic::Unranker::new(10);
    let mut buf = Vec::with_capacity(10);
    let mut j = 0u64;
    group.bench_function("reused_workspace", |b| {
        b.iter(|| {
            j = (j + 1) % nfact;
            unranker.unrank_into(black_box(j), &mut buf);
            black_box(buf[0])
        })
    });
    group.finish();
}

fn bench_digit_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("digits_n10");
    let nfact = factorials_u64(10)[10];
    let mut i = 12345u64;
    group.bench_function("divmod", |b| {
        b.iter(|| {
            i = (i.wrapping_mul(6364136223846793005)) % nfact;
            black_box(to_digits_u64(10, black_box(i)))
        })
    });
    let mut j = 12345u64;
    group.bench_function("greedy_compare_subtract", |b| {
        b.iter(|| {
            j = (j.wrapping_mul(6364136223846793005)) % nfact;
            black_box(to_digits_greedy(10, black_box(j)))
        })
    });
    group.finish();
}

fn bench_unrank_big(c: &mut Criterion) {
    let mut group = c.benchmark_group("unrank_ubig");
    for n in [25usize, 40] {
        let index = Ubig::factorial(n as u64).divrem_u64(7).0;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(unrank(n, black_box(&index))))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_unrank_by_n,
    bench_unrank_zero_alloc,
    bench_digit_extraction,
    bench_unrank_big
);
criterion_main!(benches);
