//! Substrate microbenchmarks: the big-integer operations on the
//! converter's hot path (factorials, division by small radix,
//! multiplication).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hwperm_bignum::Ubig;

fn bench_factorial(c: &mut Criterion) {
    let mut group = c.benchmark_group("ubig_factorial");
    for n in [20u64, 52, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(Ubig::factorial(black_box(n))))
        });
    }
    group.finish();
}

fn bench_divrem(c: &mut Criterion) {
    let mut group = c.benchmark_group("ubig_divrem");
    let big = Ubig::factorial(52);
    group.bench_function("divrem_u64_by_radix", |b| {
        b.iter(|| black_box(big.divrem_u64(black_box(37))))
    });
    let divisor = Ubig::factorial(26);
    group.bench_function("knuth_d_multi_limb", |b| {
        b.iter(|| black_box(big.divrem(black_box(&divisor))))
    });
    group.finish();
}

fn bench_mul(c: &mut Criterion) {
    let mut group = c.benchmark_group("ubig_mul");
    let a = Ubig::factorial(40);
    let b_val = Ubig::factorial(35);
    group.bench_function("schoolbook", |b| b.iter(|| black_box(&a * &b_val)));
    group.bench_function("mul_u64", |b| {
        b.iter(|| black_box(a.mul_u64(black_box(0xDEAD_BEEF))))
    });
    group.finish();
}

fn bench_decimal(c: &mut Criterion) {
    let f100 = Ubig::factorial(100);
    let s = f100.to_string();
    let mut group = c.benchmark_group("ubig_decimal");
    group.bench_function("to_string_100_factorial", |b| {
        b.iter(|| black_box(f100.to_string()))
    });
    group.bench_function("parse_100_factorial", |b| {
        b.iter(|| black_box(Ubig::from_decimal(black_box(&s)).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_factorial,
    bench_divrem,
    bench_mul,
    bench_decimal
);
criterion_main!(benches);
