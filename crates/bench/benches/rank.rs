//! Ranking (permutation → index): the converter's inverse direction,
//! plus Lehmer-code extraction and lexicographic succession.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hwperm_factoradic::{factorials_u64, rank_u64, unrank_u64};
use hwperm_perm::Permutation;

fn bench_rank(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank_u64");
    for n in [4usize, 8, 16, 20] {
        let nfact = factorials_u64(n)[n];
        let perm = unrank_u64(n, nfact / 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(rank_u64(black_box(&perm))))
        });
    }
    group.finish();
}

fn bench_lehmer(c: &mut Criterion) {
    let mut group = c.benchmark_group("lehmer_code");
    for n in [8usize, 32, 64] {
        let perm = Permutation::last_lex(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(perm.lehmer()))
        });
    }
    group.finish();
}

fn bench_next_lex(c: &mut Criterion) {
    let mut group = c.benchmark_group("next_lex");
    for n in [8usize, 32] {
        let mut perm = Permutation::identity(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                perm = match perm.next_lex() {
                    Some(p) => p,
                    None => Permutation::identity(n),
                };
                black_box(&perm);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rank, bench_lehmer, bench_next_lex);
criterion_main!(benches);
