//! Scalar vs 64-lane batched exhaustive sweep over the Fig. 1
//! converter — the criterion view of `tables simbench`. CI compile-
//! checks this target (`cargo bench --no-run`) on every push so the
//! batched verification API cannot silently rot out of the bench.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hwperm_circuits::{converter_netlist, ConverterOptions};
use hwperm_logic::{BatchSimulator, Simulator};
use hwperm_verify::{
    exhaustive_check_batched_with, exhaustive_check_scalar_with, expected_permutation_words,
    BatchedExpectation,
};

fn bench_exhaustive_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("exhaustive_converter_sweep");
    for n in [4usize, 5, 6] {
        let netlist = converter_netlist(n, ConverterOptions::default());
        let expected = expected_permutation_words(n);
        let in_bits = netlist.input_port("index").unwrap().nets.len();
        let out_bits = netlist.output_port("perm").unwrap().nets.len();
        let table = BatchedExpectation::new(in_bits, out_bits, &expected);
        group.throughput(Throughput::Elements(expected.len() as u64));

        let mut scalar = Simulator::new(netlist.clone());
        group.bench_with_input(BenchmarkId::new("scalar", n), &n, |b, _| {
            b.iter(|| {
                exhaustive_check_scalar_with(
                    &mut scalar,
                    black_box("index"),
                    black_box("perm"),
                    &expected,
                )
                .unwrap()
            })
        });

        let mut batched = BatchSimulator::new(netlist.clone());
        group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, _| {
            b.iter(|| {
                exhaustive_check_batched_with(
                    &mut batched,
                    black_box("index"),
                    black_box("perm"),
                    &table,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exhaustive_sweep);
criterion_main!(benches);
