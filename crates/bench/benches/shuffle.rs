//! Random permutation generation: software Knuth shuffle vs the
//! bit-exact circuit mirror vs full gate-level simulation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hwperm_circuits::{KnuthShuffleCircuit, KnuthShuffleModel, ShuffleOptions};
use hwperm_perm::shuffle::knuth_shuffle;
use hwperm_rng::XorShift64Star;

fn bench_shuffle_backends(c: &mut Criterion) {
    for n in [4usize, 8, 16] {
        let mut group = c.benchmark_group(format!("random_perm_n{n}"));
        let opts = ShuffleOptions {
            lfsr_width: 31,
            pipelined: false,
            seed: 0xBEAC,
        };

        let mut rng = XorShift64Star::new(1);
        group.bench_function(BenchmarkId::new("software_fisher_yates", n), |b| {
            b.iter(|| black_box(knuth_shuffle(n, &mut rng)))
        });

        let mut mirror = KnuthShuffleModel::with_options(n, opts);
        group.bench_function(BenchmarkId::new("circuit_mirror", n), |b| {
            b.iter(|| black_box(mirror.next_permutation()))
        });

        let mut netlist = KnuthShuffleCircuit::with_options(n, opts);
        group.bench_function(BenchmarkId::new("gate_level_netlist", n), |b| {
            b.iter(|| black_box(netlist.next_permutation()))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_shuffle_backends);
criterion_main!(benches);
