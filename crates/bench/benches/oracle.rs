//! Oracle-table generation throughput — the criterion view of
//! `tables oraclebench`. CI compile-checks this target
//! (`cargo bench --no-run`) on every push so the block-decoding API
//! cannot silently rot out of the bench.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hwperm_factoradic::{unrank_u64, BlockDecoder};
use hwperm_verify::expected_permutation_words_parallel;

fn factorial(n: usize) -> u64 {
    (1..=n as u64).product()
}

/// Per-index reference: one factoradic decode + pack per table entry.
fn naive_table(n: usize) -> Vec<u64> {
    (0..factorial(n))
        .map(|i| unrank_u64(n, i).pack().to_u64().unwrap())
        .collect()
}

fn bench_table_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_table");
    for n in [7usize, 8] {
        group.throughput(Throughput::Elements(factorial(n)));
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, &n| {
            b.iter(|| naive_table(black_box(n)))
        });
        group.bench_with_input(BenchmarkId::new("block", n), &n, |b, &n| {
            let mut decoder = BlockDecoder::new(n);
            let total = decoder.total();
            b.iter(|| decoder.decode_words(black_box(0..total)))
        });
    }
    group.finish();
}

fn bench_sharded_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_table_sharded");
    let n = 8usize;
    group.throughput(Throughput::Elements(factorial(n)));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new(format!("n{n}"), workers),
            &workers,
            |b, &workers| b.iter(|| expected_permutation_words_parallel(black_box(n), workers)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table_generation, bench_sharded_generation);
criterion_main!(benches);
