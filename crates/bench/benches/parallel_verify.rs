//! Thread-scaling of the sharded exhaustive sweep over the Fig. 1
//! converter — the criterion view of `tables threadbench`. CI compile-
//! checks this target (`cargo bench --no-run`) on every push so the
//! parallel verification API cannot silently rot out of the bench.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hwperm_circuits::{converter_netlist, ConverterOptions};
use hwperm_logic::SimProgram;
use hwperm_verify::{
    exhaustive_check_parallel_repeat, expected_permutation_words, BatchedExpectation,
};

/// Sweeps per thread scope: enough work per spawn that the measured
/// steady state is sharded simulation throughput, not thread setup.
const REPEATS: usize = 16;

fn bench_sharded_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_converter_sweep");
    for n in [5usize, 6] {
        let netlist = converter_netlist(n, ConverterOptions::default());
        let expected = expected_permutation_words(n);
        let in_bits = netlist.input_port("index").unwrap().nets.len();
        let out_bits = netlist.output_port("perm").unwrap().nets.len();
        let table = BatchedExpectation::new(in_bits, out_bits, &expected);
        let program = SimProgram::compile_shared(netlist);
        group.throughput(Throughput::Elements((expected.len() * REPEATS) as u64));

        for workers in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), workers),
                &workers,
                |b, &workers| {
                    b.iter(|| {
                        exhaustive_check_parallel_repeat(
                            &program,
                            black_box("index"),
                            black_box("perm"),
                            &table,
                            workers,
                            REPEATS,
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_sweep);
criterion_main!(benches);
