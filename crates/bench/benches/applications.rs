//! Application-level benches: unique-permutation hashing vs classical
//! probing, and the BDD variable-ordering search throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hwperm_bdd::{achilles_heel, exhaustive_ordering_search, Manager};
use hwperm_hash::contention::measure_insert_contention;
use hwperm_hash::{DoubleHashTable, LinearProbeTable, ProbeTable, UniquePermTable};

fn bench_hash_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_insert_to_full");
    let capacity = 16;
    group.bench_function("unique_permutation", |b| {
        b.iter(|| {
            black_box(measure_insert_contention(
                || UniquePermTable::new(capacity),
                capacity,
                20,
                7,
            ))
        })
    });
    group.bench_function("linear_probing", |b| {
        b.iter(|| {
            black_box(measure_insert_contention(
                || LinearProbeTable::new(capacity),
                capacity,
                20,
                7,
            ))
        })
    });
    group.bench_function("double_hashing", |b| {
        b.iter(|| {
            black_box(measure_insert_contention(
                || DoubleHashTable::new(capacity),
                capacity,
                20,
                7,
            ))
        })
    });
    group.finish();
}

fn bench_hash_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_lookup_hit");
    let mut table = UniquePermTable::new(16);
    let keys: Vec<u64> = (0..14).map(|i| i * 7919 + 3).collect();
    for &k in &keys {
        table.insert(k);
    }
    let mut i = 0usize;
    group.bench_function("unique_permutation", |b| {
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(table.lookup(black_box(keys[i])))
        })
    });
    group.finish();
}

fn bench_bdd_ordering_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_ordering_search");
    group.sample_size(10);
    for k in [2usize, 3] {
        group.bench_with_input(
            BenchmarkId::new("achilles_exhaustive", 2 * k),
            &k,
            |b, &k| {
                b.iter(|| {
                    black_box(exhaustive_ordering_search(2 * k, |m, order| {
                        achilles_heel(m, k, order)
                    }))
                })
            },
        );
    }
    group.finish();
}

fn bench_bdd_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_build_achilles");
    for k in [4usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(2 * k), &k, |b, &k| {
            b.iter(|| {
                let mut m = Manager::new(2 * k);
                let order = hwperm_perm::Permutation::identity(2 * k);
                let f = achilles_heel(&mut m, k, &order);
                black_box(m.node_count(f))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hash_strategies,
    bench_hash_lookup,
    bench_bdd_ordering_search,
    bench_bdd_build
);
criterion_main!(benches);
