//! Netlist simulation throughput: combinational single-shot conversion
//! vs pipelined streaming (DESIGN.md §6.2), across circuit sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hwperm_bignum::Ubig;
use hwperm_circuits::{ConverterOptions, IndexToPermConverter};
use hwperm_factoradic::factorials_u64;

fn bench_combinational(c: &mut Criterion) {
    let mut group = c.benchmark_group("converter_combinational");
    for n in [4usize, 8, 12] {
        let nfact = factorials_u64(n)[n];
        let mut conv = IndexToPermConverter::new(n);
        let mut i = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                i = (i + 17) % nfact;
                black_box(conv.convert_u64(black_box(i)))
            })
        });
    }
    group.finish();
}

fn bench_pipelined_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("converter_pipelined_stream");
    for n in [4usize, 8] {
        let nfact = factorials_u64(n)[n];
        let indices: Vec<Ubig> = (0..256u64).map(|i| Ubig::from(i * 37 % nfact)).collect();
        let mut conv = IndexToPermConverter::with_options(
            n,
            ConverterOptions {
                pipelined: true,
                perm_input_port: false,
            },
        );
        group.throughput(Throughput::Elements(indices.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(conv.convert_stream(black_box(&indices))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_combinational, bench_pipelined_stream);
criterion_main!(benches);
