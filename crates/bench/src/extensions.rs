//! Extension experiments beyond the paper's tables: the LUT-cascade
//! realization (Section II.B remark), the inverse (rank) circuit, and
//! the truncated-cascade variation converter.

use crate::with_commas;
use hwperm_bignum::Ubig;
use hwperm_circuits::{
    IndexToPermConverter, IndexToVariationConverter, LutCascadeConverter, PermToIndexConverter,
};
use hwperm_factoradic::unrank_u64;
use std::fmt::Write as _;

/// LUT cascade vs comparator-LUT realization: memory bits against
/// mapped LUTs, per `n`.
pub fn cascade() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Section II.B remark — LUT-cascade realization (ROM per stage) vs comparator logic"
    )
    .unwrap();
    writeln!(
        out,
        "{:>3}  {:>9}  {:>14}  {:>12}  {:>22}",
        "n", "stages", "ROM bits", "logic LUTs", "stage ROMs (addr->data)"
    )
    .unwrap();
    for n in [4usize, 5, 6, 7, 8, 9, 10] {
        let cas = LutCascadeConverter::new(n);
        let luts = IndexToPermConverter::new(n).report().total_luts;
        let shapes: Vec<String> = cas
            .stage_shapes()
            .iter()
            .map(|(a, d)| format!("{a}->{d}"))
            .collect();
        writeln!(
            out,
            "{:>3}  {:>9}  {:>14}  {:>12}  {}",
            n,
            cas.stage_count(),
            with_commas(cas.memory_bits()),
            luts,
            shapes.join(" ")
        )
        .unwrap();
    }
    writeln!(
        out,
        "(ROM cost grows with 2^⌈log₂ n!⌉ — factorially — while the comparator form stays"
    )
    .unwrap();
    writeln!(
        out,
        " O(n²) LUTs: memory-based synthesis only pays off for small n or BRAM-rich parts)"
    )
    .unwrap();
    out
}

/// The inverse circuit: hardware ranking resources and a round-trip
/// demonstration through both converters.
pub fn rank_circuit() -> String {
    let mut out = String::new();
    writeln!(out, "Extension — inverse circuit (permutation → index)").unwrap();
    writeln!(
        out,
        "{:>3}  {:>12}  {:>8}  {:>10}",
        "n", "total LUTs", "ALMs", "Fmax MHz"
    )
    .unwrap();
    for n in [4usize, 6, 8, 10, 12] {
        let report = PermToIndexConverter::new(n).report();
        writeln!(
            out,
            "{:>3}  {:>12}  {:>8}  {:>10.0}",
            n, report.total_luts, report.est_alms, report.fmax_mhz
        )
        .unwrap();
    }
    // Round trip through both netlists.
    let mut forward = IndexToPermConverter::new(6);
    let mut backward = PermToIndexConverter::new(6);
    let mut ok = true;
    for i in (0..720u64).step_by(31) {
        ok &= backward.rank(&forward.convert_u64(i)).to_u64() == Some(i);
    }
    writeln!(
        out,
        "round trip index→perm→index through both netlists (n=6): {}",
        if ok { "MATCH" } else { "MISMATCH" }
    )
    .unwrap();
    out
}

/// The truncated cascade: k-permutation conversion resources vs k.
pub fn variations() -> String {
    let n = 10;
    let mut out = String::new();
    writeln!(
        out,
        "Extension — truncated cascade: index → k-permutation of {n} elements"
    )
    .unwrap();
    writeln!(
        out,
        "{:>3}  {:>16}  {:>12}  {:>8}",
        "k", "variations", "total LUTs", "ALMs"
    )
    .unwrap();
    for k in [1usize, 2, 4, 6, 8, 10] {
        let mut conv = IndexToVariationConverter::new(n, k);
        let report = conv.report();
        let sample = conv.convert(&Ubig::zero());
        assert_eq!(sample.len(), k);
        writeln!(
            out,
            "{:>3}  {:>16}  {:>12}  {:>8}",
            k,
            with_commas(conv.total().to_u64().unwrap()),
            report.total_luts,
            report.est_alms
        )
        .unwrap();
    }
    // Consistency: k = n equals the full converter on a spot check.
    let mut full = IndexToPermConverter::new(6);
    let mut vark = IndexToVariationConverter::new(6, 6);
    let agree = (0..720u64)
        .step_by(41)
        .all(|i| vark.convert(&Ubig::from(i)) == full.convert_u64(i).into_vec());
    writeln!(
        out,
        "k = n cross-check against the full converter: {}",
        if agree { "MATCH" } else { "MISMATCH" }
    )
    .unwrap();
    let _ = unrank_u64(4, 0); // keep the software reference linked in
    out
}

/// Formal verification summary: BDD proofs of the converter against its
/// specification for n = 4…6, with wall-clock per proof.
pub fn prove() -> String {
    use hwperm_factoradic::unrank_u64;
    use hwperm_verify::CompiledNetlist;
    use std::collections::BTreeMap;
    use std::time::Instant;

    let mut out = String::new();
    writeln!(
        out,
        "Formal verification — ROBDD proof: netlist ≡ factorial-number-system unranking"
    )
    .unwrap();
    writeln!(
        out,
        "{:>3}  {:>9}  {:>10}  {:>10}  {:>8}",
        "n", "BDD vars", "in-range", "verdict", "ms"
    )
    .unwrap();
    for n in [4usize, 5, 6] {
        let netlist =
            hwperm_circuits::converter_netlist(n, hwperm_circuits::ConverterOptions::default());
        let start = Instant::now();
        let compiled = CompiledNetlist::compile(&netlist).expect("combinational");
        let nfact = hwperm_factoradic::factorials_u64(n)[n];
        let cex = compiled.verify_against_spec(
            |index| index.to_u64().is_some_and(|i| i < nfact),
            |index| {
                let perm = unrank_u64(n, index.to_u64().unwrap());
                BTreeMap::from([("perm".to_string(), perm.pack())])
            },
        );
        let ms = start.elapsed().as_secs_f64() * 1e3;
        writeln!(
            out,
            "{:>3}  {:>9}  {:>10}  {:>10}  {:>8.1}",
            n,
            compiled.num_vars(),
            nfact,
            if cex.is_none() { "PROVEN" } else { "REFUTED" },
            ms
        )
        .unwrap();
        assert!(cex.is_none(), "converter n = {n} failed its proof");
    }
    writeln!(
        out,
        "(out-of-range indices are don't-cares; coverage is complete, not sampled)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prove_reports_proven() {
        let text = prove();
        assert_eq!(text.matches("PROVEN").count(), 3);
    }

    #[test]
    fn cascade_table_renders() {
        let text = cascade();
        assert!(text.contains("ROM bits"));
        assert!(
            text.contains("10->"),
            "first stage of n=6 is 10 address bits"
        );
    }

    #[test]
    fn rank_circuit_round_trips() {
        assert!(rank_circuit().contains("MATCH"));
    }

    #[test]
    fn variations_table_consistent() {
        let text = variations();
        assert!(text.contains("MATCH"));
        assert!(text.contains("3,628,800"), "k = 10 over n = 10 is 10!");
    }
}
