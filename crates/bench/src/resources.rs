//! Tables III and IV: resource usage of the two circuits, as estimated
//! by the `hwperm-logic` technology mapper (the Quartus substitute —
//! see DESIGN.md §2 for the substitution rationale).

use hwperm_circuits::{converter_netlist, shuffle_netlist, ConverterOptions, ShuffleOptions};
use hwperm_logic::{Netlist, ResourceReport};
use std::fmt::Write as _;

/// The `n` values reported (the paper's tables run over similar ranges).
pub const RESOURCE_NS: [usize; 11] = [2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 16];

/// Renders a resource table for a family of netlists.
fn resource_table(
    title: &str,
    netlist_for: impl Fn(usize) -> Netlist,
) -> (Vec<(usize, ResourceReport)>, String) {
    let mut rows = Vec::new();
    let mut out = String::new();
    writeln!(out, "{title}").unwrap();
    writeln!(
        out,
        "(Fmax columns: conservative all-LUT-hops model / with hardened carry chains)"
    )
    .unwrap();
    writeln!(
        out,
        "{:>3}  {:>9} {:>9}  {:>6} {:>6} {:>6} {:>6} {:>6}  {:>7}  {:>8}  {:>9}",
        "n",
        "Fmax MHz",
        "w/chain",
        "2-LUT",
        "3-LUT",
        "4-LUT",
        "5-LUT",
        "6-LUT",
        "ALMs",
        "regs",
        "LUT depth"
    )
    .unwrap();
    for &n in &RESOURCE_NS {
        let report = ResourceReport::of(&netlist_for(n));
        writeln!(
            out,
            "{:>3}  {:>9.0} {:>9.0}  {:>6} {:>6} {:>6} {:>6} {:>6}  {:>7}  {:>8}  {:>9}",
            n,
            report.fmax_mhz,
            report.fmax_carry_mhz,
            report.luts_by_inputs[2] + report.luts_by_inputs[1],
            report.luts_by_inputs[3],
            report.luts_by_inputs[4],
            report.luts_by_inputs[5],
            report.luts_by_inputs[6],
            report.est_alms,
            report.registers,
            report.lut_depth,
        )
        .unwrap();
        rows.push((n, report));
    }
    (rows, out)
}

/// Table III: the pipelined index → permutation converter.
pub fn table3() -> (Vec<(usize, ResourceReport)>, String) {
    resource_table(
        "Table III — factorial-number-system converter (pipelined) on the modeled Stratix-IV-class device",
        |n| {
            converter_netlist(
                n,
                ConverterOptions {
                    pipelined: true,
                    perm_input_port: false,
                },
            )
        },
    )
}

/// Table IV: the Knuth shuffle generator (31-bit LFSR per stage, as in
/// the paper).
pub fn table4() -> (Vec<(usize, ResourceReport)>, String) {
    resource_table(
        "Table IV — Knuth shuffle random permutation generator (31-bit LFSR per stage)",
        |n| {
            shuffle_netlist(
                n,
                ShuffleOptions {
                    lfsr_width: 31,
                    pipelined: false,
                    seed: 1,
                },
            )
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_resources_grow_monotonically() {
        let (rows, text) = table3();
        assert!(text.contains("Table III"));
        for w in rows.windows(2) {
            assert!(
                w[1].1.total_luts >= w[0].1.total_luts,
                "LUTs must grow with n"
            );
            assert!(w[1].1.registers >= w[0].1.registers);
        }
    }

    #[test]
    fn table3_fmax_decreases_with_n() {
        let (rows, _) = table3();
        let first = rows.first().unwrap().1.fmax_mhz;
        let last = rows.last().unwrap().1.fmax_mhz;
        assert!(
            first > last,
            "deeper stages must lower Fmax: {first} vs {last}"
        );
    }

    #[test]
    fn table4_registers_track_lfsr_count() {
        // n stages-1 LFSRs × 31 bits, no pipeline ranks.
        let (rows, _) = table4();
        for (n, report) in &rows {
            assert_eq!(report.registers, (n - 1) * 31, "n = {n}");
        }
    }

    #[test]
    fn quadratic_resource_shape() {
        // The paper: both circuits are O(n²). Compare n = 8 → 16.
        let (rows3, _) = table3();
        let luts = |rows: &Vec<(usize, ResourceReport)>, n: usize| {
            rows.iter().find(|(m, _)| *m == n).unwrap().1.total_luts as f64
        };
        let ratio = luts(&rows3, 16) / luts(&rows3, 8);
        assert!(ratio > 3.0, "super-linear growth expected: {ratio}");
    }
}
