//! Persisted-store economics: what the on-disk oracle store buys.
//!
//! The store trades a one-time cold build (block-decode + hash +
//! chunked write) for warm starts that are I/O bound instead of
//! compute bound. This module times the three phases of that trade at
//! n = 7 and n = 8 — cold build, warm load (read + hash-verify), and
//! the in-memory recompute a storeless run pays — plus the end-to-end
//! converter sweep fed by a computed vs a store-backed expectation
//! table, which must agree on every word. The acceptance floor (a warm
//! load at n = 8 beats recompute by at least 5×) lives here as an
//! ignored release-mode test, mirroring the other bench floors.
//!
//! Rendered as a text table by the `tables` binary (`storebench`) and
//! as a machine-readable record (`storebench-json`) that CI archives as
//! `BENCH_store.json`.

use crate::with_commas;
use hwperm_circuits::{converter_netlist, ConverterOptions};
use hwperm_store::{build, BuildOptions, OpenTable, TableSource};
use hwperm_verify::exhaustive_check_batched;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Permutation sizes the sweep covers — the largest tables the store
/// caps at are where the cold/warm asymmetry matters.
pub const STORE_BENCH_SIZES: [usize; 2] = [7, 8];

/// One (n, phase) cell of the store-economics matrix.
#[derive(Debug, Clone)]
pub struct StoreRow {
    /// Permutation size.
    pub n: usize,
    /// Which phase this row times: `build-cold`, `load-warm`,
    /// `recompute`, `sweep-computed` or `sweep-store`.
    pub phase: &'static str,
    /// Timed repetitions (the row keeps the best).
    pub rounds: usize,
    /// Packed words the phase produced or consumed.
    pub words: u64,
    /// On-disk bytes touched, zero for the in-memory phases.
    pub bytes: u64,
    /// Best wall-clock nanoseconds across the rounds.
    pub ns_best: u128,
}

impl StoreRow {
    /// Packed words per second at the best-round rate.
    pub fn words_per_sec(&self) -> f64 {
        self.words as f64 * 1e9 / self.ns_best.max(1) as f64
    }
}

fn factorial(n: usize) -> u64 {
    (1..=n as u64).product()
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hwperm-storebench-{tag}-{}", std::process::id()))
}

/// Times a cold build: each round starts from an empty directory, so
/// the measurement covers decode, hashing, chunk writes and the
/// manifest protocol end to end.
pub fn measure_build_cold(n: usize, dir: &Path, rounds: usize) -> StoreRow {
    let mut best = u128::MAX;
    let mut bytes = 0;
    for _ in 0..rounds.max(1) {
        let _ = std::fs::remove_dir_all(dir);
        let start = Instant::now();
        let report = build(dir, n, &BuildOptions::default()).expect("cold build");
        best = best.min(start.elapsed().as_nanos());
        assert!(report.complete, "cold build must complete");
        bytes = report.bytes_written;
    }
    StoreRow {
        n,
        phase: "build-cold",
        rounds: rounds.max(1),
        words: factorial(n),
        bytes,
        ns_best: best,
    }
}

/// Times a warm load: open the manifest, read every chunk, verify every
/// content hash, return the full word table. The directory must hold a
/// complete table (run [`measure_build_cold`] first).
pub fn measure_load_warm(n: usize, dir: &Path, rounds: usize) -> StoreRow {
    let mut best = u128::MAX;
    let mut bytes = 0;
    let mut words = 0;
    for _ in 0..rounds.max(1) {
        let start = Instant::now();
        let table = OpenTable::open(dir, n)
            .expect("open store")
            .expect("store must be warm");
        let loaded = table.load_words().expect("load store table");
        best = best.min(start.elapsed().as_nanos());
        words = loaded.len() as u64;
        bytes = table.chunks_total() * hwperm_store::CHUNK_HEADER_LEN as u64 + words * 8;
    }
    StoreRow {
        n,
        phase: "load-warm",
        rounds: rounds.max(1),
        words,
        bytes,
        ns_best: best,
    }
}

/// Times the storeless path: recompute the full expectation table in
/// memory through the block decoder, exactly what `verify --batch`
/// does without `--store`.
pub fn measure_recompute(n: usize, rounds: usize) -> StoreRow {
    let mut best = u128::MAX;
    let mut words = 0;
    for _ in 0..rounds.max(1) {
        let start = Instant::now();
        let table = TableSource::Computed { workers: 1 }
            .permutation_words(n)
            .expect("recompute table");
        best = best.min(start.elapsed().as_nanos());
        words = table.len() as u64;
    }
    StoreRow {
        n,
        phase: "recompute",
        rounds: rounds.max(1),
        words,
        bytes: 0,
        ns_best: best,
    }
}

/// Times an end-to-end converter sweep fed by `source`: acquire the
/// expectation table (computed or store-backed), then run the batched
/// exhaustive check against the gate-level netlist.
pub fn measure_sweep(n: usize, source: &TableSource, phase: &'static str) -> StoreRow {
    let netlist = converter_netlist(n, ConverterOptions::default());
    let start = Instant::now();
    let expected = source.permutation_words(n).expect("expectation table");
    exhaustive_check_batched(&netlist, "index", "perm", &expected).expect("converter sweep");
    let ns_best = start.elapsed().as_nanos();
    StoreRow {
        n,
        phase,
        rounds: 1,
        words: expected.len() as u64,
        bytes: 0,
        ns_best,
    }
}

/// Default measurement matrix: for each n in [`STORE_BENCH_SIZES`],
/// cold build, warm load and recompute (best of 3), then the two
/// end-to-end sweeps. Scratch stores live under the system temp
/// directory and are removed before returning.
pub fn default_matrix() -> Vec<StoreRow> {
    let mut rows = Vec::new();
    for &n in &STORE_BENCH_SIZES {
        let dir = scratch_dir(&format!("matrix-n{n}"));
        rows.push(measure_build_cold(n, &dir, 1));
        rows.push(measure_load_warm(n, &dir, 3));
        rows.push(measure_recompute(n, 3));
        rows.push(measure_sweep(
            n,
            &TableSource::Computed { workers: 1 },
            "sweep-computed",
        ));
        rows.push(measure_sweep(
            n,
            &TableSource::Store { dir: dir.clone() },
            "sweep-store",
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
    rows
}

/// Warm-load speedup over recompute for the given n, reading both
/// phases out of a measured matrix. Returns `None` if either row is
/// missing.
pub fn warm_speedup(rows: &[StoreRow], n: usize) -> Option<f64> {
    let find = |phase: &str| {
        rows.iter()
            .find(|r| r.n == n && r.phase == phase)
            .map(|r| r.ns_best)
    };
    let warm = find("load-warm")?;
    let recompute = find("recompute")?;
    Some(recompute as f64 / warm.max(1) as f64)
}

/// Text rendering for the `tables` binary.
pub fn store_economics_text() -> String {
    render_text(&default_matrix())
}

fn render_text(rows: &[StoreRow]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Persisted-store economics — cold build vs warm load vs in-memory recompute"
    )
    .unwrap();
    writeln!(
        out,
        "{:>3}  {:>14}  {:>7}  {:>10}  {:>11}  {:>12}  {:>16}",
        "n", "phase", "rounds", "words", "bytes", "ms (best)", "words/s"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "{:>3}  {:>14}  {:>7}  {:>10}  {:>11}  {:>12.3}  {:>16}",
            r.n,
            r.phase,
            r.rounds,
            with_commas(r.words),
            with_commas(r.bytes),
            r.ns_best as f64 / 1e6,
            with_commas(r.words_per_sec() as u64),
        )
        .unwrap();
    }
    for &n in &STORE_BENCH_SIZES {
        if let Some(speedup) = warm_speedup(rows, n) {
            writeln!(
                out,
                "(n = {n}: warm load is {speedup:.2}x the recompute rate)"
            )
            .unwrap();
        }
    }
    out
}

/// JSON rendering (the `BENCH_store.json` CI artifact). Hand-rolled —
/// the workspace carries no serde — but stable-keyed and
/// machine-parsable.
pub fn store_economics_json() -> String {
    render_json(&default_matrix())
}

fn render_json(rows: &[StoreRow]) -> String {
    let mut out = format!(
        "{{\n  \"bench\": \"store_economics\",\n  \"sweep\": \"cold build vs warm load vs \
         recompute, plus computed vs store-backed converter sweeps\",\n  \
         \"sizes\": {:?},\n  \"rows\": [\n",
        STORE_BENCH_SIZES
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            out,
            "    {{\"n\": {}, \"phase\": \"{}\", \"rounds\": {}, \"words\": {}, \
             \"bytes\": {}, \"ns_best\": {}, \"words_per_sec\": {:.0}}}{sep}",
            r.n,
            r.phase,
            r.rounds,
            r.words,
            r.bytes,
            r.ns_best,
            r.words_per_sec(),
        )
        .unwrap();
    }
    let speedups: Vec<String> = STORE_BENCH_SIZES
        .iter()
        .filter_map(|&n| warm_speedup(rows, n).map(|s| format!("\"n{n}\": {s:.3}")))
        .collect();
    writeln!(
        out,
        "  ],\n  \"warm_speedup\": {{{}}}\n}}",
        speedups.join(", ")
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_n_matrix_cells_measure_and_agree() {
        // n = 5 keeps the debug run fast; the phases must all see the
        // same 120-word table.
        let dir = scratch_dir("test-cells");
        let built = measure_build_cold(5, &dir, 1);
        let warm = measure_load_warm(5, &dir, 2);
        let recompute = measure_recompute(5, 2);
        let sweep = measure_sweep(5, &TableSource::Store { dir: dir.clone() }, "sweep-store");
        std::fs::remove_dir_all(&dir).unwrap();
        for row in [&built, &warm, &recompute, &sweep] {
            assert_eq!(row.words, 120, "{row:?}");
            assert!(row.ns_best > 0, "{row:?}");
            assert!(row.words_per_sec() > 0.0, "{row:?}");
        }
        assert!(built.bytes > 120 * 8, "build reports chunk bytes");
        assert_eq!(warm.bytes, built.bytes, "load touches what build wrote");
    }

    #[test]
    fn warm_speedup_reads_the_right_rows() {
        let rows = vec![
            StoreRow {
                n: 8,
                phase: "load-warm",
                rounds: 3,
                words: 40_320,
                bytes: 322_560,
                ns_best: 1_000_000,
            },
            StoreRow {
                n: 8,
                phase: "recompute",
                rounds: 3,
                words: 40_320,
                bytes: 0,
                ns_best: 7_000_000,
            },
        ];
        assert_eq!(warm_speedup(&rows, 8), Some(7.0));
        assert_eq!(warm_speedup(&rows, 7), None);
    }

    #[test]
    fn json_record_carries_the_stable_keys() {
        let rows = vec![StoreRow {
            n: 8,
            phase: "load-warm",
            rounds: 3,
            words: 40_320,
            bytes: 322_560,
            ns_best: 1_000_000,
        }];
        let json = render_json(&rows);
        for key in [
            "\"bench\": \"store_economics\"",
            "\"phase\": \"load-warm\"",
            "\"words\": 40320",
            "\"bytes\": 322560",
            "\"ns_best\": 1000000",
            "\"words_per_sec\": 40320000",
            "\"warm_speedup\": {}",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn text_table_reports_the_speedup_line() {
        let rows = vec![
            StoreRow {
                n: 7,
                phase: "load-warm",
                rounds: 3,
                words: 5_040,
                bytes: 40_356,
                ns_best: 1_000_000,
            },
            StoreRow {
                n: 7,
                phase: "recompute",
                rounds: 3,
                words: 5_040,
                bytes: 0,
                ns_best: 6_000_000,
            },
        ];
        let text = render_text(&rows);
        assert!(text.contains("load-warm"), "{text}");
        assert!(text.contains("warm load is 6.00x"), "{text}");
    }

    /// The PR's acceptance floor: at n = 8, loading the warm store
    /// (read + hash-verify every chunk) beats recomputing the table
    /// in memory by at least 5×. Ignored by default — I/O-vs-compute
    /// ratios are a release-build property — run it with
    /// `cargo test --release -p hwperm-bench -- --ignored`.
    #[test]
    #[ignore = "release-mode store floor (run with --ignored)"]
    fn n8_warm_store_load_meets_the_5x_floor() {
        if cfg!(debug_assertions) {
            eprintln!("skipping store floor: debug build (decode cost is a release property)");
            return;
        }
        let dir = scratch_dir("floor-n8");
        let _ = measure_build_cold(8, &dir, 1);
        let warm = measure_load_warm(8, &dir, 5);
        let recompute = measure_recompute(8, 5);
        std::fs::remove_dir_all(&dir).unwrap();
        let speedup = recompute.ns_best as f64 / warm.ns_best.max(1) as f64;
        assert!(
            speedup >= 5.0,
            "warm store load only {speedup:.2}x faster than recompute at n = 8 (floor 5x): \
             warm {warm:?}, recompute {recompute:?}"
        );
    }
}
