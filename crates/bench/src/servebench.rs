//! Serve-path throughput: how much of the in-process block-decode rate
//! survives the trip through the wire protocol.
//!
//! `oraclebench` measures the raw [`hwperm_factoradic::BlockDecoder`]
//! rate; this module runs the same full-table `block` request through a
//! live `hwperm-serve` instance — framing, worker-pool sharding, binary
//! chunking, socket copies and all — at 1 / 2 / 4 / 8 concurrent
//! clients, and reports each configuration's aggregate permutations per
//! second next to the in-process baseline. The acceptance floor
//! (8 clients within 2× of the in-process rate) lives here as an
//! ignored release-mode test, mirroring the other bench floors.
//!
//! Rendered as a text table by the `tables` binary (`servebench`) and
//! as a machine-readable record (`servebench-json`) that CI archives as
//! `BENCH_serve.json`.

use crate::{oraclebench, with_commas};
use hwperm_serve::{Client, Listener, ServeOptions};
use std::fmt::Write as _;
use std::time::Instant;

/// Concurrent-client counts the sweep covers.
pub const SERVE_CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Chunk size the sweep requests — full frames, the throughput
/// configuration.
pub const SERVE_BENCH_CHUNK: usize = 16_384;

/// One (clients, workers) cell of the serve-throughput matrix.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Permutation size.
    pub n: usize,
    /// Concurrent protocol clients.
    pub clients: usize,
    /// Server worker-pool size.
    pub workers: usize,
    /// Full-table `block` requests per client.
    pub rounds: usize,
    /// Packed words delivered across all clients and rounds.
    pub words: u64,
    /// Wall-clock nanoseconds for the whole sweep cell.
    pub ns_total: u128,
}

impl ServeRow {
    /// Aggregate packed permutations delivered per second.
    pub fn perms_per_sec(&self) -> f64 {
        self.words as f64 * 1e9 / self.ns_total.max(1) as f64
    }

    /// Fraction of an in-process rate this cell sustains.
    pub fn ratio_vs(&self, inprocess_perms_per_sec: f64) -> f64 {
        self.perms_per_sec() / inprocess_perms_per_sec.max(1.0)
    }
}

/// Measures one cell: spins an in-process server, runs `clients`
/// threads each requesting the full `[0, n!)` block `rounds` times, and
/// checks every word arrived.
pub fn measure(n: usize, clients: usize, workers: usize, rounds: usize) -> ServeRow {
    let total: u64 = (1..=n as u64).product();
    let listener = Listener::bind_tcp("127.0.0.1:0").expect("bind");
    let options = ServeOptions {
        workers,
        ..ServeOptions::default()
    };
    let server = hwperm_serve::spawn(listener, options).expect("spawn server");
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let endpoint = server.endpoint().clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&endpoint).expect("connect");
                let mut words = 0u64;
                for round in 0..rounds {
                    let req = format!(
                        "{{\"id\":{},\"cmd\":\"block\",\"n\":{n},\"chunk\":{SERVE_BENCH_CHUNK}}}",
                        round + 1,
                    );
                    let resp = client.request(&req).expect("block response");
                    assert!(resp.is_ok(), "block request failed");
                    words += resp
                        .chunks
                        .iter()
                        .map(|c| c.words.len() as u64)
                        .sum::<u64>();
                }
                words
            })
        })
        .collect();
    let words: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .sum();
    let ns_total = start.elapsed().as_nanos();
    server.stop().expect("stop server");
    assert_eq!(
        words,
        total * clients as u64 * rounds as u64,
        "every requested word must arrive"
    );
    ServeRow {
        n,
        clients,
        workers,
        rounds,
        words,
        ns_total,
    }
}

/// The in-process baseline the ratio column compares against: the
/// single-threaded block decode of the same table.
pub fn inprocess_baseline(n: usize, rounds: usize) -> f64 {
    oraclebench::measure(n, "block", 1, rounds).perms_per_sec()
}

/// Default measurement matrix: n = 8 full tables, pool of 8 workers,
/// 1 / 2 / 4 / 8 clients.
pub fn default_matrix() -> (f64, Vec<ServeRow>) {
    let n = 8;
    let rounds = 3;
    let baseline = inprocess_baseline(n, rounds);
    let rows = SERVE_CLIENT_COUNTS
        .iter()
        .map(|&clients| measure(n, clients, 8, rounds))
        .collect();
    (baseline, rows)
}

/// Text rendering for the `tables` binary.
pub fn serve_throughput_text() -> String {
    let (baseline, rows) = default_matrix();
    render_text(baseline, &rows)
}

fn render_text(baseline: f64, rows: &[ServeRow]) -> String {
    let cores = std::thread::available_parallelism().map_or(0, |c| c.get());
    let mut out = String::new();
    writeln!(
        out,
        "Serve throughput — full [0, n!) block requests over the wire protocol vs in-process decode"
    )
    .unwrap();
    writeln!(
        out,
        "{:>3}  {:>8}  {:>8}  {:>7}  {:>10}  {:>16}  {:>9}",
        "n", "clients", "workers", "rounds", "words", "perm/s", "vs local"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "{:>3}  {:>8}  {:>8}  {:>7}  {:>10}  {:>16}  {:>8.2}x",
            r.n,
            r.clients,
            r.workers,
            r.rounds,
            with_commas(r.words),
            with_commas(r.perms_per_sec() as u64),
            r.ratio_vs(baseline),
        )
        .unwrap();
    }
    writeln!(
        out,
        "(in-process baseline {} perm/s, single-threaded block decode; host reports {cores} hardware threads)",
        with_commas(baseline as u64),
    )
    .unwrap();
    out
}

/// JSON rendering (the `BENCH_serve.json` CI artifact). Hand-rolled —
/// the workspace carries no serde — but stable-keyed and
/// machine-parsable.
pub fn serve_throughput_json() -> String {
    let (baseline, rows) = default_matrix();
    render_json(baseline, &rows)
}

fn render_json(baseline: f64, rows: &[ServeRow]) -> String {
    let cores = std::thread::available_parallelism().map_or(0, |c| c.get());
    let mut out = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"sweep\": \"full block table over the wire, \
         1/2/4/8 concurrent clients\",\n  \"hardware_threads\": {cores},\n  \
         \"inprocess_perms_per_sec\": {baseline:.0},\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            out,
            "    {{\"n\": {}, \"clients\": {}, \"workers\": {}, \"rounds\": {}, \
             \"words\": {}, \"ns_total\": {}, \"perms_per_sec\": {:.0}, \
             \"ratio_vs_inprocess\": {:.3}}}{sep}",
            r.n,
            r.clients,
            r.workers,
            r.rounds,
            r.words,
            r.ns_total,
            r.perms_per_sec(),
            r.ratio_vs(baseline),
        )
        .unwrap();
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_cell_delivers_every_word() {
        // n = 5 keeps the debug-mode run fast; measure() itself asserts
        // the word count.
        let row = measure(5, 2, 2, 1);
        assert_eq!(row.words, 240);
        assert!(row.ns_total > 0);
        assert!(row.perms_per_sec() > 0.0);
    }

    #[test]
    fn json_record_carries_the_stable_keys() {
        let rows = vec![ServeRow {
            n: 8,
            clients: 8,
            workers: 8,
            rounds: 3,
            words: 967_680,
            ns_total: 1_000_000_000,
        }];
        let json = render_json(2_000_000.0, &rows);
        for key in [
            "\"bench\": \"serve_throughput\"",
            "\"inprocess_perms_per_sec\": 2000000",
            "\"clients\": 8",
            "\"workers\": 8",
            "\"words\": 967680",
            "\"perms_per_sec\": 967680",
            "\"ratio_vs_inprocess\": 0.484",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn text_table_reports_the_ratio_column() {
        let rows = vec![ServeRow {
            n: 8,
            clients: 1,
            workers: 8,
            rounds: 3,
            words: 120_960,
            ns_total: 120_960_000,
        }];
        let text = render_text(2_000_000.0, &rows);
        assert!(text.contains("vs local"), "{text}");
        assert!(text.contains("0.50x"), "{text}");
    }

    /// The PR's acceptance floor: 8 concurrent clients sustain at least
    /// half the in-process single-threaded block rate for the full
    /// n = 8 table. Ignored by default — socket throughput is a
    /// release-build property — run it with
    /// `cargo test --release -p hwperm-bench -- --ignored`.
    #[test]
    #[ignore = "release-mode throughput floor (run with --ignored)"]
    fn eight_clients_stay_within_2x_of_inprocess_block_rate() {
        if cfg!(debug_assertions) {
            eprintln!("skipping throughput floor: debug build (socket amortization is a release property)");
            return;
        }
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        if cores < 4 {
            // The floor compares a concurrent wire pipeline against a
            // bare in-process decode; with both socket ends, the
            // worker pool and the decode multiplexed onto one or two
            // hardware threads the comparison measures scheduler
            // thrash, not protocol overhead.
            eprintln!("skipping throughput floor: {cores} hardware thread(s) (needs >= 4)");
            return;
        }
        let baseline = inprocess_baseline(8, 5);
        let row = measure(8, 8, 8, 5);
        let ratio = row.ratio_vs(baseline);
        assert!(
            ratio >= 0.5,
            "8-client serve rate only {ratio:.3}x of the in-process block rate (floor 0.5x): \
             {row:?}, baseline {baseline:.0} perm/s"
        );
    }
}
