//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p hwperm-bench --bin tables -- all
//! cargo run --release -p hwperm-bench --bin tables -- table2
//! ```
//!
//! Subcommands: `table1 table2 table3 table4 fig1 fig3 bias fig4
//! derangements naive sorter parallel cascade rank variations prove
//! simbench threadbench oraclebench faultbench verify all` (plus
//! `fig4-netlist` to run Fig. 4 on the gate-level simulation instead
//! of the bit-exact mirror, `simbench-json` to emit the
//! scalar-vs-batched record CI stores as `BENCH_sim.json`,
//! `threadbench-json` for the workers × n scaling matrix CI stores as
//! `BENCH_parallel.json`, `oraclebench-json` for the table-generation
//! matrix CI stores as `BENCH_oracle.json`, `faultbench-json` for
//! the stuck-at campaign matrix CI stores as `BENCH_faults.json`, and
//! `provebench-json` for the SAT proof-obligation matrix CI stores as
//! `BENCH_prove.json`, `servebench-json` for the wire-protocol
//! throughput matrix CI stores as `BENCH_serve.json`, and
//! `widebench-json` for the lane-width × workers × fusion matrix CI
//! stores as `BENCH_wide.json`, and `storebench-json` for the
//! persisted-store cold/warm/recompute matrix CI stores as
//! `BENCH_store.json`, and `chaosbench-json` for the
//! throughput-under-faults matrix CI stores as `BENCH_chaos.json`).

use hwperm_bench::{
    baselines, chaosbench, extensions, faultbench, figures, oraclebench, provebench, resources,
    servebench, simbench, storebench, tables, threadbench, widebench,
};

fn usage() -> ! {
    eprintln!(
        "usage: tables <experiment>\n  experiments: table1 table2 table3 table4 fig1 fig3 bias \
         fig4 fig4-netlist derangements naive sorter parallel verify cascade rank variations prove \
         simbench simbench-json threadbench threadbench-json widebench widebench-json \
         oraclebench oraclebench-json faultbench faultbench-json provebench provebench-json \
         servebench servebench-json storebench storebench-json chaosbench chaosbench-json all"
    );
    std::process::exit(2);
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let fig4_samples = 1u64 << 20; // the paper's 1,048,576
    let run = |name: &str| match name {
        "table1" => print!("{}", tables::table1()),
        "table2" => print!("{}", tables::table2(1).1),
        "table3" => print!("{}", resources::table3().1),
        "table4" => print!("{}", resources::table4().1),
        "fig1" => print!("{}", figures::fig1(4)),
        "fig3" => print!("{}", figures::fig3(4)),
        "bias" => print!("{}", figures::bias()),
        "fig4" => print!("{}", figures::fig4(fig4_samples, false)),
        "fig4-netlist" => print!("{}", figures::fig4(fig4_samples, true)),
        "derangements" => print!("{}", figures::derangements(fig4_samples, true)),
        "naive" => print!("{}", baselines::naive_baseline()),
        "sorter" => print!("{}", baselines::sorter_demo()),
        "parallel" => print!("{}", baselines::parallel_scaling(10)),
        "verify" => print!("{}", baselines::verify_all()),
        "cascade" => print!("{}", extensions::cascade()),
        "prove" => print!("{}", extensions::prove()),
        "rank" => print!("{}", extensions::rank_circuit()),
        "variations" => print!("{}", extensions::variations()),
        "simbench" => print!("{}", simbench::sim_throughput_text()),
        "simbench-json" => print!("{}", simbench::sim_throughput_json()),
        "threadbench" => print!("{}", threadbench::thread_scaling_text()),
        "threadbench-json" => print!("{}", threadbench::thread_scaling_json()),
        "widebench" => print!("{}", widebench::wide_word_text()),
        "widebench-json" => print!("{}", widebench::wide_word_json()),
        "oraclebench" => print!("{}", oraclebench::oracle_throughput_text()),
        "oraclebench-json" => print!("{}", oraclebench::oracle_throughput_json()),
        "faultbench" => print!("{}", faultbench::fault_campaign_text()),
        "faultbench-json" => print!("{}", faultbench::fault_campaign_json()),
        "provebench" => print!("{}", provebench::prove_throughput_text()),
        "provebench-json" => print!("{}", provebench::prove_throughput_json()),
        "servebench" => print!("{}", servebench::serve_throughput_text()),
        "servebench-json" => print!("{}", servebench::serve_throughput_json()),
        "storebench" => print!("{}", storebench::store_economics_text()),
        "storebench-json" => print!("{}", storebench::store_economics_json()),
        "chaosbench" => print!("{}", chaosbench::chaos_throughput_text()),
        "chaosbench-json" => print!("{}", chaosbench::chaos_throughput_json()),
        _ => usage(),
    };
    if arg == "all" {
        for name in [
            "verify",
            "table1",
            "table2",
            "table3",
            "table4",
            "fig1",
            "fig3",
            "bias",
            "fig4",
            "derangements",
            "naive",
            "sorter",
            "parallel",
            "cascade",
            "rank",
            "variations",
            "simbench",
            "threadbench",
            "widebench",
            "oraclebench",
            "faultbench",
            "provebench",
            "servebench",
            "storebench",
            "chaosbench",
            "prove",
        ] {
            println!("==================================================================");
            run(name);
            println!();
        }
    } else {
        run(&arg);
    }
}
