//! Experiment implementations behind the `tables` binary.
//!
//! Each function renders one of the paper's tables or figures as text
//! (see EXPERIMENTS.md for the paper-vs-measured record). All outputs
//! are deterministic given their parameters, except Table II's wall-
//! clock timings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod baselines;
pub mod chaosbench;
pub mod extensions;
pub mod faultbench;
pub mod figures;
pub mod oraclebench;
pub mod provebench;
pub mod resources;
pub mod servebench;
pub mod simbench;
pub mod storebench;
pub mod tables;
pub mod threadbench;
pub mod widebench;

/// Formats a `f64` with thousands separators for rate reporting.
pub(crate) fn with_commas(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comma_formatting() {
        assert_eq!(with_commas(0), "0");
        assert_eq!(with_commas(999), "999");
        assert_eq!(with_commas(1000), "1,000");
        assert_eq!(with_commas(1_048_576), "1,048,576");
    }
}
