//! Figures 1–4 and the Section III experiments.

use crate::with_commas;
use hwperm_circuits::{
    converter_comparator_count, converter_netlist, shuffle_crossover_count, shuffle_netlist,
    ConverterOptions, KnuthShuffleCircuit, KnuthShuffleModel, ShuffleOptions,
};
use hwperm_core::{chi_square_uniform, derangement_experiment, fig4_histogram, RandomPermSource};
use hwperm_perm::Permutation;
use hwperm_rng::BiasReport;
use std::fmt::Write as _;

/// Fig. 1: structural description of the converter for a given `n`.
pub fn fig1(n: usize) -> String {
    let nl = converter_netlist(n, ConverterOptions::default());
    let mut out = String::new();
    writeln!(out, "Fig. 1 — index to permutation converter, n = {n}").unwrap();
    writeln!(out, "  stages: {n} (one per output position)").unwrap();
    writeln!(
        out,
        "  constant comparators: {} (= n(n-1)/2, the paper's O(n²) count)",
        converter_comparator_count(n)
    )
    .unwrap();
    writeln!(
        out,
        "  index input: {} bits (⌈log₂ {n}!⌉); output word: {} bits",
        nl.input_port("index").unwrap().nets.len(),
        nl.output_port("perm").unwrap().nets.len()
    )
    .unwrap();
    writeln!(out, "  {nl}").unwrap();
    out
}

/// Fig. 3: structural description of the Knuth shuffle circuit.
pub fn fig3(n: usize) -> String {
    let opts = ShuffleOptions {
        lfsr_width: 31,
        pipelined: false,
        seed: 1,
    };
    let nl = shuffle_netlist(n, opts);
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 3 — Knuth shuffle random permutation generator, n = {n}"
    )
    .unwrap();
    writeln!(out, "  stages: {} (one crossover per position)", n - 1).unwrap();
    writeln!(
        out,
        "  crossover choices: {} (= n(n-1)/2, identical to the converter)",
        shuffle_crossover_count(n)
    )
    .unwrap();
    writeln!(
        out,
        "  per-stage RNG: 31-bit LFSR + shift-add multiplier (Fig. 2 block)"
    )
    .unwrap();
    writeln!(out, "  {nl}").unwrap();
    out
}

/// Section III.A: the pigeonhole bias of the Fig. 2 random-integer block.
pub fn bias() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 2 / Section III.A — random-integer bias (k = 24 outputs)"
    )
    .unwrap();
    writeln!(
        out,
        "{:>3}  {:>12} {:>12}  {:>10}  {:>14}",
        "m", "min count", "max count", "max/min", "difference %"
    )
    .unwrap();
    for m in [5usize, 8, 12, 16, 23, 31] {
        let r = BiasReport::analytic(m, 24);
        writeln!(
            out,
            "{:>3}  {:>12} {:>12}  {:>10.6}  {:>14.8}",
            m,
            with_commas(r.min_count),
            with_commas(r.max_count),
            r.probability_ratio(),
            r.difference_percent()
        )
        .unwrap();
    }
    let r5 = BiasReport::analytic(5, 24);
    writeln!(
        out,
        "paper check: m = 5 → {} outputs occur twice, {} once (paper: 7 and 17)",
        r5.outputs_at_max(),
        r5.counts.iter().filter(|&&c| c == 1).count()
    )
    .unwrap();
    out
}

/// Fig. 4: distribution of random 4-element permutations from the Knuth
/// shuffle circuit. `samples` defaults to the paper's 2²⁰ in the binary.
pub fn fig4(samples: u64, use_netlist: bool) -> String {
    let opts = ShuffleOptions {
        lfsr_width: 31,
        pipelined: false,
        seed: 0xF164,
    };
    let mut source: Box<dyn RandomPermSource> = if use_netlist {
        Box::new(NetlistShuffle(KnuthShuffleCircuit::with_options(4, opts)))
    } else {
        Box::new(MirrorShuffle(KnuthShuffleModel::with_options(4, opts)))
    };
    let hist = fig4_histogram(source.as_mut(), samples);
    let counts: Vec<u64> = hist.values().copied().collect();
    let chi2 = chi_square_uniform(&counts);
    let expected = samples as f64 / 24.0;

    let mut out = String::new();
    writeln!(
        out,
        "Fig. 4 — distribution of {} random 4-element permutations ({})",
        with_commas(samples),
        if use_netlist {
            "gate-level netlist"
        } else {
            "bit-exact circuit mirror"
        }
    )
    .unwrap();
    writeln!(out, "{:>5}  {:^6}  {:>9}  bar", "value", "perm", "count").unwrap();
    let max = counts.iter().copied().max().unwrap_or(1);
    for (&word, &count) in &hist {
        let perm = Permutation::unpack(4, &hwperm_bignum::Ubig::from(word)).unwrap();
        let perm_str: String = perm.as_slice().iter().map(|e| e.to_string()).collect();
        let bar_len = (count * 50 / max) as usize;
        writeln!(
            out,
            "{:>5}  {:^6}  {:>9}  {}",
            word,
            perm_str,
            with_commas(count),
            "#".repeat(bar_len)
        )
        .unwrap();
    }
    writeln!(
        out,
        "chi² = {chi2:.1} over 23 dof (95th pct = 35.2); expected per bar = {expected:.0}"
    )
    .unwrap();
    writeln!(out, "(paper reports ≈43,400–43,900 per bar at 2²⁰ samples)").unwrap();
    out
}

/// Section III.C: the derangement experiment for n = 4, 8, 16
/// (gate-level netlist for n ≤ 8, bit-exact mirror for n = 16 when
/// `use_netlist_for_n4` is set; mirror everywhere otherwise).
pub fn derangements(samples: u64, use_netlist_for_n4: bool) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Section III.C — estimating e from derangement counts ({} samples each)",
        with_commas(samples)
    )
    .unwrap();
    writeln!(
        out,
        "{:>3}  {:>12}  {:>10}  {:>8}  {:>8}",
        "n", "derangement", "e est.", "error", "source"
    )
    .unwrap();
    for n in [4usize, 8, 16] {
        let opts = ShuffleOptions {
            lfsr_width: 31,
            pipelined: false,
            seed: 0xDE7A + n as u64,
        };
        let netlist = use_netlist_for_n4 && n <= 8;
        let mut source: Box<dyn RandomPermSource> = if netlist {
            Box::new(NetlistShuffle(KnuthShuffleCircuit::with_options(n, opts)))
        } else {
            Box::new(MirrorShuffle(KnuthShuffleModel::with_options(n, opts)))
        };
        let result = derangement_experiment(source.as_mut(), samples);
        writeln!(
            out,
            "{:>3}  {:>12}  {:>10.4}  {:>7.3}%  {:>8}",
            n,
            with_commas(result.derangements),
            result.e_estimate,
            100.0 * (result.e_estimate - std::f64::consts::E).abs() / std::f64::consts::E,
            if netlist { "netlist" } else { "mirror" }
        )
        .unwrap();
    }
    writeln!(
        out,
        "(paper: e ≈ 2.7185 at n = 4, 2.7177 at n = 8, 2.7187 at n = 16 — our mirror is the"
    )
    .unwrap();
    writeln!(
        out,
        " same sequence the netlist produces; equivalence is proven in the test suite)"
    )
    .unwrap();
    out
}

/// Adapter: circuit as a [`RandomPermSource`].
struct NetlistShuffle(KnuthShuffleCircuit);

impl RandomPermSource for NetlistShuffle {
    fn n(&self) -> usize {
        self.0.n()
    }

    fn next_permutation(&mut self) -> Permutation {
        self.0.next_permutation()
    }
}

/// Adapter: bit-exact software mirror as a [`RandomPermSource`].
struct MirrorShuffle(KnuthShuffleModel);

impl RandomPermSource for MirrorShuffle {
    fn n(&self) -> usize {
        self.0.n()
    }

    fn next_permutation(&mut self) -> Permutation {
        self.0.next_permutation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reports_structure() {
        let text = fig1(4);
        assert!(text.contains("stages: 4"));
        assert!(text.contains("comparators: 6"));
        assert!(text.contains("5 bits"), "{text}");
    }

    #[test]
    fn fig3_reports_structure() {
        let text = fig3(4);
        assert!(text.contains("stages: 3"));
        assert!(text.contains("crossover choices: 6"));
    }

    #[test]
    fn bias_table_matches_paper_example() {
        let text = bias();
        assert!(text.contains("7 outputs occur twice, 17 once"));
    }

    #[test]
    fn fig4_small_run_is_uniformish() {
        let text = fig4(12_000, false);
        assert!(text.contains("chi²"));
        // All 24 bars present.
        assert_eq!(text.matches('#').count() > 0, true);
        assert!(text.contains("0123"));
        assert!(text.contains("3210"));
    }

    #[test]
    fn fig4_netlist_and_mirror_agree() {
        let a = fig4(500, true);
        let b = fig4(500, false);
        // Same counts, different header line.
        let strip = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(strip(&a), strip(&b));
    }

    #[test]
    fn derangements_small_run() {
        let text = derangements(4_000, false);
        assert!(text.contains("n"), "{text}");
        // e estimates in a plausible band.
        for line in text.lines().skip(2).take(3) {
            let e: f64 = line.split_whitespace().nth(2).unwrap().parse().unwrap();
            assert!((2.3..=3.2).contains(&e), "{line}");
        }
    }
}
