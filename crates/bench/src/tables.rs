//! Table I (the factorial number system) and Table II (SRC-6 vs Xeon
//! rate comparison).

use crate::with_commas;
use hwperm_bignum::Ubig;
use hwperm_circuits::{ConverterOptions, IndexToPermConverter};
use hwperm_factoradic::{factorials_u64, to_digits_u64, unrank_u64};
use std::fmt::Write as _;
use std::time::Instant;

/// Renders Table I: the factorial number system for `n = 4` — digits,
/// reconstruction, and the corresponding permutation for N = 0…23.
pub fn table1() -> String {
    let mut out = String::new();
    writeln!(out, "Table I — factorial number system, n = 4").unwrap();
    writeln!(
        out,
        "{:>3}  {:^11}  {:^26}  {:^11}",
        "N", "s3 s2 s1 s0", "value", "permutation"
    )
    .unwrap();
    for n_val in 0..24u64 {
        let d = to_digits_u64(4, n_val);
        let value = format!(
            "{}*3!+{}*2!+{}*1!+{}*0! = {:2}",
            d[0],
            d[1],
            d[2],
            d[3],
            d[0] as u64 * 6 + d[1] as u64 * 2 + d[2] as u64
        );
        let perm = unrank_u64(4, n_val);
        let perm_str: String = perm.as_slice().iter().map(|e| e.to_string()).collect();
        writeln!(
            out,
            "{n_val:>3}  {} {} {} {}      {value:<26}  {perm_str:^11}",
            d[0], d[1], d[2], d[3]
        )
        .unwrap();
    }
    out
}

/// One row of Table II.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Permutation size.
    pub n: usize,
    /// Modeled FPGA time per permutation (ns) — one clock at 100 MHz.
    pub fpga_ns: f64,
    /// Measured software time per permutation (ns).
    pub cpu_ns: f64,
    /// Iterations used for the software measurement.
    pub iterations: u64,
    /// `cpu_ns / fpga_ns`.
    pub speedup: f64,
}

/// Runs the Table II experiment: software unranking rate (the paper's
/// Xeon C program) vs the pipelined circuit's one-permutation-per-clock
/// rate at the SRC-6's 100 MHz.
///
/// `scale` divides the per-`n` iteration counts (use 100+ in debug
/// tests, 1 for the real run). The pipelined-rate premise (exactly
/// `perms + latency − 1` clocks for `perms` permutations) is verified
/// structurally on a small stream before timing.
pub fn table2(scale: u64) -> (Vec<Table2Row>, String) {
    assert!(scale >= 1);
    // Verify the 1-perm/clock premise on the netlist itself.
    let mut pipe = IndexToPermConverter::with_options(
        4,
        ConverterOptions {
            pipelined: true,
            perm_input_port: false,
        },
    );
    let indices: Vec<Ubig> = (0..24u64).map(Ubig::from).collect();
    assert_eq!(pipe.convert_stream(&indices).len(), 24);

    let mut rows = Vec::new();
    for n in 2..=10usize {
        // The paper's iteration ladder: more for small n.
        let iterations = match n {
            2..=5 => 10_000_000,
            6..=8 => 2_500_000,
            _ => 500_000,
        } / scale;
        let iterations = iterations.max(1000);
        let nfact = factorials_u64(n)[n];
        // Allocation-free unranking into a reused buffer — the analogue
        // of the paper's C code writing each permutation into a fixed
        // "array of ints".
        let mut unranker = hwperm_factoradic::Unranker::new(n);
        let mut buf = Vec::with_capacity(n);
        let start = Instant::now();
        let mut sink = 0u64;
        for i in 0..iterations {
            unranker.unrank_into(i % nfact, &mut buf);
            // Fold the output so the optimizer cannot elide the work.
            sink = sink.wrapping_add(buf[0] as u64);
        }
        let elapsed = start.elapsed();
        std::hint::black_box(sink);
        let cpu_ns = elapsed.as_nanos() as f64 / iterations as f64;
        let fpga_ns = 10.0; // one 100 MHz clock, as on the SRC-6
        rows.push(Table2Row {
            n,
            fpga_ns,
            cpu_ns,
            iterations,
            speedup: cpu_ns / fpga_ns,
        });
    }

    let mut out = String::new();
    writeln!(
        out,
        "Table II — per-permutation time: modeled SRC-6 (100 MHz, 1 perm/clock) vs host CPU"
    )
    .unwrap();
    writeln!(
        out,
        "{:>3}  {:>12}  {:>12}  {:>12}  {:>9}",
        "n", "FPGA (ns)", "CPU (ns)", "#iterations", "speedup"
    )
    .unwrap();
    for r in &rows {
        writeln!(
            out,
            "{:>3}  {:>12.0}  {:>12.1}  {:>12}  {:>8.0}x",
            r.n,
            r.fpga_ns,
            r.cpu_ns,
            with_commas(r.iterations),
            r.speedup
        )
        .unwrap();
    }
    writeln!(
        out,
        "(paper: 95x at n = 2 rising to 1,820x at n = 10 against a 2005-era Xeon)"
    )
    .unwrap();
    (rows, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_known_rows() {
        let t = table1();
        // N = 11: digits 1 2 1 0, permutation 1320.
        assert!(t.contains("1 2 1 0"), "{t}");
        assert!(t.contains("1320"));
        // N = 23: permutation 3210.
        assert!(t.contains("3210"));
        assert_eq!(t.lines().count(), 26);
    }

    #[test]
    fn table2_rows_have_positive_speedup() {
        let (rows, text) = table2(500);
        assert_eq!(rows.len(), 9);
        for r in &rows {
            assert!(r.cpu_ns > 0.0);
            assert!(r.speedup > 0.0);
        }
        assert!(text.contains("Table II"));
    }

    #[test]
    fn table2_speedup_is_large_for_big_n() {
        // Even a modern CPU takes well over 10 ns to unrank a 10-element
        // permutation — the shape of the paper's result.
        let (rows, _) = table2(500);
        let n10 = rows.iter().find(|r| r.n == 10).unwrap();
        assert!(n10.speedup > 3.0, "speedup = {}", n10.speedup);
        // Speedup grows with n (compare ends of the ladder).
        let n2 = rows.iter().find(|r| r.n == 2).unwrap();
        assert!(n10.cpu_ns > n2.cpu_ns);
    }
}
