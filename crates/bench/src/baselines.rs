//! Baselines and ablations: the intro's naive generator, the sorting
//! network demonstration, and the parallel-generation scaling table.

use crate::with_commas;
use hwperm_bignum::Ubig;
use hwperm_circuits::SortingNetwork;
use hwperm_core::{parallel_count, ParallelPlan};
use hwperm_factoradic::{factorials_u64, unrank_u64};
use hwperm_perm::{bits_per_element, Permutation};
use std::fmt::Write as _;
use std::time::Instant;

/// The intro's strawman: "generate all n·⌈log₂n⌉-bit binary numbers, one
/// per clock, discarding those that are not permutations. However, this
/// produces permutations at a rate that is much slower than one
/// permutation per clock." Enumerates all words and counts the yield.
pub fn naive_baseline() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Intro baseline — enumerate-and-discard vs direct conversion"
    )
    .unwrap();
    writeln!(
        out,
        "{:>3}  {:>14}  {:>10}  {:>14}  {:>14}",
        "n", "words scanned", "perms", "yield", "clocks/perm"
    )
    .unwrap();
    for n in 2..=6usize {
        let bits = n * bits_per_element(n);
        let words = 1u64 << bits;
        let mut perms = 0u64;
        for w in 0..words {
            if Permutation::unpack(n, &Ubig::from(w)).is_ok() {
                perms += 1;
            }
        }
        assert_eq!(perms, factorials_u64(n)[n]);
        writeln!(
            out,
            "{:>3}  {:>14}  {:>10}  {:>13.6}%  {:>14.1}",
            n,
            with_commas(words),
            with_commas(perms),
            100.0 * perms as f64 / words as f64,
            words as f64 / perms as f64
        )
        .unwrap();
    }
    writeln!(
        out,
        "(the converter emits 1 perm/clock; the naive scan needs 2^(n·⌈log₂n⌉)/n! clocks each)"
    )
    .unwrap();
    out
}

/// The conclusion's sorting-network demonstration.
pub fn sorter_demo() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Conclusion remark — converter datapath as a sorting network"
    )
    .unwrap();
    let mut sorter = SortingNetwork::new(8, 12);
    let inputs: [[u64; 8]; 3] = [
        [3000, 7, 512, 7, 0, 4095, 100, 99],
        [8, 7, 6, 5, 4, 3, 2, 1],
        [1, 1, 2, 2, 3, 3, 4, 4],
    ];
    for keys in inputs {
        let sorted = sorter.sort(&keys);
        writeln!(out, "  {keys:?} -> {sorted:?}").unwrap();
    }
    let report = sorter.report();
    writeln!(out, "  resources: {report}").unwrap();
    out
}

/// Parallel block-generation scaling: counts derangements of `n` over
/// `[0, n!)` with 1, 2, 4, 8 workers (the paper's parallel-machines
/// motivation as a software ablation).
pub fn parallel_scaling(n: usize) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Parallel block generation — derangement count over all {n}! permutations"
    )
    .unwrap();
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    writeln!(
        out,
        "(host exposes {cores} core(s); wall-clock speedup is bounded by that — the"
    )
    .unwrap();
    writeln!(
        out,
        " invariant checked here is that every split returns the identical count)"
    )
    .unwrap();
    writeln!(
        out,
        "{:>8}  {:>12}  {:>10}  {:>8}",
        "workers", "count", "ms", "speedup"
    )
    .unwrap();
    let mut base_ms = None;
    for workers in [1usize, 2, 4, 8] {
        let plan = ParallelPlan::full(n, workers);
        let start = Instant::now();
        let count = parallel_count(&plan, |p| p.is_derangement());
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let base = *base_ms.get_or_insert(ms);
        writeln!(
            out,
            "{:>8}  {:>12}  {:>10.1}  {:>7.2}x",
            workers,
            with_commas(count),
            ms,
            base / ms
        )
        .unwrap();
    }
    out
}

/// Correctness spot check exposed to the binary: the converter's whole
/// n = 4 table against software, printed as confirmation.
pub fn verify_all() -> String {
    let mut out = String::new();
    let mut conv = hwperm_circuits::IndexToPermConverter::new(4);
    let mut ok = true;
    for i in 0..24u64 {
        ok &= conv.convert_u64(i) == unrank_u64(4, i);
    }
    writeln!(
        out,
        "cross-check: netlist vs software over all 24 permutations of n=4 → {}",
        if ok { "MATCH" } else { "MISMATCH" }
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_baseline_counts_are_exact() {
        let text = naive_baseline();
        assert!(text.contains("24"), "n=4 yields 24 perms");
        assert!(text.contains("720"), "n=6 yields 720 perms");
    }

    #[test]
    fn sorter_demo_shows_sorted_output() {
        let text = sorter_demo();
        assert!(text.contains("[1, 2, 3, 4, 5, 6, 7, 8]"));
        assert!(text.contains("[0, 7, 7, 99, 100, 512, 3000, 4095]"));
    }

    #[test]
    fn parallel_scaling_counts_match() {
        let text = parallel_scaling(7);
        // d_7 = 1854.
        assert_eq!(text.matches("1,854").count(), 4, "{text}");
    }

    #[test]
    fn verify_all_matches() {
        assert!(verify_all().contains("MATCH"));
    }
}
