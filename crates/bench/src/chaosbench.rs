//! Throughput under injected network faults: what retry/backoff costs.
//!
//! `servebench` measures the wire protocol on a perfect network; this
//! module puts the [`hwperm_serve::ChaosProxy`] between the clients and
//! the server and kills a deterministic fraction of request attempts —
//! connection resets, truncations, corrupted length prefixes — while
//! the retrying clients reconnect and replay. Reported per fault rate
//! (0% / 1% / 5% of attempts), with the 0% row as the clean baseline,
//! so the number the table pins down is the *overhead of recovery*,
//! not raw socket speed. The acceptance floor (5% faults sustain at
//! least half the clean-through-proxy rate) lives here as an ignored
//! release-mode test, mirroring the other bench floors.
//!
//! Rendered as a text table by the `tables` binary (`chaosbench`) and
//! as a machine-readable record (`chaosbench-json`) that CI archives
//! as `BENCH_chaos.json`.

use crate::with_commas;
use hwperm_serve::{ChaosProxy, Fault, Listener, RetryClient, RetryPolicy, ServeOptions};
use std::fmt::Write as _;
use std::time::Instant;

/// Fraction of request attempts each sweep row kills.
pub const CHAOS_FAULT_RATES: [f64; 3] = [0.0, 0.01, 0.05];

/// Chunk size the sweep requests — full frames, matching `servebench`.
pub const CHAOS_BENCH_CHUNK: usize = 16_384;

/// The rotating kill mix: every entry destroys the attempt in flight
/// on that connection, each through a different failure mode. All are
/// framing-level — the wire carries no payload checksum, so only
/// framing damage is detectable (see the chaos module docs).
const KILLS: [Fault; 3] = [
    Fault::Reset { after: 1_500 },
    Fault::Truncate { after: 700 },
    Fault::Corrupt { at: 0, mask: 0x80 },
];

/// One fault-rate row of the chaos-throughput table.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Permutation size.
    pub n: usize,
    /// Concurrent retrying clients.
    pub clients: usize,
    /// Full-table `block` requests per client.
    pub rounds: usize,
    /// Fraction of attempts the schedule killed.
    pub fault_rate: f64,
    /// Faults the proxy actually injected.
    pub faults: u64,
    /// Replays the clients performed to converge.
    pub retries: u64,
    /// Packed words delivered across all clients and rounds.
    pub words: u64,
    /// Wall-clock nanoseconds for the whole row.
    pub ns_total: u128,
}

impl ChaosRow {
    /// Aggregate packed permutations delivered per second.
    pub fn perms_per_sec(&self) -> f64 {
        self.words as f64 * 1e9 / self.ns_total.max(1) as f64
    }

    /// Fraction of the clean (0% fault) rate this row sustains.
    pub fn ratio_vs(&self, clean_perms_per_sec: f64) -> f64 {
        self.perms_per_sec() / clean_perms_per_sec.max(1.0)
    }
}

/// Measures one row: server behind a chaos proxy whose schedule kills
/// `fault_rate` of the `clients * rounds` attempts, retrying clients
/// replaying until every word arrives. Fault placement is
/// deterministic (front-loaded schedule, rotating kill mix); a tight
/// backoff keeps the row measuring recovery work, not sleeps.
pub fn measure(n: usize, clients: usize, rounds: usize, fault_rate: f64) -> ChaosRow {
    let total: u64 = (1..=n as u64).product();
    let attempts = (clients * rounds) as f64;
    let fault_count = (attempts * fault_rate).ceil() as usize;
    let schedule: Vec<Fault> = (0..fault_count).map(|i| KILLS[i % KILLS.len()]).collect();
    let listener = Listener::bind_tcp("127.0.0.1:0").expect("bind");
    let server = hwperm_serve::spawn(
        listener,
        ServeOptions {
            workers: 4,
            ..ServeOptions::default()
        },
    )
    .expect("spawn server");
    let proxy = ChaosProxy::spawn(server.endpoint().clone(), &schedule).expect("spawn proxy");
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let endpoint = proxy.endpoint().clone();
            // Budget for the worst case: one client absorbing every
            // scheduled fault before the queue drains clean.
            let policy = RetryPolicy {
                max_attempts: fault_count as u32 + 2,
                backoff_ms: 1,
                max_backoff_ms: 4,
                seed: 0xBEEF ^ c as u64,
            };
            std::thread::spawn(move || {
                let mut client = RetryClient::new(endpoint, policy);
                let mut words = 0u64;
                for round in 0..rounds {
                    let req = format!(
                        "{{\"id\":{},\"cmd\":\"block\",\"n\":{n},\"chunk\":{CHAOS_BENCH_CHUNK}}}",
                        round + 1,
                    );
                    let resp = client.request(&req).expect("block response");
                    assert!(resp.is_ok(), "block request failed");
                    words += resp
                        .chunks
                        .iter()
                        .map(|chunk| chunk.words.len() as u64)
                        .sum::<u64>();
                }
                (words, client.stats().retries)
            })
        })
        .collect();
    let (words, retries) = handles.into_iter().fold((0u64, 0u64), |(w, r), h| {
        let (cw, cr) = h.join().expect("client thread");
        (w + cw, r + cr)
    });
    let ns_total = start.elapsed().as_nanos();
    let report = proxy.stop();
    server.stop().expect("stop server");
    assert_eq!(
        words,
        total * (clients * rounds) as u64,
        "every requested word must arrive despite the faults"
    );
    assert_eq!(
        report.threads_spawned, report.threads_joined,
        "proxy leaked threads: {report:?}"
    );
    ChaosRow {
        n,
        clients,
        rounds,
        fault_rate,
        faults: report.faults_injected,
        retries,
        words,
        ns_total,
    }
}

/// Default measurement matrix: n = 8 full tables, 4 retrying clients,
/// one row per fault rate.
pub fn default_matrix() -> Vec<ChaosRow> {
    CHAOS_FAULT_RATES
        .iter()
        .map(|&rate| measure(8, 4, 6, rate))
        .collect()
}

/// Text rendering for the `tables` binary.
pub fn chaos_throughput_text() -> String {
    render_text(&default_matrix())
}

fn render_text(rows: &[ChaosRow]) -> String {
    let clean = rows.first().map_or(1.0, ChaosRow::perms_per_sec);
    let mut out = String::new();
    writeln!(
        out,
        "Chaos throughput — block requests through a fault-injecting proxy, retrying clients"
    )
    .unwrap();
    writeln!(
        out,
        "{:>3}  {:>8}  {:>7}  {:>6}  {:>7}  {:>8}  {:>10}  {:>16}  {:>9}",
        "n", "clients", "rounds", "rate", "faults", "retries", "words", "perm/s", "vs clean"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "{:>3}  {:>8}  {:>7}  {:>5.0}%  {:>7}  {:>8}  {:>10}  {:>16}  {:>8.2}x",
            r.n,
            r.clients,
            r.rounds,
            r.fault_rate * 100.0,
            r.faults,
            r.retries,
            with_commas(r.words),
            with_commas(r.perms_per_sec() as u64),
            r.ratio_vs(clean),
        )
        .unwrap();
    }
    writeln!(
        out,
        "(kill mix rotates reset / truncate / corrupt-length; every fault costs one replayed \
         attempt on a fresh connection)"
    )
    .unwrap();
    out
}

/// JSON rendering (the `BENCH_chaos.json` CI artifact). Hand-rolled —
/// the workspace carries no serde — but stable-keyed and
/// machine-parsable.
pub fn chaos_throughput_json() -> String {
    render_json(&default_matrix())
}

fn render_json(rows: &[ChaosRow]) -> String {
    let clean = rows.first().map_or(1.0, ChaosRow::perms_per_sec);
    let cores = std::thread::available_parallelism().map_or(0, |c| c.get());
    let mut out = format!(
        "{{\n  \"bench\": \"chaos_throughput\",\n  \"sweep\": \"full block table through a \
         fault-injecting proxy at 0/1/5% attempt kill rates\",\n  \"hardware_threads\": \
         {cores},\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            out,
            "    {{\"n\": {}, \"clients\": {}, \"rounds\": {}, \"fault_rate\": {:.2}, \
             \"faults\": {}, \"retries\": {}, \"words\": {}, \"ns_total\": {}, \
             \"perms_per_sec\": {:.0}, \"ratio_vs_clean\": {:.3}}}{sep}",
            r.n,
            r.clients,
            r.rounds,
            r.fault_rate,
            r.faults,
            r.retries,
            r.words,
            r.ns_total,
            r.perms_per_sec(),
            r.ratio_vs(clean),
        )
        .unwrap();
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulted_cell_still_delivers_every_word() {
        // 2 clients * 2 rounds at 25% => exactly one killed attempt;
        // measure() itself asserts full delivery and no leaked
        // threads.
        let row = measure(5, 2, 2, 0.25);
        assert_eq!(row.words, 480);
        assert_eq!(row.faults, 1, "the one scheduled fault must fire");
        assert!(row.retries >= 1, "the killed attempt must be replayed");
        assert!(row.perms_per_sec() > 0.0);
    }

    #[test]
    fn clean_cell_needs_no_retries() {
        let row = measure(4, 2, 1, 0.0);
        assert_eq!(row.words, 48);
        assert_eq!(row.faults, 0);
        assert_eq!(row.retries, 0);
    }

    #[test]
    fn json_record_carries_the_stable_keys() {
        let rows = vec![
            ChaosRow {
                n: 8,
                clients: 4,
                rounds: 6,
                fault_rate: 0.0,
                faults: 0,
                retries: 0,
                words: 967_680,
                ns_total: 1_000_000_000,
            },
            ChaosRow {
                n: 8,
                clients: 4,
                rounds: 6,
                fault_rate: 0.05,
                faults: 2,
                retries: 2,
                words: 967_680,
                ns_total: 2_000_000_000,
            },
        ];
        let json = render_json(&rows);
        for key in [
            "\"bench\": \"chaos_throughput\"",
            "\"fault_rate\": 0.05",
            "\"faults\": 2",
            "\"retries\": 2",
            "\"words\": 967680",
            "\"ratio_vs_clean\": 0.500",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn text_table_reports_the_clean_ratio() {
        let rows = vec![
            ChaosRow {
                n: 8,
                clients: 4,
                rounds: 6,
                fault_rate: 0.0,
                faults: 0,
                retries: 0,
                words: 967_680,
                ns_total: 1_000_000_000,
            },
            ChaosRow {
                n: 8,
                clients: 4,
                rounds: 6,
                fault_rate: 0.01,
                faults: 1,
                retries: 1,
                words: 967_680,
                ns_total: 1_250_000_000,
            },
        ];
        let text = render_text(&rows);
        assert!(text.contains("vs clean"), "{text}");
        assert!(text.contains("0.80x"), "{text}");
    }

    /// The PR's acceptance floor: a 5% attempt-kill rate sustains at
    /// least half the clean-through-proxy rate — recovery must cost
    /// retried work, not collapse. Ignored by default — throughput is
    /// a release-build property — run with
    /// `cargo test --release -p hwperm-bench -- --ignored`.
    #[test]
    #[ignore = "release-mode chaos floor (run with --ignored)"]
    fn five_percent_faults_stay_within_2x_of_clean_rate() {
        if cfg!(debug_assertions) {
            eprintln!("skipping chaos floor: debug build (throughput is a release property)");
            return;
        }
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        if cores < 4 {
            eprintln!("skipping chaos floor: {cores} hardware thread(s) (needs >= 4)");
            return;
        }
        let clean = measure(8, 4, 6, 0.0);
        let faulted = measure(8, 4, 6, 0.05);
        let ratio = faulted.ratio_vs(clean.perms_per_sec());
        assert!(
            ratio >= 0.5,
            "5% fault rate only sustains {ratio:.3}x of the clean rate (floor 0.5x): \
             {faulted:?}, clean {:.0} perm/s",
            clean.perms_per_sec()
        );
    }
}
