//! Throughput of the single-stuck-at fault campaign engine.
//!
//! `simbench` times fault-free simulation and `threadbench` times the
//! sharded golden sweep; this module times the third workload the tape
//! was built for — exhaustive fault campaigns. Each cell runs the full
//! single-stuck-at universe of the Fig. 1 converter against the
//! block-decoded oracle with the permutation-validity predicate
//! enabled (the configuration `hwperm faults` ships), comparing the
//! scalar one-fault-at-a-time reference engine against the 64-lane
//! one-fault-per-lane batched engine at 1 and 8 workers.
//!
//! Rendered as a text table by the `tables` binary (`faultbench`) and
//! as a machine-readable record (`faultbench-json`) that CI archives
//! as `BENCH_faults.json` next to the other bench artifacts.

use crate::with_commas;
use hwperm_circuits::{converter_netlist, ConverterOptions};
use hwperm_perm::packed_is_permutation_u64;
use hwperm_verify::{
    expected_permutation_words, single_stuck_at_universe, stuck_at_campaign,
    stuck_at_campaign_scalar, CampaignReport,
};
use std::fmt::Write as _;
use std::time::Instant;

/// One (n, engine) cell of the campaign-throughput matrix.
#[derive(Debug, Clone)]
pub struct FaultBenchRow {
    /// Permutation size.
    pub n: usize,
    /// Faults in the single-stuck-at universe (`2 × nets`).
    pub faults: usize,
    /// Indices swept per fault (`n!`).
    pub indices: usize,
    /// Campaign engine: `"scalar"` or `"batched"`.
    pub engine: &'static str,
    /// Worker threads (always 1 for the scalar engine).
    pub workers: usize,
    /// Best-of-rounds time of one full campaign, in nanoseconds.
    pub ns_per_campaign: u128,
    /// Fault coverage the campaign reported, in percent.
    pub coverage_percent: f64,
}

impl FaultBenchRow {
    /// Speedup of this row over a baseline campaign time (normally the
    /// same n's scalar row).
    pub fn speedup_over(&self, baseline_ns: u128) -> f64 {
        baseline_ns as f64 / self.ns_per_campaign.max(1) as f64
    }

    /// Fault verdicts settled per second.
    pub fn faults_per_sec(&self) -> f64 {
        self.faults as f64 * 1e9 / self.ns_per_campaign.max(1) as f64
    }
}

/// Runs one converter campaign with the engine named by
/// (`batched`, `workers`) and returns the report.
fn run_campaign(n: usize, batched: bool, workers: usize) -> CampaignReport {
    let netlist = converter_netlist(n, ConverterOptions::default());
    let expected = expected_permutation_words(n);
    let valid = move |word: u64| packed_is_permutation_u64(n, word);
    if batched {
        stuck_at_campaign(&netlist, "index", "perm", &expected, Some(&valid), workers)
    } else {
        stuck_at_campaign_scalar(&netlist, "index", "perm", &expected, Some(&valid))
    }
}

/// Measures one cell: best of `rounds` full campaigns. The measured
/// region includes tape compilation (a campaign is a cold-start
/// workload, unlike the steady-state sweeps simbench times), but the
/// oracle table is built once outside it.
pub fn measure(n: usize, batched: bool, workers: usize, rounds: usize) -> FaultBenchRow {
    assert!(rounds > 0);
    let netlist = converter_netlist(n, ConverterOptions::default());
    let faults = single_stuck_at_universe(&netlist).len();
    let expected = expected_permutation_words(n);
    let mut ns_per_campaign = u128::MAX;
    let mut coverage_percent = 0.0;
    for _ in 0..rounds {
        let t = Instant::now();
        let report = run_campaign(n, batched, workers);
        ns_per_campaign = ns_per_campaign.min(t.elapsed().as_nanos());
        coverage_percent = report.coverage_percent();
    }
    FaultBenchRow {
        n,
        faults,
        indices: expected.len(),
        engine: if batched { "batched" } else { "scalar" },
        workers,
        ns_per_campaign,
        coverage_percent,
    }
}

/// Default measurement matrix: n = 4, 5, 6, each with the scalar
/// reference engine and the batched engine at 1 and 8 workers.
pub fn default_matrix() -> Vec<FaultBenchRow> {
    let mut rows = Vec::new();
    for n in [4usize, 5, 6] {
        rows.push(measure(n, false, 1, 3));
        for workers in [1usize, 8] {
            rows.push(measure(n, true, workers, 3));
        }
    }
    rows
}

/// Campaign time of the `n`'s scalar row, the per-n speedup baseline.
fn baseline_ns(rows: &[FaultBenchRow], n: usize) -> u128 {
    rows.iter()
        .find(|r| r.n == n && r.engine == "scalar")
        .map(|r| r.ns_per_campaign)
        .expect("matrix carries a scalar baseline per n")
}

/// Text rendering for the `tables` binary.
pub fn fault_campaign_text() -> String {
    render_text(&default_matrix())
}

fn render_text(rows: &[FaultBenchRow]) -> String {
    let cores = std::thread::available_parallelism().map_or(0, |c| c.get());
    let mut out = String::new();
    writeln!(
        out,
        "Fault-campaign throughput — full single-stuck-at universe of the Fig. 1 converter"
    )
    .unwrap();
    writeln!(
        out,
        "{:>3}  {:>7}  {:>7}  {:>8}  {:>8}  {:>14}  {:>8}  {:>12}  {:>9}",
        "n",
        "faults",
        "indices",
        "engine",
        "workers",
        "ns/campaign",
        "speedup",
        "faults/s",
        "coverage"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "{:>3}  {:>7}  {:>7}  {:>8}  {:>8}  {:>14}  {:>7.2}x  {:>12}  {:>8.2}%",
            r.n,
            r.faults,
            r.indices,
            r.engine,
            r.workers,
            with_commas(r.ns_per_campaign as u64),
            r.speedup_over(baseline_ns(rows, r.n)),
            with_commas(r.faults_per_sec() as u64),
            r.coverage_percent,
        )
        .unwrap();
    }
    writeln!(
        out,
        "(speedup vs the same n's scalar campaign, best-of-3 rounds; host reports {cores} hardware threads)"
    )
    .unwrap();
    out
}

/// JSON rendering (the `BENCH_faults.json` CI artifact). Hand-rolled —
/// the workspace carries no serde — but stable-keyed and
/// machine-parsable.
pub fn fault_campaign_json() -> String {
    render_json(&default_matrix())
}

fn render_json(rows: &[FaultBenchRow]) -> String {
    let cores = std::thread::available_parallelism().map_or(0, |c| c.get());
    let mut out = format!(
        "{{\n  \"bench\": \"fault_campaign\",\n  \"sweep\": \"single-stuck-at universe of the converter vs the block-decoded oracle\",\n  \"hardware_threads\": {cores},\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            out,
            "    {{\"n\": {}, \"faults\": {}, \"indices\": {}, \"engine\": \"{}\", \
             \"workers\": {}, \"ns_per_campaign\": {}, \"speedup_vs_scalar\": {:.2}, \
             \"faults_per_sec\": {:.0}, \"coverage_percent\": {:.2}}}{sep}",
            r.n,
            r.faults,
            r.indices,
            r.engine,
            r.workers,
            r.ns_per_campaign,
            r.speedup_over(baseline_ns(rows, r.n)),
            r.faults_per_sec(),
            r.coverage_percent,
        )
        .unwrap();
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_well_formed() {
        let row = measure(4, true, 2, 1);
        assert_eq!(row.n, 4);
        assert_eq!(row.indices, 24);
        assert_eq!(row.engine, "batched");
        assert_eq!(row.workers, 2);
        assert!(row.faults > 0);
        assert!(row.ns_per_campaign > 0);
        assert!(row.faults_per_sec() > 0.0);
        assert!(row.coverage_percent > 90.0);
    }

    #[test]
    fn scalar_and_batched_cells_report_the_same_coverage() {
        // The measured region *is* the campaign: both engines must land
        // on the identical coverage number for the same netlist.
        let scalar = measure(4, false, 1, 1);
        let batched = measure(4, true, 1, 1);
        assert_eq!(scalar.coverage_percent, batched.coverage_percent);
        assert_eq!(scalar.faults, batched.faults);
    }

    #[test]
    fn json_record_carries_the_stable_keys() {
        let mk = |engine: &'static str, workers: usize, ns: u128| FaultBenchRow {
            n: 5,
            faults: 600,
            indices: 120,
            engine,
            workers,
            ns_per_campaign: ns,
            coverage_percent: 97.5,
        };
        let rows = vec![mk("scalar", 1, 40_000), mk("batched", 8, 2_000)];
        let json = render_json(&rows);
        for key in [
            "\"bench\": \"fault_campaign\"",
            "\"hardware_threads\":",
            "\"n\": 5",
            "\"engine\": \"batched\"",
            "\"ns_per_campaign\": 2000",
            "\"speedup_vs_scalar\": 20.00",
            "\"faults_per_sec\": 300000000",
            "\"coverage_percent\": 97.50",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn text_table_reports_per_n_speedups() {
        let mk = |n: usize, engine: &'static str, workers: usize, ns: u128| FaultBenchRow {
            n,
            faults: 400,
            indices: 24,
            engine,
            workers,
            ns_per_campaign: ns,
            coverage_percent: 96.0,
        };
        let rows = vec![
            mk(4, "scalar", 1, 64_000),
            mk(4, "batched", 1, 4_000),
            mk(5, "scalar", 1, 900_000),
            mk(5, "batched", 8, 30_000),
        ];
        let text = render_text(&rows);
        assert!(text.contains("1.00x"), "{text}");
        assert!(text.contains("16.00x"), "{text}");
        assert!(text.contains("30.00x"), "{text}");
        assert!(text.contains("96.00%"), "{text}");
    }

    /// The PR's acceptance floor: the 64-lane one-fault-per-lane
    /// batched engine is ≥10× faster than the scalar reference on the
    /// n = 6 converter campaign, already at one worker (pure lane
    /// parallelism, no multi-core dependence). n = 6 rather than 5
    /// because each timed campaign is cold-start (tape compiled
    /// inside), and the smaller sweep doesn't amortize that fixed cost
    /// past 10× on slow hosts. Ignored by default — it needs an
    /// optimized build — run it with
    /// `cargo test --release -p hwperm-bench -- --ignored`.
    #[test]
    #[ignore = "release-mode throughput floor (run with --ignored)"]
    fn n6_batched_campaign_meets_the_10x_floor() {
        if cfg!(debug_assertions) {
            eprintln!("skipping campaign floor: debug build (lane speedup is a release property)");
            return;
        }
        let scalar = measure(6, false, 1, 3);
        let batched = measure(6, true, 1, 3);
        let speedup = batched.speedup_over(scalar.ns_per_campaign);
        assert!(
            speedup >= 10.0,
            "n=6 batched campaign only {speedup:.2}x faster than scalar (floor 10x): \
             scalar {scalar:?}, batched {batched:?}"
        );
    }
}
