//! Wide-word speedup of the exhaustive verification sweep.
//!
//! `simbench` measures what 64 lanes buy over scalar simulation and
//! `threadbench` measures worker-thread scaling; this module measures
//! the third axis the wide `SimWord` types open up — lane width. Each
//! cell sweeps the full `[0, n!)` converter differential over one
//! compiled tape at a chosen lane width (64 = `u64`, 256 = `W256`,
//! 512 = `W512`), worker count, and fusion setting, plus a scalar
//! baseline row per n (width 1). The methodology mirrors the sibling
//! benches: tape compiled and expectation table transposed outside the
//! timed region, `repeats` sweeps per round so spawn cost amortizes,
//! best-of rounds.
//!
//! Rendered as a text table by the `tables` binary (`widebench`) and as
//! a machine-readable record (`widebench-json`) that CI archives as
//! `BENCH_wide.json`.
//!
//! Width scaling is bounded by the host vector units: on a narrow or
//! single-core container the wide rows measure little over `u64`. The
//! ≥3× acceptance floor is therefore asserted by an `#[ignore]`d
//! release-mode test that first checks
//! `std::thread::available_parallelism()`.

use crate::with_commas;
use hwperm_circuits::{converter_netlist, ConverterOptions};
use hwperm_logic::{Netlist, SimProgram, SimWord, Simulator, W256, W512};
use hwperm_verify::{
    exhaustive_check_parallel_repeat, exhaustive_check_scalar_with, expected_permutation_words,
    WideExpectation,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Lane widths the matrix sweeps (the scalar baseline rows use 1).
pub const WIDTHS: [usize; 3] = [64, 256, 512];

/// Worker counts the matrix sweeps per width.
pub const WORKER_COUNTS: [usize; 2] = [1, 8];

/// One (n, width, workers, fused) cell of the wide-word matrix.
#[derive(Debug, Clone)]
pub struct WideRow {
    /// Permutation size.
    pub n: usize,
    /// Indices swept per pass (`n!`).
    pub indices: usize,
    /// Gate count of the swept netlist.
    pub gates: usize,
    /// Lanes per pass: 1 (scalar), 64, 256 or 512.
    pub width: usize,
    /// Worker threads the sweep was sharded over (1 for scalar).
    pub workers: usize,
    /// Whether the tape was compiled with opcode fusion.
    pub fused: bool,
    /// Tape ops actually executed per pass (shorter when fused).
    pub tape_ops: usize,
    /// Best-of-rounds time of one full sweep, in nanoseconds.
    pub ns_per_sweep: u128,
}

impl WideRow {
    /// Speedup of this row over a baseline sweep time (normally the
    /// same n's scalar row).
    pub fn speedup_over(&self, baseline_ns: u128) -> f64 {
        baseline_ns as f64 / self.ns_per_sweep.max(1) as f64
    }

    /// Permutations verified per second.
    pub fn perms_per_sec(&self) -> f64 {
        self.indices as f64 * 1e9 / self.ns_per_sweep.max(1) as f64
    }
}

fn converter(n: usize) -> (Netlist, Vec<u64>) {
    (
        converter_netlist(n, ConverterOptions::default()),
        expected_permutation_words(n),
    )
}

/// Measures the scalar (one index per tape walk) baseline row for `n`.
pub fn measure_scalar(n: usize, repeats: usize, rounds: usize) -> WideRow {
    assert!(repeats > 0 && rounds > 0);
    let (netlist, expected) = converter(n);
    let gates = netlist.len();
    let mut sim = Simulator::new(netlist);
    let tape_ops = sim.program().stats().ops;
    let mut ns_per_sweep = u128::MAX;
    for _ in 0..rounds {
        let t = Instant::now();
        for _ in 0..repeats {
            exhaustive_check_scalar_with(&mut sim, "index", "perm", &expected)
                .expect("pristine converter passes the scalar sweep");
        }
        ns_per_sweep = ns_per_sweep.min(t.elapsed().as_nanos() / repeats as u128);
    }
    WideRow {
        n,
        indices: expected.len(),
        gates,
        width: 1,
        workers: 1,
        fused: false,
        tape_ops,
        ns_per_sweep,
    }
}

fn measure_word<W: SimWord + Send + Sync>(
    n: usize,
    workers: usize,
    fused: bool,
    repeats: usize,
    rounds: usize,
) -> WideRow {
    assert!(repeats > 0 && rounds > 0);
    let (netlist, expected) = converter(n);
    let gates = netlist.len();
    let in_bits = netlist.input_port("index").expect("index port").nets.len();
    let out_bits = netlist.output_port("perm").expect("perm port").nets.len();
    let table = WideExpectation::<W>::new(in_bits, out_bits, &expected);
    let program: Arc<SimProgram> = if fused {
        SimProgram::compile_fused_shared(netlist)
    } else {
        SimProgram::compile_shared(netlist)
    };
    let tape_ops = program.stats().ops;
    let mut ns_per_sweep = u128::MAX;
    for _ in 0..rounds {
        let t = Instant::now();
        exhaustive_check_parallel_repeat(&program, "index", "perm", &table, workers, repeats)
            .expect("pristine converter passes the wide sweep");
        ns_per_sweep = ns_per_sweep.min(t.elapsed().as_nanos() / repeats as u128);
    }
    WideRow {
        n,
        indices: expected.len(),
        gates,
        width: W::LANES,
        workers,
        fused,
        tape_ops,
        ns_per_sweep,
    }
}

/// Measures one (n, width, workers, fused) cell; `width` must be one
/// of [`WIDTHS`].
pub fn measure(
    n: usize,
    width: usize,
    workers: usize,
    fused: bool,
    repeats: usize,
    rounds: usize,
) -> WideRow {
    match width {
        64 => measure_word::<u64>(n, workers, fused, repeats, rounds),
        256 => measure_word::<W256>(n, workers, fused, repeats, rounds),
        512 => measure_word::<W512>(n, workers, fused, repeats, rounds),
        other => panic!("unsupported lane width {other} (widths: 64 | 256 | 512)"),
    }
}

/// Default measurement matrix: a scalar baseline per n = 5, 6, 7, then
/// every width × workers × fusion cell, with repeat counts scaled to
/// keep each cell's total work comparable.
pub fn default_matrix() -> Vec<WideRow> {
    let mut rows = Vec::new();
    for (n, repeats) in [(5usize, 200usize), (6, 40), (7, 6)] {
        rows.push(measure_scalar(n, repeats.div_ceil(8), 2));
        for width in WIDTHS {
            for workers in WORKER_COUNTS {
                for fused in [false, true] {
                    rows.push(measure(n, width, workers, fused, repeats, 2));
                }
            }
        }
    }
    rows
}

/// Sweep time of the `n`'s scalar row, the per-n speedup baseline.
fn baseline_ns(rows: &[WideRow], n: usize) -> u128 {
    rows.iter()
        .find(|r| r.n == n && r.width == 1)
        .map(|r| r.ns_per_sweep)
        .expect("matrix carries a scalar baseline per n")
}

/// Text rendering for the `tables` binary.
pub fn wide_word_text() -> String {
    render_text(&default_matrix())
}

fn render_text(rows: &[WideRow]) -> String {
    let cores = std::thread::available_parallelism().map_or(0, |c| c.get());
    let mut out = String::new();
    writeln!(
        out,
        "Wide-word simulation — exhaustive [0, n!) sweep across lane width, workers and fusion"
    )
    .unwrap();
    writeln!(
        out,
        "{:>3}  {:>7}  {:>6}  {:>5}  {:>7}  {:>5}  {:>8}  {:>14}  {:>8}  {:>16}",
        "n",
        "indices",
        "gates",
        "width",
        "workers",
        "fused",
        "tape ops",
        "ns/sweep",
        "speedup",
        "perm/s"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "{:>3}  {:>7}  {:>6}  {:>5}  {:>7}  {:>5}  {:>8}  {:>14}  {:>7.2}x  {:>16}",
            r.n,
            r.indices,
            r.gates,
            r.width,
            r.workers,
            if r.fused { "yes" } else { "no" },
            r.tape_ops,
            with_commas(r.ns_per_sweep as u64),
            r.speedup_over(baseline_ns(rows, r.n)),
            with_commas(r.perms_per_sec() as u64),
        )
        .unwrap();
    }
    writeln!(
        out,
        "(speedup vs the same n's scalar sweep, best-of-2 rounds; host reports {cores} hardware threads)"
    )
    .unwrap();
    out
}

/// JSON rendering (the `BENCH_wide.json` CI artifact). Hand-rolled —
/// the workspace carries no serde — but stable-keyed and
/// machine-parsable.
pub fn wide_word_json() -> String {
    render_json(&default_matrix())
}

fn render_json(rows: &[WideRow]) -> String {
    let cores = std::thread::available_parallelism().map_or(0, |c| c.get());
    let mut out = format!(
        "{{\n  \"bench\": \"wide_word\",\n  \"sweep\": \"exhaustive converter differential, indices 0..n!\",\n  \"hardware_threads\": {cores},\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            out,
            "    {{\"n\": {}, \"indices\": {}, \"gates\": {}, \"width\": {}, \"workers\": {}, \
             \"fused\": {}, \"tape_ops\": {}, \"ns_per_sweep\": {}, \
             \"speedup_vs_scalar\": {:.2}, \"perms_per_sec\": {:.0}}}{sep}",
            r.n,
            r.indices,
            r.gates,
            r.width,
            r.workers,
            r.fused,
            r.tape_ops,
            r.ns_per_sweep,
            r.speedup_over(baseline_ns(rows, r.n)),
            r.perms_per_sec(),
        )
        .unwrap();
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_well_formed_at_every_width() {
        let scalar = measure_scalar(4, 2, 1);
        assert_eq!((scalar.width, scalar.workers), (1, 1));
        assert_eq!(scalar.indices, 24);
        for width in WIDTHS {
            let row = measure(4, width, 2, true, 2, 1);
            assert_eq!(row.n, 4);
            assert_eq!(row.indices, 24);
            assert_eq!(row.width, width);
            assert_eq!(row.workers, 2);
            assert!(row.fused);
            assert!(row.gates > 0);
            assert!(row.ns_per_sweep > 0);
            assert!(row.perms_per_sec() > 0.0);
        }
    }

    #[test]
    fn fused_rows_execute_a_shorter_tape() {
        // The measured region *is* the verification (a cell only
        // renders if its sweep passed), and the fused cell must
        // actually run fewer tape ops than the canonical one.
        let canonical = measure(4, 256, 1, false, 2, 1);
        let fused = measure(4, 256, 1, true, 2, 1);
        assert!(
            fused.tape_ops < canonical.tape_ops,
            "fusion saved nothing: {} vs {}",
            fused.tape_ops,
            canonical.tape_ops
        );
    }

    #[test]
    fn json_record_carries_the_stable_keys() {
        let mk = |width: usize, fused: bool, ns: u128| WideRow {
            n: 6,
            indices: 720,
            gates: 300,
            width,
            workers: 1,
            fused,
            tape_ops: if fused { 250 } else { 300 },
            ns_per_sweep: ns,
        };
        let rows = vec![
            WideRow {
                width: 1,
                ..mk(1, false, 64000)
            },
            mk(64, false, 1000),
            mk(512, true, 125),
        ];
        let json = render_json(&rows);
        for key in [
            "\"bench\": \"wide_word\"",
            "\"hardware_threads\":",
            "\"width\": 512",
            "\"fused\": true",
            "\"tape_ops\": 250",
            "\"ns_per_sweep\": 125",
            "\"speedup_vs_scalar\": 512.00",
            "\"perms_per_sec\": 5760000000",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn text_table_reports_per_n_speedups() {
        let mk = |width: usize, ns: u128| WideRow {
            n: 5,
            indices: 120,
            gates: 200,
            width,
            workers: 1,
            fused: width > 1,
            tape_ops: 180,
            ns_per_sweep: ns,
        };
        let rows = vec![mk(1, 8000), mk(64, 2000), mk(256, 1000), mk(512, 500)];
        let text = render_text(&rows);
        assert!(text.contains("1.00x"), "{text}");
        assert!(text.contains("4.00x"), "{text}");
        assert!(text.contains("8.00x"), "{text}");
        assert!(text.contains("16.00x"), "{text}");
        assert!(text.lines().count() >= 7);
    }

    /// The PR's acceptance floor: a wide sweep (256 or 512 lanes) at
    /// least 3× faster than the 64-lane sweep for n = 6 on one worker.
    /// Ignored by default — it needs an optimized build *and* real
    /// vector hardware — run it with
    /// `cargo test --release -p hwperm-bench -- --ignored`.
    #[test]
    #[ignore = "release-mode width floor; needs a multi-core vector host (run with --ignored)"]
    fn wide_sweep_meets_the_3x_floor_over_u64() {
        if cfg!(debug_assertions) {
            eprintln!(
                "skipping width floor: debug build (autovectorization is a release property)"
            );
            return;
        }
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        if cores < 4 {
            eprintln!("skipping width floor: host reports only {cores} hardware thread(s)");
            return;
        }
        let base = measure(6, 64, 1, true, 40, 3);
        let wide = [
            measure(6, 256, 1, true, 40, 3),
            measure(6, 512, 1, true, 40, 3),
        ];
        let speedup = wide
            .iter()
            .map(|r| r.speedup_over(base.ns_per_sweep))
            .fold(0.0f64, f64::max);
        assert!(
            speedup >= 3.0,
            "n=6 wide sweep only {speedup:.2}x faster than 64 lanes (floor 3x) on {cores} threads: \
             base {base:?}, wide {wide:?}"
        );
    }
}
