//! Oracle-generation throughput: how fast the software side can
//! produce the expectation tables the exhaustive sweeps compare
//! against.
//!
//! `simbench` and `threadbench` measure the *simulation* side of the
//! differential checks; this module measures the other half — the
//! packed-word table `[0, n!)` itself — across three generation
//! strategies:
//!
//! - `naive`: one full factoradic decode + pack per index (what
//!   `expected_permutation_words` did before the block engine);
//! - `block`: the [`hwperm_factoradic::BlockDecoder`] — one true
//!   unranking per table, in-place lexicographic successor steps for
//!   the rest;
//! - `par-K`: the block engine sharded over `K` worker threads
//!   ([`expected_permutation_words_parallel`]), byte-identical output.
//!
//! Rendered as a text table by the `tables` binary (`oraclebench`) and
//! as a machine-readable record (`oraclebench-json`) that CI archives
//! as `BENCH_oracle.json` next to `BENCH_sim.json` and
//! `BENCH_parallel.json`.

use crate::with_commas;
use hwperm_factoradic::unrank_u64;
use hwperm_verify::{expected_permutation_words, expected_permutation_words_parallel};
use std::fmt::Write as _;
use std::time::Instant;

/// Worker counts the sharded generation column sweeps.
pub const ORACLE_WORKER_COUNTS: [usize; 3] = [2, 4, 8];

/// One (n, method) cell of the oracle-generation matrix.
#[derive(Debug, Clone)]
pub struct OracleRow {
    /// Permutation size.
    pub n: usize,
    /// Table entries generated (`n!`).
    pub indices: usize,
    /// Generation strategy: `"naive"`, `"block"`, or `"par-K"`.
    pub method: String,
    /// Worker threads (1 for the single-threaded methods).
    pub workers: usize,
    /// Best-of-rounds time to generate the full table, in nanoseconds.
    pub ns_per_table: u128,
}

impl OracleRow {
    /// Speedup of this row over a baseline table time (normally the
    /// same n's naive row).
    pub fn speedup_over(&self, baseline_ns: u128) -> f64 {
        baseline_ns as f64 / self.ns_per_table.max(1) as f64
    }

    /// Permutations generated per second.
    pub fn perms_per_sec(&self) -> f64 {
        self.indices as f64 * 1e9 / self.ns_per_table.max(1) as f64
    }
}

/// The pre-block-engine path: one factoradic decode, one `Permutation`
/// allocation, and one pack per index. Kept callable so the matrix
/// always carries its own baseline.
pub fn naive_table(n: usize) -> Vec<u64> {
    let total: u64 = (1..=n as u64).product();
    (0..total)
        .map(|i| {
            unrank_u64(n, i)
                .pack()
                .to_u64()
                .expect("packed width <= 64 for n <= 16")
        })
        .collect()
}

fn time_best_of(rounds: usize, mut f: impl FnMut() -> Vec<u64>) -> u128 {
    assert!(rounds > 0);
    let mut best = u128::MAX;
    for _ in 0..rounds {
        let t = Instant::now();
        let table = f();
        best = best.min(t.elapsed().as_nanos());
        std::hint::black_box(table);
    }
    best
}

/// Measures one (n, method) cell, best of `rounds` full-table builds.
/// `workers == 1` selects the method by name (`"naive"` or `"block"`);
/// `workers > 1` measures the sharded path.
pub fn measure(n: usize, method: &str, workers: usize, rounds: usize) -> OracleRow {
    let ns_per_table = match (method, workers) {
        ("naive", 1) => time_best_of(rounds, || naive_table(n)),
        ("block", 1) => time_best_of(rounds, || expected_permutation_words(n)),
        ("par", w) if w > 1 => time_best_of(rounds, || expected_permutation_words_parallel(n, w)),
        _ => panic!("unknown oracle method {method:?} with {workers} workers"),
    };
    OracleRow {
        n,
        indices: (1..=n as u64).product::<u64>() as usize,
        method: if workers > 1 {
            format!("par-{workers}")
        } else {
            method.to_string()
        },
        workers,
        ns_per_table,
    }
}

/// Default measurement matrix: n = 6..9, naive vs block vs sharded
/// block at [`ORACLE_WORKER_COUNTS`].
pub fn default_matrix() -> Vec<OracleRow> {
    let mut rows = Vec::new();
    for n in 6usize..=9 {
        // Small tables finish in microseconds; more rounds stabilize
        // the best-of.
        let rounds = if n <= 7 { 9 } else { 3 };
        rows.push(measure(n, "naive", 1, rounds));
        rows.push(measure(n, "block", 1, rounds));
        for workers in ORACLE_WORKER_COUNTS {
            rows.push(measure(n, "par", workers, rounds));
        }
    }
    rows
}

/// Table time of the `n`'s naive row, the per-n speedup baseline.
fn baseline_ns(rows: &[OracleRow], n: usize) -> u128 {
    rows.iter()
        .find(|r| r.n == n && r.method == "naive")
        .map(|r| r.ns_per_table)
        .expect("matrix carries a naive baseline per n")
}

/// Text rendering for the `tables` binary.
pub fn oracle_throughput_text() -> String {
    render_text(&default_matrix())
}

fn render_text(rows: &[OracleRow]) -> String {
    let cores = std::thread::available_parallelism().map_or(0, |c| c.get());
    let mut out = String::new();
    writeln!(
        out,
        "Oracle throughput — packed expectation table [0, n!), per-index unranking vs block decoding"
    )
    .unwrap();
    writeln!(
        out,
        "{:>3}  {:>8}  {:>7}  {:>14}  {:>8}  {:>16}",
        "n", "indices", "method", "ns/table", "speedup", "perm/s"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "{:>3}  {:>8}  {:>7}  {:>14}  {:>7.2}x  {:>16}",
            r.n,
            r.indices,
            r.method,
            with_commas(r.ns_per_table as u64),
            r.speedup_over(baseline_ns(rows, r.n)),
            with_commas(r.perms_per_sec() as u64),
        )
        .unwrap();
    }
    writeln!(
        out,
        "(speedup vs the same n's naive per-index row, best-of-rounds; host reports {cores} hardware threads)"
    )
    .unwrap();
    out
}

/// JSON rendering (the `BENCH_oracle.json` CI artifact). Hand-rolled —
/// the workspace carries no serde — but stable-keyed and
/// machine-parsable.
pub fn oracle_throughput_json() -> String {
    render_json(&default_matrix())
}

fn render_json(rows: &[OracleRow]) -> String {
    let cores = std::thread::available_parallelism().map_or(0, |c| c.get());
    let mut out = format!(
        "{{\n  \"bench\": \"oracle_throughput\",\n  \"sweep\": \"packed expectation table generation, indices 0..n!\",\n  \"hardware_threads\": {cores},\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            out,
            "    {{\"n\": {}, \"indices\": {}, \"method\": \"{}\", \"workers\": {}, \
             \"ns_per_table\": {}, \"speedup_vs_naive\": {:.2}, \"perms_per_sec\": {:.0}}}{sep}",
            r.n,
            r.indices,
            r.method,
            r.workers,
            r.ns_per_table,
            r.speedup_over(baseline_ns(rows, r.n)),
            r.perms_per_sec(),
        )
        .unwrap();
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_well_formed() {
        let naive = measure(5, "naive", 1, 2);
        assert_eq!(naive.n, 5);
        assert_eq!(naive.indices, 120);
        assert_eq!(naive.method, "naive");
        assert!(naive.ns_per_table > 0);
        assert!(naive.perms_per_sec() > 0.0);
        let par = measure(5, "par", 2, 2);
        assert_eq!(par.method, "par-2");
        assert_eq!(par.workers, 2);
    }

    #[test]
    fn measured_methods_generate_identical_tables() {
        // The matrix times three paths; they must be the same table.
        let reference = naive_table(6);
        assert_eq!(expected_permutation_words(6), reference);
        for workers in ORACLE_WORKER_COUNTS {
            assert_eq!(expected_permutation_words_parallel(6, workers), reference);
        }
    }

    #[test]
    #[should_panic(expected = "unknown oracle method")]
    fn unknown_method_rejected() {
        measure(5, "quantum", 1, 1);
    }

    #[test]
    fn json_record_carries_the_stable_keys() {
        let rows = vec![
            OracleRow {
                n: 8,
                indices: 40320,
                method: "naive".into(),
                workers: 1,
                ns_per_table: 10_000,
            },
            OracleRow {
                n: 8,
                indices: 40320,
                method: "par-4".into(),
                workers: 4,
                ns_per_table: 1_000,
            },
        ];
        let json = render_json(&rows);
        for key in [
            "\"bench\": \"oracle_throughput\"",
            "\"hardware_threads\":",
            "\"n\": 8",
            "\"method\": \"naive\"",
            "\"method\": \"par-4\"",
            "\"workers\": 4",
            "\"ns_per_table\": 1000",
            "\"speedup_vs_naive\": 10.00",
            "\"perms_per_sec\": 40320000000",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn text_table_reports_per_n_speedups() {
        let mk = |method: &str, workers: usize, ns: u128| OracleRow {
            n: 7,
            indices: 5040,
            method: method.into(),
            workers,
            ns_per_table: ns,
        };
        let rows = vec![mk("naive", 1, 60_000), mk("block", 1, 6_000)];
        let text = render_text(&rows);
        assert!(text.contains("1.00x"), "{text}");
        assert!(text.contains("10.00x"), "{text}");
        assert!(text.lines().count() >= 5);
    }

    /// The PR's acceptance floor: block decoding ≥ 5× faster than
    /// per-index unranking for the n = 8 table in release mode. Ignored
    /// by default — amortization is a release-build property — run it
    /// with `cargo test --release -p hwperm-bench -- --ignored`.
    #[test]
    #[ignore = "release-mode throughput floor (run with --ignored)"]
    fn n8_block_decode_meets_the_5x_floor() {
        if cfg!(debug_assertions) {
            eprintln!(
                "skipping throughput floor: debug build (amortization is a release property)"
            );
            return;
        }
        let naive = measure(8, "naive", 1, 5);
        let block = measure(8, "block", 1, 5);
        let speedup = block.speedup_over(naive.ns_per_table);
        assert!(
            speedup >= 5.0,
            "n=8 block decode only {speedup:.2}x faster than per-index unranking (floor 5x): \
             naive {naive:?}, block {block:?}"
        );
    }
}
