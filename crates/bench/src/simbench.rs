//! Scalar-vs-batched netlist simulation throughput.
//!
//! The word-level `BatchSimulator` settles 64 exhaustive-check lanes
//! per netlist walk; this module measures what that buys on the Fig. 1
//! converter's full `[0, n!)` differential sweep. Both sides time the
//! steady state (simulator and expectation table prepared once, best-of
//! rounds), so the numbers are simulation throughput — not setup, not
//! software unranking.
//!
//! Rendered as a text table by the `tables` binary (`simbench`) and as
//! a machine-readable record (`simbench-json`) that CI archives as
//! `BENCH_sim.json`.

use crate::with_commas;
use hwperm_circuits::{converter_netlist, ConverterOptions};
use hwperm_logic::{BatchSimulator, Simulator};
use hwperm_verify::{
    exhaustive_check_batched_with, exhaustive_check_scalar_with, expected_permutation_words,
    BatchedExpectation,
};
use std::fmt::Write as _;
use std::time::Instant;

/// One n's worth of scalar-vs-batched measurement.
#[derive(Debug, Clone)]
pub struct SimThroughputRow {
    /// Permutation size.
    pub n: usize,
    /// Indices swept per pass (`n!`).
    pub indices: usize,
    /// Gate count of the swept netlist.
    pub gates: usize,
    /// Best-of-rounds time of one full scalar sweep, in nanoseconds.
    pub scalar_ns: u128,
    /// Best-of-rounds time of one full batched sweep, in nanoseconds.
    pub batched_ns: u128,
}

impl SimThroughputRow {
    /// Scalar-to-batched sweep-time ratio.
    pub fn speedup(&self) -> f64 {
        self.scalar_ns as f64 / self.batched_ns.max(1) as f64
    }

    /// Permutations verified per second on the scalar path.
    pub fn scalar_perms_per_sec(&self) -> f64 {
        self.indices as f64 * 1e9 / self.scalar_ns.max(1) as f64
    }

    /// Permutations verified per second on the batched path.
    pub fn batched_perms_per_sec(&self) -> f64 {
        self.indices as f64 * 1e9 / self.batched_ns.max(1) as f64
    }
}

/// Measures one n: `repeats` consecutive sweeps per timing round, best
/// of `rounds` rounds, both paths over identical expectation data.
pub fn measure(n: usize, repeats: usize, rounds: usize) -> SimThroughputRow {
    assert!(repeats > 0 && rounds > 0);
    let netlist = converter_netlist(n, ConverterOptions::default());
    let expected = expected_permutation_words(n);
    let in_bits = netlist.input_port("index").expect("index port").nets.len();
    let out_bits = netlist.output_port("perm").expect("perm port").nets.len();
    let table = BatchedExpectation::new(in_bits, out_bits, &expected);
    let mut scalar = Simulator::new(netlist.clone());
    let mut batched = BatchSimulator::new(netlist.clone());

    let mut scalar_ns = u128::MAX;
    let mut batched_ns = u128::MAX;
    for _ in 0..rounds {
        let t = Instant::now();
        for _ in 0..repeats {
            exhaustive_check_scalar_with(&mut scalar, "index", "perm", &expected)
                .expect("pristine converter passes the scalar sweep");
        }
        scalar_ns = scalar_ns.min(t.elapsed().as_nanos() / repeats as u128);

        let t = Instant::now();
        for _ in 0..repeats {
            exhaustive_check_batched_with(&mut batched, "index", "perm", &table)
                .expect("pristine converter passes the batched sweep");
        }
        batched_ns = batched_ns.min(t.elapsed().as_nanos() / repeats as u128);
    }
    SimThroughputRow {
        n,
        indices: expected.len(),
        gates: netlist.len(),
        scalar_ns,
        batched_ns,
    }
}

/// Default measurement set: n = 4, 5, 6 with repeat counts scaled to
/// keep each sweep's total work comparable.
pub fn default_rows() -> Vec<SimThroughputRow> {
    [(4usize, 2000usize), (5, 400), (6, 60)]
        .into_iter()
        .map(|(n, repeats)| measure(n, repeats, 3))
        .collect()
}

/// Text rendering for the `tables` binary.
pub fn sim_throughput_text() -> String {
    render_text(&default_rows())
}

fn render_text(rows: &[SimThroughputRow]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Word-level simulation — exhaustive [0, n!) differential sweep, scalar vs 64-lane batched"
    )
    .unwrap();
    writeln!(
        out,
        "{:>3}  {:>7}  {:>6}  {:>14}  {:>14}  {:>8}  {:>16}  {:>16}",
        "n",
        "indices",
        "gates",
        "scalar ns",
        "batched ns",
        "speedup",
        "scalar perm/s",
        "batched perm/s"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "{:>3}  {:>7}  {:>6}  {:>14}  {:>14}  {:>7.1}x  {:>16}  {:>16}",
            r.n,
            r.indices,
            r.gates,
            with_commas(r.scalar_ns as u64),
            with_commas(r.batched_ns as u64),
            r.speedup(),
            with_commas(r.scalar_perms_per_sec() as u64),
            with_commas(r.batched_perms_per_sec() as u64),
        )
        .unwrap();
    }
    writeln!(
        out,
        "(ns = one full sweep, best-of-3 rounds; the batched path settles 64 indices per netlist walk)"
    )
    .unwrap();
    out
}

/// JSON rendering (the `BENCH_sim.json` CI artifact). Hand-rolled —
/// the workspace carries no serde — but stable-keyed and
/// machine-parsable.
pub fn sim_throughput_json() -> String {
    render_json(&default_rows())
}

fn render_json(rows: &[SimThroughputRow]) -> String {
    let mut out = String::from("{\n  \"bench\": \"sim_throughput\",\n  \"sweep\": \"exhaustive converter differential, indices 0..n!\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            out,
            "    {{\"n\": {}, \"indices\": {}, \"gates\": {}, \"scalar_ns_per_sweep\": {}, \
             \"batched_ns_per_sweep\": {}, \"speedup\": {:.2}, \"scalar_perms_per_sec\": {:.0}, \
             \"batched_perms_per_sec\": {:.0}}}{sep}",
            r.n,
            r.indices,
            r.gates,
            r.scalar_ns,
            r.batched_ns,
            r.speedup(),
            r.scalar_perms_per_sec(),
            r.batched_perms_per_sec(),
        )
        .unwrap();
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n4_batched_sweep_meets_the_speedup_bar() {
        // The PR's acceptance criterion: the batched exhaustive n = 4
        // converter check beats the scalar path by >= 20x. Asserted at
        // full strength under the release profile (what the bench job
        // runs); the unoptimized dev profile keeps a conservative floor
        // so `cargo test` still guards against path regressions.
        let row = measure(4, 400, 4);
        let bar = if cfg!(debug_assertions) { 8.0 } else { 20.0 };
        assert!(
            row.speedup() >= bar,
            "n=4 batched sweep only {:.1}x faster than scalar (bar {bar}x): {row:?}",
            row.speedup()
        );
    }

    #[test]
    fn rows_are_well_formed() {
        let row = measure(4, 50, 2);
        assert_eq!(row.n, 4);
        assert_eq!(row.indices, 24);
        assert!(row.gates > 0);
        assert!(row.scalar_ns > 0 && row.batched_ns > 0);
        assert!(row.scalar_perms_per_sec() > 0.0);
        assert!(row.batched_perms_per_sec() > row.scalar_perms_per_sec());
    }

    #[test]
    fn json_record_carries_the_stable_keys() {
        let rows = vec![SimThroughputRow {
            n: 4,
            indices: 24,
            gates: 52,
            scalar_ns: 6000,
            batched_ns: 200,
        }];
        let json = render_json(&rows);
        for key in [
            "\"bench\": \"sim_throughput\"",
            "\"n\": 4",
            "\"indices\": 24",
            "\"scalar_ns_per_sweep\": 6000",
            "\"batched_ns_per_sweep\": 200",
            "\"speedup\": 30.00",
            "\"scalar_perms_per_sec\": 4000000",
            "\"batched_perms_per_sec\": 120000000",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // Balanced braces/brackets as a cheap well-formedness proxy.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn text_table_lists_every_row() {
        let rows = vec![
            SimThroughputRow {
                n: 4,
                indices: 24,
                gates: 52,
                scalar_ns: 6000,
                batched_ns: 200,
            },
            SimThroughputRow {
                n: 5,
                indices: 120,
                gates: 104,
                scalar_ns: 48000,
                batched_ns: 600,
            },
        ];
        let text = render_text(&rows);
        assert!(text.contains("30.0x"));
        assert!(text.contains("80.0x"));
        assert!(text.lines().count() >= 5);
    }
}
