//! Thread-scaling of the sharded exhaustive verification sweep.
//!
//! `simbench` measures what 64 lanes buy over scalar simulation on one
//! core; this module measures the second axis — how the sharded
//! [`exhaustive_check_parallel_repeat`] sweep scales with worker
//! threads over one shared compiled tape. Each cell of the matrix times
//! the steady state (tape compiled and expectation table transposed
//! once, `repeats` sweeps per thread scope so spawn cost is amortized,
//! best-of rounds), exactly mirroring the simbench methodology so the
//! two tables compose: total speedup over the scalar oracle is
//! `simbench speedup × threadbench speedup`.
//!
//! Rendered as a text table by the `tables` binary (`threadbench`) and
//! as a machine-readable record (`threadbench-json`) that CI archives
//! as `BENCH_parallel.json` next to `BENCH_sim.json`.
//!
//! Scaling is bounded by the host: on a single-core container every
//! worker count measures the same sequential throughput plus scheduling
//! noise. The ≥3× at 8 workers acceptance floor is therefore asserted
//! by an `#[ignore]`d release-mode test that first checks
//! `std::thread::available_parallelism()`.

use crate::with_commas;
use hwperm_circuits::{converter_netlist, ConverterOptions};
use hwperm_logic::SimProgram;
use hwperm_verify::{
    exhaustive_check_parallel_repeat, expected_permutation_words, BatchedExpectation,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Worker counts every scaling matrix sweeps.
pub const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One (n, workers) cell of the thread-scaling matrix.
#[derive(Debug, Clone)]
pub struct ThreadScalingRow {
    /// Permutation size.
    pub n: usize,
    /// Indices swept per pass (`n!`).
    pub indices: usize,
    /// Gate count of the swept netlist.
    pub gates: usize,
    /// Worker threads the sweep was sharded over.
    pub workers: usize,
    /// Best-of-rounds time of one full sharded sweep, in nanoseconds.
    pub ns_per_sweep: u128,
}

impl ThreadScalingRow {
    /// Speedup of this row over a baseline sweep time (normally the
    /// same n's 1-worker row).
    pub fn speedup_over(&self, baseline_ns: u128) -> f64 {
        baseline_ns as f64 / self.ns_per_sweep.max(1) as f64
    }

    /// Permutations verified per second.
    pub fn perms_per_sec(&self) -> f64 {
        self.indices as f64 * 1e9 / self.ns_per_sweep.max(1) as f64
    }
}

/// Measures one (n, workers) cell: `repeats` sweeps per thread scope
/// (amortizing spawn cost into the steady state), best of `rounds`
/// rounds, over a tape compiled once outside the timed region.
pub fn measure(n: usize, workers: usize, repeats: usize, rounds: usize) -> ThreadScalingRow {
    assert!(repeats > 0 && rounds > 0);
    let netlist = converter_netlist(n, ConverterOptions::default());
    let expected = expected_permutation_words(n);
    let in_bits = netlist.input_port("index").expect("index port").nets.len();
    let out_bits = netlist.output_port("perm").expect("perm port").nets.len();
    let table = BatchedExpectation::new(in_bits, out_bits, &expected);
    let gates = netlist.len();
    let program = SimProgram::compile_shared(netlist);

    let mut ns_per_sweep = u128::MAX;
    for _ in 0..rounds {
        let t = Instant::now();
        exhaustive_check_parallel_repeat(&program, "index", "perm", &table, workers, repeats)
            .expect("pristine converter passes the sharded sweep");
        ns_per_sweep = ns_per_sweep.min(t.elapsed().as_nanos() / repeats as u128);
    }
    ThreadScalingRow {
        n,
        indices: expected.len(),
        gates,
        workers,
        ns_per_sweep,
    }
}

/// Default measurement matrix: n = 5, 6 across [`WORKER_COUNTS`], with
/// repeat counts scaled to keep each cell's total work comparable.
pub fn default_matrix() -> Vec<ThreadScalingRow> {
    let mut rows = Vec::new();
    for (n, repeats) in [(5usize, 400usize), (6, 60)] {
        for workers in WORKER_COUNTS {
            rows.push(measure(n, workers, repeats, 3));
        }
    }
    rows
}

/// Sweep time of the `n`'s 1-worker row, the per-n speedup baseline.
fn baseline_ns(rows: &[ThreadScalingRow], n: usize) -> u128 {
    rows.iter()
        .find(|r| r.n == n && r.workers == 1)
        .map(|r| r.ns_per_sweep)
        .expect("matrix carries a 1-worker baseline per n")
}

/// Text rendering for the `tables` binary.
pub fn thread_scaling_text() -> String {
    render_text(&default_matrix())
}

fn render_text(rows: &[ThreadScalingRow]) -> String {
    let cores = std::thread::available_parallelism().map_or(0, |c| c.get());
    let mut out = String::new();
    writeln!(
        out,
        "Thread-scaling — sharded exhaustive [0, n!) sweep, 64-lane batches over worker threads"
    )
    .unwrap();
    writeln!(
        out,
        "{:>3}  {:>7}  {:>6}  {:>8}  {:>14}  {:>8}  {:>16}",
        "n", "indices", "gates", "workers", "ns/sweep", "speedup", "perm/s"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "{:>3}  {:>7}  {:>6}  {:>8}  {:>14}  {:>7.2}x  {:>16}",
            r.n,
            r.indices,
            r.gates,
            r.workers,
            with_commas(r.ns_per_sweep as u64),
            r.speedup_over(baseline_ns(rows, r.n)),
            with_commas(r.perms_per_sec() as u64),
        )
        .unwrap();
    }
    writeln!(
        out,
        "(speedup vs the same n's 1-worker sweep, best-of-3 rounds; host reports {cores} hardware threads)"
    )
    .unwrap();
    out
}

/// JSON rendering (the `BENCH_parallel.json` CI artifact). Hand-rolled
/// — the workspace carries no serde — but stable-keyed and
/// machine-parsable.
pub fn thread_scaling_json() -> String {
    render_json(&default_matrix())
}

fn render_json(rows: &[ThreadScalingRow]) -> String {
    let cores = std::thread::available_parallelism().map_or(0, |c| c.get());
    let mut out = format!(
        "{{\n  \"bench\": \"thread_scaling\",\n  \"sweep\": \"sharded exhaustive converter differential, indices 0..n!\",\n  \"hardware_threads\": {cores},\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            out,
            "    {{\"n\": {}, \"indices\": {}, \"gates\": {}, \"workers\": {}, \
             \"ns_per_sweep\": {}, \"speedup_vs_1_worker\": {:.2}, \"perms_per_sec\": {:.0}}}{sep}",
            r.n,
            r.indices,
            r.gates,
            r.workers,
            r.ns_per_sweep,
            r.speedup_over(baseline_ns(rows, r.n)),
            r.perms_per_sec(),
        )
        .unwrap();
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_well_formed() {
        let row = measure(4, 2, 10, 2);
        assert_eq!(row.n, 4);
        assert_eq!(row.indices, 24);
        assert!(row.gates > 0);
        assert!(row.ns_per_sweep > 0);
        assert!(row.perms_per_sec() > 0.0);
        assert_eq!(row.workers, 2);
    }

    #[test]
    fn every_worker_count_sweeps_clean() {
        // The measured region *is* the verification: a cell only renders
        // if the sharded sweep passed for its worker count.
        for workers in WORKER_COUNTS {
            let row = measure(4, workers, 2, 1);
            assert_eq!(row.workers, workers);
        }
    }

    #[test]
    fn json_record_carries_the_stable_keys() {
        let rows = vec![
            ThreadScalingRow {
                n: 6,
                indices: 720,
                gates: 300,
                workers: 1,
                ns_per_sweep: 8000,
            },
            ThreadScalingRow {
                n: 6,
                indices: 720,
                gates: 300,
                workers: 8,
                ns_per_sweep: 2000,
            },
        ];
        let json = render_json(&rows);
        for key in [
            "\"bench\": \"thread_scaling\"",
            "\"hardware_threads\":",
            "\"n\": 6",
            "\"workers\": 8",
            "\"ns_per_sweep\": 2000",
            "\"speedup_vs_1_worker\": 4.00",
            "\"perms_per_sec\": 360000000",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn text_table_reports_per_n_speedups() {
        let mk = |n: usize, workers: usize, ns: u128| ThreadScalingRow {
            n,
            indices: 120,
            gates: 200,
            workers,
            ns_per_sweep: ns,
        };
        let rows = vec![
            mk(5, 1, 9000),
            mk(5, 2, 4500),
            mk(6, 1, 80000),
            mk(6, 4, 20000),
        ];
        let text = render_text(&rows);
        assert!(text.contains("1.00x"), "{text}");
        assert!(text.contains("2.00x"), "{text}");
        assert!(text.contains("4.00x"), "{text}");
        assert!(text.lines().count() >= 7);
    }

    /// The PR's acceptance floor: ≥3× speedup at 8 workers over the
    /// 1-worker batched sweep for n = 6 in release mode. Ignored by
    /// default — it needs an optimized build *and* real hardware
    /// parallelism — run it with
    /// `cargo test --release -p hwperm-bench -- --ignored`.
    #[test]
    #[ignore = "release-mode scaling floor; needs a multi-core host (run with --ignored)"]
    fn n6_eight_workers_meet_the_3x_floor() {
        if cfg!(debug_assertions) {
            eprintln!("skipping scaling floor: debug build (thread scaling is a release property)");
            return;
        }
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        if cores < 4 {
            eprintln!("skipping scaling floor: host reports only {cores} hardware thread(s)");
            return;
        }
        let base = measure(6, 1, 60, 3);
        let eight = measure(6, 8, 60, 3);
        let speedup = eight.speedup_over(base.ns_per_sweep);
        assert!(
            speedup >= 3.0,
            "n=6 sharded sweep only {speedup:.2}x faster at 8 workers (floor 3x) on {cores} threads: base {base:?}, eight {eight:?}"
        );
    }
}
