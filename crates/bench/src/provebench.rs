//! SAT proof-obligation throughput.
//!
//! `faultbench` times the simulation-based campaigns; this module times
//! the formal side — the CDCL obligations `hwperm prove` discharges.
//! Each cell encodes one obligation to CNF (Tseitin over the levelized
//! tape order), runs the solver to Unsat, and reports formula size and
//! search effort alongside wall-clock time, so a regression in either
//! the encoder (clause blow-up) or the solver (conflict blow-up) is
//! visible in the same table.
//!
//! Rendered as a text table by the `tables` binary (`provebench`) and
//! as a machine-readable record (`provebench-json`) that CI archives
//! as `BENCH_prove.json` next to the other bench artifacts.

use crate::with_commas;
use hwperm_circuits::{converter_netlist, ConverterOptions, PermToIndexConverter};
use hwperm_verify::{
    expected_permutation_words, prove_against_table, prove_inverse_identity,
    prove_pipelined_equivalent, ProveOutcome,
};
use std::fmt::Write as _;
use std::time::Instant;

/// One (n, obligation) cell of the proof-throughput matrix.
#[derive(Debug, Clone)]
pub struct ProveBenchRow {
    /// Permutation size.
    pub n: usize,
    /// Obligation name: `"table"`, `"inverse"`, or `"unroll"`.
    pub obligation: &'static str,
    /// CNF variables the encoding produced.
    pub vars: usize,
    /// CNF clauses the encoding produced.
    pub clauses: usize,
    /// Conflicts the CDCL search needed to close the proof.
    pub conflicts: u64,
    /// Decisions the CDCL search made.
    pub decisions: u64,
    /// Best-of-rounds time of one encode+solve, in nanoseconds.
    pub ns_per_proof: u128,
}

impl ProveBenchRow {
    /// Conflicts resolved per second of proof time.
    pub fn conflicts_per_sec(&self) -> f64 {
        self.conflicts as f64 * 1e9 / self.ns_per_proof.max(1) as f64
    }
}

/// Discharges the named obligation once and returns the outcome. The
/// obligations mirror `hwperm prove`: `table` proves the combinational
/// converter against the block-decoded oracle, `inverse` proves
/// rank ∘ unrank = identity, `unroll` proves the pipelined converter
/// equals its combinational twin by (n−1)-step unrolling.
fn run_obligation(n: usize, obligation: &str) -> ProveOutcome {
    let factorial: u64 = (1..=n as u64).product();
    let comb = converter_netlist(n, ConverterOptions::default());
    match obligation {
        "table" => {
            let expected = expected_permutation_words(n);
            prove_against_table(&comb, "index", "perm", &expected)
        }
        "inverse" => {
            let rank = PermToIndexConverter::new(n).netlist().clone();
            prove_inverse_identity(
                &comb, "index", "perm", &rank, "perm", "index", factorial, None,
            )
        }
        "unroll" => {
            let pipe = converter_netlist(
                n,
                ConverterOptions {
                    pipelined: true,
                    perm_input_port: false,
                },
            );
            prove_pipelined_equivalent(&pipe, &comb, "index", "perm", n - 1, factorial, None)
        }
        other => panic!("unknown obligation {other:?}"),
    }
    .expect("bench obligations are well-formed")
}

/// Measures one cell: best of `rounds` encode+solve runs. Netlist
/// construction and oracle-table generation are *inside* the measured
/// region — a proof is a cold-start workload like a fault campaign.
pub fn measure(n: usize, obligation: &'static str, rounds: usize) -> ProveBenchRow {
    assert!(rounds > 0);
    let mut ns_per_proof = u128::MAX;
    let mut outcome = None;
    for _ in 0..rounds {
        let t = Instant::now();
        let o = run_obligation(n, obligation);
        ns_per_proof = ns_per_proof.min(t.elapsed().as_nanos());
        outcome = Some(o);
    }
    let outcome = outcome.expect("rounds > 0");
    assert!(
        matches!(outcome, ProveOutcome::Proved(_)),
        "bench obligation {obligation} at n = {n} did not prove: {outcome:?}"
    );
    let s = outcome.stats();
    ProveBenchRow {
        n,
        obligation,
        vars: s.vars,
        clauses: s.clauses,
        conflicts: s.conflicts,
        decisions: s.decisions,
        ns_per_proof,
    }
}

/// Default measurement matrix: n = 4, 5, 6, each with the table,
/// inverse-identity, and unrolling obligations.
pub fn default_matrix() -> Vec<ProveBenchRow> {
    let mut rows = Vec::new();
    for n in [4usize, 5, 6] {
        for obligation in ["table", "inverse", "unroll"] {
            rows.push(measure(n, obligation, 3));
        }
    }
    rows
}

/// Text rendering for the `tables` binary.
pub fn prove_throughput_text() -> String {
    render_text(&default_matrix())
}

fn render_text(rows: &[ProveBenchRow]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "SAT proof throughput — CDCL obligations of `hwperm prove` (encode + solve to Unsat)"
    )
    .unwrap();
    writeln!(
        out,
        "{:>3}  {:>10}  {:>10}  {:>11}  {:>10}  {:>10}  {:>14}  {:>12}",
        "n", "obligation", "vars", "clauses", "conflicts", "decisions", "ns/proof", "conflicts/s"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "{:>3}  {:>10}  {:>10}  {:>11}  {:>10}  {:>10}  {:>14}  {:>12}",
            r.n,
            r.obligation,
            with_commas(r.vars as u64),
            with_commas(r.clauses as u64),
            with_commas(r.conflicts),
            with_commas(r.decisions),
            with_commas(r.ns_per_proof as u64),
            with_commas(r.conflicts_per_sec() as u64),
        )
        .unwrap();
    }
    writeln!(
        out,
        "(best-of-3 rounds; every obligation must close as Unsat)"
    )
    .unwrap();
    out
}

/// JSON rendering (the `BENCH_prove.json` CI artifact). Hand-rolled —
/// the workspace carries no serde — but stable-keyed and
/// machine-parsable.
pub fn prove_throughput_json() -> String {
    render_json(&default_matrix())
}

fn render_json(rows: &[ProveBenchRow]) -> String {
    let mut out = String::from(
        "{\n  \"bench\": \"sat_prove\",\n  \"sweep\": \"CDCL proof obligations of hwperm prove \
         (table, inverse, unroll)\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            out,
            "    {{\"n\": {}, \"obligation\": \"{}\", \"vars\": {}, \"clauses\": {}, \
             \"conflicts\": {}, \"decisions\": {}, \"ns_per_proof\": {}, \
             \"conflicts_per_sec\": {:.0}}}{sep}",
            r.n,
            r.obligation,
            r.vars,
            r.clauses,
            r.conflicts,
            r.decisions,
            r.ns_per_proof,
            r.conflicts_per_sec(),
        )
        .unwrap();
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_well_formed() {
        let row = measure(4, "table", 1);
        assert_eq!(row.n, 4);
        assert_eq!(row.obligation, "table");
        assert!(row.vars > 0);
        assert!(row.clauses > row.vars, "Tseitin emits >1 clause per gate");
        assert!(row.ns_per_proof > 0);
    }

    #[test]
    fn every_default_obligation_proves_at_n3() {
        for obligation in ["table", "inverse", "unroll"] {
            let row = measure(3, obligation, 1);
            assert!(row.vars > 0, "{obligation}: {row:?}");
        }
    }

    #[test]
    fn json_record_carries_the_stable_keys() {
        let mk = |n: usize, obligation: &'static str| ProveBenchRow {
            n,
            obligation,
            vars: 1_000,
            clauses: 3_500,
            conflicts: 42,
            decisions: 99,
            ns_per_proof: 2_000_000,
        };
        let rows = vec![mk(5, "table"), mk(5, "unroll")];
        let json = render_json(&rows);
        for key in [
            "\"bench\": \"sat_prove\"",
            "\"n\": 5",
            "\"obligation\": \"table\"",
            "\"vars\": 1000",
            "\"clauses\": 3500",
            "\"conflicts\": 42",
            "\"ns_per_proof\": 2000000",
            "\"conflicts_per_sec\": 21000",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn text_table_lists_every_row() {
        let mk = |n: usize, obligation: &'static str| ProveBenchRow {
            n,
            obligation,
            vars: 10,
            clauses: 30,
            conflicts: 5,
            decisions: 7,
            ns_per_proof: 1_000,
        };
        let rows = vec![mk(4, "table"), mk(4, "inverse"), mk(4, "unroll")];
        let text = render_text(&rows);
        for obligation in ["table", "inverse", "unroll"] {
            assert!(text.contains(obligation), "{text}");
        }
        assert!(text.contains("ns/proof"), "{text}");
    }

    /// The PR's acceptance floor: the full n = 8 converter table proof
    /// (Fig. 1 at the largest single-u64-index size the oracle sweeps)
    /// closes as Unsat inside a 10-minute wall-clock budget. Measured
    /// at ~83 s on the development host, so the budget carries ~7×
    /// headroom for slow CI runners. Ignored by default — it needs an
    /// optimized build — run it with
    /// `cargo test --release -p hwperm-bench -- --ignored`.
    #[test]
    #[ignore = "release-mode proof floor (run with --ignored)"]
    fn n8_converter_table_proof_meets_the_wall_clock_floor() {
        if cfg!(debug_assertions) {
            eprintln!("skipping proof floor: debug build (solver speed is a release property)");
            return;
        }
        let budget = std::time::Duration::from_secs(600);
        let t = Instant::now();
        let row = measure(8, "table", 1);
        let elapsed = t.elapsed();
        assert!(
            elapsed <= budget,
            "n=8 converter table proof took {elapsed:?} (budget {budget:?}): {row:?}"
        );
    }
}
