#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Unique-permutation hashing.
//!
//! The paper's headline motivation: "a circuit is needed in the hardware
//! implementation of unique-permutation hash functions to specify how
//! parallel machines interact through a shared memory. Such hash
//! functions yield the minimal possible contention, as they probe each
//! location with the same probability regardless of which locations are
//! currently occupied" (citing Dolev, Lahiani & Haviv, *Unique
//! permutation hashing*).
//!
//! [`UniquePermTable`] assigns every key a probe sequence that is a full
//! permutation of the buckets, obtained by hashing the key to an index
//! in `[0, n!)` and unranking it — exactly the conversion the paper's
//! circuit performs per memory request. [`LinearProbeTable`] and
//! [`DoubleHashTable`] are the classical baselines, and
//! [`contention::ContentionStats`] measures the probe distribution that
//! distinguishes them.

pub mod contention;
mod tables;

pub use tables::{DoubleHashTable, LinearProbeTable, ProbeTable, UniquePermTable};

/// splitmix64 bit-mixer used as the key hash throughout this crate.
pub(crate) fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}
