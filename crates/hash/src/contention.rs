//! Contention measurement: the property unique-permutation hashing is
//! built for.
//!
//! The cited claim: unique-permutation hash functions "yield the minimal
//! possible contention, as they probe each location with the same
//! probability regardless of which locations are currently occupied."
//! This module loads tables to a target occupancy and records the
//! distribution of probes-to-insert, so the strategies can be compared
//! quantitatively (see the `unique_perm_hashing` example and bench).

use crate::tables::ProbeTable;

/// Probe-count distribution over a batch of inserts.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionStats {
    /// `histogram[p−1]` = inserts that needed exactly `p` probes.
    pub histogram: Vec<u64>,
    /// Total inserts measured.
    pub inserts: u64,
    /// Sum of probes across all inserts.
    pub total_probes: u64,
}

impl ContentionStats {
    /// Average probes per insert.
    pub fn mean_probes(&self) -> f64 {
        self.total_probes as f64 / self.inserts as f64
    }

    /// Largest probe count observed.
    pub fn worst_case(&self) -> usize {
        self.histogram
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |p| p + 1)
    }

    /// Fraction of inserts that needed more than `p` probes.
    pub fn tail_fraction(&self, p: usize) -> f64 {
        let tail: u64 = self.histogram.iter().skip(p).sum();
        tail as f64 / self.inserts as f64
    }
}

/// Measures insert contention: repeatedly fills a fresh table from
/// `make_table` with `fill` pseudo-random keys (derived from `trial` and
/// `seed`), recording the probes each insert needed, over `trials`
/// independent fills.
///
/// # Panics
/// Panics if `fill` exceeds the table capacity.
pub fn measure_insert_contention<T: ProbeTable>(
    mut make_table: impl FnMut() -> T,
    fill: usize,
    trials: u64,
    seed: u64,
) -> ContentionStats {
    let capacity = make_table().capacity();
    assert!(fill <= capacity, "cannot fill {fill} of {capacity}");
    let mut histogram = vec![0u64; capacity];
    let mut inserts = 0u64;
    let mut total_probes = 0u64;
    for trial in 0..trials {
        let mut table = make_table();
        let mut inserted = 0usize;
        let mut key = crate::mix64(seed ^ (trial << 32));
        while inserted < fill {
            key = crate::mix64(key);
            if let Some(probes) = table.insert(key) {
                histogram[probes - 1] += 1;
                total_probes += probes as u64;
                inserts += 1;
                inserted += 1;
            }
        }
    }
    ContentionStats {
        histogram,
        inserts,
        total_probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::{LinearProbeTable, UniquePermTable};

    #[test]
    fn stats_accounting_is_consistent() {
        let stats = measure_insert_contention(|| UniquePermTable::new(8), 6, 10, 42);
        assert_eq!(stats.inserts, 60);
        assert_eq!(stats.histogram.iter().sum::<u64>(), 60);
        assert!(stats.mean_probes() >= 1.0);
        assert!(stats.worst_case() <= 8);
        assert_eq!(stats.tail_fraction(8), 0.0);
    }

    #[test]
    fn empty_table_inserts_in_one_probe() {
        let stats = measure_insert_contention(|| UniquePermTable::new(8), 1, 50, 7);
        assert_eq!(stats.histogram[0], 50, "first insert never collides");
        assert!((stats.mean_probes() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contention_grows_with_load() {
        let low = measure_insert_contention(|| UniquePermTable::new(16), 4, 40, 1);
        let high = measure_insert_contention(|| UniquePermTable::new(16), 15, 40, 1);
        assert!(high.mean_probes() > low.mean_probes());
    }

    #[test]
    fn unique_perm_beats_linear_probing_tail_at_high_load() {
        // Linear probing clusters: once runs form, inserts hit long
        // chains. Unique-permutation probing has no clustering, so its
        // tail (many-probe inserts) is lighter at high load.
        let fill = 15;
        let trials = 300;
        let up = measure_insert_contention(|| UniquePermTable::new(16), fill, trials, 3);
        let lp = measure_insert_contention(|| LinearProbeTable::new(16), fill, trials, 3);
        assert!(
            up.tail_fraction(8) < lp.tail_fraction(8),
            "unique-perm tail {} vs linear tail {}",
            up.tail_fraction(8),
            lp.tail_fraction(8)
        );
    }

    #[test]
    #[should_panic(expected = "cannot fill")]
    fn overfill_rejected() {
        measure_insert_contention(|| UniquePermTable::new(4), 5, 1, 0);
    }
}
