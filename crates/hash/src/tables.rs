//! Open-addressing tables differing only in their probe sequences.

use crate::mix64;
use hwperm_factoradic::{factorials_u64, unrank_u64};
use hwperm_perm::Permutation;

/// Common interface for the probe-sequence strategies.
pub trait ProbeTable {
    /// Bucket capacity `n`.
    fn capacity(&self) -> usize;

    /// Number of stored keys.
    fn len(&self) -> usize;

    /// `true` if no keys are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The first `capacity` probe targets for `key`, in order.
    fn probe_sequence(&self, key: u64) -> Vec<usize>;

    /// Inserts `key`; returns the number of buckets probed (1 = first
    /// try), or `None` if the table is full or the key already present.
    fn insert(&mut self, key: u64) -> Option<usize>;

    /// Looks `key` up; returns the number of probes needed if present.
    fn lookup(&self, key: u64) -> Option<usize>;
}

/// Shared bucket storage.
#[derive(Debug, Clone)]
struct Buckets {
    slots: Vec<Option<u64>>,
    len: usize,
}

impl Buckets {
    fn new(n: usize) -> Self {
        Buckets {
            slots: vec![None; n],
            len: 0,
        }
    }

    fn insert_via(&mut self, key: u64, seq: impl Iterator<Item = usize>) -> Option<usize> {
        for (probes, bucket) in seq.enumerate() {
            match self.slots[bucket] {
                None => {
                    self.slots[bucket] = Some(key);
                    self.len += 1;
                    return Some(probes + 1);
                }
                Some(existing) if existing == key => return None,
                Some(_) => continue,
            }
        }
        None
    }

    fn lookup_via(&self, key: u64, seq: impl Iterator<Item = usize>) -> Option<usize> {
        for (probes, bucket) in seq.enumerate() {
            match self.slots[bucket] {
                Some(existing) if existing == key => return Some(probes + 1),
                None => return None, // probe chain broken ⇒ absent
                Some(_) => continue,
            }
        }
        None
    }
}

/// Unique-permutation hashing: the probe sequence of a key is the
/// permutation of all buckets unranked from `hash(key) mod n!`.
///
/// Every key probes every bucket exactly once, and — key property — the
/// *t*-th probe of a random key is uniform over all buckets, independent
/// of occupancy.
///
/// ```
/// use hwperm_hash::{ProbeTable, UniquePermTable};
///
/// let mut t = UniquePermTable::new(8);
/// assert_eq!(t.insert(42), Some(1));
/// assert_eq!(t.lookup(42), Some(1));
/// assert_eq!(t.lookup(43), None);
/// ```
#[derive(Debug, Clone)]
pub struct UniquePermTable {
    buckets: Buckets,
    nfact: u64,
}

impl UniquePermTable {
    /// A table with `n` buckets.
    ///
    /// # Panics
    /// Panics if `n` is 0 or greater than 20 (`n!` must fit in `u64`;
    /// the hardware converter handles larger `n`, the software table
    /// keeps to the fast path).
    pub fn new(n: usize) -> Self {
        assert!((1..=20).contains(&n), "capacity must be 1..=20");
        UniquePermTable {
            buckets: Buckets::new(n),
            nfact: factorials_u64(n)[n],
        }
    }

    /// The full probe permutation of a key (the object the paper's
    /// circuit produces from the hashed index).
    pub fn probe_permutation(&self, key: u64) -> Permutation {
        let index = mix64(key) % self.nfact;
        unrank_u64(self.buckets.slots.len(), index)
    }
}

impl ProbeTable for UniquePermTable {
    fn capacity(&self) -> usize {
        self.buckets.slots.len()
    }

    fn len(&self) -> usize {
        self.buckets.len
    }

    fn probe_sequence(&self, key: u64) -> Vec<usize> {
        self.probe_permutation(key)
            .into_vec()
            .into_iter()
            .map(|b| b as usize)
            .collect()
    }

    fn insert(&mut self, key: u64) -> Option<usize> {
        let seq = self.probe_sequence(key);
        self.buckets.insert_via(key, seq.into_iter())
    }

    fn lookup(&self, key: u64) -> Option<usize> {
        let seq = self.probe_sequence(key);
        self.buckets.lookup_via(key, seq.into_iter())
    }
}

/// Classical linear probing: start at `hash(key) mod n`, scan forward.
#[derive(Debug, Clone)]
pub struct LinearProbeTable {
    buckets: Buckets,
}

impl LinearProbeTable {
    /// A table with `n` buckets.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        LinearProbeTable {
            buckets: Buckets::new(n),
        }
    }
}

impl ProbeTable for LinearProbeTable {
    fn capacity(&self) -> usize {
        self.buckets.slots.len()
    }

    fn len(&self) -> usize {
        self.buckets.len
    }

    fn probe_sequence(&self, key: u64) -> Vec<usize> {
        let n = self.capacity();
        let start = (mix64(key) % n as u64) as usize;
        (0..n).map(|i| (start + i) % n).collect()
    }

    fn insert(&mut self, key: u64) -> Option<usize> {
        let seq = self.probe_sequence(key);
        self.buckets.insert_via(key, seq.into_iter())
    }

    fn lookup(&self, key: u64) -> Option<usize> {
        let seq = self.probe_sequence(key);
        self.buckets.lookup_via(key, seq.into_iter())
    }
}

/// Double hashing: stride chosen coprime to `n` from a second hash.
#[derive(Debug, Clone)]
pub struct DoubleHashTable {
    buckets: Buckets,
}

impl DoubleHashTable {
    /// A table with `n` buckets.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        DoubleHashTable {
            buckets: Buckets::new(n),
        }
    }

    fn stride(&self, key: u64) -> usize {
        let n = self.capacity();
        if n == 1 {
            return 1;
        }
        // Any stride coprime to n visits every bucket; scan candidates
        // derived from a second hash.
        let h2 = mix64(key ^ 0xD1B5_4A32_D192_ED03);
        let mut s = 1 + (h2 % (n as u64 - 1)) as usize;
        while gcd(s, n) != 1 {
            s = 1 + (s % (n - 1));
        }
        s
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl ProbeTable for DoubleHashTable {
    fn capacity(&self) -> usize {
        self.buckets.slots.len()
    }

    fn len(&self) -> usize {
        self.buckets.len
    }

    fn probe_sequence(&self, key: u64) -> Vec<usize> {
        let n = self.capacity();
        let start = (mix64(key) % n as u64) as usize;
        let stride = self.stride(key);
        (0..n).map(|i| (start + i * stride) % n).collect()
    }

    fn insert(&mut self, key: u64) -> Option<usize> {
        let seq = self.probe_sequence(key);
        self.buckets.insert_via(key, seq.into_iter())
    }

    fn lookup(&self, key: u64) -> Option<usize> {
        let seq = self.probe_sequence(key);
        self.buckets.lookup_via(key, seq.into_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tables(n: usize) -> Vec<Box<dyn ProbeTable>> {
        vec![
            Box::new(UniquePermTable::new(n)),
            Box::new(LinearProbeTable::new(n)),
            Box::new(DoubleHashTable::new(n)),
        ]
    }

    #[test]
    fn probe_sequences_visit_every_bucket_once() {
        for table in tables(12) {
            for key in 0..50u64 {
                let mut seq = table.probe_sequence(key);
                seq.sort_unstable();
                assert_eq!(seq, (0..12).collect::<Vec<_>>(), "key {key}");
            }
        }
    }

    #[test]
    fn fill_to_capacity_then_reject() {
        for mut_table in [0usize, 1, 2] {
            let mut table = tables(8).swap_remove(mut_table);
            for key in 0..8u64 {
                assert!(
                    table.insert(key * 1000 + 7).is_some(),
                    "strategy {mut_table}"
                );
            }
            assert_eq!(table.len(), 8);
            assert_eq!(table.insert(999_999), None, "full table rejects");
        }
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut t = UniquePermTable::new(8);
        assert!(t.insert(5).is_some());
        assert_eq!(t.insert(5), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn lookup_finds_all_inserted_keys() {
        for mut table in tables(16) {
            let keys: Vec<u64> = (0..12).map(|i| i * 7919 + 13).collect();
            for &k in &keys {
                table.insert(k);
            }
            for &k in &keys {
                assert!(table.lookup(k).is_some(), "key {k} lost");
            }
            assert_eq!(table.lookup(424_242), None);
        }
    }

    #[test]
    fn probe_permutation_is_deterministic_per_key() {
        let t = UniquePermTable::new(10);
        assert_eq!(t.probe_permutation(99), t.probe_permutation(99));
        // Different keys essentially always differ.
        let distinct = (0..50u64)
            .map(|k| t.probe_permutation(k).into_vec())
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 45);
    }

    #[test]
    fn first_probe_uniformity_unique_perm() {
        // The t-th probe of unique-permutation hashing is uniform over
        // buckets. Check the first probe empirically.
        let t = UniquePermTable::new(8);
        let mut counts = [0u64; 8];
        for key in 0..8000u64 {
            counts[t.probe_sequence(key)[0]] += 1;
        }
        let expected = 1000.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| (c as f64 - expected).powi(2) / expected)
            .sum();
        assert!(chi2 < 24.3, "chi2 = {chi2} (7 dof, 99.9th pct)"); // uniform
    }

    #[test]
    fn second_probe_uniformity_distinguishes_strategies() {
        // Linear probing's 2nd probe is fully determined by its 1st
        // (start+1): conditioned on the first probe it has zero entropy,
        // while unique-permutation hashing spreads it over the remaining
        // buckets. Measure: distinct (probe1, probe2) pairs.
        let up = UniquePermTable::new(8);
        let lp = LinearProbeTable::new(8);
        let pairs = |t: &dyn ProbeTable| {
            (0..2000u64)
                .map(|k| {
                    let s = t.probe_sequence(k);
                    (s[0], s[1])
                })
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        assert_eq!(pairs(&lp), 8, "linear: second probe determined");
        assert_eq!(pairs(&up), 56, "unique-perm: all 8×7 pairs occur");
    }

    #[test]
    #[should_panic(expected = "1..=20")]
    fn unique_perm_capacity_limit() {
        UniquePermTable::new(21);
    }

    #[test]
    fn capacity_one_tables_work() {
        for mut table in tables(1) {
            assert_eq!(table.insert(7), Some(1));
            assert_eq!(table.lookup(7), Some(1));
            assert_eq!(table.insert(8), None);
        }
    }
}
