//! Resumable background generation: chunks are produced through the
//! sharded `BlockDecoder` path, written atomically, and recorded in
//! the manifest as they land, so a killed build restarts only the
//! chunks it never finished.

use crate::format::{encode_chunk, ChunkShape};
use crate::manifest::{write_file_atomic, ChunkRecord, Manifest};
use crate::{
    check_store_n, chunk_file_name, hash_words, io_err, table_dir, Order, StoreError,
    DEFAULT_CHUNK_WORDS,
};
use hwperm_factoradic::BlockDecoder;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Knobs for [`build`].
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Worker threads pulling chunks off the shared queue.
    pub jobs: usize,
    /// Words per chunk file (recorded in the manifest; readers follow
    /// the manifest, so tables built with different chunking coexist
    /// across store dirs but never within one table).
    pub chunk_words: usize,
    /// Stop after building this many new chunks this run — the hook
    /// the kill-and-resume tests use to simulate an interrupted job.
    pub max_chunks: Option<usize>,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            jobs: 1,
            chunk_words: DEFAULT_CHUNK_WORDS,
            max_chunks: None,
        }
    }
}

/// What one [`build`] run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildReport {
    /// Permutation size of the table.
    pub n: usize,
    /// The table directory that was built into.
    pub dir: PathBuf,
    /// Chunks in the complete table.
    pub chunks_total: u64,
    /// Chunks this run generated and wrote.
    pub built: u64,
    /// Chunks already present from an earlier (interrupted) run.
    pub resumed: u64,
    /// Whether the table is now complete.
    pub complete: bool,
    /// Chunk-file bytes this run wrote.
    pub bytes_written: u64,
}

/// Build (or resume building) the `n`-table under `store_dir`.
///
/// Pending chunks are distributed to `jobs` workers through a shared
/// counter; each worker owns its own [`BlockDecoder`] — the same
/// one-true-unrank-per-range idiom as
/// `expected_permutation_words_parallel` — writes `chunk-*.hwt.tmp`,
/// renames it into place, and records the chunk in the manifest under
/// a lock. Output is byte-identical for any worker count, any
/// interleaving, and any interrupt/resume split, because every chunk's
/// content is a pure function of `(n, chunk index, chunk_words)` and
/// the manifest renders deterministically.
pub fn build(
    store_dir: &Path,
    n: usize,
    options: &BuildOptions,
) -> Result<BuildReport, StoreError> {
    check_store_n(n);
    assert!(options.jobs >= 1, "need at least one build job");
    assert!(options.chunk_words >= 1, "need at least one word per chunk");
    let dir = table_dir(store_dir, n);
    std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;

    let total_words = BlockDecoder::new(n).total();
    let manifest = match Manifest::load(&dir)? {
        Some(found) => {
            let stale = |reason: String| StoreError::Manifest {
                path: dir.join(crate::MANIFEST_FILE),
                reason,
            };
            if found.n != n {
                return Err(stale(format!(
                    "records n = {} but this table dir is for n = {n}",
                    found.n
                )));
            }
            if found.chunk_words != options.chunk_words {
                return Err(stale(format!(
                    "records chunk_words = {} but this build wants {} \
                     (finish or delete the table before re-chunking)",
                    found.chunk_words, options.chunk_words
                )));
            }
            // Every recorded chunk must still be on disk at its exact
            // size; a recorded-but-missing chunk means the directory
            // was tampered with after the manifest was written.
            for (&c, rec) in &found.chunks {
                let path = dir.join(chunk_file_name(c));
                let want = crate::CHUNK_HEADER_LEN as u64 + rec.words as u64 * 8;
                match std::fs::metadata(&path) {
                    Ok(meta) if meta.len() == want => {}
                    Ok(meta) => {
                        return Err(stale(format!(
                            "recorded chunk {c} is {} byte(s) on disk, {want} required",
                            meta.len()
                        )))
                    }
                    Err(_) => {
                        return Err(stale(format!(
                            "recorded chunk {c} is missing from the directory"
                        )))
                    }
                }
            }
            found
        }
        None => Manifest::new(n, options.chunk_words, total_words),
    };

    let chunks_total = manifest.chunks_total();
    let resumed = manifest.chunks.len() as u64;
    let mut pending: Vec<u64> = (0..chunks_total)
        .filter(|c| !manifest.chunks.contains_key(c))
        .collect();
    if let Some(cap) = options.max_chunks {
        pending.truncate(cap);
    }

    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let state = Mutex::new((manifest, None::<StoreError>, 0u64));
    let workers = options.jobs.min(pending.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut decoder = BlockDecoder::new(n);
                let mut words: Vec<u64> = Vec::new();
                loop {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&c) = pending.get(slot) else { return };
                    let range = {
                        let guard = state.lock().unwrap();
                        guard.0.chunk_range(c)
                    };
                    words.clear();
                    decoder.decode_words_into(range.clone(), &mut words);
                    let shape = ChunkShape {
                        n,
                        order: Order::Lex,
                        base: range.start,
                        words: words.len() as u32,
                    };
                    let bytes = encode_chunk(shape, &words);
                    let path = dir.join(chunk_file_name(c));
                    let tmp = dir.join(format!("{}.tmp", chunk_file_name(c)));
                    let result = write_file_atomic(&tmp, &path, &bytes).and_then(|()| {
                        let mut guard = state.lock().unwrap();
                        guard.0.chunks.insert(
                            c,
                            ChunkRecord {
                                words: shape.words,
                                hash: hash_words(&words),
                            },
                        );
                        guard.2 += bytes.len() as u64;
                        guard.0.write_atomic(&dir)
                    });
                    if let Err(e) = result {
                        let mut guard = state.lock().unwrap();
                        guard.1.get_or_insert(e);
                        stop.store(true, Ordering::Relaxed);
                        return;
                    }
                }
            });
        }
    });

    let (mut manifest, error, bytes_written) = state.into_inner().unwrap();
    if let Some(e) = error {
        return Err(e);
    }
    let built = manifest.chunks.len() as u64 - resumed;
    if manifest.chunks.len() as u64 == chunks_total && !manifest.complete {
        manifest.complete = true;
        manifest.write_atomic(&dir)?;
    }
    Ok(BuildReport {
        n,
        dir,
        chunks_total,
        built,
        resumed,
        complete: manifest.complete,
        bytes_written,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwperm_verify::expected_permutation_words;

    fn temp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hwperm-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn build_covers_the_full_table_and_is_idempotent() {
        let store = temp_store("build");
        let options = BuildOptions {
            jobs: 4,
            chunk_words: 32,
            max_chunks: None,
        };
        let report = build(&store, 5, &options).unwrap();
        assert_eq!(report.chunks_total, 4);
        assert_eq!(report.built, 4);
        assert_eq!(report.resumed, 0);
        assert!(report.complete);

        // A second run finds everything present and writes nothing.
        let again = build(&store, 5, &options).unwrap();
        assert_eq!(again.built, 0);
        assert_eq!(again.resumed, 4);
        assert!(again.complete);
        assert_eq!(again.bytes_written, 0);

        let table = crate::OpenTable::open(&store, 5).unwrap().unwrap();
        assert_eq!(table.load_words().unwrap(), expected_permutation_words(5));
        std::fs::remove_dir_all(&store).unwrap();
    }

    #[test]
    fn worker_count_never_changes_the_bytes() {
        let one = temp_store("w1");
        let four = temp_store("w4");
        let base = BuildOptions {
            jobs: 1,
            chunk_words: 16,
            max_chunks: None,
        };
        build(&one, 4, &base).unwrap();
        build(&four, 4, &BuildOptions { jobs: 4, ..base }).unwrap();
        for c in 0..2u64 {
            let name = chunk_file_name(c);
            let a = std::fs::read(table_dir(&one, 4).join(&name)).unwrap();
            let b = std::fs::read(table_dir(&four, 4).join(&name)).unwrap();
            assert_eq!(a, b, "chunk {c} diverged across worker counts");
        }
        let a = std::fs::read_to_string(table_dir(&one, 4).join(crate::MANIFEST_FILE)).unwrap();
        let b = std::fs::read_to_string(table_dir(&four, 4).join(crate::MANIFEST_FILE)).unwrap();
        assert_eq!(a, b);
        std::fs::remove_dir_all(&one).unwrap();
        std::fs::remove_dir_all(&four).unwrap();
    }

    #[test]
    fn rechunking_an_existing_table_is_rejected() {
        let store = temp_store("rechunk");
        let options = BuildOptions {
            jobs: 1,
            chunk_words: 32,
            max_chunks: Some(1),
        };
        build(&store, 5, &options).unwrap();
        let err = build(
            &store,
            5,
            &BuildOptions {
                chunk_words: 64,
                ..options
            },
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("stale or invalid manifest") && msg.contains("re-chunking"),
            "{msg}"
        );
        std::fs::remove_dir_all(&store).unwrap();
    }
}
