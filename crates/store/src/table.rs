//! Reading a persisted table: open a complete table for range reads,
//! verify every chunk end-to-end, report store status, and the
//! [`TableSource`] abstraction the sweep/prove consumers go through.

use crate::format::{decode_chunk, header_hash, read_chunk_file, ChunkShape};
use crate::manifest::Manifest;
use crate::{chunk_file_name, table_dir, Order, StoreError};
use std::ops::Range;
use std::path::{Path, PathBuf};

/// A complete, manifest-backed table opened for reading. Every chunk
/// read re-validates the header, recomputes the body hash, and
/// cross-checks it against the manifest record — corruption surfaces
/// at the first read that touches it.
#[derive(Debug)]
pub struct OpenTable {
    dir: PathBuf,
    manifest: Manifest,
}

impl OpenTable {
    /// Open the `n`-table under `store_dir`.
    ///
    /// `Ok(None)` means the table is simply not warm (no manifest, or
    /// a build still in progress) — the caller falls back to
    /// computing. `Err` means the store is *broken*: a malformed or
    /// stale manifest never degrades silently.
    pub fn open(store_dir: &Path, n: usize) -> Result<Option<OpenTable>, StoreError> {
        let dir = table_dir(store_dir, n);
        let Some(manifest) = Manifest::load(&dir)? else {
            return Ok(None);
        };
        let stale = |reason: String| StoreError::Manifest {
            path: dir.join(crate::MANIFEST_FILE),
            reason,
        };
        if manifest.n != n {
            return Err(stale(format!(
                "records n = {} but this table dir is for n = {n}",
                manifest.n
            )));
        }
        if !manifest.complete {
            return Ok(None);
        }
        Ok(Some(OpenTable { dir, manifest }))
    }

    /// Permutation size of the table.
    pub fn n(&self) -> usize {
        self.manifest.n
    }

    /// Total words in the table (`n!`).
    pub fn total_words(&self) -> u64 {
        self.manifest.total_words
    }

    /// Number of chunk files.
    pub fn chunks_total(&self) -> u64 {
        self.manifest.chunks_total()
    }

    /// The word-index range chunk `c` covers.
    pub fn chunk_range(&self, c: u64) -> Range<u64> {
        self.manifest.chunk_range(c)
    }

    /// Read and fully validate chunk `c`, returning its body words.
    pub fn read_chunk(&self, c: u64) -> Result<Vec<u64>, StoreError> {
        let range = self.manifest.chunk_range(c);
        assert!(range.start < range.end, "chunk index {c} beyond the table");
        let path = self.dir.join(chunk_file_name(c));
        let bytes = read_chunk_file(&path)?;
        let shape = ChunkShape {
            n: self.manifest.n,
            order: Order::Lex,
            base: range.start,
            words: (range.end - range.start) as u32,
        };
        let words = decode_chunk(&path, shape, &bytes)?;
        let recorded = self.manifest.chunks.get(&c).map(|rec| rec.hash);
        if header_hash(&bytes) != recorded {
            return Err(StoreError::Manifest {
                path: self.dir.join(crate::MANIFEST_FILE),
                reason: format!("chunk {c} hash on disk disagrees with the manifest record"),
            });
        }
        Ok(words)
    }

    /// Append the words of `range` (word indices) to `out`, streaming
    /// chunk by chunk.
    pub fn read_words_into(&self, range: Range<u64>, out: &mut Vec<u64>) -> Result<(), StoreError> {
        assert!(
            range.end <= self.manifest.total_words,
            "range end {} beyond the {}-word table",
            range.end,
            self.manifest.total_words
        );
        out.reserve(range.end.saturating_sub(range.start) as usize);
        let chunk_words = self.manifest.chunk_words as u64;
        let mut at = range.start;
        while at < range.end {
            let c = at / chunk_words;
            let chunk_range = self.manifest.chunk_range(c);
            let words = self.read_chunk(c)?;
            let lo = (at - chunk_range.start) as usize;
            let hi = (range.end.min(chunk_range.end) - chunk_range.start) as usize;
            out.extend_from_slice(&words[lo..hi]);
            at = chunk_range.end;
        }
        Ok(())
    }

    /// Append the words of `range` as little-endian bytes — the layout
    /// the serve protocol's binary chunk frames carry.
    pub fn read_le_bytes_into(
        &self,
        range: Range<u64>,
        out: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        let mut words = Vec::new();
        self.read_words_into(range, &mut words)?;
        out.reserve(words.len() * 8);
        for w in words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        Ok(())
    }

    /// Load the entire table into memory.
    pub fn load_words(&self) -> Result<Vec<u64>, StoreError> {
        let mut out = Vec::with_capacity(self.manifest.total_words as usize);
        self.read_words_into(0..self.manifest.total_words, &mut out)?;
        Ok(out)
    }
}

/// What [`verify_store`] confirmed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreVerifyReport {
    /// Permutation size of the table.
    pub n: usize,
    /// Chunks read and validated.
    pub chunks: u64,
    /// Words validated.
    pub words: u64,
    /// Chunk-file bytes read.
    pub bytes: u64,
}

/// Read and validate every chunk of the `n`-table: header fields, body
/// hash, and manifest cross-check. Requires a complete table —
/// [`StoreError::Missing`] otherwise.
pub fn verify_store(store_dir: &Path, n: usize) -> Result<StoreVerifyReport, StoreError> {
    let Some(table) = OpenTable::open(store_dir, n)? else {
        return Err(StoreError::Missing {
            dir: store_dir.to_path_buf(),
            n,
        });
    };
    let mut words = 0u64;
    let mut bytes = 0u64;
    for c in 0..table.chunks_total() {
        let chunk = table.read_chunk(c)?;
        words += chunk.len() as u64;
        bytes += crate::CHUNK_HEADER_LEN as u64 + chunk.len() as u64 * 8;
    }
    Ok(StoreVerifyReport {
        n,
        chunks: table.chunks_total(),
        words,
        bytes,
    })
}

/// A snapshot of one table's on-disk state, complete or not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStat {
    /// Permutation size of the table.
    pub n: usize,
    /// Total words the complete table holds.
    pub total_words: u64,
    /// Words per chunk.
    pub chunk_words: usize,
    /// Chunks in the complete table.
    pub chunks_total: u64,
    /// Chunks recorded as built.
    pub chunks_present: u64,
    /// Whether the table is complete.
    pub complete: bool,
    /// Chunk-file bytes the recorded chunks occupy.
    pub bytes: u64,
}

/// Report the `n`-table's state under `store_dir`. `Ok(None)` means
/// the table was never started.
pub fn stat(store_dir: &Path, n: usize) -> Result<Option<StoreStat>, StoreError> {
    let dir = table_dir(store_dir, n);
    let Some(manifest) = Manifest::load(&dir)? else {
        return Ok(None);
    };
    let bytes = manifest
        .chunks
        .values()
        .map(|rec| crate::CHUNK_HEADER_LEN as u64 + rec.words as u64 * 8)
        .sum();
    Ok(Some(StoreStat {
        n: manifest.n,
        total_words: manifest.total_words,
        chunk_words: manifest.chunk_words,
        chunks_total: manifest.chunks_total(),
        chunks_present: manifest.chunks.len() as u64,
        complete: manifest.complete,
        bytes,
    }))
}

/// Where a consumer's expectation table comes from: computed in memory
/// (the historical path) or loaded from a persisted store. Both
/// produce byte-identical words; the store variant is *strict* — a
/// missing or broken table is an error, never a silent recompute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableSource {
    /// Compute the table with `expected_permutation_words[_parallel]`.
    Computed {
        /// Worker threads for the sharded computation.
        workers: usize,
    },
    /// Load the table from a persisted store.
    Store {
        /// The store root directory.
        dir: PathBuf,
    },
}

impl TableSource {
    /// The full `[0, n!)` table of packed permutation words.
    pub fn permutation_words(&self, n: usize) -> Result<Vec<u64>, StoreError> {
        match self {
            TableSource::Computed { workers } => Ok(if *workers <= 1 {
                hwperm_verify::expected_permutation_words(n)
            } else {
                hwperm_verify::expected_permutation_words_parallel(n, *workers)
            }),
            TableSource::Store { dir } => match OpenTable::open(dir, n)? {
                Some(table) => table.load_words(),
                None => Err(StoreError::Missing {
                    dir: dir.clone(),
                    n,
                }),
            },
        }
    }

    /// Human-readable description for reports and envelopes.
    pub fn describe(&self) -> String {
        match self {
            TableSource::Computed { workers } => format!("computed (workers = {workers})"),
            TableSource::Store { dir } => format!("store ({})", dir.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build, BuildOptions};
    use hwperm_verify::expected_permutation_words;

    fn built_store(tag: &str, n: usize, chunk_words: usize) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hwperm-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        build(
            &dir,
            n,
            &BuildOptions {
                jobs: 2,
                chunk_words,
                max_chunks: None,
            },
        )
        .unwrap();
        dir
    }

    #[test]
    fn range_reads_match_the_computed_table() {
        let store = built_store("reads", 5, 16);
        let table = OpenTable::open(&store, 5).unwrap().unwrap();
        let expected = expected_permutation_words(5);
        assert_eq!(table.total_words(), 120);
        assert_eq!(table.load_words().unwrap(), expected);
        // Ranges that start and end mid-chunk.
        let mut words = Vec::new();
        table.read_words_into(7..99, &mut words).unwrap();
        assert_eq!(words, expected[7..99]);
        let mut bytes = Vec::new();
        table.read_le_bytes_into(3..21, &mut bytes).unwrap();
        let mut want = Vec::new();
        for &w in &expected[3..21] {
            want.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(bytes, want);
        std::fs::remove_dir_all(&store).unwrap();
    }

    #[test]
    fn open_is_none_when_cold_and_verify_reports_coverage() {
        let empty = std::env::temp_dir().join(format!("hwperm-store-cold-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&empty);
        assert!(OpenTable::open(&empty, 5).unwrap().is_none());
        assert!(matches!(
            verify_store(&empty, 5),
            Err(StoreError::Missing { .. })
        ));
        assert_eq!(stat(&empty, 5).unwrap(), None);

        let store = built_store("vstat", 4, 8);
        let report = verify_store(&store, 4).unwrap();
        assert_eq!(
            report,
            StoreVerifyReport {
                n: 4,
                chunks: 3,
                words: 24,
                bytes: 3 * 36 + 24 * 8,
            }
        );
        let s = stat(&store, 4).unwrap().unwrap();
        assert!(s.complete);
        assert_eq!(s.chunks_present, 3);
        assert_eq!(s.bytes, report.bytes);
        std::fs::remove_dir_all(&store).unwrap();
    }

    #[test]
    fn partial_table_is_not_warm() {
        let dir = std::env::temp_dir().join(format!("hwperm-store-part-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        build(
            &dir,
            5,
            &BuildOptions {
                jobs: 1,
                chunk_words: 32,
                max_chunks: Some(2),
            },
        )
        .unwrap();
        assert!(OpenTable::open(&dir, 5).unwrap().is_none());
        let s = stat(&dir, 5).unwrap().unwrap();
        assert!(!s.complete);
        assert_eq!(s.chunks_present, 2);
        assert_eq!(s.chunks_total, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn table_source_variants_agree_and_store_is_strict() {
        let store = built_store("src", 5, 32);
        let computed = TableSource::Computed { workers: 2 }
            .permutation_words(5)
            .unwrap();
        let loaded = TableSource::Store { dir: store.clone() }
            .permutation_words(5)
            .unwrap();
        assert_eq!(computed, loaded);
        assert_eq!(computed, expected_permutation_words(5));

        // A store source never falls back to computing.
        let err = TableSource::Store { dir: store.clone() }
            .permutation_words(6)
            .unwrap_err();
        assert!(matches!(err, StoreError::Missing { n: 6, .. }), "{err}");

        assert_eq!(
            TableSource::Computed { workers: 4 }.describe(),
            "computed (workers = 4)"
        );
        std::fs::remove_dir_all(&store).unwrap();
    }
}
