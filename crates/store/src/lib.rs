#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Persisted oracle store: packed-u64 expectation tables on disk.
//!
//! Every exhaustive sweep, `prove` table-conformance obligation and
//! `hwperm serve` verify request compares the gate-level converter
//! against the table `[0, n!)` of packed permutation words. The table
//! is a pure function of `n` — regenerating it on every cold start is
//! the recompute-bound anti-pattern this crate removes: build it
//! **once** with the block-decoding engine, persist it as
//! integrity-checked chunks, and stream it back with buffered
//! sequential reads, so repeated verification and traffic bursts cost
//! disk I/O instead of unranking.
//!
//! ## Layout
//!
//! Tables are keyed by `(n, order, chunk)` under a versioned directory
//! tree:
//!
//! ```text
//! <store>/v1/<order>/n<NN>/chunk-<CCCCC>.hwt   chunked packed words
//! <store>/v1/<order>/n<NN>/manifest.txt        build/resume record
//! ```
//!
//! Each chunk file carries a fixed header (magic, schema version,
//! order, `n`, base index, word count) plus a content hash of its body
//! that is recomputed and compared on **every** load — a flipped byte,
//! a truncation, or a header that disagrees with its directory fails
//! loudly as a [`StoreError`]; nothing in this crate ever silently
//! falls back to recomputation. The hash is a small dedicated
//! multiply-xor chain over the body words ([`hash_words`]) — no new
//! dependencies, `forbid(unsafe_code)` preserved, so loading streams
//! buffered reads rather than memory-mapping.
//!
//! ## Building and resuming
//!
//! [`build`] generates chunks through the same sharded
//! [`BlockDecoder`](hwperm_factoradic::BlockDecoder) path as
//! `hwperm_verify::expected_permutation_words_parallel`: workers pull
//! chunk indices off a shared counter, each chunk pays one true
//! unranking plus in-place lexicographic successors, and every chunk
//! file is written atomically (temp file + rename). The manifest
//! records completed chunks after each rename, so a killed build
//! resumes from the manifest instead of restarting — and the resumed
//! store is byte-identical to a one-shot build, manifest included.
//!
//! ## Consuming
//!
//! [`OpenTable`] opens a complete table for range reads (the serve
//! layer streams `block` chunks straight off it); [`TableSource`]
//! abstracts "store-backed when a store dir is provided, computed
//! otherwise" for the sweep and prove consumers, byte-identical either
//! way.

mod build;
mod format;
mod manifest;
mod table;

pub use build::{build, BuildOptions, BuildReport};
pub use format::{hash_words, CHUNK_HEADER_LEN, STORE_MAGIC, STORE_SCHEMA_VERSION};
pub use manifest::{ChunkRecord, Manifest, MANIFEST_FILE};
pub use table::{stat, verify_store, OpenTable, StoreStat, StoreVerifyReport, TableSource};

use std::fmt;
use std::path::{Path, PathBuf};

/// Words per chunk file when [`BuildOptions`] does not override it:
/// 8192 packed words = 64 KiB of body per chunk, matching the serve
/// protocol's default wire chunk so a warm `block` request maps one
/// store chunk onto one binary frame.
pub const DEFAULT_CHUNK_WORDS: usize = 8192;

/// Largest `n` a store table can hold — the same bound as the
/// in-memory oracle tables (`9! = 362 880` words ≈ 2.8 MiB on disk).
pub const MAX_STORE_N: usize = 9;

/// Table orders the versioned layout namespaces. Lexicographic
/// permutation order is the only builder today; alternative orders
/// (ROADMAP item 3) slot in as sibling directories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Lexicographic permutation order — entry `i` is the packed word
    /// of the permutation at factoradic index `i`.
    Lex,
}

impl Order {
    /// Directory name of this order under `<store>/v1/`.
    pub fn as_str(self) -> &'static str {
        match self {
            Order::Lex => "lex",
        }
    }

    /// The chunk header's order id.
    pub fn id(self) -> u16 {
        match self {
            Order::Lex => 0,
        }
    }
}

/// The directory holding every chunk and the manifest of the `n`-table
/// (lexicographic order) under `store_dir`.
pub fn table_dir(store_dir: &Path, n: usize) -> PathBuf {
    store_dir
        .join("v1")
        .join(Order::Lex.as_str())
        .join(format!("n{n:02}"))
}

/// The chunk file name of chunk index `c`.
pub fn chunk_file_name(c: u64) -> String {
    format!("chunk-{c:05}.hwt")
}

pub(crate) fn check_store_n(n: usize) {
    assert!(
        (1..=MAX_STORE_N).contains(&n),
        "n = {n} out of the supported 1..={MAX_STORE_N} (store tables hold the full n! word table)"
    );
}

/// Why a store operation failed. Every variant is loud and terminal —
/// a corrupt, truncated, or stale store never silently degrades to
/// recomputation; the caller decides what to do with the evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem-level failure (open, read, write, rename).
    Io {
        /// The path the operation touched.
        path: PathBuf,
        /// The OS error text.
        error: String,
    },
    /// The file does not start with the store magic.
    BadMagic {
        /// The offending chunk file.
        path: PathBuf,
    },
    /// The chunk claims a schema version this build cannot read.
    SchemaVersion {
        /// The offending chunk file.
        path: PathBuf,
        /// The version the header claims.
        got: u16,
    },
    /// A chunk header field disagrees with the layout that addressed
    /// the file (a chunk copied between incompatible directories, or a
    /// corrupted header).
    HeaderMismatch {
        /// The offending chunk file.
        path: PathBuf,
        /// Which header field diverged (`"order"`, `"n"`, `"base"`,
        /// `"words"`).
        field: &'static str,
        /// The value the header carries.
        got: u64,
        /// The value the layout requires.
        want: u64,
    },
    /// The chunk file holds fewer bytes than its word count requires.
    Truncated {
        /// The offending chunk file.
        path: PathBuf,
        /// Bytes actually present.
        got: u64,
        /// Bytes the header + word count require.
        want: u64,
    },
    /// The body's recomputed content hash disagrees with the header —
    /// at least one body byte changed since the chunk was written.
    HashMismatch {
        /// The offending chunk file.
        path: PathBuf,
        /// The recomputed hash.
        got: u64,
        /// The hash the header recorded.
        want: u64,
    },
    /// The manifest is unparsable, internally inconsistent, or stale
    /// (it records state the directory no longer backs).
    Manifest {
        /// The manifest file.
        path: PathBuf,
        /// What exactly is wrong.
        reason: String,
    },
    /// A complete store table for `n` was required but is not present.
    Missing {
        /// The store root that was searched.
        dir: PathBuf,
        /// The table size requested.
        n: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, error } => {
                write!(f, "store I/O error at {}: {error}", path.display())
            }
            StoreError::BadMagic { path } => {
                write!(
                    f,
                    "{}: not a hwperm store chunk (bad magic)",
                    path.display()
                )
            }
            StoreError::SchemaVersion { path, got } => write!(
                f,
                "{}: unsupported store schema version {got} (this build reads {})",
                path.display(),
                STORE_SCHEMA_VERSION
            ),
            StoreError::HeaderMismatch {
                path,
                field,
                got,
                want,
            } => write!(
                f,
                "{}: chunk header {field} mismatch: file says {got}, layout requires {want}",
                path.display()
            ),
            StoreError::Truncated { path, got, want } => write!(
                f,
                "{}: truncated chunk: {got} byte(s) on disk, {want} required",
                path.display()
            ),
            StoreError::HashMismatch { path, got, want } => write!(
                f,
                "{}: chunk content hash mismatch: recomputed {got:#018x}, header says {want:#018x}",
                path.display()
            ),
            StoreError::Manifest { path, reason } => {
                write!(f, "{}: stale or invalid manifest: {reason}", path.display())
            }
            StoreError::Missing { dir, n } => write!(
                f,
                "no complete store table for n = {n} under {} (run `hwperm store build {n}`)",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {}

pub(crate) fn io_err(path: &Path, error: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        error: error.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_paths_are_versioned_and_zero_padded() {
        let dir = table_dir(Path::new("/tmp/s"), 8);
        assert_eq!(dir, PathBuf::from("/tmp/s/v1/lex/n08"));
        assert_eq!(chunk_file_name(3), "chunk-00003.hwt");
    }

    #[test]
    #[should_panic(expected = "out of the supported 1..=9")]
    fn oversized_n_rejected() {
        check_store_n(10);
    }

    #[test]
    fn error_messages_are_pinned() {
        let p = PathBuf::from("/s/chunk-00001.hwt");
        assert_eq!(
            StoreError::HashMismatch {
                path: p.clone(),
                got: 1,
                want: 2
            }
            .to_string(),
            "/s/chunk-00001.hwt: chunk content hash mismatch: \
             recomputed 0x0000000000000001, header says 0x0000000000000002"
        );
        assert_eq!(
            StoreError::Truncated {
                path: p.clone(),
                got: 10,
                want: 100
            }
            .to_string(),
            "/s/chunk-00001.hwt: truncated chunk: 10 byte(s) on disk, 100 required"
        );
        assert_eq!(
            StoreError::HeaderMismatch {
                path: p,
                field: "n",
                got: 7,
                want: 5
            }
            .to_string(),
            "/s/chunk-00001.hwt: chunk header n mismatch: file says 7, layout requires 5"
        );
        assert_eq!(
            StoreError::Missing {
                dir: PathBuf::from("/s"),
                n: 6
            }
            .to_string(),
            "no complete store table for n = 6 under /s (run `hwperm store build 6`)"
        );
    }
}
