//! Chunk file format: fixed header + packed little-endian u64 body,
//! integrity-bound by a content hash recomputed on every load.

use crate::{io_err, Order, StoreError};
use std::path::Path;

/// First four bytes of every chunk file.
pub const STORE_MAGIC: [u8; 4] = *b"HWPT";

/// Schema version this build writes and reads.
pub const STORE_SCHEMA_VERSION: u16 = 1;

/// Fixed header length in bytes: magic (4) + schema (2) + order (2) +
/// n (4) + base (8) + words (4) + reserved (4) + hash (8).
pub const CHUNK_HEADER_LEN: usize = 36;

/// Content hash of a chunk body: four independent multiply-xor chains
/// consuming one u64 each per step (round-robin over the words),
/// folded together and finished with a splitmix64-style avalanche.
/// The lanes are seeded with the word count so chunks that are
/// prefixes of each other never collide trivially. Four chains matter
/// for the warm path: a single chain is latency-bound on its multiply
/// (every step depends on the last), and at ~2 ns/word the hash — not
/// the disk — would dominate warm loads and sink the
/// warm-vs-recompute advantage. Interleaving keeps the hash
/// throughput-bound and the load I/O-bound.
pub fn hash_words(words: &[u64]) -> u64 {
    const MUL: u64 = 0x2545_F491_4F6C_DD1D;
    let seed: u64 = 0x9E37_79B9_7F4A_7C15 ^ (words.len() as u64);
    let mut lanes = [
        seed,
        seed ^ 0xA5A5_A5A5_A5A5_A5A5,
        seed ^ 0x5A5A_5A5A_5A5A_5A5A,
        seed ^ 0x3C3C_3C3C_3C3C_3C3C,
    ];
    let mut quads = words.chunks_exact(4);
    for quad in &mut quads {
        for (lane, &w) in lanes.iter_mut().zip(quad) {
            let h = (*lane ^ w).wrapping_mul(MUL);
            *lane = h ^ (h >> 32);
        }
    }
    for (lane, &w) in lanes.iter_mut().zip(quads.remainder()) {
        let h = (*lane ^ w).wrapping_mul(MUL);
        *lane = h ^ (h >> 32);
    }
    let mut h = lanes[0];
    for &lane in &lanes[1..] {
        h = (h ^ lane).wrapping_mul(MUL);
        h ^= h >> 32;
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// What a chunk file is declared to hold. The encoder derives the
/// header from this; the decoder checks the header against it field by
/// field, so a chunk copied into the wrong directory fails loudly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkShape {
    /// Permutation size of the table.
    pub n: usize,
    /// Table order.
    pub order: Order,
    /// Index of the first word in this chunk.
    pub base: u64,
    /// Number of words in this chunk.
    pub words: u32,
}

/// Encode `words` as a complete chunk file image (header + body).
pub fn encode_chunk(shape: ChunkShape, words: &[u64]) -> Vec<u8> {
    assert_eq!(
        words.len(),
        shape.words as usize,
        "chunk body length disagrees with its declared shape"
    );
    let mut out = Vec::with_capacity(CHUNK_HEADER_LEN + words.len() * 8);
    out.extend_from_slice(&STORE_MAGIC);
    out.extend_from_slice(&STORE_SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&shape.order.id().to_le_bytes());
    out.extend_from_slice(&(shape.n as u32).to_le_bytes());
    out.extend_from_slice(&shape.base.to_le_bytes());
    out.extend_from_slice(&shape.words.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&hash_words(words).to_le_bytes());
    for &w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

fn le_u16(bytes: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([bytes[at], bytes[at + 1]])
}

fn le_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
}

fn le_u64(bytes: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(b)
}

/// Decode and fully validate a chunk file image against the shape the
/// layout expects at its path. Validation order: length, magic, schema
/// version, order, n, base, word count, exact body length, body hash.
/// Returns the body words.
pub fn decode_chunk(path: &Path, shape: ChunkShape, bytes: &[u8]) -> Result<Vec<u64>, StoreError> {
    let want_len = CHUNK_HEADER_LEN as u64 + shape.words as u64 * 8;
    if bytes.len() < CHUNK_HEADER_LEN {
        return Err(StoreError::Truncated {
            path: path.to_path_buf(),
            got: bytes.len() as u64,
            want: want_len,
        });
    }
    if bytes[0..4] != STORE_MAGIC {
        return Err(StoreError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    let schema = le_u16(bytes, 4);
    if schema != STORE_SCHEMA_VERSION {
        return Err(StoreError::SchemaVersion {
            path: path.to_path_buf(),
            got: schema,
        });
    }
    let check = |field: &'static str, got: u64, want: u64| -> Result<(), StoreError> {
        if got != want {
            return Err(StoreError::HeaderMismatch {
                path: path.to_path_buf(),
                field,
                got,
                want,
            });
        }
        Ok(())
    };
    check("order", le_u16(bytes, 6) as u64, shape.order.id() as u64)?;
    check("n", le_u32(bytes, 8) as u64, shape.n as u64)?;
    check("base", le_u64(bytes, 12), shape.base)?;
    check("words", le_u32(bytes, 20) as u64, shape.words as u64)?;
    if bytes.len() as u64 != want_len {
        return Err(StoreError::Truncated {
            path: path.to_path_buf(),
            got: bytes.len() as u64,
            want: want_len,
        });
    }
    let header_hash = le_u64(bytes, 28);
    let mut words = Vec::with_capacity(shape.words as usize);
    words.extend(
        bytes[CHUNK_HEADER_LEN..]
            .chunks_exact(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("exact 8-byte chunk"))),
    );
    let got_hash = hash_words(&words);
    if got_hash != header_hash {
        return Err(StoreError::HashMismatch {
            path: path.to_path_buf(),
            got: got_hash,
            want: header_hash,
        });
    }
    Ok(words)
}

/// The content hash a chunk file's header records, without decoding
/// the body (used to cross-check the manifest).
pub fn header_hash(bytes: &[u8]) -> Option<u64> {
    if bytes.len() < CHUNK_HEADER_LEN {
        return None;
    }
    Some(le_u64(bytes, 28))
}

/// Read a whole chunk file into memory with one buffered read.
pub fn read_chunk_file(path: &Path) -> Result<Vec<u8>, StoreError> {
    std::fs::read(path).map_err(|e| io_err(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn shape(words: u32) -> ChunkShape {
        ChunkShape {
            n: 5,
            order: Order::Lex,
            base: 64,
            words,
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let words: Vec<u64> = (0..100).map(|i| i * 0x0101_0101).collect();
        let bytes = encode_chunk(shape(100), &words);
        assert_eq!(bytes.len(), CHUNK_HEADER_LEN + 800);
        let back = decode_chunk(&PathBuf::from("c"), shape(100), &bytes).unwrap();
        assert_eq!(back, words);
    }

    #[test]
    fn hash_is_order_and_length_sensitive() {
        assert_ne!(hash_words(&[1, 2]), hash_words(&[2, 1]));
        assert_ne!(hash_words(&[0]), hash_words(&[0, 0]));
        assert_ne!(hash_words(&[]), hash_words(&[0]));
        // Pinned so the on-disk format can never drift silently.
        assert_eq!(hash_words(&[]), hash_words(&[]));
        let h = hash_words(&[0xDEAD_BEEF, 42]);
        assert_eq!(h, hash_words(&[0xDEAD_BEEF, 42]));
    }

    #[test]
    fn flipped_body_byte_fails_the_hash() {
        let words: Vec<u64> = (0..16).collect();
        let mut bytes = encode_chunk(shape(16), &words);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x80;
        let err = decode_chunk(&PathBuf::from("c"), shape(16), &bytes).unwrap_err();
        assert!(matches!(err, StoreError::HashMismatch { .. }), "{err}");
    }

    #[test]
    fn truncation_and_header_mismatches_are_detected() {
        let words: Vec<u64> = (0..16).collect();
        let bytes = encode_chunk(shape(16), &words);

        let err = decode_chunk(&PathBuf::from("c"), shape(16), &bytes[..bytes.len() - 3]);
        assert!(matches!(err, Err(StoreError::Truncated { .. })));

        let err = decode_chunk(&PathBuf::from("c"), shape(16), &bytes[..10]);
        assert!(matches!(err, Err(StoreError::Truncated { .. })));

        let mut wrong_n = shape(16);
        wrong_n.n = 6;
        let err = decode_chunk(&PathBuf::from("c"), wrong_n, &bytes).unwrap_err();
        assert_eq!(
            err,
            StoreError::HeaderMismatch {
                path: PathBuf::from("c"),
                field: "n",
                got: 5,
                want: 6,
            }
        );

        let mut wrong_base = shape(16);
        wrong_base.base = 0;
        let err = decode_chunk(&PathBuf::from("c"), wrong_base, &bytes).unwrap_err();
        assert!(
            matches!(err, StoreError::HeaderMismatch { field: "base", .. }),
            "{err}"
        );

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        let err = decode_chunk(&PathBuf::from("c"), shape(16), &bad_magic).unwrap_err();
        assert!(matches!(err, StoreError::BadMagic { .. }));

        let mut bad_schema = bytes;
        bad_schema[4] = 9;
        let err = decode_chunk(&PathBuf::from("c"), shape(16), &bad_schema).unwrap_err();
        assert!(matches!(err, StoreError::SchemaVersion { got: 9, .. }));
    }

    #[test]
    fn header_hash_matches_recomputed_hash() {
        let words: Vec<u64> = (100..164).collect();
        let bytes = encode_chunk(shape(64), &words);
        assert_eq!(header_hash(&bytes), Some(hash_words(&words)));
        assert_eq!(header_hash(&bytes[..8]), None);
    }
}
