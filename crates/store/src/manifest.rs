//! Build/resume manifest: a deterministic text record of which chunks
//! of a table exist, rewritten atomically after every completed chunk
//! so a killed build can resume exactly where it stopped.

use crate::{io_err, StoreError, MAX_STORE_N};
use std::collections::BTreeMap;
use std::io::Write;
use std::ops::Range;
use std::path::Path;

/// File name of the manifest inside a table directory.
pub const MANIFEST_FILE: &str = "manifest.txt";

/// Per-chunk record: word count and content hash (the same hash the
/// chunk header carries, cross-checked on open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRecord {
    /// Words in the chunk.
    pub words: u32,
    /// Content hash of the chunk body.
    pub hash: u64,
}

/// The parsed manifest of one table directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Permutation size of the table.
    pub n: usize,
    /// Words per chunk (last chunk may be shorter).
    pub chunk_words: usize,
    /// Total words in the complete table (`n!`).
    pub total_words: u64,
    /// Whether every chunk has been built and recorded.
    pub complete: bool,
    /// Completed chunks by index.
    pub chunks: BTreeMap<u64, ChunkRecord>,
}

impl Manifest {
    /// A fresh, empty manifest for an `n`-table with the given chunking.
    pub fn new(n: usize, chunk_words: usize, total_words: u64) -> Self {
        Manifest {
            n,
            chunk_words,
            total_words,
            complete: false,
            chunks: BTreeMap::new(),
        }
    }

    /// How many chunks the complete table has.
    pub fn chunks_total(&self) -> u64 {
        self.total_words.div_ceil(self.chunk_words as u64)
    }

    /// The word-index range chunk `c` covers.
    pub fn chunk_range(&self, c: u64) -> Range<u64> {
        let start = c * self.chunk_words as u64;
        let end = (start + self.chunk_words as u64).min(self.total_words);
        start..end
    }

    /// Render the manifest deterministically: fixed header lines, then
    /// chunk lines sorted by index. Byte-identical for the same state
    /// regardless of build order or worker count.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("hwperm-store v1\n");
        out.push_str("order lex\n");
        out.push_str(&format!("n {}\n", self.n));
        out.push_str(&format!("chunk_words {}\n", self.chunk_words));
        out.push_str(&format!("total_words {}\n", self.total_words));
        out.push_str(&format!("complete {}\n", u8::from(self.complete)));
        for (&c, rec) in &self.chunks {
            out.push_str(&format!("chunk {c} {} {:016x}\n", rec.words, rec.hash));
        }
        out
    }

    /// Parse and validate manifest text. Any structural or consistency
    /// problem is a [`StoreError::Manifest`] naming the reason.
    pub fn parse(path: &Path, text: &str) -> Result<Self, StoreError> {
        let bad = |reason: String| StoreError::Manifest {
            path: path.to_path_buf(),
            reason,
        };
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        if header != "hwperm-store v1" {
            return Err(bad(format!("unrecognized header line {header:?}")));
        }
        let mut field = |name: &str| -> Result<String, StoreError> {
            let line = lines.next().unwrap_or("");
            line.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| bad(format!("expected `{name} ...`, found {line:?}")))
        };
        let order = field("order")?;
        if order != "lex" {
            return Err(bad(format!("unknown order {order:?}")));
        }
        let n: usize = field("n")?
            .parse()
            .map_err(|_| bad("unparsable n".into()))?;
        if !(1..=MAX_STORE_N).contains(&n) {
            return Err(bad(format!(
                "n = {n} out of the supported 1..={MAX_STORE_N}"
            )));
        }
        let chunk_words: usize = field("chunk_words")?
            .parse()
            .map_err(|_| bad("unparsable chunk_words".into()))?;
        if chunk_words == 0 {
            return Err(bad("chunk_words must be positive".into()));
        }
        let total_words: u64 = field("total_words")?
            .parse()
            .map_err(|_| bad("unparsable total_words".into()))?;
        let factorial: u64 = (1..=n as u64).product();
        if total_words != factorial {
            return Err(bad(format!(
                "total_words {total_words} is not {n}! = {factorial}"
            )));
        }
        let complete = match field("complete")?.as_str() {
            "0" => false,
            "1" => true,
            other => return Err(bad(format!("unparsable complete flag {other:?}"))),
        };
        let mut manifest = Manifest::new(n, chunk_words, total_words);
        manifest.complete = complete;
        let chunks_total = manifest.chunks_total();
        for line in lines {
            let mut parts = line.split(' ');
            let tag = parts.next().unwrap_or("");
            if tag != "chunk" {
                return Err(bad(format!("expected `chunk ...`, found {line:?}")));
            }
            let c: u64 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad(format!("unparsable chunk line {line:?}")))?;
            let words: u32 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad(format!("unparsable chunk line {line:?}")))?;
            let hash = parts
                .next()
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or_else(|| bad(format!("unparsable chunk line {line:?}")))?;
            if parts.next().is_some() {
                return Err(bad(format!("trailing fields in chunk line {line:?}")));
            }
            if c >= chunks_total {
                return Err(bad(format!(
                    "chunk index {c} beyond the {chunks_total} chunk(s) of the table"
                )));
            }
            let range = manifest.chunk_range(c);
            let expect = (range.end - range.start) as u32;
            if words != expect {
                return Err(bad(format!(
                    "chunk {c} records {words} word(s), layout requires {expect}"
                )));
            }
            if manifest
                .chunks
                .insert(c, ChunkRecord { words, hash })
                .is_some()
            {
                return Err(bad(format!("duplicate chunk index {c}")));
            }
        }
        if complete && manifest.chunks.len() as u64 != chunks_total {
            return Err(bad(format!(
                "marked complete but records {} of {chunks_total} chunk(s)",
                manifest.chunks.len()
            )));
        }
        Ok(manifest)
    }

    /// Load the manifest from a table directory. `Ok(None)` means no
    /// manifest exists (a table never started); parse failures are
    /// loud.
    pub fn load(dir: &Path) -> Result<Option<Self>, StoreError> {
        let path = dir.join(MANIFEST_FILE);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(&path, e)),
        };
        Self::parse(&path, &text).map(Some)
    }

    /// Rewrite the manifest atomically: write a temp file, flush, then
    /// rename over the real name so readers only ever see a complete
    /// manifest.
    pub fn write_atomic(&self, dir: &Path) -> Result<(), StoreError> {
        let path = dir.join(MANIFEST_FILE);
        let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
        write_file_atomic(&tmp, &path, self.render().as_bytes())
    }
}

/// Write `bytes` to `tmp`, flush, and rename onto `path`.
pub(crate) fn write_file_atomic(tmp: &Path, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let mut file = std::fs::File::create(tmp).map_err(|e| io_err(tmp, e))?;
    file.write_all(bytes).map_err(|e| io_err(tmp, e))?;
    file.sync_all().map_err(|e| io_err(tmp, e))?;
    drop(file);
    std::fs::rename(tmp, path).map_err(|e| io_err(path, e))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut m = Manifest::new(5, 32, 120);
        m.chunks.insert(
            0,
            ChunkRecord {
                words: 32,
                hash: 0xAB,
            },
        );
        m.chunks.insert(
            3,
            ChunkRecord {
                words: 24,
                hash: 0xCD,
            },
        );
        m
    }

    #[test]
    fn chunk_geometry() {
        let m = sample();
        assert_eq!(m.chunks_total(), 4);
        assert_eq!(m.chunk_range(0), 0..32);
        assert_eq!(m.chunk_range(3), 96..120);
    }

    #[test]
    fn render_parse_round_trips() {
        let m = sample();
        let text = m.render();
        assert_eq!(
            text,
            "hwperm-store v1\norder lex\nn 5\nchunk_words 32\ntotal_words 120\n\
             complete 0\nchunk 0 32 00000000000000ab\nchunk 3 24 00000000000000cd\n"
        );
        let back = Manifest::parse(Path::new("m"), &text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn garbled_manifests_fail_loudly() {
        let reject = |text: &str, needle: &str| {
            let err = Manifest::parse(Path::new("m"), text).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("stale or invalid manifest") && msg.contains(needle),
                "{msg} (wanted {needle:?})"
            );
        };
        reject("not a manifest\n", "unrecognized header");
        reject("hwperm-store v1\norder colex\n", "unknown order");
        reject(
            "hwperm-store v1\norder lex\nn 5\nchunk_words 32\ntotal_words 121\n",
            "is not 5!",
        );
        reject(
            "hwperm-store v1\norder lex\nn 5\nchunk_words 32\ntotal_words 120\ncomplete 1\n",
            "marked complete but records 0 of 4",
        );
        reject(
            "hwperm-store v1\norder lex\nn 5\nchunk_words 32\ntotal_words 120\n\
             complete 0\nchunk 9 32 00\n",
            "beyond the 4 chunk(s)",
        );
        reject(
            "hwperm-store v1\norder lex\nn 5\nchunk_words 32\ntotal_words 120\n\
             complete 0\nchunk 3 32 00\n",
            "layout requires 24",
        );
        reject(
            "hwperm-store v1\norder lex\nn 5\nchunk_words 32\ntotal_words 120\n\
             complete 0\nchunk 0 32 00\nchunk 0 32 00\n",
            "duplicate chunk index 0",
        );
    }

    #[test]
    fn load_distinguishes_absent_from_broken() {
        let dir = std::env::temp_dir().join(format!("hwperm-store-mtest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), None);
        let m = sample();
        m.write_atomic(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), Some(m));
        std::fs::write(dir.join(MANIFEST_FILE), "junk\n").unwrap();
        assert!(Manifest::load(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
