//! Store corruption and resume coverage: every tampering mode must
//! fail loudly with its pinned error — never silently recompute — and
//! a killed build must resume into a byte-identical store.

use hwperm_store::{
    build, chunk_file_name, table_dir, BuildOptions, OpenTable, StoreError, MANIFEST_FILE,
};
use std::path::PathBuf;

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hwperm-store-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_build(tag: &str) -> PathBuf {
    let store = temp_store(tag);
    // n = 5 at 32 words/chunk -> 4 chunks of 120 words total.
    build(
        &store,
        5,
        &BuildOptions {
            jobs: 2,
            chunk_words: 32,
            max_chunks: None,
        },
    )
    .unwrap();
    store
}

#[test]
fn flipped_byte_in_a_chunk_body_fails_the_content_hash() {
    let store = small_build("flip");
    let chunk = table_dir(&store, 5).join(chunk_file_name(1));
    let mut bytes = std::fs::read(&chunk).unwrap();
    let mid = bytes.len() - 17;
    bytes[mid] ^= 0x01;
    std::fs::write(&chunk, &bytes).unwrap();

    let table = OpenTable::open(&store, 5).unwrap().unwrap();
    // Chunk 0 is untouched and still reads fine...
    assert_eq!(table.read_chunk(0).unwrap().len(), 32);
    // ...but the tampered chunk fails loudly with the pinned message.
    let err = table.read_chunk(1).unwrap_err();
    assert!(matches!(err, StoreError::HashMismatch { .. }), "{err}");
    assert!(
        err.to_string().contains("chunk content hash mismatch"),
        "{err}"
    );
    // And a full-table load that crosses it fails the same way.
    assert!(table.load_words().is_err());
    std::fs::remove_dir_all(&store).unwrap();
}

#[test]
fn truncated_chunk_reports_on_disk_vs_required_bytes() {
    let store = small_build("trunc");
    let chunk = table_dir(&store, 5).join(chunk_file_name(2));
    let bytes = std::fs::read(&chunk).unwrap();
    std::fs::write(&chunk, &bytes[..bytes.len() - 40]).unwrap();

    let table = OpenTable::open(&store, 5).unwrap().unwrap();
    let err = table.read_chunk(2).unwrap_err();
    assert_eq!(
        err.to_string(),
        format!(
            "{}: truncated chunk: {} byte(s) on disk, {} required",
            chunk.display(),
            bytes.len() - 40,
            bytes.len()
        )
    );
    std::fs::remove_dir_all(&store).unwrap();
}

#[test]
fn header_n_mismatch_is_caught_before_the_body_is_trusted() {
    let store = small_build("hdrn");
    let chunk = table_dir(&store, 5).join(chunk_file_name(0));
    let mut bytes = std::fs::read(&chunk).unwrap();
    // n lives at header offset 8 as a little-endian u32.
    bytes[8] = 7;
    std::fs::write(&chunk, &bytes).unwrap();

    let table = OpenTable::open(&store, 5).unwrap().unwrap();
    let err = table.read_chunk(0).unwrap_err();
    assert!(
        matches!(
            err,
            StoreError::HeaderMismatch {
                field: "n",
                got: 7,
                want: 5,
                ..
            }
        ),
        "{err}"
    );
    assert!(err.to_string().contains("chunk header n mismatch"), "{err}");
    std::fs::remove_dir_all(&store).unwrap();
}

#[test]
fn stale_manifest_fails_loudly_not_silently() {
    // Recorded chunk deleted after the manifest was written: a resume
    // must refuse rather than trust the record.
    let store = small_build("stale");
    let dir = table_dir(&store, 5);
    std::fs::remove_file(dir.join(chunk_file_name(3))).unwrap();
    let err = build(
        &store,
        5,
        &BuildOptions {
            jobs: 1,
            chunk_words: 32,
            max_chunks: None,
        },
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("stale or invalid manifest") && msg.contains("recorded chunk 3 is missing"),
        "{msg}"
    );

    // Garbled manifest text: opening the table is an error, not a
    // cold-start None (which would let callers silently recompute).
    std::fs::write(dir.join(MANIFEST_FILE), "hwperm-store v1\norder lex\nn 6\n").unwrap();
    let err = OpenTable::open(&store, 5).unwrap_err();
    assert!(
        err.to_string().contains("stale or invalid manifest"),
        "{err}"
    );
    std::fs::remove_dir_all(&store).unwrap();
}

#[test]
fn manifest_chunk_hash_cross_check_catches_swapped_files() {
    // Two chunks with valid headers and hashes, swapped on disk: each
    // file's self-check would pass at the *other* index's shape only
    // if base/words matched, but base differs — and even a crafted
    // file that passes its own hash must still match the manifest.
    let store = small_build("swap");
    let dir = table_dir(&store, 5);
    // Rebuild chunk 1's record in the manifest with a wrong hash by
    // editing the manifest line directly.
    let mpath = dir.join(MANIFEST_FILE);
    let text = std::fs::read_to_string(&mpath).unwrap();
    let patched: String = text
        .lines()
        .map(|line| {
            if line.starts_with("chunk 1 ") {
                let mut parts: Vec<&str> = line.split(' ').collect();
                parts[3] = "0123456789abcdef";
                parts.join(" ") + "\n"
            } else {
                format!("{line}\n")
            }
        })
        .collect();
    std::fs::write(&mpath, patched).unwrap();

    let table = OpenTable::open(&store, 5).unwrap().unwrap();
    let err = table.read_chunk(1).unwrap_err();
    assert!(
        err.to_string()
            .contains("disagrees with the manifest record"),
        "{err}"
    );
    std::fs::remove_dir_all(&store).unwrap();
}

#[test]
fn killed_build_resumes_byte_identical_to_one_shot() {
    let resumed = temp_store("resume");
    let oneshot = temp_store("oneshot");
    let options = BuildOptions {
        jobs: 2,
        chunk_words: 32,
        max_chunks: None,
    };

    // "Kill" the first build after two of the four chunks.
    let partial = build(
        &resumed,
        5,
        &BuildOptions {
            max_chunks: Some(2),
            ..options.clone()
        },
    )
    .unwrap();
    assert_eq!(partial.built, 2);
    assert!(!partial.complete);
    assert!(OpenTable::open(&resumed, 5).unwrap().is_none());

    // Resume picks up the remaining chunks only.
    let rest = build(&resumed, 5, &options).unwrap();
    assert_eq!(rest.resumed, 2);
    assert_eq!(rest.built, 2);
    assert!(rest.complete);

    let full = build(&oneshot, 5, &options).unwrap();
    assert_eq!(full.built, 4);

    // Byte-identical: every chunk file and the manifest itself.
    let rdir = table_dir(&resumed, 5);
    let odir = table_dir(&oneshot, 5);
    for c in 0..4u64 {
        let name = chunk_file_name(c);
        assert_eq!(
            std::fs::read(rdir.join(&name)).unwrap(),
            std::fs::read(odir.join(&name)).unwrap(),
            "chunk {c} diverged between resumed and one-shot builds"
        );
    }
    assert_eq!(
        std::fs::read(rdir.join(MANIFEST_FILE)).unwrap(),
        std::fs::read(odir.join(MANIFEST_FILE)).unwrap()
    );
    assert_eq!(
        OpenTable::open(&resumed, 5)
            .unwrap()
            .unwrap()
            .load_words()
            .unwrap(),
        OpenTable::open(&oneshot, 5)
            .unwrap()
            .unwrap()
            .load_words()
            .unwrap()
    );
    std::fs::remove_dir_all(&resumed).unwrap();
    std::fs::remove_dir_all(&oneshot).unwrap();
}
