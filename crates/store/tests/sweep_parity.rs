//! Acceptance regression: a store-backed sweep and a computed sweep
//! see byte-identical expectation words, and — when the netlist is
//! wrong — report the *identical* first-mismatch witness at every
//! simulation width (64/256/512 lanes).

use hwperm_circuits::{converter_netlist, ConverterOptions};
use hwperm_logic::{W256, W512};
use hwperm_store::{build, BuildOptions, TableSource};
use hwperm_verify::{
    exhaustive_check_batched_wide, expected_permutation_words, ExhaustiveMismatch,
};
use std::path::PathBuf;

const N: usize = 5;

fn warm_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hwperm-store-sweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    build(
        &dir,
        N,
        &BuildOptions {
            jobs: 2,
            chunk_words: 48,
            max_chunks: None,
        },
    )
    .unwrap();
    dir
}

#[test]
fn store_backed_and_computed_tables_are_byte_identical() {
    let store = warm_store("bytes");
    let computed = TableSource::Computed { workers: 3 }
        .permutation_words(N)
        .unwrap();
    let loaded = TableSource::Store { dir: store.clone() }
        .permutation_words(N)
        .unwrap();
    assert_eq!(computed, loaded);
    assert_eq!(computed, expected_permutation_words(N));
    std::fs::remove_dir_all(&store).unwrap();
}

#[test]
fn correct_converter_passes_both_sources_at_every_width() {
    let store = warm_store("pass");
    let netlist = converter_netlist(N, ConverterOptions::default());
    for table in [
        TableSource::Computed { workers: 1 }
            .permutation_words(N)
            .unwrap(),
        TableSource::Store { dir: store.clone() }
            .permutation_words(N)
            .unwrap(),
    ] {
        exhaustive_check_batched_wide::<u64>(&netlist, "index", "perm", &table).unwrap();
        exhaustive_check_batched_wide::<W256>(&netlist, "index", "perm", &table).unwrap();
        exhaustive_check_batched_wide::<W512>(&netlist, "index", "perm", &table).unwrap();
    }
    std::fs::remove_dir_all(&store).unwrap();
}

#[test]
fn first_mismatch_witness_is_identical_across_sources_and_widths() {
    let store = warm_store("witness");
    let netlist = converter_netlist(N, ConverterOptions::default());

    // Poison the same two entries in both tables: the sweep must
    // report the lowest poisoned index, identically, regardless of
    // where the table came from or how wide the simulator batches.
    let poison = |mut table: Vec<u64>| {
        table[37] ^= 0b11;
        table[90] ^= 0b11;
        table
    };
    let computed = poison(
        TableSource::Computed { workers: 2 }
            .permutation_words(N)
            .unwrap(),
    );
    let loaded = poison(
        TableSource::Store { dir: store.clone() }
            .permutation_words(N)
            .unwrap(),
    );

    let mut witnesses: Vec<ExhaustiveMismatch> = Vec::new();
    for table in [&computed, &loaded] {
        witnesses.push(
            exhaustive_check_batched_wide::<u64>(&netlist, "index", "perm", table).unwrap_err(),
        );
        witnesses.push(
            exhaustive_check_batched_wide::<W256>(&netlist, "index", "perm", table).unwrap_err(),
        );
        witnesses.push(
            exhaustive_check_batched_wide::<W512>(&netlist, "index", "perm", table).unwrap_err(),
        );
    }
    let first = &witnesses[0];
    assert_eq!(first.index, 37, "lowest poisoned index wins: {first:?}");
    for w in &witnesses[1..] {
        assert_eq!(w, first, "witness diverged across source/width");
    }
    std::fs::remove_dir_all(&store).unwrap();
}
