//! Parallel block generation over the index space.
//!
//! The paper's converter exists so "parallel machines interact through a
//! shared memory" can each derive their own permutations. The software
//! analogue: split `[0, n!)` (or any sub-range) into per-worker blocks,
//! unrank each block's start once (`O(n²)`), then walk lexicographic
//! successors (`O(n)` amortized). Workers share nothing but the final
//! reduction, done over `std::thread` scoped threads.

use hwperm_bignum::Ubig;
use hwperm_factoradic::IndexedPermutations;
use hwperm_perm::Permutation;

/// A partition of an index range into contiguous worker blocks.
#[derive(Debug, Clone)]
pub struct ParallelPlan {
    n: usize,
    /// Block boundaries: `blocks[i]..blocks[i+1]` is worker `i`'s range.
    boundaries: Vec<Ubig>,
}

impl ParallelPlan {
    /// Splits `[start, end)` (clamped to `n!`) into `workers` near-equal
    /// blocks.
    ///
    /// # Panics
    /// Panics if `workers == 0` or `start > end`.
    pub fn new(n: usize, start: &Ubig, end: &Ubig, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        let nfact = Ubig::factorial(n as u64);
        let end = end.clone().min(nfact);
        assert!(*start <= end, "start beyond end");
        let span = &end - start;
        // Balanced split: the remainder is spread one item each over the
        // leading blocks, so sizes differ by at most one. (A naive
        // "last block absorbs the remainder" collapses when the span is
        // smaller than `workers`: per = 0 and one block gets everything.)
        let (per, rem) = span.divrem_u64(workers as u64);
        let one = Ubig::from(1u64);
        let mut boundaries = Vec::with_capacity(workers + 1);
        let mut cursor = start.clone();
        for i in 0..workers {
            boundaries.push(cursor.clone());
            cursor = &cursor + &per;
            if (i as u64) < rem {
                cursor = &cursor + &one;
            }
        }
        boundaries.push(end);
        ParallelPlan { n, boundaries }
    }

    /// The whole space `[0, n!)` over `workers` blocks.
    pub fn full(n: usize, workers: usize) -> Self {
        Self::new(n, &Ubig::zero(), &Ubig::factorial(n as u64), workers)
    }

    /// Number of worker blocks.
    pub fn workers(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// Iterator over worker `i`'s block.
    pub fn block(&self, i: usize) -> IndexedPermutations {
        IndexedPermutations::new(
            self.n,
            self.boundaries[i].clone(),
            self.boundaries[i + 1].clone(),
        )
    }
}

/// Counts permutations in `[start, end)` satisfying `predicate`, fanned
/// out over `workers` OS threads.
pub fn parallel_count<F>(plan: &ParallelPlan, predicate: F) -> u64
where
    F: Fn(&Permutation) -> bool + Sync,
{
    parallel_reduce(
        plan,
        |block| block.filter(|(_, p)| predicate(p)).count() as u64,
        0u64,
        |a, b| a + b,
    )
}

/// General fork–join reduction: `map` runs once per worker block on its
/// own thread; results are folded with `combine` (order-independent
/// combines recommended; blocks are combined in worker order).
pub fn parallel_reduce<T, M, C>(plan: &ParallelPlan, map: M, init: T, combine: C) -> T
where
    T: Send,
    M: Fn(IndexedPermutations) -> T + Sync,
    C: Fn(T, T) -> T,
{
    let results: Vec<T> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..plan.workers())
            .map(|i| {
                let block = plan.block(i);
                let map = &map;
                scope.spawn(move || map(block))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    results.into_iter().fold(init, combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_blocks_tile_the_range() {
        let plan = ParallelPlan::full(5, 4);
        assert_eq!(plan.workers(), 4);
        let total: usize = (0..4).map(|i| plan.block(i).count()).sum();
        assert_eq!(total, 120);
        // Blocks are disjoint and ordered.
        let mut last = None;
        for i in 0..4 {
            for (index, _) in plan.block(i) {
                if let Some(prev) = last.take() {
                    assert!(index > prev);
                }
                last = Some(index);
            }
        }
    }

    #[test]
    fn remainder_spread_over_leading_blocks() {
        // 120 over 7 workers: 120 = 7·17 + 1, so the first block gets 18
        // and the rest 17 — sizes never differ by more than one.
        let plan = ParallelPlan::full(5, 7);
        let sizes: Vec<usize> = (0..7).map(|i| plan.block(i).count()).collect();
        assert_eq!(sizes, [18, 17, 17, 17, 17, 17, 17]);
    }

    #[test]
    fn parallel_count_matches_serial_derangements() {
        // Known: d_6 = 265 derangements of 6 elements.
        let serial = IndexedPermutations::all(6)
            .filter(|(_, p)| p.is_derangement())
            .count() as u64;
        assert_eq!(serial, 265);
        for workers in [1usize, 2, 3, 8] {
            let plan = ParallelPlan::full(6, workers);
            assert_eq!(
                parallel_count(&plan, |p| p.is_derangement()),
                265,
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn parallel_reduce_collects_extremes() {
        // Max inversions over all of S_5 must be 10 regardless of split.
        let plan = ParallelPlan::full(5, 3);
        let max_inv = parallel_reduce(
            &plan,
            |block| block.map(|(_, p)| p.inversions()).max().unwrap_or(0),
            0,
            u64::max,
        );
        assert_eq!(max_inv, 10);
    }

    #[test]
    fn sub_range_plans() {
        let plan = ParallelPlan::new(5, &Ubig::from(10u64), &Ubig::from(50u64), 4);
        let total: usize = (0..4).map(|i| plan.block(i).count()).sum();
        assert_eq!(total, 40);
        assert_eq!(plan.block(0).next().unwrap().0.to_u64(), Some(10));
    }

    #[test]
    fn end_clamped_to_n_factorial() {
        let plan = ParallelPlan::new(4, &Ubig::zero(), &Ubig::from(10_000u64), 2);
        let total: usize = (0..2).map(|i| plan.block(i).count()).sum();
        assert_eq!(total, 24);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        ParallelPlan::full(4, 0);
    }

    #[test]
    fn more_workers_than_items() {
        // Degenerate split: 3 items over 8 workers must give the three
        // leading blocks one item each, not dump all 3 on one block.
        let plan = ParallelPlan::new(4, &Ubig::zero(), &Ubig::from(3u64), 8);
        let sizes: Vec<usize> = (0..8).map(|i| plan.block(i).count()).collect();
        assert_eq!(sizes, [1, 1, 1, 0, 0, 0, 0, 0]);
        assert_eq!(parallel_count(&plan, |_| true), 3);
    }

    #[test]
    fn balanced_split_blocks_stay_contiguous_and_ordered() {
        // Every (span, workers) pairing tiles the range in order with
        // block sizes within one of each other.
        for workers in 1..=9usize {
            for end in [0u64, 1, 5, 23, 24] {
                let plan = ParallelPlan::new(4, &Ubig::zero(), &Ubig::from(end), workers);
                let sizes: Vec<usize> = (0..workers).map(|i| plan.block(i).count()).collect();
                let total: usize = sizes.iter().sum();
                assert_eq!(total as u64, end.min(24), "span {end} x {workers}");
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced {sizes:?}");
                let mut next = 0u64;
                for (i, size) in sizes.iter().enumerate() {
                    if let Some((first, _)) = plan.block(i).next() {
                        assert_eq!(first.to_u64(), Some(next), "block {i} not contiguous");
                    }
                    next += *size as u64;
                }
            }
        }
    }
}
