//! Unified permutation sources.

use hwperm_bignum::Ubig;
use hwperm_circuits::{
    ConverterOptions, IndexToPermConverter, KnuthShuffleCircuit, RandomIndexGenerator,
    ShuffleOptions,
};
use hwperm_factoradic::unrank;
use hwperm_perm::{
    shuffle::{knuth_shuffle, knuth_shuffle_in_place},
    Permutation,
};
use hwperm_rng::XorShift64Star;

/// Anything that maps an index in `[0, n!)` to the corresponding
/// permutation in lexicographic order.
pub trait PermutationSource {
    /// Number of elements `n`.
    fn n(&self) -> usize;

    /// The `index`-th permutation.
    ///
    /// # Panics
    /// Implementations panic if `index >= n!`.
    fn permutation(&mut self, index: &Ubig) -> Permutation;

    /// Convenience for small indices.
    fn permutation_u64(&mut self, index: u64) -> Permutation {
        self.permutation(&Ubig::from(index))
    }
}

/// Pure-software unranking (the paper's microprocessor baseline).
#[derive(Debug, Clone)]
pub struct SoftwareSource {
    n: usize,
}

impl SoftwareSource {
    /// A software source for `n`-element permutations.
    pub fn new(n: usize) -> Self {
        SoftwareSource { n }
    }
}

impl PermutationSource for SoftwareSource {
    fn n(&self) -> usize {
        self.n
    }

    fn permutation(&mut self, index: &Ubig) -> Permutation {
        unrank(self.n, index)
    }
}

/// The Fig. 1 netlist, simulated bit-accurately.
#[derive(Debug, Clone)]
pub struct CircuitSource {
    converter: IndexToPermConverter,
}

impl CircuitSource {
    /// Combinational circuit source.
    pub fn new(n: usize) -> Self {
        CircuitSource {
            converter: IndexToPermConverter::new(n),
        }
    }

    /// Pipelined circuit source (latency `n − 1`, 1 permutation/clock).
    pub fn pipelined(n: usize) -> Self {
        CircuitSource {
            converter: IndexToPermConverter::with_options(
                n,
                ConverterOptions {
                    pipelined: true,
                    perm_input_port: false,
                },
            ),
        }
    }

    /// Access to the wrapped converter (resource reports, streaming).
    pub fn converter_mut(&mut self) -> &mut IndexToPermConverter {
        &mut self.converter
    }
}

impl PermutationSource for CircuitSource {
    fn n(&self) -> usize {
        self.converter.n()
    }

    fn permutation(&mut self, index: &Ubig) -> Permutation {
        self.converter.convert(index)
    }
}

/// The memory-based (LUT cascade) realization — Section II.B's remark.
#[derive(Debug, Clone)]
pub struct CascadeSource {
    cascade: hwperm_circuits::LutCascadeConverter,
}

impl CascadeSource {
    /// A cascade source (practical for `n ≤ 10`; see
    /// [`hwperm_circuits::LutCascadeConverter`]).
    pub fn new(n: usize) -> Self {
        CascadeSource {
            cascade: hwperm_circuits::LutCascadeConverter::new(n),
        }
    }

    /// Total ROM bits of the cascade.
    pub fn memory_bits(&self) -> u64 {
        self.cascade.memory_bits()
    }
}

impl PermutationSource for CascadeSource {
    fn n(&self) -> usize {
        self.cascade.n()
    }

    fn permutation(&mut self, index: &Ubig) -> Permutation {
        self.cascade.convert(index)
    }
}

/// Anything that emits a stream of (approximately) uniform random
/// permutations.
pub trait RandomPermSource {
    /// Number of elements `n`.
    fn n(&self) -> usize;

    /// The next random permutation.
    fn next_permutation(&mut self) -> Permutation;

    /// The next random permutation as the paper's packed
    /// `n·⌈log₂n⌉`-bit word. Draws from the same random sequence as
    /// [`RandomPermSource::next_permutation`] (interleaving the two is
    /// well-defined); sources with an allocation-free path override
    /// this, the default packs the allocating result.
    ///
    /// # Panics
    /// Panics if `n > 16` (the packed word would not fit a `u64`).
    fn next_packed_u64(&mut self) -> u64 {
        self.next_permutation().pack_u64()
    }

    /// Fills `out` with consecutive packed draws — exactly
    /// `out.len()` calls' worth of [`RandomPermSource::next_packed_u64`]
    /// randomness, so chunked and one-at-a-time consumption of a source
    /// see the same sequence. Bulk consumers (the serve data plane)
    /// call this once per outbound chunk.
    ///
    /// # Panics
    /// Panics if `n > 16` (the packed word would not fit a `u64`).
    fn fill_packed_u64(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.next_packed_u64();
        }
    }
}

/// Software Knuth shuffle over an unbiased host RNG.
#[derive(Debug, Clone)]
pub struct SoftwareRandomSource {
    n: usize,
    rng: XorShift64Star,
    /// Reused by the packed fast path (reset to identity per draw).
    scratch: Permutation,
}

impl SoftwareRandomSource {
    /// A software random source.
    pub fn new(n: usize, seed: u64) -> Self {
        SoftwareRandomSource {
            n,
            rng: XorShift64Star::new(seed),
            scratch: Permutation::identity(n),
        }
    }
}

impl RandomPermSource for SoftwareRandomSource {
    fn n(&self) -> usize {
        self.n
    }

    fn next_permutation(&mut self) -> Permutation {
        knuth_shuffle(self.n, &mut self.rng)
    }

    fn next_packed_u64(&mut self) -> u64 {
        // Same RNG consumption as `next_permutation` (shuffle of the
        // identity), but shuffling a reused scratch permutation —
        // allocation-free, and seed-for-seed identical to packing the
        // allocating path.
        self.scratch.reset_identity();
        knuth_shuffle_in_place(&mut self.scratch, &mut self.rng);
        self.scratch.pack_u64()
    }
}

/// The Fig. 3 Knuth shuffle circuit (bit-accurate netlist simulation).
#[derive(Debug, Clone)]
pub struct CircuitRandomSource {
    circuit: KnuthShuffleCircuit,
}

impl CircuitRandomSource {
    /// Default-configured circuit source.
    pub fn new(n: usize) -> Self {
        CircuitRandomSource {
            circuit: KnuthShuffleCircuit::new(n),
        }
    }

    /// Circuit source with explicit options.
    pub fn with_options(n: usize, options: ShuffleOptions) -> Self {
        CircuitRandomSource {
            circuit: KnuthShuffleCircuit::with_options(n, options),
        }
    }

    /// Access to the wrapped circuit.
    pub fn circuit_mut(&mut self) -> &mut KnuthShuffleCircuit {
        &mut self.circuit
    }
}

impl RandomPermSource for CircuitRandomSource {
    fn n(&self) -> usize {
        self.circuit.n()
    }

    fn next_permutation(&mut self) -> Permutation {
        self.circuit.next_permutation()
    }
}

/// The Fig. 2 random-index method (LFSR → ×n! → ≫m → converter).
#[derive(Debug, Clone)]
pub struct RandomIndexSource {
    generator: RandomIndexGenerator,
}

impl RandomIndexSource {
    /// Default-width generator.
    pub fn new(n: usize, seed: u64) -> Self {
        RandomIndexSource {
            generator: RandomIndexGenerator::new(n, seed),
        }
    }
}

impl RandomPermSource for RandomIndexSource {
    fn n(&self) -> usize {
        self.generator.n()
    }

    fn next_permutation(&mut self) -> Permutation {
        self.generator.next_permutation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_and_circuit_sources_agree() {
        let mut sw = SoftwareSource::new(6);
        let mut hw = CircuitSource::new(6);
        for index in [0u64, 1, 100, 719] {
            assert_eq!(sw.permutation_u64(index), hw.permutation_u64(index));
        }
    }

    #[test]
    fn all_three_realizations_agree() {
        // Software, gate-level comparator circuit, and memory cascade.
        let mut backends: Vec<Box<dyn PermutationSource>> = vec![
            Box::new(SoftwareSource::new(6)),
            Box::new(CircuitSource::new(6)),
            Box::new(CascadeSource::new(6)),
        ];
        for index in [0u64, 3, 359, 719] {
            let results: Vec<_> = backends
                .iter_mut()
                .map(|b| b.permutation_u64(index))
                .collect();
            assert_eq!(results[0], results[1]);
            assert_eq!(results[1], results[2]);
        }
    }

    #[test]
    fn pipelined_source_agrees_too() {
        let mut sw = SoftwareSource::new(5);
        let mut hw = CircuitSource::pipelined(5);
        for index in [0u64, 42, 119] {
            assert_eq!(sw.permutation_u64(index), hw.permutation_u64(index));
        }
    }

    #[test]
    fn random_sources_emit_valid_permutations() {
        let sources: Vec<Box<dyn RandomPermSource>> = vec![
            Box::new(SoftwareRandomSource::new(6, 1)),
            Box::new(CircuitRandomSource::new(6)),
            Box::new(RandomIndexSource::new(6, 1)),
        ];
        for mut src in sources {
            for _ in 0..20 {
                let p = src.next_permutation();
                assert_eq!(p.n(), 6);
                assert!(Permutation::try_from_slice(p.as_slice()).is_ok());
            }
        }
    }

    #[test]
    fn packed_fast_path_matches_allocating_path_seed_for_seed() {
        // Both paths must consume the RNG identically, so two sources
        // with the same seed stay in lockstep draw for draw — and
        // interleaving the two methods on one source is well-defined.
        let mut packed = SoftwareRandomSource::new(8, 33);
        let mut alloc = SoftwareRandomSource::new(8, 33);
        for draw in 0..200 {
            assert_eq!(
                packed.next_packed_u64(),
                alloc.next_permutation().pack_u64(),
                "draw {draw}"
            );
        }
        // Interleave on a single source against a pure packed replay.
        let mut mixed = SoftwareRandomSource::new(6, 5);
        let mut replay = SoftwareRandomSource::new(6, 5);
        for draw in 0..50 {
            let want = replay.next_packed_u64();
            let got = if draw % 2 == 0 {
                mixed.next_packed_u64()
            } else {
                mixed.next_permutation().pack_u64()
            };
            assert_eq!(got, want, "draw {draw}");
        }
    }

    #[test]
    fn default_packed_path_agrees_across_sources() {
        // Sources without an override use the default (pack the
        // allocating result); spot-check it yields valid packed words.
        let mut src = RandomIndexSource::new(5, 3);
        for _ in 0..10 {
            let word = src.next_packed_u64();
            let mut seen = 0u32;
            for field in 0..5 {
                let v = (word >> (field * 3)) & 0b111;
                assert!(v < 5);
                seen |= 1 << v;
            }
            assert_eq!(seen, 0b11111, "word {word:#x} is not a permutation");
        }
    }

    #[test]
    fn software_random_source_is_seeded() {
        let seq = |seed| {
            let mut s = SoftwareRandomSource::new(8, seed);
            (0..5).map(|_| s.next_permutation()).collect::<Vec<_>>()
        };
        assert_eq!(seq(9), seq(9));
        assert_ne!(seq(9), seq(10));
    }

    #[test]
    fn fill_packed_u64_matches_one_at_a_time_draws() {
        // Chunked consumption must be invisible: filling 100 slots in
        // uneven chunks yields the same sequence as 100 single draws.
        let mut single = SoftwareRandomSource::new(7, 42);
        let expected: Vec<u64> = (0..100).map(|_| single.next_packed_u64()).collect();
        let mut chunked = SoftwareRandomSource::new(7, 42);
        let mut got = vec![0u64; 100];
        let mut base = 0usize;
        for size in [1usize, 13, 32, 54] {
            chunked.fill_packed_u64(&mut got[base..base + size]);
            base += size;
        }
        assert_eq!(base, 100);
        assert_eq!(got, expected);
    }
}
