//! Producer/consumer streaming: a background thread generates
//! permutations "one per clock" into a bounded channel, decoupling
//! generation from consumption — the software analogue of the paper's
//! pipelined circuit feeding a downstream consumer (hash unit, BDD
//! evaluator) through a FIFO.

use hwperm_bignum::Ubig;
use hwperm_factoradic::IndexedPermutations;
use hwperm_perm::Permutation;
use std::sync::mpsc::{sync_channel, Receiver};
use std::thread::JoinHandle;

/// A stream of `(index, permutation)` pairs produced by a background
/// worker. Dropping the stream (or consuming it fully) shuts the
/// producer down cleanly.
pub struct PermutationStream {
    receiver: Option<Receiver<(Ubig, Permutation)>>,
    handle: Option<JoinHandle<()>>,
}

impl PermutationStream {
    /// Streams permutations with indices in `[start, end)` (clamped to
    /// `n!`) through a FIFO of `depth` entries.
    ///
    /// # Panics
    /// Panics if `depth == 0` or `start > n!`.
    pub fn new(n: usize, start: Ubig, end: Ubig, depth: usize) -> Self {
        assert!(depth >= 1, "FIFO depth must be at least 1");
        let (sender, receiver) = sync_channel(depth);
        let handle = std::thread::spawn(move || {
            for item in IndexedPermutations::new(n, start, end) {
                if sender.send(item).is_err() {
                    break; // consumer hung up
                }
            }
        });
        PermutationStream {
            receiver: Some(receiver),
            handle: Some(handle),
        }
    }

    /// Streams the whole space `[0, n!)`.
    pub fn all(n: usize, depth: usize) -> Self {
        Self::new(n, Ubig::zero(), Ubig::factorial(n as u64), depth)
    }

    /// Receives the next permutation, or `None` when the range is
    /// exhausted.
    pub fn recv(&mut self) -> Option<(Ubig, Permutation)> {
        self.receiver.as_ref().and_then(|r| r.recv().ok())
    }
}

impl Iterator for PermutationStream {
    type Item = (Ubig, Permutation);

    fn next(&mut self) -> Option<Self::Item> {
        self.recv()
    }
}

impl Drop for PermutationStream {
    fn drop(&mut self) {
        // Disconnect, then join so the worker never outlives the stream.
        drop(self.receiver.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwperm_factoradic::rank;

    #[test]
    fn streams_full_space_in_order() {
        let items: Vec<_> = PermutationStream::all(5, 8).collect();
        assert_eq!(items.len(), 120);
        for (i, (index, perm)) in items.iter().enumerate() {
            assert_eq!(index.to_u64(), Some(i as u64));
            assert_eq!(&rank(perm), index);
        }
    }

    #[test]
    fn streams_sub_range() {
        let items: Vec<_> =
            PermutationStream::new(5, Ubig::from(100u64), Ubig::from(110u64), 2).collect();
        assert_eq!(items.len(), 10);
        assert_eq!(items[0].0.to_u64(), Some(100));
    }

    #[test]
    fn early_drop_shuts_producer_down() {
        let mut stream = PermutationStream::all(8, 4); // 40,320 items
        let first = stream.recv().unwrap();
        assert!(first.1.is_identity());
        drop(stream); // must not hang or leak the producer
    }

    #[test]
    fn tiny_fifo_backpressure_preserves_order() {
        let items: Vec<_> = PermutationStream::all(4, 1).collect();
        assert_eq!(items.len(), 24);
        for w in items.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn empty_range_terminates_immediately() {
        let mut stream = PermutationStream::new(4, Ubig::from(5u64), Ubig::from(5u64), 3);
        assert!(stream.recv().is_none());
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn zero_depth_rejected() {
        PermutationStream::all(3, 0);
    }
}
