//! Producer/consumer streaming: a background thread generates
//! permutations "one per clock" into a bounded channel, decoupling
//! generation from consumption — the software analogue of the paper's
//! pipelined circuit feeding a downstream consumer (hash unit, BDD
//! evaluator) through a FIFO.
//!
//! Two producers share the pattern: [`PermutationStream`] yields
//! `(Ubig, Permutation)` pairs for any `n`;
//! [`PackedPermutationStream`] is the `n ≤ 16` fast path, yielding
//! `(u64, u64)` pairs straight from the block-decoding engine.

use hwperm_bignum::Ubig;
use hwperm_factoradic::{BlockDecoder, IndexedPermutations};
use hwperm_perm::Permutation;
use std::sync::mpsc::{sync_channel, Receiver};
use std::thread::JoinHandle;

/// A stream of `(index, permutation)` pairs produced by a background
/// worker. Dropping the stream (or consuming it fully) shuts the
/// producer down cleanly.
pub struct PermutationStream {
    receiver: Option<Receiver<(Ubig, Permutation)>>,
    handle: Option<JoinHandle<()>>,
}

impl PermutationStream {
    /// Streams permutations with indices in `[start, end)` (clamped to
    /// `n!`) through a FIFO of `depth` entries.
    ///
    /// # Panics
    /// Panics if `depth == 0` or `start > n!`.
    pub fn new(n: usize, start: Ubig, end: Ubig, depth: usize) -> Self {
        assert!(depth >= 1, "FIFO depth must be at least 1");
        let (sender, receiver) = sync_channel(depth);
        let handle = std::thread::spawn(move || {
            for item in IndexedPermutations::new(n, start, end) {
                if sender.send(item).is_err() {
                    break; // consumer hung up
                }
            }
        });
        PermutationStream {
            receiver: Some(receiver),
            handle: Some(handle),
        }
    }

    /// Streams the whole space `[0, n!)`.
    pub fn all(n: usize, depth: usize) -> Self {
        Self::new(n, Ubig::zero(), Ubig::factorial(n as u64), depth)
    }

    /// Receives the next permutation, or `None` when the range is
    /// exhausted.
    pub fn recv(&mut self) -> Option<(Ubig, Permutation)> {
        self.receiver.as_ref().and_then(|r| r.recv().ok())
    }
}

impl Iterator for PermutationStream {
    type Item = (Ubig, Permutation);

    fn next(&mut self) -> Option<Self::Item> {
        self.recv()
    }
}

impl Drop for PermutationStream {
    fn drop(&mut self) {
        // Disconnect, then join so the worker never outlives the stream.
        drop(self.receiver.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// How many indices the packed producer decodes per [`BlockDecoder`]
/// chunk: large enough to amortize the per-chunk bookkeeping, small
/// enough that a hung-up consumer is noticed promptly.
const PACKED_CHUNK: u64 = 1024;

/// [`PermutationStream`]'s `u64` fast path: a background worker
/// block-decodes `(index, packed_word)` pairs — one true unranking per
/// [`PACKED_CHUNK`] indices, in-place lexicographic successors for the
/// rest, no allocation in steady state — into a bounded channel.
///
/// Limited to `1 ≤ n ≤ 16` so both the index and the packed word fit a
/// `u64` (the same cap as [`BlockDecoder`]).
pub struct PackedPermutationStream {
    receiver: Option<Receiver<(u64, u64)>>,
    handle: Option<JoinHandle<()>>,
}

impl PackedPermutationStream {
    /// Streams packed permutations with indices in `[start, end)`
    /// (clamped to `n!`) through a FIFO of `depth` entries.
    ///
    /// # Panics
    /// Panics if `depth == 0`, `n` is outside `1..=16`, or `start > n!`.
    pub fn new(n: usize, start: u64, end: u64, depth: usize) -> Self {
        assert!(depth >= 1, "FIFO depth must be at least 1");
        // Validate on the caller's thread — a panic inside the producer
        // would be swallowed until join.
        let mut decoder = BlockDecoder::new(n);
        let total = decoder.total();
        assert!(start <= total, "start index beyond n!");
        let end = end.min(total);
        let (sender, receiver) = sync_channel(depth);
        let handle = std::thread::spawn(move || {
            let mut chunk =
                Vec::with_capacity(PACKED_CHUNK.min(end.saturating_sub(start)) as usize);
            let mut base = start;
            'produce: while base < end {
                let stop = (base + PACKED_CHUNK).min(end);
                chunk.clear();
                decoder.decode_words_into(base..stop, &mut chunk);
                for (offset, &word) in chunk.iter().enumerate() {
                    if sender.send((base + offset as u64, word)).is_err() {
                        break 'produce; // consumer hung up
                    }
                }
                base = stop;
            }
        });
        PackedPermutationStream {
            receiver: Some(receiver),
            handle: Some(handle),
        }
    }

    /// Streams the whole space `[0, n!)`.
    pub fn all(n: usize, depth: usize) -> Self {
        let total = BlockDecoder::new(n).total();
        Self::new(n, 0, total, depth)
    }

    /// Receives the next `(index, packed_word)` pair, or `None` when
    /// the range is exhausted.
    pub fn recv(&mut self) -> Option<(u64, u64)> {
        self.receiver.as_ref().and_then(|r| r.recv().ok())
    }
}

impl Iterator for PackedPermutationStream {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<Self::Item> {
        self.recv()
    }
}

impl Drop for PackedPermutationStream {
    fn drop(&mut self) {
        drop(self.receiver.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwperm_factoradic::rank;

    #[test]
    fn streams_full_space_in_order() {
        let items: Vec<_> = PermutationStream::all(5, 8).collect();
        assert_eq!(items.len(), 120);
        for (i, (index, perm)) in items.iter().enumerate() {
            assert_eq!(index.to_u64(), Some(i as u64));
            assert_eq!(&rank(perm), index);
        }
    }

    #[test]
    fn streams_sub_range() {
        let items: Vec<_> =
            PermutationStream::new(5, Ubig::from(100u64), Ubig::from(110u64), 2).collect();
        assert_eq!(items.len(), 10);
        assert_eq!(items[0].0.to_u64(), Some(100));
    }

    #[test]
    fn early_drop_shuts_producer_down() {
        let mut stream = PermutationStream::all(8, 4); // 40,320 items
        let first = stream.recv().unwrap();
        assert!(first.1.is_identity());
        drop(stream); // must not hang or leak the producer
    }

    #[test]
    fn tiny_fifo_backpressure_preserves_order() {
        let items: Vec<_> = PermutationStream::all(4, 1).collect();
        assert_eq!(items.len(), 24);
        for w in items.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn empty_range_terminates_immediately() {
        let mut stream = PermutationStream::new(4, Ubig::from(5u64), Ubig::from(5u64), 3);
        assert!(stream.recv().is_none());
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn zero_depth_rejected() {
        PermutationStream::all(3, 0);
    }

    #[test]
    fn packed_stream_matches_permutation_stream() {
        let packed: Vec<_> = PackedPermutationStream::all(5, 8).collect();
        let general: Vec<_> = PermutationStream::all(5, 8).collect();
        assert_eq!(packed.len(), 120);
        for ((pi, pw), (gi, gp)) in packed.iter().zip(&general) {
            assert_eq!(gi.to_u64(), Some(*pi));
            assert_eq!(gp.pack().to_u64(), Some(*pw), "index {pi}");
        }
    }

    #[test]
    fn packed_stream_sub_range_spans_chunk_boundaries() {
        // A range wider than one producer chunk, not chunk-aligned.
        let items: Vec<_> = PackedPermutationStream::new(7, 1000, 3500, 16).collect();
        assert_eq!(items.len(), 2500);
        assert_eq!(items[0].0, 1000);
        assert_eq!(items.last().unwrap().0, 3499);
        for w in items.windows(2) {
            assert_eq!(w[1].0, w[0].0 + 1);
        }
    }

    #[test]
    fn packed_stream_early_drop_shuts_producer_down() {
        let mut stream = PackedPermutationStream::all(10, 4); // 3.6M items
        let (index, word) = stream.recv().unwrap();
        assert_eq!(index, 0);
        assert_eq!(word, hwperm_perm::packed_identity_u64(10));
        drop(stream); // must not hang mid-chunk or leak the producer
    }

    #[test]
    fn packed_stream_empty_range_and_end_clamping() {
        let mut empty = PackedPermutationStream::new(4, 5, 5, 3);
        assert!(empty.recv().is_none());
        // end beyond n! is clamped, exactly like PermutationStream.
        let clamped: Vec<_> = PackedPermutationStream::new(3, 4, 1000, 3).collect();
        assert_eq!(clamped.len(), 2); // indices 4 and 5 only
    }

    #[test]
    #[should_panic(expected = "out of the supported 1..=16")]
    fn packed_stream_rejects_oversized_n_on_the_caller_thread() {
        PackedPermutationStream::all(17, 4);
    }

    #[test]
    #[should_panic(expected = "start index beyond n!")]
    fn packed_stream_rejects_out_of_range_start() {
        PackedPermutationStream::new(4, 25, 30, 3);
    }
}
