#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! High-level API over the whole reproduction.
//!
//! This crate is the entry point a downstream user would depend on. It
//! unifies the software and hardware-simulated implementations behind
//! two small traits and adds the throughput machinery the paper's
//! motivation calls for:
//!
//! - [`PermutationSource`]: index → permutation, implemented by
//!   [`SoftwareSource`] (the paper's "Xeon" side) and [`CircuitSource`]
//!   (the Fig. 1 netlist, combinational or pipelined);
//! - [`RandomPermSource`]: streams of random permutations, implemented
//!   by the software Knuth shuffle, the Fig. 3 circuit, its exact
//!   software mirror, and the Fig. 2 random-index method;
//! - [`parallel`]: fork–join block generation over `[0, n!)` — the
//!   "parallel machines interacting through a shared memory" use case;
//! - [`montecarlo`]: the paper's Section III experiments (Fig. 4
//!   uniformity histogram, derangement-based estimation of `e`).
//!
//! ```
//! use hwperm_core::{PermutationSource, SoftwareSource, CircuitSource};
//! use hwperm_bignum::Ubig;
//!
//! let mut sw = SoftwareSource::new(5);
//! let mut hw = CircuitSource::new(5);
//! let index = Ubig::from(77u64);
//! assert_eq!(sw.permutation(&index), hw.permutation(&index));
//! ```

//!
//! Robustness: [`GuardedPermSource`] wraps any [`RandomPermSource`]
//! with cheap output checking (packed permutation validity, optional
//! rank-back spot checks) and a [`FaultPolicy`] — panic, bounded
//! retry, or graceful fallback to the software unranker — with atomic
//! counters exposing what the guard saw.

pub mod guard;
pub mod montecarlo;
pub mod parallel;
mod sources;
pub mod stream;

pub use guard::{FaultPolicy, GuardCounters, GuardStats, GuardedPermSource};
pub use montecarlo::{
    chi_square_uniform, derangement_experiment, derangement_experiment_packed, fig4_histogram,
    DerangementResult,
};
pub use parallel::{parallel_count, parallel_reduce, ParallelPlan};
pub use sources::{
    CascadeSource, CircuitRandomSource, CircuitSource, PermutationSource, RandomIndexSource,
    RandomPermSource, SoftwareRandomSource, SoftwareSource,
};
pub use stream::{PackedPermutationStream, PermutationStream};
