//! Self-checking permutation streams with graceful degradation.
//!
//! A hardware permutation source can break mid-stream — a stuck-at
//! gate, an upset register — and a consumer that trusts it blindly
//! propagates garbage into every downstream statistic. The
//! [`GuardedPermSource`] wrapper closes that gap at runtime:
//!
//! - **cheap validity check** on every draw: the packed word must be a
//!   permutation ([`packed_is_permutation_u64`] — field range, high-bit
//!   zero, popcount of the seen-element bitboard);
//! - **rank-back spot check** at a configurable sampling rate: the word
//!   is unpacked, ranked, and re-unranked through the software
//!   [`Unranker`]; any disagreement flags the draw (this also catches
//!   corruption *within* the valid-permutation space when the paired
//!   rank stream is the ground truth — and, cheaply, exercises the
//!   whole software path as a self-test);
//! - a configurable [`FaultPolicy`] decides what a flagged draw costs:
//!   panic, bounded re-draw, or substitution from the software
//!   unranker;
//! - atomic [`GuardCounters`] (`detected` / `retried` / `fell_back`)
//!   expose what the guard saw without interrupting the stream.
//!
//! The guard is deterministic end to end: for a fixed inner source,
//! seed, and policy, the emitted stream and the final counter values
//! are reproducible.

use crate::sources::RandomPermSource;
use hwperm_factoradic::{rank_u64, Unranker};
use hwperm_perm::{packed_is_permutation_u64, Permutation};
use hwperm_rng::XorShift64Star;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What a [`GuardedPermSource`] does when a draw fails its checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPolicy {
    /// Abort loudly: corrupt hardware must not be papered over.
    Panic,
    /// Re-draw from the inner source, up to `max_attempts` extra draws
    /// per emission; panics when the corruption persists past the
    /// budget (a permanent fault defeats retrying).
    Retry {
        /// Extra draws allowed per emission before giving up.
        max_attempts: u32,
    },
    /// Substitute the flagged draw with a software-unranked permutation
    /// at a guard-private random index — the stream stays alive and
    /// uniform while the hardware is sick.
    Fallback,
}

/// Monotonic observability counters shared out of a
/// [`GuardedPermSource`] via `Arc` (relaxed ordering: they are
/// statistics, not synchronization).
#[derive(Debug, Default)]
pub struct GuardCounters {
    detected: AtomicU64,
    retried: AtomicU64,
    fell_back: AtomicU64,
}

impl GuardCounters {
    /// Draws that failed a validity or spot check.
    pub fn detected(&self) -> u64 {
        self.detected.load(Ordering::Relaxed)
    }

    /// Extra draws taken under [`FaultPolicy::Retry`].
    pub fn retried(&self) -> u64 {
        self.retried.load(Ordering::Relaxed)
    }

    /// Draws replaced by the software unranker under
    /// [`FaultPolicy::Fallback`].
    pub fn fell_back(&self) -> u64 {
        self.fell_back.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of all three counters.
    pub fn snapshot(&self) -> GuardStats {
        GuardStats {
            detected: self.detected(),
            retried: self.retried(),
            fell_back: self.fell_back(),
        }
    }
}

/// A plain-value snapshot of [`GuardCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuardStats {
    /// Draws that failed a validity or spot check.
    pub detected: u64,
    /// Extra draws taken under [`FaultPolicy::Retry`].
    pub retried: u64,
    /// Draws replaced by the software unranker.
    pub fell_back: u64,
}

/// Default seed for the fallback unranker's index RNG.
const DEFAULT_FALLBACK_SEED: u64 = 0xFA11_BACC_0E57_A71E;

/// A [`RandomPermSource`] wrapper that checks every draw and degrades
/// per its [`FaultPolicy`] instead of emitting garbage. See the module
/// docs for the check menu; `n` must be at most 16 (the packed-word
/// fast path) — the guard draws through
/// [`RandomPermSource::next_packed_u64`].
#[derive(Debug)]
pub struct GuardedPermSource<S: RandomPermSource> {
    inner: S,
    policy: FaultPolicy,
    counters: Arc<GuardCounters>,
    /// Rank-back spot check every this many draws (0 = never).
    spot_check_every: u64,
    draws: u64,
    unranker: Unranker,
    rng: XorShift64Star,
    /// `n!`, the fallback index range.
    total: u64,
    n: usize,
}

impl<S: RandomPermSource> GuardedPermSource<S> {
    /// Guards `inner` with validity checks only (no rank-back spot
    /// checks) and the default fallback seed.
    ///
    /// # Panics
    /// Panics if `inner.n() > 16`.
    pub fn new(inner: S, policy: FaultPolicy) -> GuardedPermSource<S> {
        Self::with_options(inner, policy, 0, DEFAULT_FALLBACK_SEED)
    }

    /// Guards `inner` with full control: `spot_check_every` enables the
    /// rank-back spot check on every k-th draw (0 disables it), and
    /// `fallback_seed` seeds the index RNG used by
    /// [`FaultPolicy::Fallback`] substitutions.
    ///
    /// # Panics
    /// Panics if `inner.n() > 16`.
    pub fn with_options(
        inner: S,
        policy: FaultPolicy,
        spot_check_every: u64,
        fallback_seed: u64,
    ) -> GuardedPermSource<S> {
        let n = inner.n();
        assert!(
            Permutation::packed_width(n) <= 64,
            "guarded streams need the packed u64 fast path (n = {n} exceeds 16)"
        );
        let total = (1..=n as u64).product();
        GuardedPermSource {
            inner,
            policy,
            counters: Arc::new(GuardCounters::default()),
            spot_check_every,
            draws: 0,
            unranker: Unranker::new(n),
            rng: XorShift64Star::new(fallback_seed),
            total,
            n,
        }
    }

    /// The shared counters (clone the `Arc` to watch from elsewhere).
    pub fn counters(&self) -> Arc<GuardCounters> {
        Arc::clone(&self.counters)
    }

    /// A point-in-time copy of the counters.
    pub fn stats(&self) -> GuardStats {
        self.counters.snapshot()
    }

    /// The configured policy.
    pub fn policy(&self) -> FaultPolicy {
        self.policy
    }

    /// Unwraps the guard, returning the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Full check battery for one packed draw.
    fn word_passes(&mut self, word: u64) -> bool {
        if !packed_is_permutation_u64(self.n, word) {
            return false;
        }
        if self.spot_check_every != 0 && self.draws.is_multiple_of(self.spot_check_every) {
            // Rank-back: word → permutation → rank → unrank → word.
            let perm = match Permutation::unpack(self.n, &word.into()) {
                Ok(p) => p,
                Err(_) => return false,
            };
            let index = rank_u64(&perm);
            if self.unranker.unrank(index).pack_u64() != word {
                return false;
            }
        }
        true
    }

    /// One guarded draw on the packed fast path.
    fn guarded_packed(&mut self) -> u64 {
        let mut attempt = 0u32;
        loop {
            let word = self.inner.next_packed_u64();
            self.draws += 1;
            if self.word_passes(word) {
                return word;
            }
            self.counters.detected.fetch_add(1, Ordering::Relaxed);
            match self.policy {
                FaultPolicy::Panic => panic!(
                    "guarded stream detected a corrupt permutation word {word:#x} (n = {})",
                    self.n
                ),
                FaultPolicy::Retry { max_attempts } => {
                    assert!(
                        attempt < max_attempts,
                        "corruption persisted through {max_attempts} redraws \
                         (last word {word:#x}, n = {})",
                        self.n
                    );
                    attempt += 1;
                    self.counters.retried.fetch_add(1, Ordering::Relaxed);
                }
                FaultPolicy::Fallback => {
                    self.counters.fell_back.fetch_add(1, Ordering::Relaxed);
                    let index = self.rng.below(self.total);
                    return self.unranker.unrank(index).pack_u64();
                }
            }
        }
    }
}

impl<S: RandomPermSource> RandomPermSource for GuardedPermSource<S> {
    fn n(&self) -> usize {
        self.n
    }

    fn next_permutation(&mut self) -> Permutation {
        let word = self.guarded_packed();
        Permutation::unpack(self.n, &word.into()).expect("guarded draws are valid by construction")
    }

    fn next_packed_u64(&mut self) -> u64 {
        self.guarded_packed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::derangement_experiment_packed;
    use crate::sources::SoftwareRandomSource;

    /// A deliberately sick source: every `period`-th packed draw has
    /// one bit XORed, which for n = 4 always collides two fields.
    struct CorruptingSource {
        inner: SoftwareRandomSource,
        period: u64,
        draws: u64,
    }

    impl CorruptingSource {
        fn new(n: usize, seed: u64, period: u64) -> CorruptingSource {
            CorruptingSource {
                inner: SoftwareRandomSource::new(n, seed),
                period,
                draws: 0,
            }
        }
    }

    impl RandomPermSource for CorruptingSource {
        fn n(&self) -> usize {
            self.inner.n()
        }

        fn next_permutation(&mut self) -> Permutation {
            unimplemented!("corruption is only representable on the packed path")
        }

        fn next_packed_u64(&mut self) -> u64 {
            self.draws += 1;
            let word = self.inner.next_packed_u64();
            if self.draws % self.period == 0 {
                word ^ 1
            } else {
                word
            }
        }
    }

    #[test]
    fn clean_stream_passes_through_unchanged() {
        let mut plain = SoftwareRandomSource::new(4, 99);
        let mut guarded =
            GuardedPermSource::new(SoftwareRandomSource::new(4, 99), FaultPolicy::Panic);
        for i in 0..200 {
            assert_eq!(
                guarded.next_packed_u64(),
                plain.next_packed_u64(),
                "draw {i}"
            );
        }
        assert_eq!(guarded.stats(), GuardStats::default());
    }

    #[test]
    fn spot_checks_accept_a_healthy_stream() {
        let mut guarded = GuardedPermSource::with_options(
            SoftwareRandomSource::new(5, 7),
            FaultPolicy::Panic,
            3,
            DEFAULT_FALLBACK_SEED,
        );
        for _ in 0..100 {
            let word = guarded.next_packed_u64();
            assert!(packed_is_permutation_u64(5, word));
        }
        assert_eq!(guarded.stats().detected, 0);
    }

    #[test]
    #[should_panic(expected = "guarded stream detected a corrupt permutation word")]
    fn panic_policy_aborts_on_corruption() {
        let mut guarded =
            GuardedPermSource::new(CorruptingSource::new(4, 1, 5), FaultPolicy::Panic);
        for _ in 0..5 {
            let _ = guarded.next_packed_u64();
        }
    }

    #[test]
    fn retry_policy_emits_only_valid_words_and_counts() {
        let mut guarded = GuardedPermSource::new(
            CorruptingSource::new(4, 8, 4),
            FaultPolicy::Retry { max_attempts: 2 },
        );
        for _ in 0..300 {
            assert!(packed_is_permutation_u64(4, guarded.next_packed_u64()));
        }
        let stats = guarded.stats();
        // Every 4th inner draw is corrupt; ~300/4+ detections, each
        // cured by exactly one redraw (period 4 never corrupts twice
        // in a row).
        assert!(stats.detected >= 75, "detected = {}", stats.detected);
        assert_eq!(stats.detected, stats.retried);
        assert_eq!(stats.fell_back, 0);
    }

    #[test]
    #[should_panic(expected = "corruption persisted through 3 redraws")]
    fn retry_budget_exhaustion_panics() {
        // Period 1: every draw corrupt — no retry budget survives.
        let mut guarded = GuardedPermSource::new(
            CorruptingSource::new(4, 3, 1),
            FaultPolicy::Retry { max_attempts: 3 },
        );
        let _ = guarded.next_packed_u64();
    }

    #[test]
    fn fallback_policy_substitutes_and_counts() {
        let mut guarded =
            GuardedPermSource::new(CorruptingSource::new(4, 21, 3), FaultPolicy::Fallback);
        for _ in 0..300 {
            assert!(packed_is_permutation_u64(4, guarded.next_packed_u64()));
        }
        let stats = guarded.stats();
        assert_eq!(stats.detected, 100, "every 3rd draw flagged");
        assert_eq!(stats.fell_back, 100);
        assert_eq!(stats.retried, 0);
    }

    #[test]
    fn retry_and_fallback_streams_are_seeded_deterministic() {
        // The satellite determinism requirement: same seed, same
        // injected fault, same policy ⇒ identical stream and counters.
        for policy in [
            FaultPolicy::Retry { max_attempts: 4 },
            FaultPolicy::Fallback,
        ] {
            let run = || {
                let mut guarded = GuardedPermSource::with_options(
                    CorruptingSource::new(4, 77, 6),
                    policy,
                    5,
                    1234,
                );
                let stream: Vec<u64> = (0..250).map(|_| guarded.next_packed_u64()).collect();
                (stream, guarded.stats())
            };
            let (stream_a, stats_a) = run();
            let (stream_b, stats_b) = run();
            assert_eq!(stream_a, stream_b, "{policy:?}");
            assert_eq!(stats_a, stats_b, "{policy:?}");
            assert!(stats_a.detected > 0, "{policy:?} must exercise the guard");
        }
    }

    #[test]
    fn fallback_keeps_the_derangement_experiment_honest() {
        // Even with every 2nd draw corrupt, the guarded stream's
        // derangement rate stays at the true 3/8 for n = 4.
        let mut guarded =
            GuardedPermSource::new(CorruptingSource::new(4, 5, 2), FaultPolicy::Fallback);
        let result = derangement_experiment_packed(&mut guarded, 40_000);
        let p = result.derangements as f64 / result.samples as f64;
        assert!((p - 0.375).abs() < 0.02, "p = {p}");
        assert_eq!(guarded.stats().fell_back, 20_000);
    }

    #[test]
    fn next_permutation_goes_through_the_guard() {
        let mut guarded =
            GuardedPermSource::new(CorruptingSource::new(4, 11, 2), FaultPolicy::Fallback);
        for _ in 0..50 {
            let p = guarded.next_permutation();
            assert_eq!(p.n(), 4);
        }
        assert!(guarded.stats().fell_back > 0);
    }

    #[test]
    #[should_panic(expected = "guarded streams need the packed u64 fast path (n = 17 exceeds 16)")]
    fn wide_n_rejected_with_pinned_message() {
        let _ = GuardedPermSource::new(SoftwareRandomSource::new(17, 1), FaultPolicy::Panic);
    }
}
