//! The paper's Section III Monte-Carlo experiments.

use crate::sources::RandomPermSource;
use hwperm_perm::packed_is_derangement;
use std::collections::BTreeMap;

/// Outcome of the derangement experiment (Section III.C).
#[derive(Debug, Clone, PartialEq)]
pub struct DerangementResult {
    /// Permutation size.
    pub n: usize,
    /// Permutations generated.
    pub samples: u64,
    /// How many were derangements.
    pub derangements: u64,
    /// `e ≈ samples / derangements` (since `d_n = ⌊n!/e⌉`).
    pub e_estimate: f64,
}

/// Runs the paper's derangement experiment: generate `samples` random
/// permutations, count derangements, estimate `e`.
///
/// The paper's run: 1 048 576 random 4-element permutations gave 385 707
/// derangements and `e ≈ 2.7185`; repeated for n = 8 and n = 16.
pub fn derangement_experiment(
    source: &mut dyn RandomPermSource,
    samples: u64,
) -> DerangementResult {
    let mut derangements = 0u64;
    for _ in 0..samples {
        if source.next_permutation().is_derangement() {
            derangements += 1;
        }
    }
    DerangementResult {
        n: source.n(),
        samples,
        derangements,
        e_estimate: samples as f64 / derangements as f64,
    }
}

/// Packed-word fast path of [`derangement_experiment`]: draws through
/// [`RandomPermSource::next_packed_u64`] and tests the fixed-point-free
/// property directly on the packed word
/// ([`packed_is_derangement`] — XOR against the packed identity, every
/// field nonzero), so sources with an allocation-free packed path run
/// the whole experiment without touching the heap. Seed for seed, the
/// result is identical to [`derangement_experiment`].
///
/// # Panics
/// Panics if `n > 16` (the packed word would not fit a `u64`).
pub fn derangement_experiment_packed(
    source: &mut dyn RandomPermSource,
    samples: u64,
) -> DerangementResult {
    let n = source.n();
    let mut derangements = 0u64;
    for _ in 0..samples {
        if packed_is_derangement(n, source.next_packed_u64()) {
            derangements += 1;
        }
    }
    DerangementResult {
        n,
        samples,
        derangements,
        e_estimate: samples as f64 / derangements as f64,
    }
}

/// The Fig. 4 histogram: counts of each permutation (keyed by its packed
/// word value, the paper's vertical axis) over `samples` draws.
///
/// Returns a map from packed word value to occurrence count; for `n = 4`
/// it has 24 entries between 27 (`0123`) and 228 (`3210`).
pub fn fig4_histogram(source: &mut dyn RandomPermSource, samples: u64) -> BTreeMap<u64, u64> {
    let mut hist = BTreeMap::new();
    for _ in 0..samples {
        let p = source.next_permutation();
        let word = p.pack().to_u64().expect("histogram limited to small n");
        *hist.entry(word).or_insert(0) += 1;
    }
    hist
}

/// Chi-square statistic of `counts` against the uniform distribution.
/// Degrees of freedom = `counts.len() − 1`.
pub fn chi_square_uniform(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    let expected = total as f64 / counts.len() as f64;
    counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::{CircuitRandomSource, SoftwareRandomSource};
    use hwperm_circuits::ShuffleOptions;

    #[test]
    fn derangement_probability_converges() {
        // P(derangement) → 1/e; for n = 4 it is 9/24 = 0.375 exactly.
        let mut src = SoftwareRandomSource::new(4, 42);
        let result = derangement_experiment(&mut src, 50_000);
        let p = result.derangements as f64 / result.samples as f64;
        assert!((p - 0.375).abs() < 0.01, "p = {p}");
        assert!(
            (result.e_estimate - 8.0 / 3.0).abs() < 0.08,
            "{}",
            result.e_estimate
        );
    }

    #[test]
    fn derangement_e_for_n8_close_to_true_e() {
        let mut src = SoftwareRandomSource::new(8, 7);
        let result = derangement_experiment(&mut src, 40_000);
        assert!(
            (result.e_estimate - std::f64::consts::E).abs() < 0.1,
            "e ≈ {}",
            result.e_estimate
        );
    }

    #[test]
    fn packed_experiment_matches_allocating_experiment_exactly() {
        // Not just statistically close: same seed, same sample count ⇒
        // the same random sequence ⇒ bit-identical results.
        for (n, seed) in [(4usize, 42u64), (8, 7), (16, 123)] {
            let mut a = SoftwareRandomSource::new(n, seed);
            let mut b = SoftwareRandomSource::new(n, seed);
            let alloc = derangement_experiment(&mut a, 5_000);
            let packed = derangement_experiment_packed(&mut b, 5_000);
            assert_eq!(alloc, packed, "n = {n}");
        }
    }

    #[test]
    fn fig4_histogram_covers_all_24_permutations() {
        let mut src = CircuitRandomSource::with_options(
            4,
            ShuffleOptions {
                lfsr_width: 16,
                pipelined: false,
                seed: 5,
            },
        );
        let hist = fig4_histogram(&mut src, 6000);
        assert_eq!(hist.len(), 24);
        // Corner values from the paper's Fig. 4 axis.
        assert!(hist.contains_key(&27), "identity 0123 = 00011011");
        assert!(hist.contains_key(&228), "reversal 3210 = 11100100");
        assert_eq!(hist.values().sum::<u64>(), 6000);
    }

    #[test]
    fn fig4_distribution_is_uniform() {
        let mut src = SoftwareRandomSource::new(4, 11);
        let hist = fig4_histogram(&mut src, 24_000);
        let counts: Vec<u64> = hist.values().copied().collect();
        let chi2 = chi_square_uniform(&counts);
        // 23 dof, 99.9th percentile ≈ 49.7.
        assert!(chi2 < 49.7, "chi2 = {chi2}");
    }

    #[test]
    fn chi_square_of_perfectly_uniform_is_zero() {
        assert_eq!(chi_square_uniform(&[100, 100, 100, 100]), 0.0);
    }

    #[test]
    fn chi_square_detects_skew() {
        let uniform = chi_square_uniform(&[250, 250, 250, 250]);
        let skewed = chi_square_uniform(&[400, 200, 200, 200]);
        assert!(skewed > uniform + 50.0);
    }
}
