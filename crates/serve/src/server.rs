//! The server: listeners, the sharded worker pool, per-connection
//! reader/writer threads, and the request handlers.
//!
//! ## Threading model
//!
//! One *accept* thread (the caller of [`serve`]) plus:
//!
//! - a **worker pool** of [`ServeOptions::workers`] threads draining a
//!   shared job queue — every parsed request becomes one job, and a
//!   `block` request fans further shard jobs into the same pool;
//! - per connection, one **reader** thread (frame decode → job
//!   submission) and one **writer** thread draining a *bounded*
//!   channel of pre-encoded frames. The bound is the backpressure: a
//!   slow client blocks the worker producing its chunks, not the whole
//!   server, and never more than [`WRITE_QUEUE_DEPTH`] frames of its
//!   output are buffered.
//!
//! ## Block sharding
//!
//! A `block` request over `[start, end)` is split with
//! [`hwperm_verify::shard_ranges`] — the same contiguous balanced
//! split as `hwperm_core::ParallelPlan` — into at most
//! [`ServeOptions::workers`] sub-ranges. Each shard pays one true
//! unrank and then walks lexicographic successors
//! ([`BlockDecoder`]), emitting binary chunk frames as it goes. The
//! parsing worker runs shard 0 *inline* (so a one-worker pool cannot
//! deadlock waiting for itself) and the last shard to finish emits the
//! envelope. Chunk frames of one request may therefore interleave
//! arbitrarily with other traffic; their `base` fields are the
//! reassembly key.
//!
//! ## Shutdown
//!
//! A `shutdown` request answers its envelope, then: sets the stop
//! flag, half-closes (read side) every registered connection so
//! readers stop minting jobs, and self-connects to wake the accept
//! loop. [`serve`] then drains the pool, joins the connection
//! threads (writers flush their queues first), and returns the
//! aggregate [`ServeSummary`].

use crate::client::Client;
use crate::frame::{encode_frame, read_frame, KIND_BLOCK, KIND_JSON};
use crate::protocol::{
    encode_chunk, envelope, error_result, parse_request, Request, CHUNK_FLAG_LAST, DEFAULT_CHUNK,
};
use hwperm_circuits::{converter_netlist, ConverterOptions};
use hwperm_core::{FaultPolicy, GuardedPermSource, RandomPermSource, SoftwareRandomSource};
use hwperm_factoradic::{rank_u64, BlockDecoder, Unranker};
use hwperm_logic::{SimProgram, W512};
use hwperm_perm::Permutation;
use hwperm_store::OpenTable;
use hwperm_verify::{
    exhaustive_check_parallel_with, expected_permutation_words, shard_ranges, WideExpectation,
};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Bound on the per-connection writer queue, in frames. With the
/// default chunk size this caps buffered output near 2 MiB per
/// connection; a worker producing faster than the client reads blocks
/// here instead of growing the heap.
pub const WRITE_QUEUE_DEPTH: usize = 32;

/// Per-draw spot-check cadence of the `random-stream` guard (every
/// k-th draw is ranked back; see `hwperm_core::GuardedPermSource`).
pub const STREAM_SPOT_CHECK_EVERY: u64 = 64;

/// Drain budget at shutdown when no idle timeout is configured: how
/// long a straggling writer may keep flushing to a slow client before
/// its socket write is deadlined.
pub const DEFAULT_DRAIN_MS: u64 = 5_000;

/// The pinned error message a request past its execution deadline
/// answers with (see [`ServeOptions::request_deadline_ms`]).
pub const DEADLINE_MSG: &str = "request deadline exceeded";

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker-pool threads executing requests and block shards.
    pub workers: usize,
    /// Chunk size (packed words per binary frame) when a request omits
    /// `"chunk"`.
    pub default_chunk: usize,
    /// When set, every envelope reports this latency instead of the
    /// measured one. Golden-transcript tests pin `Some(0)` so response
    /// bytes are reproducible (the `stats` `uptime_ms` field is pinned
    /// to the same value); production leaves it `None`.
    pub fixed_micros: Option<u64>,
    /// When set, `verify` expectation tables and `block` chunk words
    /// are streamed from the persisted oracle store under this
    /// directory whenever the table is warm (built and complete),
    /// making those paths I/O-bound instead of recompute-bound. Cold
    /// tables fall back to computing; *broken* tables fail the request
    /// loudly. The wire bytes are identical either way.
    pub store_dir: Option<PathBuf>,
    /// Accept gate: connections beyond this many concurrent ones are
    /// *shed* — they receive one pinned `busy` error envelope and are
    /// closed, instead of queueing unboundedly. `0` disables the gate.
    pub max_conns: usize,
    /// Per-connection idle deadline, in milliseconds. A connection
    /// that completes no frame for this long — silent, half-open, or
    /// trickling bytes without ever finishing a frame — is reaped: the
    /// socket read times out (silent peers) and a background sweep
    /// half-closes connections whose frame has stalled (slow-loris
    /// trickles), so the reader answers a pinned truncation/timeout
    /// error and exits. Socket writes are deadlined with the same
    /// budget, so a client that stops reading cannot pin a writer
    /// forever. `None` disables both (the pre-hardening contract).
    pub idle_timeout_ms: Option<u64>,
    /// Per-request execution deadline, in milliseconds, measured from
    /// the moment the request is read off the wire. Long-running
    /// streaming requests (`block`, `random-stream`) checkpoint a
    /// cancel flag between chunks and answer the pinned
    /// [`DEADLINE_MSG`] error once past the deadline; `verify` checks
    /// before starting its sweep. Single-shot requests (`unrank`,
    /// `rank`, `stats`, `shutdown`) have no checkpoint and always
    /// complete. `None` disables deadlines.
    pub request_deadline_ms: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            default_chunk: DEFAULT_CHUNK,
            fixed_micros: None,
            store_dir: None,
            max_conns: 0,
            idle_timeout_ms: None,
            request_deadline_ms: None,
        }
    }
}

/// Where a server is reachable — what a [`Client`] connects to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP socket address.
    Tcp(SocketAddr),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "{addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "{}", path.display()),
        }
    }
}

/// A bound-but-not-yet-serving listener. Binding is separate from
/// [`serve`] so the caller can learn the actual endpoint (ephemeral
/// TCP ports!) before the accept loop starts.
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener plus its path (needed for the shutdown
    /// self-connect and the unlink at exit).
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Binds a TCP listener; `addr` may use port 0 for an ephemeral
    /// port (read it back via [`Listener::endpoint`]).
    pub fn bind_tcp(addr: impl ToSocketAddrs) -> io::Result<Listener> {
        Ok(Listener::Tcp(TcpListener::bind(addr)?))
    }

    /// Binds a Unix-domain listener at `path`.
    ///
    /// A leftover socket file is handled by *probing* it: if something
    /// answers, a live server owns the path and binding fails loudly
    /// (instead of the bare `AddrInUse` that cannot distinguish live
    /// from stale); if nothing answers, the file is a stale remnant of
    /// a crash and is removed before binding. Graceful shutdown
    /// unlinks the file, so the stale path only arises after a kill.
    #[cfg(unix)]
    pub fn bind_unix(path: impl Into<PathBuf>) -> io::Result<Listener> {
        let path = path.into();
        if path.exists() {
            match UnixStream::connect(&path) {
                Ok(_) => {
                    return Err(io::Error::new(
                        io::ErrorKind::AddrInUse,
                        format!(
                            "refusing to bind {}: a live server already answers on this socket",
                            path.display()
                        ),
                    ))
                }
                Err(_) => std::fs::remove_file(&path)?,
            }
        }
        Ok(Listener::Unix(UnixListener::bind(&path)?, path))
    }

    /// The endpoint clients should connect to.
    pub fn endpoint(&self) -> io::Result<Endpoint> {
        match self {
            Listener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?)),
            #[cfg(unix)]
            Listener::Unix(_, path) => Ok(Endpoint::Unix(path.clone())),
        }
    }

    pub(crate) fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                Ok(Stream::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                Ok(Stream::Unix(s))
            }
        }
    }
}

/// A connected socket of either family.
#[derive(Debug)]
pub(crate) enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    pub(crate) fn connect(endpoint: &Endpoint) -> io::Result<Stream> {
        match endpoint {
            Endpoint::Tcp(addr) => Ok(Stream::Tcp(TcpStream::connect(addr)?)),
            #[cfg(unix)]
            Endpoint::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
        }
    }

    pub(crate) fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => Ok(Stream::Tcp(s.try_clone()?)),
            #[cfg(unix)]
            Stream::Unix(s) => Ok(Stream::Unix(s.try_clone()?)),
        }
    }

    pub(crate) fn shutdown(&self, how: std::net::Shutdown) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.shutdown(how),
            #[cfg(unix)]
            Stream::Unix(s) => s.shutdown(how),
        }
    }

    pub(crate) fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(dur),
        }
    }

    pub(crate) fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_write_timeout(dur),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_write_timeout(dur),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// Command slots of the `stats` per-command counters, in render order.
/// Slot 7 ("error") also absorbs unparseable commands.
const COMMANDS: [&str; 8] = [
    "unrank",
    "rank",
    "block",
    "random-stream",
    "verify",
    "stats",
    "shutdown",
    "error",
];

fn command_slot(cmd: &str) -> usize {
    COMMANDS.iter().position(|c| *c == cmd).unwrap_or(7)
}

/// Server-wide counters. All relaxed: the values are monotone tallies,
/// never used to synchronize.
#[derive(Default)]
struct Stats {
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    chunks: AtomicU64,
    micros: AtomicU64,
    conns_rejected: AtomicU64,
    requests_timed_out: AtomicU64,
    retries_observed: AtomicU64,
    threads_spawned: AtomicU64,
    threads_joined: AtomicU64,
    commands: [AtomicU64; 8],
}

impl Stats {
    /// The `stats` result object. `bytes_out` counts frames at
    /// *enqueue* time (when the worker hands them to the writer), so
    /// the snapshot is deterministic on a single-worker server — it
    /// does not race the writer thread's progress. `uptime_ms` is the
    /// caller-supplied wall clock (pinned by `fixed_micros` in the
    /// golden transcripts).
    fn render(&self, uptime_ms: u64) -> String {
        let commands = COMMANDS
            .iter()
            .zip(&self.commands)
            .map(|(name, count)| format!("\"{name}\":{}", count.load(Ordering::Relaxed)))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"type\":\"stats\",\"connections\":{},\"requests\":{},\"errors\":{},\
             \"bytes_in\":{},\"bytes_out\":{},\"chunks\":{},\"micros\":{},\
             \"uptime_ms\":{uptime_ms},\"conns_rejected\":{},\"requests_timed_out\":{},\
             \"retries_observed\":{},\"commands\":{{{commands}}}}}",
            self.connections.load(Ordering::Relaxed),
            self.requests.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.bytes_in.load(Ordering::Relaxed),
            self.bytes_out.load(Ordering::Relaxed),
            self.chunks.load(Ordering::Relaxed),
            self.micros.load(Ordering::Relaxed),
            self.conns_rejected.load(Ordering::Relaxed),
            self.requests_timed_out.load(Ordering::Relaxed),
            self.retries_observed.load(Ordering::Relaxed),
        )
    }
}

/// What [`serve`] returns after a graceful shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted (including the shutdown self-connect).
    pub connections: u64,
    /// Frames received that got a response.
    pub requests: u64,
    /// Error envelopes sent.
    pub errors: u64,
    /// Bytes received (frames, including prefixes).
    pub bytes_in: u64,
    /// Bytes enqueued for sending (frames, including prefixes).
    pub bytes_out: u64,
    /// Connections shed by the [`ServeOptions::max_conns`] gate.
    pub conns_rejected: u64,
    /// Requests that answered the pinned [`DEADLINE_MSG`] error.
    pub requests_timed_out: u64,
    /// Threads this server spawned (workers, readers, writers, the
    /// idle sweep). Leak accounting: equals `threads_joined` after a
    /// graceful shutdown, whatever the clients did.
    pub threads_spawned: u64,
    /// Threads joined before [`serve`] returned.
    pub threads_joined: u64,
}

impl fmt::Display for ServeSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "served {} request(s) ({} error(s)) over {} connection(s), {} B in / {} B out, \
             {} rejected, {} timed out, {}/{} thread(s) joined",
            self.requests,
            self.errors,
            self.connections,
            self.bytes_in,
            self.bytes_out,
            self.conns_rejected,
            self.requests_timed_out,
            self.threads_joined,
            self.threads_spawned,
        )
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The worker pool's shared half: a queue plus the stop latch. Workers
/// drain the queue fully before honoring stop, so jobs enqueued during
/// shutdown (e.g. trailing block shards) still run.
#[derive(Default)]
struct PoolShared {
    queue: Mutex<PoolQueue>,
    cond: Condvar,
}

#[derive(Default)]
struct PoolQueue {
    jobs: VecDeque<Job>,
    stop: bool,
}

fn spawn_pool_workers(pool: &Arc<PoolShared>, workers: usize) -> Vec<JoinHandle<()>> {
    (0..workers)
        .map(|_| {
            let pool = Arc::clone(pool);
            thread::spawn(move || loop {
                let job = {
                    let mut q = pool.queue.lock().expect("pool lock");
                    loop {
                        if let Some(job) = q.jobs.pop_front() {
                            break job;
                        }
                        if q.stop {
                            return;
                        }
                        q = pool.cond.wait(q).expect("pool lock");
                    }
                };
                job();
            })
        })
        .collect()
}

fn pool_submit(pool: &Arc<PoolShared>, job: Job) {
    pool.queue.lock().expect("pool lock").jobs.push_back(job);
    pool.cond.notify_one();
}

fn pool_join(pool: &Arc<PoolShared>, workers: Vec<JoinHandle<()>>) {
    pool.queue.lock().expect("pool lock").stop = true;
    pool.cond.notify_all();
    for worker in workers {
        let _ = worker.join();
    }
}

/// Everything the `verify` handler needs for one `n`, built once and
/// cached: the compiled simulation tape (shared across worker threads
/// by `Arc`, exactly like the CLI's sharded sweep) and the
/// pre-transposed expectation table. The cache runs the fastest
/// configuration — the opcode-fused tape at 512 lanes per pass — which
/// is wire-transparent: verdicts and witnesses are byte-identical to
/// the canonical 64-lane sweep at every width.
struct VerifyEntry {
    program: Arc<SimProgram>,
    table: WideExpectation<W512>,
    total: u64,
}

/// One live connection in the registry: a socket clone the sweep and
/// shutdown paths can half-close, plus its activity clock.
struct ConnEntry {
    stream: Stream,
    /// Milliseconds since server start at the last *completed* frame
    /// (not the last byte — a slow-loris trickle that never finishes a
    /// frame does not count as progress).
    last_activity_ms: Arc<AtomicU64>,
}

/// State shared by every thread of one server.
struct Shared {
    options: ServeOptions,
    stats: Stats,
    stop: AtomicBool,
    /// Milliseconds since start when the stop flag was raised (drain
    /// deadline anchor; meaningless until `stop` is set).
    stopped_at_ms: AtomicU64,
    started: Instant,
    endpoint: Endpoint,
    /// Live connections by id, half-closed at shutdown or when the
    /// idle sweep reaps them.
    conns: Mutex<HashMap<u64, ConnEntry>>,
    next_conn_id: AtomicU64,
    /// Connections currently being served — the accept gate's count.
    /// Only the accept thread increments, so the gate cannot over-admit.
    live_conns: AtomicUsize,
    pool: Arc<PoolShared>,
    verify_cache: Mutex<HashMap<usize, Arc<VerifyEntry>>>,
    store_cache: Mutex<HashMap<usize, Arc<OpenTable>>>,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn uptime_ms(&self) -> u64 {
        self.options.fixed_micros.unwrap_or_else(|| self.now_ms())
    }

    /// The warm store table for `n`, if the server has a store dir and
    /// the table is built. `None` is the normal cold path (no store
    /// configured, `n` beyond what stores hold, or table not built);
    /// `Err` means the store is *broken* and the request must fail.
    fn open_store(&self, n: usize) -> Result<Option<Arc<OpenTable>>, hwperm_store::StoreError> {
        let Some(dir) = &self.options.store_dir else {
            return Ok(None);
        };
        if !(1..=hwperm_store::MAX_STORE_N).contains(&n) {
            return Ok(None);
        }
        let mut cache = self.store_cache.lock().expect("store cache lock");
        if let Some(table) = cache.get(&n) {
            return Ok(Some(Arc::clone(table)));
        }
        match OpenTable::open(dir, n)? {
            Some(table) => {
                let table = Arc::new(table);
                cache.insert(n, Arc::clone(&table));
                Ok(Some(table))
            }
            None => Ok(None),
        }
    }

    fn verify_entry(&self, n: usize) -> Result<Arc<VerifyEntry>, hwperm_store::StoreError> {
        {
            let cache = self.verify_cache.lock().expect("verify cache lock");
            if let Some(entry) = cache.get(&n) {
                return Ok(Arc::clone(entry));
            }
        }
        // Expectation words come from the store when warm — cold-start
        // cost becomes a sequential read — and are computed otherwise;
        // the words are byte-identical either way, so the cached entry
        // (and every verdict) is too. Built outside the cache lock so
        // a slow build doesn't serialize unrelated verifies.
        let expected = match self.open_store(n)? {
            Some(table) => table.load_words()?,
            None => expected_permutation_words(n),
        };
        let netlist = converter_netlist(n, ConverterOptions::default());
        let in_bits = netlist.input_port("index").expect("index port").nets.len();
        let out_bits = netlist.output_port("perm").expect("perm port").nets.len();
        let entry = Arc::new(VerifyEntry {
            table: WideExpectation::<W512>::new(in_bits, out_bits, &expected),
            total: expected.len() as u64,
            program: SimProgram::compile_fused_shared(netlist),
        });
        let mut cache = self.verify_cache.lock().expect("verify cache lock");
        Ok(Arc::clone(cache.entry(n).or_insert(entry)))
    }

    /// The drain / idle budget in effect: the configured idle timeout,
    /// or [`DEFAULT_DRAIN_MS`] where only the shutdown path needs one.
    fn drain_budget_ms(&self) -> u64 {
        self.options.idle_timeout_ms.unwrap_or(DEFAULT_DRAIN_MS)
    }

    fn trigger_stop(self: &Arc<Self>) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        self.stopped_at_ms.store(self.now_ms(), Ordering::SeqCst);
        // Half-close every reader so no new requests are minted; the
        // write sides stay open for the responses still draining — but
        // deadlined, so a client that stopped reading cannot pin a
        // straggling writer beyond the drain budget.
        let drain = Duration::from_millis(self.drain_budget_ms().max(1));
        for conn in self.conns.lock().expect("conns lock").values() {
            let _ = conn.stream.shutdown(std::net::Shutdown::Read);
            let _ = conn.stream.set_write_timeout(Some(drain));
        }
        // Wake the accept loop so `serve` can move on to the joins.
        let _ = Stream::connect(&self.endpoint);
    }

    /// One pass of the idle sweep. The per-call socket read timeout
    /// already catches a *blocked* reader at one idle budget (pinned
    /// timeout envelope); the sweep exists for the one case that
    /// timeout cannot see — a trickler whose bytes keep every `read`
    /// call short of its deadline while the frame never completes. So
    /// the sweep fires only from **twice** the budget (no completed
    /// frame for 2×idle), deliberately past the socket timeout, so the
    /// two mechanisms never race on the same connection: a half-closed
    /// read mid-frame yields the pinned truncation envelope. From
    /// 4×idle (or past the drain deadline once stopping) the
    /// connection is force-closed outright, which also unblocks a
    /// writer the write timeout somehow missed.
    fn sweep_idle(&self) {
        let Some(idle) = self.options.idle_timeout_ms else {
            return;
        };
        let now = self.now_ms();
        let stopping = self.stop.load(Ordering::SeqCst);
        let drain_deadline = self.stopped_at_ms.load(Ordering::SeqCst) + self.drain_budget_ms();
        for conn in self.conns.lock().expect("conns lock").values() {
            let last = conn.last_activity_ms.load(Ordering::Relaxed);
            let stale = now.saturating_sub(last);
            if stale > 4 * idle || (stopping && now > drain_deadline) {
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            } else if stale > 2 * idle {
                let _ = conn.stream.shutdown(std::net::Shutdown::Read);
            }
        }
    }
}

/// Per-request context: where responses go, what the envelope's
/// metrics trailer reports, and the request's execution deadline.
struct ReqCtx {
    sender: SyncSender<Vec<u8>>,
    shared: Arc<Shared>,
    start: Instant,
    /// Execution deadline ([`ServeOptions::request_deadline_ms`] past
    /// `start`); streaming handlers checkpoint it between chunks.
    deadline: Option<Instant>,
    bytes_in: u64,
}

impl ReqCtx {
    fn new(sender: SyncSender<Vec<u8>>, shared: Arc<Shared>, bytes_in: u64) -> ReqCtx {
        let start = Instant::now();
        let deadline = shared
            .options
            .request_deadline_ms
            .map(|ms| start + Duration::from_millis(ms));
        ReqCtx {
            sender,
            shared,
            start,
            deadline,
            bytes_in,
        }
    }

    /// Whether this request blew its execution deadline. Checked
    /// between chunks, never mid-computation.
    fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Answers the pinned deadline error and counts it.
    fn respond_deadline(&self, command: &str, id: u64) {
        self.shared
            .stats
            .requests_timed_out
            .fetch_add(1, Ordering::Relaxed);
        self.respond(command, false, &error_result(DEADLINE_MSG), id);
    }

    fn micros(&self) -> u64 {
        self.shared
            .options
            .fixed_micros
            .unwrap_or_else(|| self.start.elapsed().as_micros() as u64)
    }

    /// Builds and enqueues the envelope; counts latency, errors and
    /// outbound bytes. Send failures mean the connection died — the
    /// work is simply dropped.
    fn respond(&self, command: &str, ok: bool, results: &str, id: u64) {
        let micros = self.micros();
        let stats = &self.shared.stats;
        stats.micros.fetch_add(micros, Ordering::Relaxed);
        if !ok {
            stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        let wire = encode_frame(
            KIND_JSON,
            &envelope(command, ok, results, id, micros, self.bytes_in),
        );
        stats
            .bytes_out
            .fetch_add(wire.len() as u64, Ordering::Relaxed);
        let _ = self.sender.send(wire);
    }

    fn send_chunk(&self, payload: &[u8]) {
        let wire = encode_frame(KIND_BLOCK, payload);
        let stats = &self.shared.stats;
        stats
            .bytes_out
            .fetch_add(wire.len() as u64, Ordering::Relaxed);
        stats.chunks.fetch_add(1, Ordering::Relaxed);
        let _ = self.sender.send(wire);
    }
}

fn render_perm(perm: &[u32]) -> String {
    let body = perm
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(",");
    format!("[{body}]")
}

/// One `block` request in flight: the context every shard shares plus
/// the countdown that decides who emits the envelope.
struct BlockState {
    ctx: ReqCtx,
    id: u64,
    n: usize,
    start: u64,
    end: u64,
    chunk: usize,
    chunks_total: u64,
    seq: AtomicU64,
    remaining: AtomicUsize,
    /// Set once any shard fails or blows the deadline: the other
    /// shards checkpoint it between chunks and stop early.
    cancelled: AtomicBool,
    /// Warm store table to stream chunk words from; `None` decodes.
    /// Either way the chunk bytes on the wire are identical.
    table: Option<Arc<OpenTable>>,
    /// First failure, reported verbatim by the closing envelope.
    failed: Mutex<Option<String>>,
}

impl BlockState {
    /// Records the first failure message (later ones lose the race and
    /// are dropped) and cancels the remaining shards. Returns whether
    /// this call won the race to set the message.
    fn fail(&self, message: String) -> bool {
        let mut slot = self.failed.lock().expect("block failure lock");
        let won = slot.is_none();
        slot.get_or_insert(message);
        self.cancelled.store(true, Ordering::Relaxed);
        won
    }
}

fn run_block_shard(state: &Arc<BlockState>, range: std::ops::Range<u64>) {
    // The decoder is only built (and only pays its unrank) on the
    // computed path; a warm store shard is pure sequential I/O.
    let mut decoder = state.table.is_none().then(|| BlockDecoder::new(state.n));
    let mut bytes = Vec::with_capacity(state.chunk * 8);
    let mut base = range.start;
    while base < range.end {
        // The cancel-flag checkpoint: a shard past the request
        // deadline (or racing a failed sibling) stops between chunks
        // rather than decoding the rest of its range into a void.
        if state.cancelled.load(Ordering::Relaxed) {
            break;
        }
        if state.ctx.expired() {
            if state.fail(DEADLINE_MSG.to_string()) {
                state
                    .ctx
                    .shared
                    .stats
                    .requests_timed_out
                    .fetch_add(1, Ordering::Relaxed);
            }
            break;
        }
        let top = (base + state.chunk as u64).min(range.end);
        bytes.clear();
        match (&state.table, &mut decoder) {
            (Some(table), _) => {
                if let Err(e) = table.read_le_bytes_into(base..top, &mut bytes) {
                    state.fail(format!("store error: {e}"));
                    break;
                }
            }
            (None, Some(decoder)) => decoder.decode_le_bytes_into(base..top, &mut bytes),
            (None, None) => unreachable!("computed path always has a decoder"),
        }
        let seq = state.seq.fetch_add(1, Ordering::Relaxed);
        let flags = if top == state.end { CHUNK_FLAG_LAST } else { 0 };
        state
            .ctx
            .send_chunk(&encode_chunk(state.id, seq, base, flags, &bytes));
        base = top;
    }
    // The LAST finishing shard (which saw remaining == 1) answers.
    if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        finish_block(state);
    }
}

fn finish_block(state: &Arc<BlockState>) {
    if let Some(message) = state.failed.lock().expect("block failure lock").take() {
        state
            .ctx
            .respond("block", false, &error_result(&message), state.id);
        return;
    }
    let results = format!(
        "{{\"type\":\"block\",\"n\":{},\"start\":{},\"end\":{},\"chunk\":{},\
         \"chunks\":{},\"words\":{}}}",
        state.n,
        state.start,
        state.end,
        state.chunk,
        state.chunks_total,
        state.end - state.start,
    );
    state.ctx.respond("block", true, &results, state.id);
}

/// Parses and executes one request. Runs on a pool worker.
fn handle_request(ctx: ReqCtx, payload: Vec<u8>) {
    let stats = &ctx.shared.stats;
    // Replayed requests carry an `"attempt"` field (the retrying
    // client stamps it); tally them so `stats` reports how much client
    // retry traffic this server absorbed.
    if crate::protocol::request_attempt(&payload) > 0 {
        stats.retries_observed.fetch_add(1, Ordering::Relaxed);
    }
    let (id, request) = match parse_request(&payload, ctx.shared.options.default_chunk) {
        Ok(parsed) => parsed,
        Err(e) => {
            stats.commands[command_slot(&e.command)].fetch_add(1, Ordering::Relaxed);
            ctx.respond(&e.command, false, &error_result(&e.message), e.id);
            return;
        }
    };
    stats.commands[command_slot(request.command())].fetch_add(1, Ordering::Relaxed);
    match request {
        Request::Unrank { n, index } => {
            let perm = Unranker::new(n).unrank(index);
            let results = format!(
                "{{\"type\":\"unrank\",\"n\":{n},\"index\":{index},\"perm\":{},\"packed\":{}}}",
                render_perm(perm.as_slice()),
                perm.pack_u64(),
            );
            ctx.respond("unrank", true, &results, id);
        }
        Request::Rank { perm } => match Permutation::try_from_vec(perm) {
            Ok(perm) => {
                let results = format!(
                    "{{\"type\":\"rank\",\"n\":{},\"perm\":{},\"index\":{}}}",
                    perm.n(),
                    render_perm(perm.as_slice()),
                    rank_u64(&perm),
                );
                ctx.respond("rank", true, &results, id);
            }
            Err(e) => ctx.respond(
                "rank",
                false,
                &error_result(&format!("perm is not a permutation: {e}")),
                id,
            ),
        },
        Request::Block {
            n,
            start,
            end,
            chunk,
        } => {
            let count = end - start;
            // At most one shard per pool worker, and never more shards
            // than chunks (a shard below one chunk just wastes a true
            // unrank).
            let shard_count = (ctx.shared.options.workers as u64)
                .min(count.div_ceil(chunk as u64))
                .max(1) as usize;
            let shards: Vec<std::ops::Range<u64>> = shard_ranges(count as usize, shard_count)
                .into_iter()
                .filter(|r| !r.is_empty())
                .map(|r| start + r.start as u64..start + r.end as u64)
                .collect();
            let chunks_total = shards
                .iter()
                .map(|r| (r.end - r.start).div_ceil(chunk as u64))
                .sum();
            let table = match ctx.shared.open_store(n) {
                Ok(table) => table,
                Err(e) => {
                    ctx.respond(
                        "block",
                        false,
                        &error_result(&format!("store error: {e}")),
                        id,
                    );
                    return;
                }
            };
            let state = Arc::new(BlockState {
                ctx,
                id,
                n,
                start,
                end,
                chunk,
                chunks_total,
                seq: AtomicU64::new(0),
                remaining: AtomicUsize::new(shards.len().max(1)),
                cancelled: AtomicBool::new(false),
                table,
                failed: Mutex::new(None),
            });
            let Some((first, rest)) = shards.split_first() else {
                // Empty range: no chunks, envelope only.
                finish_block(&state);
                return;
            };
            for shard in rest {
                let state = Arc::clone(&state);
                let shard = shard.clone();
                pool_submit(
                    &Arc::clone(&state.ctx.shared.pool),
                    Box::new(move || run_block_shard(&state, shard)),
                );
            }
            // Shard 0 runs inline on this worker: a one-worker pool
            // must not park the only thread waiting for a queue only
            // it can drain.
            run_block_shard(&state, first.clone());
        }
        Request::RandomStream {
            n,
            count,
            seed,
            chunk,
        } => {
            let mut source = GuardedPermSource::with_options(
                SoftwareRandomSource::new(n, seed),
                FaultPolicy::Fallback,
                STREAM_SPOT_CHECK_EVERY,
                seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            );
            let mut words = vec![0u64; chunk.min(count.max(1) as usize)];
            let mut bytes = Vec::with_capacity(words.len() * 8);
            let mut drawn = 0u64;
            let mut seq = 0u64;
            while drawn < count {
                // Deadline checkpoint between chunks — same contract
                // as the block shards.
                if ctx.expired() {
                    ctx.respond_deadline("random-stream", id);
                    return;
                }
                let take = ((count - drawn) as usize).min(chunk);
                source.fill_packed_u64(&mut words[..take]);
                bytes.clear();
                for word in &words[..take] {
                    bytes.extend_from_slice(&word.to_le_bytes());
                }
                let flags = if drawn + take as u64 == count {
                    CHUNK_FLAG_LAST
                } else {
                    0
                };
                ctx.send_chunk(&encode_chunk(id, seq, drawn, flags, &bytes));
                seq += 1;
                drawn += take as u64;
            }
            let guard = source.stats();
            let results = format!(
                "{{\"type\":\"random-stream\",\"n\":{n},\"count\":{count},\"seed\":{seed},\
                 \"chunk\":{chunk},\"chunks\":{seq},\"words\":{count},\
                 \"guard\":{{\"detected\":{},\"retried\":{},\"fell_back\":{}}}}}",
                guard.detected, guard.retried, guard.fell_back,
            );
            ctx.respond("random-stream", true, &results, id);
        }
        Request::Verify { n, jobs } => {
            // The sharded sweep has no mid-flight checkpoint; honor
            // the deadline at least before committing to it (a request
            // that sat in the queue past its deadline never starts).
            if ctx.expired() {
                ctx.respond_deadline("verify", id);
                return;
            }
            let entry = match ctx.shared.verify_entry(n) {
                Ok(entry) => entry,
                Err(e) => {
                    ctx.respond(
                        "verify",
                        false,
                        &error_result(&format!("store error: {e}")),
                        id,
                    );
                    return;
                }
            };
            match exhaustive_check_parallel_with(
                &entry.program,
                "index",
                "perm",
                &entry.table,
                jobs,
            ) {
                Ok(()) => {
                    let results = format!(
                        "{{\"type\":\"verify\",\"n\":{n},\"workers\":{jobs},\"total\":{},\
                         \"verdict\":\"ok\"}}",
                        entry.total,
                    );
                    ctx.respond("verify", true, &results, id);
                }
                Err(m) => {
                    let results = format!(
                        "{{\"type\":\"verify\",\"n\":{n},\"workers\":{jobs},\"total\":{},\
                         \"verdict\":\"mismatch\",\"index\":{},\"port\":\"{}\",\
                         \"got\":{},\"want\":{}}}",
                        entry.total,
                        m.index,
                        crate::json::escape(&m.port),
                        m.got,
                        m.want,
                    );
                    ctx.respond("verify", false, &results, id);
                }
            }
        }
        Request::Stats => {
            let results = ctx.shared.stats.render(ctx.shared.uptime_ms());
            ctx.respond("stats", true, &results, id);
        }
        Request::Shutdown => {
            ctx.respond(
                "shutdown",
                true,
                "{\"type\":\"shutdown\",\"stopping\":true}",
                id,
            );
            ctx.shared.trigger_stop();
        }
    }
}

/// Reader loop of one connection; owns the writer thread.
fn handle_connection(shared: Arc<Shared>, mut read_half: Stream, conn_id: u64) {
    shared.stats.connections.fetch_add(1, Ordering::Relaxed);
    let last_activity = Arc::new(AtomicU64::new(shared.now_ms()));
    let registered = match (read_half.try_clone(), read_half.try_clone()) {
        (Ok(write_half), Ok(registered)) => {
            // Read/write deadlines: a silent peer times the reader
            // out, a peer that stops reading times the writer out.
            // The idle sweep covers what per-call timeouts cannot
            // (trickled frames that never finish).
            if let Some(idle) = shared.options.idle_timeout_ms {
                let budget = Some(Duration::from_millis(idle.max(1)));
                let _ = read_half.set_read_timeout(budget);
                let _ = read_half.set_write_timeout(budget);
            }
            shared.conns.lock().expect("conns lock").insert(
                conn_id,
                ConnEntry {
                    stream: registered,
                    last_activity_ms: Arc::clone(&last_activity),
                },
            );
            // A shutdown that raced this registration may have missed
            // us; re-check so the reader can't outlive the stop
            // decision.
            if shared.stop.load(Ordering::SeqCst) {
                let _ = read_half.shutdown(std::net::Shutdown::Read);
            }
            Some(write_half)
        }
        _ => None,
    };
    if let Some(mut write_half) = registered {
        let (sender, receiver) = sync_channel::<Vec<u8>>(WRITE_QUEUE_DEPTH);
        shared.stats.threads_spawned.fetch_add(1, Ordering::Relaxed);
        let writer = thread::spawn(move || {
            while let Ok(frame) = receiver.recv() {
                if write_half.write_all(&frame).is_err() {
                    // Dropping the receiver un-blocks any workers
                    // still producing for this dead connection; a full
                    // close also kicks the reader off a client that
                    // only stalled its receive direction.
                    let _ = write_half.shutdown(std::net::Shutdown::Both);
                    return;
                }
            }
            let _ = write_half.shutdown(std::net::Shutdown::Write);
        });
        loop {
            match read_frame(&mut read_half) {
                Ok(None) => break,
                Ok(Some((kind, payload))) => {
                    last_activity.store(shared.now_ms(), Ordering::Relaxed);
                    let bytes_in = payload.len() as u64 + 5;
                    shared.stats.bytes_in.fetch_add(bytes_in, Ordering::Relaxed);
                    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
                    let ctx = ReqCtx::new(sender.clone(), Arc::clone(&shared), bytes_in);
                    if kind == KIND_BLOCK {
                        shared.stats.commands[command_slot("error")]
                            .fetch_add(1, Ordering::Relaxed);
                        ctx.respond(
                            "error",
                            false,
                            &error_result("binary frames flow server to client only"),
                            0,
                        );
                        continue;
                    }
                    pool_submit(&shared.pool, Box::new(move || handle_request(ctx, payload)));
                }
                Err(e) => {
                    // Framing is broken (or the connection idled out):
                    // answer once, then close — there is no
                    // resynchronization point in a length-prefixed
                    // stream.
                    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
                    shared.stats.commands[command_slot("error")].fetch_add(1, Ordering::Relaxed);
                    let ctx = ReqCtx::new(sender.clone(), Arc::clone(&shared), 0);
                    ctx.respond("error", false, &error_result(&e.to_string()), 0);
                    break;
                }
            }
        }
        // Writer exits once every sender is gone — ours now, the
        // in-flight jobs' when they finish — so joining it waits for
        // the responses this connection is still owed.
        drop(sender);
        let _ = writer.join();
        shared.stats.threads_joined.fetch_add(1, Ordering::Relaxed);
    }
    shared.conns.lock().expect("conns lock").remove(&conn_id);
    shared.live_conns.fetch_sub(1, Ordering::SeqCst);
}

/// Sheds one over-limit connection: answer the pinned `busy` error
/// envelope (deadlined, so a client that won't read cannot stall the
/// accept loop) and close. No thread is spawned for shed connections.
fn shed_connection(shared: &Shared, stream: Stream) {
    shared.stats.conns_rejected.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(shared.drain_budget_ms().max(1))));
    let busy = envelope(
        "busy",
        false,
        &error_result(&format!(
            "server busy: connection limit of {} reached, retry later",
            shared.options.max_conns
        )),
        0,
        shared.options.fixed_micros.unwrap_or(0),
        0,
    );
    let wire = encode_frame(KIND_JSON, &busy);
    let mut stream = stream;
    let _ = stream.write_all(&wire);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Runs the server until a `shutdown` request arrives; returns the
/// aggregate counters. Binding happened earlier ([`Listener`]), so the
/// caller already knows the endpoint.
pub fn serve(listener: Listener, options: ServeOptions) -> io::Result<ServeSummary> {
    assert!(options.workers >= 1, "need at least one worker");
    assert!(options.default_chunk >= 1, "need a positive default chunk");
    let endpoint = listener.endpoint()?;
    let pool = Arc::new(PoolShared::default());
    let shared = Arc::new(Shared {
        options,
        stats: Stats::default(),
        stop: AtomicBool::new(false),
        stopped_at_ms: AtomicU64::new(0),
        started: Instant::now(),
        endpoint,
        conns: Mutex::new(HashMap::new()),
        next_conn_id: AtomicU64::new(0),
        live_conns: AtomicUsize::new(0),
        pool: Arc::clone(&pool),
        verify_cache: Mutex::new(HashMap::new()),
        store_cache: Mutex::new(HashMap::new()),
    });
    let worker_count = shared.options.workers as u64;
    shared
        .stats
        .threads_spawned
        .fetch_add(worker_count, Ordering::Relaxed);
    let workers = spawn_pool_workers(&pool, shared.options.workers);
    // The idle sweep: reaps connections that stall a frame past the
    // idle timeout (the per-call socket timeouts cannot see trickled
    // bytes) and force-closes drain stragglers after shutdown.
    let sweeper = shared.options.idle_timeout_ms.map(|idle| {
        shared.stats.threads_spawned.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(&shared);
        thread::spawn(move || {
            let tick = Duration::from_millis((idle / 4).clamp(5, 50));
            loop {
                thread::sleep(tick);
                shared.sweep_idle();
                if shared.stop.load(Ordering::SeqCst)
                    && shared.conns.lock().expect("conns lock").is_empty()
                {
                    return;
                }
            }
        })
    });
    let mut connections = Vec::new();
    loop {
        let stream = match listener.accept() {
            Ok(stream) => stream,
            Err(_) if shared.stop.load(Ordering::SeqCst) => break,
            Err(_) => continue,
        };
        if shared.stop.load(Ordering::SeqCst) {
            break; // the shutdown self-connect
        }
        // The accept gate: over-limit connections get one pinned
        // `busy` envelope and a close instead of a thread and a queue
        // slot. Only this thread admits, so the gate cannot over-admit.
        let max = shared.options.max_conns;
        if max > 0 && shared.live_conns.load(Ordering::SeqCst) >= max {
            shed_connection(&shared, stream);
            continue;
        }
        shared.live_conns.fetch_add(1, Ordering::SeqCst);
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        shared.stats.threads_spawned.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(&shared);
        connections.push(thread::spawn(move || {
            handle_connection(shared, stream, conn_id)
        }));
    }
    // Readers were half-closed by trigger_stop, so the job queue only
    // shrinks from here; drain it, then wait for the writers to flush
    // (each within the drain deadline trigger_stop armed).
    pool_join(&pool, workers);
    shared
        .stats
        .threads_joined
        .fetch_add(worker_count, Ordering::Relaxed);
    for conn in connections {
        let _ = conn.join();
        shared.stats.threads_joined.fetch_add(1, Ordering::Relaxed);
    }
    if let Some(sweeper) = sweeper {
        let _ = sweeper.join();
        shared.stats.threads_joined.fetch_add(1, Ordering::Relaxed);
    }
    #[cfg(unix)]
    if let Endpoint::Unix(path) = &shared.endpoint {
        let _ = std::fs::remove_file(path);
    }
    let stats = &shared.stats;
    Ok(ServeSummary {
        connections: stats.connections.load(Ordering::Relaxed),
        requests: stats.requests.load(Ordering::Relaxed),
        errors: stats.errors.load(Ordering::Relaxed),
        bytes_in: stats.bytes_in.load(Ordering::Relaxed),
        bytes_out: stats.bytes_out.load(Ordering::Relaxed),
        conns_rejected: stats.conns_rejected.load(Ordering::Relaxed),
        requests_timed_out: stats.requests_timed_out.load(Ordering::Relaxed),
        threads_spawned: stats.threads_spawned.load(Ordering::Relaxed),
        threads_joined: stats.threads_joined.load(Ordering::Relaxed),
    })
}

/// A server running on a background thread — the in-process harness
/// the tests and `servebench` drive.
pub struct ServerHandle {
    endpoint: Endpoint,
    thread: Option<JoinHandle<io::Result<ServeSummary>>>,
}

/// Spawns [`serve`] on a background thread.
pub fn spawn(listener: Listener, options: ServeOptions) -> io::Result<ServerHandle> {
    let endpoint = listener.endpoint()?;
    let thread = thread::spawn(move || serve(listener, options));
    Ok(ServerHandle {
        endpoint,
        thread: Some(thread),
    })
}

impl ServerHandle {
    /// Where clients reach this server.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Sends a `shutdown` request and joins the server thread.
    ///
    /// On a gated server (`max_conns`) the stop connection itself can
    /// be shed while a just-closed slot is still being reaped, so a
    /// `busy` answer is retried briefly — a stop must win against its
    /// own accept gate.
    pub fn stop(mut self) -> io::Result<ServeSummary> {
        for _ in 0..500 {
            let mut client = Client::connect(&self.endpoint)?;
            let response = client
                .request("{\"cmd\":\"shutdown\"}")
                .map_err(|e| io::Error::other(e.to_string()))?;
            if !String::from_utf8_lossy(&response.envelope).contains("\"command\":\"busy\"") {
                return self.join_inner();
            }
            thread::sleep(Duration::from_millis(10));
        }
        Err(io::Error::other(
            "server shed 500 consecutive shutdown attempts; giving up",
        ))
    }

    /// Joins the server thread (some client must have requested
    /// shutdown, or this blocks forever).
    pub fn join(mut self) -> io::Result<ServeSummary> {
        self.join_inner()
    }

    fn join_inner(&mut self) -> io::Result<ServeSummary> {
        self.thread
            .take()
            .expect("server joined twice")
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}
