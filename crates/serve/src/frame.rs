//! Length-prefixed wire framing.
//!
//! Every message on a serve connection is one *frame*:
//!
//! ```text
//! [ u32 big-endian length L ][ u8 kind ][ L - 1 bytes payload ]
//! ```
//!
//! where `L` counts the kind byte plus the payload and is capped at
//! [`MAX_FRAME`]. Two kinds exist: [`KIND_JSON`] (a UTF-8 JSON
//! document — every request and every response envelope) and
//! [`KIND_BLOCK`] (a binary packed-permutation chunk — see
//! [`crate::protocol::BlockChunk`]).
//!
//! The decoder is the first code in this workspace that touches
//! *untrusted* bytes, so its contract is strict and pinned by the
//! protocol fuzz suite:
//!
//! - it never panics, whatever the input;
//! - it never allocates more than `MAX_FRAME` bytes, and rejects an
//!   oversized declared length **before** allocating anything;
//! - a connection closed cleanly between frames is `Ok(None)`, while
//!   a close mid-frame is a [`FrameError::Truncated`].

use std::io::{Read, Write};

/// Hard cap on a frame's declared length (kind byte + payload), in
/// bytes. Chosen so the largest server-side chunk (65 536 packed words
/// = 512 KiB plus the 40-byte chunk header) fits with headroom, while
/// a hostile 4 GiB length prefix is rejected without allocating.
pub const MAX_FRAME: usize = 1 << 20;

/// Frame kind: UTF-8 JSON document (requests, response envelopes).
pub const KIND_JSON: u8 = 0;

/// Frame kind: binary packed-permutation chunk (block / random-stream
/// data plane).
pub const KIND_BLOCK: u8 = 1;

/// Everything that can go wrong while reading one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The peer closed the connection in the middle of a frame.
    Truncated {
        /// Bytes the frame still owed when the stream ended.
        missing: usize,
    },
    /// The length prefix declares more than [`MAX_FRAME`] bytes.
    Oversized {
        /// The declared length.
        declared: u64,
    },
    /// The length prefix declares zero bytes (not even a kind byte).
    Empty,
    /// The kind byte is neither [`KIND_JSON`] nor [`KIND_BLOCK`].
    UnknownKind(u8),
    /// A socket read deadline fired before the frame completed — the
    /// peer idled (or stalled mid-frame) past the configured timeout.
    TimedOut,
    /// Transport-level I/O failure.
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { missing } => {
                write!(f, "truncated frame: stream ended {missing} byte(s) early")
            }
            FrameError::Oversized { declared } => write!(
                f,
                "oversized frame: declared length {declared} exceeds the {MAX_FRAME}-byte cap"
            ),
            FrameError::Empty => write!(f, "empty frame: length prefix declares zero bytes"),
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::TimedOut => {
                write!(
                    f,
                    "idle timeout: no complete frame arrived before the deadline"
                )
            }
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Reads exactly `buf.len()` bytes; distinguishes a clean close before
/// the first byte (`Ok(false)`) from a mid-read close (`Truncated`).
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, FrameError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(FrameError::Truncated {
                    missing: buf.len() - filled,
                });
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            // A socket read deadline (set_read_timeout) surfaces as
            // WouldBlock on Unix and TimedOut on Windows; both mean
            // the peer stalled past the configured idle budget.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(FrameError::TimedOut)
            }
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    Ok(true)
}

/// Reads one frame, returning `(kind, payload)` — or `Ok(None)` when
/// the peer closed the connection cleanly between frames.
///
/// Never panics and never allocates more than [`MAX_FRAME`] bytes: the
/// declared length is validated against the cap before the payload
/// buffer exists.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, FrameError> {
    let mut prefix = [0u8; 4];
    if !read_full(r, &mut prefix)? {
        return Ok(None);
    }
    let declared = u32::from_be_bytes(prefix) as u64;
    if declared == 0 {
        return Err(FrameError::Empty);
    }
    if declared > MAX_FRAME as u64 {
        return Err(FrameError::Oversized { declared });
    }
    let mut body = vec![0u8; declared as usize];
    if !read_full(r, &mut body)? {
        return Err(FrameError::Truncated {
            missing: body.len(),
        });
    }
    let kind = body[0];
    if kind != KIND_JSON && kind != KIND_BLOCK {
        return Err(FrameError::UnknownKind(kind));
    }
    body.remove(0);
    Ok(Some((kind, body)))
}

/// Writes one frame.
///
/// # Panics
/// Panics if `payload.len() + 1` exceeds [`MAX_FRAME`] — the server
/// controls every frame it emits, so an oversized outbound frame is a
/// bug, not a runtime condition.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> std::io::Result<()> {
    let len = payload.len() + 1;
    assert!(
        len <= MAX_FRAME,
        "outbound frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"
    );
    w.write_all(&(len as u32).to_be_bytes())?;
    w.write_all(&[kind])?;
    w.write_all(payload)
}

/// The full on-wire encoding of one frame (prefix + kind + payload),
/// for transcript pinning in tests.
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + payload.len());
    write_frame(&mut out, kind, payload).expect("Vec write is infallible");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_both_kinds() {
        for (kind, payload) in [
            (KIND_JSON, b"{\"cmd\":\"stats\"}".to_vec()),
            (KIND_BLOCK, vec![0u8; 64]),
            (KIND_JSON, Vec::new()),
        ] {
            let wire = encode_frame(kind, &payload);
            let mut cursor = Cursor::new(wire);
            let (k, body) = read_frame(&mut cursor).unwrap().unwrap();
            assert_eq!(k, kind);
            assert_eq!(body, payload);
            // Clean EOF after the frame.
            assert_eq!(read_frame(&mut cursor).unwrap(), None);
        }
    }

    #[test]
    fn clean_close_between_frames_is_none() {
        let mut empty = Cursor::new(Vec::<u8>::new());
        assert_eq!(read_frame(&mut empty).unwrap(), None);
    }

    #[test]
    fn truncated_prefix_and_body_are_errors() {
        // Two of the four prefix bytes.
        let mut cursor = Cursor::new(vec![0u8, 0]);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Truncated { .. })
        ));
        // Full prefix declaring 10 bytes, only 3 present.
        let mut wire = 10u32.to_be_bytes().to_vec();
        wire.extend_from_slice(&[KIND_JSON, b'{', b'}']);
        let mut cursor = Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Truncated { .. })
        ));
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        // A hostile prefix claiming 4 GiB must fail fast; the body is
        // absent, so any attempt to read it would report Truncated
        // instead — Oversized proves the length check fired first.
        let mut cursor = Cursor::new(0xFFFF_FFFFu32.to_be_bytes().to_vec());
        assert_eq!(
            read_frame(&mut cursor),
            Err(FrameError::Oversized {
                declared: 0xFFFF_FFFF
            })
        );
        // One past the cap is rejected; the cap itself is accepted.
        let mut cursor = Cursor::new(((MAX_FRAME + 1) as u32).to_be_bytes().to_vec());
        assert_eq!(
            read_frame(&mut cursor),
            Err(FrameError::Oversized {
                declared: MAX_FRAME as u64 + 1
            })
        );
        let mut wire = (MAX_FRAME as u32).to_be_bytes().to_vec();
        wire.push(KIND_BLOCK);
        wire.extend_from_slice(&vec![0u8; MAX_FRAME - 1]);
        let (kind, body) = read_frame(&mut Cursor::new(wire)).unwrap().unwrap();
        assert_eq!(kind, KIND_BLOCK);
        assert_eq!(body.len(), MAX_FRAME - 1);
    }

    #[test]
    fn zero_length_and_unknown_kind_rejected() {
        let mut cursor = Cursor::new(0u32.to_be_bytes().to_vec());
        assert_eq!(read_frame(&mut cursor), Err(FrameError::Empty));
        let wire = encode_frame(KIND_JSON, b"x");
        let mut bad = wire.clone();
        bad[4] = 7; // corrupt the kind byte
        assert_eq!(
            read_frame(&mut Cursor::new(bad)),
            Err(FrameError::UnknownKind(7))
        );
    }

    #[test]
    #[should_panic(expected = "exceeds the")]
    fn outbound_oversize_is_a_bug() {
        let mut sink = Vec::new();
        write_frame(&mut sink, KIND_BLOCK, &vec![0u8; MAX_FRAME]).unwrap();
    }
}
