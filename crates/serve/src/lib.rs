#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Permutation-as-a-service: the paper's index-to-permutation
//! machinery behind a long-running socket server.
//!
//! The paper's motivating deployment is a converter that *feeds other
//! machines* — "parallel machines interacting through a shared
//! memory". This crate is that deployment boundary as software: a
//! TCP / Unix-socket server speaking a length-prefixed protocol
//! ([`frame`]) of JSON control frames ([`json`], [`protocol`]) and
//! binary packed-permutation data frames, multiplexing requests over a
//! sharded worker pool ([`server`]):
//!
//! | request         | backed by                                              |
//! |-----------------|--------------------------------------------------------|
//! | `unrank`        | `hwperm_factoradic::Unranker`                          |
//! | `rank`          | `hwperm_factoradic::rank_u64`                          |
//! | `block`         | `hwperm_factoradic::BlockDecoder`, sharded per worker  |
//! | `random-stream` | `hwperm_core::GuardedPermSource` (fallback policy)     |
//! | `verify`        | `hwperm_verify::exhaustive_check_parallel_with`        |
//! | `stats`         | server-wide counters                                   |
//! | `shutdown`      | graceful drain                                         |
//!
//! Responses reuse the CLI's JSON envelope schema
//! (`{"tool","version","command","status","exit","errors","results"}`)
//! extended with a per-request `"metrics"` trailer; bulk permutation
//! data travels as little-endian packed `u64` words in binary frames,
//! so block serving stays within sight of in-process decode rates.
//!
//! ```no_run
//! use hwperm_serve::{spawn, Client, Listener, ServeOptions};
//!
//! let listener = Listener::bind_tcp("127.0.0.1:0")?;
//! let server = spawn(listener, ServeOptions::default())?;
//! let mut client = Client::connect(server.endpoint())?;
//! let response = client.request(r#"{"id":1,"cmd":"unrank","n":4,"index":11}"#).unwrap();
//! assert!(response.is_ok());
//! server.stop()?;
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod chaos;
pub mod client;
pub mod frame;
pub mod json;
pub mod protocol;
pub mod server;

pub use chaos::{ChaosProxy, ChaosReport, Fault};
pub use client::{
    envelope_id, request_is_replayable, Client, ClientError, Message, Response, RetryClient,
    RetryPolicy, RetryStats,
};
pub use frame::{
    encode_frame, read_frame, write_frame, FrameError, KIND_BLOCK, KIND_JSON, MAX_FRAME,
};
pub use json::{Json, JsonError};
pub use protocol::{
    decode_chunk, encode_chunk, envelope, error_result, parse_request, request_attempt, BlockChunk,
    Request, RequestError, CHUNK_CAP, CHUNK_FLAG_LAST, CHUNK_HEADER, DEFAULT_CHUNK,
};
pub use server::{
    serve, spawn, Endpoint, Listener, ServeOptions, ServeSummary, ServerHandle, DEADLINE_MSG,
    DEFAULT_DRAIN_MS, STREAM_SPOT_CHECK_EVERY, WRITE_QUEUE_DEPTH,
};
