//! Request parsing, response envelopes, and binary chunk encoding.
//!
//! ## Requests (JSON frames, client → server)
//!
//! Every request is one [`KIND_JSON`](crate::frame::KIND_JSON) frame
//! holding an object with an `"id"` (echoed back for multiplexing, 0
//! if absent) and a `"cmd"`:
//!
//! | cmd             | fields                                   |
//! |-----------------|------------------------------------------|
//! | `unrank`        | `n` (1..=16), `index` (< n!)             |
//! | `rank`          | `perm` (array, a permutation of 0..n−1)  |
//! | `block`         | `n`, `start`, `end` (≤ n!), `chunk`?     |
//! | `random-stream` | `n`, `count`, `seed`?, `chunk`?          |
//! | `verify`        | `n` (2..=8), `jobs`? (1..=64)            |
//! | `stats`         | —                                        |
//! | `shutdown`      | —                                        |
//!
//! ## Responses (server → client)
//!
//! Every request gets exactly one JSON *envelope* frame — the same
//! `{"tool","version","command","status","exit","errors","results"}`
//! shape the `lint`/`faults`/`prove` subcommands pin, extended with a
//! `"metrics"` trailer carrying the request id, service latency and
//! request payload size. Bulk data (`block`, `random-stream`) arrives
//! *before* the envelope as [`KIND_BLOCK`](crate::frame::KIND_BLOCK)
//! binary frames ([`BlockChunk`]): 40-byte header (id, seq, base,
//! count, flags — all little-endian `u64`) followed by `count` packed
//! permutation words. Chunks of one request may arrive in any base
//! order when the worker pool shards the range; the envelope always
//! arrives last.

use crate::json::{escape, Json};

/// Cap on the `chunk` request field (packed words per binary frame):
/// 65 536 words = 512 KiB of payload, comfortably under the frame cap.
pub const CHUNK_CAP: usize = 65_536;

/// Default `chunk` when a request omits it.
pub const DEFAULT_CHUNK: usize = 8_192;

/// Byte length of the [`BlockChunk`] header (5 little-endian `u64`s).
pub const CHUNK_HEADER: usize = 40;

/// Flag bit: this chunk is the final one of its request.
pub const CHUNK_FLAG_LAST: u64 = 1;

/// A validated request body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Unrank one index.
    Unrank {
        /// Permutation size (1..=16).
        n: usize,
        /// Lexicographic index, `< n!`.
        index: u64,
    },
    /// Rank one permutation.
    Rank {
        /// The permutation's elements.
        perm: Vec<u32>,
    },
    /// Stream a contiguous index range as packed words.
    Block {
        /// Permutation size (1..=16).
        n: usize,
        /// First index (inclusive).
        start: u64,
        /// Last index (exclusive), `≤ n!`.
        end: u64,
        /// Packed words per binary chunk frame.
        chunk: usize,
    },
    /// Stream seeded random permutations through the guarded source.
    RandomStream {
        /// Permutation size (1..=16).
        n: usize,
        /// Number of draws.
        count: u64,
        /// RNG seed (deterministic stream per seed).
        seed: u64,
        /// Packed words per binary chunk frame.
        chunk: usize,
    },
    /// Exhaustively verify the Fig. 1 converter netlist at size `n`.
    Verify {
        /// Permutation size (2..=8).
        n: usize,
        /// Worker threads for the sharded sweep.
        jobs: usize,
    },
    /// Server-wide counters.
    Stats,
    /// Graceful shutdown.
    Shutdown,
}

impl Request {
    /// The wire name of this request's command.
    pub fn command(&self) -> &'static str {
        match self {
            Request::Unrank { .. } => "unrank",
            Request::Rank { .. } => "rank",
            Request::Block { .. } => "block",
            Request::RandomStream { .. } => "random-stream",
            Request::Verify { .. } => "verify",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        }
    }
}

/// A request that failed validation: the id and command to echo (both
/// best-effort) plus the error message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// Echoed request id (0 when unparseable).
    pub id: u64,
    /// Echoed command (`"error"` when unparseable).
    pub command: String,
    /// Human-readable reason.
    pub message: String,
}

fn fail(id: u64, command: &str, message: impl Into<String>) -> RequestError {
    RequestError {
        id,
        command: command.to_string(),
        message: message.into(),
    }
}

/// `n!` for the packed-word sizes (`n ≤ 16` keeps it within `u64`).
pub fn factorial_u64(n: usize) -> u64 {
    (1..=n as u64).product()
}

fn field_u64(
    doc: &Json,
    id: u64,
    cmd: &str,
    key: &str,
    default: Option<u64>,
) -> Result<u64, RequestError> {
    match doc.get(key) {
        None => default.ok_or_else(|| fail(id, cmd, format!("missing field {key:?}"))),
        Some(v) => v.as_u64().ok_or_else(|| {
            fail(
                id,
                cmd,
                format!("field {key:?} must be a non-negative integer"),
            )
        }),
    }
}

fn field_n(doc: &Json, id: u64, cmd: &str, lo: usize, hi: usize) -> Result<usize, RequestError> {
    let n = field_u64(doc, id, cmd, "n", None)? as usize;
    if !(lo..=hi).contains(&n) {
        return Err(fail(id, cmd, format!("n must be {lo}..={hi}")));
    }
    Ok(n)
}

fn field_chunk(doc: &Json, id: u64, cmd: &str, default: usize) -> Result<usize, RequestError> {
    let chunk = field_u64(doc, id, cmd, "chunk", Some(default as u64))? as usize;
    if !(1..=CHUNK_CAP).contains(&chunk) {
        return Err(fail(id, cmd, format!("chunk must be 1..={CHUNK_CAP}")));
    }
    Ok(chunk)
}

/// The `"attempt"` counter a retrying client stamps on replayed
/// requests (0 or absent on first sends). Servers tally non-zero
/// attempts as `retries_observed`; the field is otherwise ignored, so
/// stamped requests parse identically to fresh ones. Unparseable
/// payloads report 0 — they are counted through the error path, not
/// the retry path.
pub fn request_attempt(payload: &[u8]) -> u64 {
    // Cheap pre-filter: almost every request carries no "attempt" key,
    // and those skip the second JSON parse entirely.
    if !payload
        .windows(b"\"attempt\"".len())
        .any(|w| w == b"\"attempt\"")
    {
        return 0;
    }
    Json::parse(payload)
        .ok()
        .and_then(|doc| doc.get("attempt")?.as_u64())
        .unwrap_or(0)
}

/// Parses and validates one request payload; `default_chunk` is the
/// server-configured chunk size used when a request omits `"chunk"`.
/// On failure the error carries the best-effort id/command echo for
/// the error envelope.
pub fn parse_request(payload: &[u8], default_chunk: usize) -> Result<(u64, Request), RequestError> {
    let doc = Json::parse(payload).map_err(|e| fail(0, "error", e.to_string()))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(fail(0, "error", "request must be a JSON object"));
    }
    let id = match doc.get("id") {
        None => 0,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| fail(0, "error", "field \"id\" must be a non-negative integer"))?,
    };
    let cmd = doc
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| fail(id, "error", "missing string field \"cmd\""))?
        .to_string();
    let request = match cmd.as_str() {
        "unrank" => {
            let n = field_n(&doc, id, &cmd, 1, 16)?;
            let index = field_u64(&doc, id, &cmd, "index", None)?;
            if index >= factorial_u64(n) {
                return Err(fail(id, &cmd, format!("index must be below {n}!")));
            }
            Request::Unrank { n, index }
        }
        "rank" => {
            let elems = doc
                .get("perm")
                .and_then(Json::as_array)
                .ok_or_else(|| fail(id, &cmd, "missing array field \"perm\""))?;
            if elems.is_empty() || elems.len() > 16 {
                return Err(fail(id, &cmd, "perm must have 1..=16 elements"));
            }
            let mut perm = Vec::with_capacity(elems.len());
            for e in elems {
                let v = e
                    .as_u64()
                    .filter(|&v| v < 16)
                    .ok_or_else(|| fail(id, &cmd, "perm elements must be integers below 16"))?;
                perm.push(v as u32);
            }
            Request::Rank { perm }
        }
        "block" => {
            let n = field_n(&doc, id, &cmd, 1, 16)?;
            let start = field_u64(&doc, id, &cmd, "start", Some(0))?;
            let end = field_u64(&doc, id, &cmd, "end", Some(factorial_u64(n)))?;
            if end > factorial_u64(n) {
                return Err(fail(id, &cmd, format!("end must be at most {n}!")));
            }
            if start > end {
                return Err(fail(id, &cmd, "start must not exceed end"));
            }
            let chunk = field_chunk(&doc, id, &cmd, default_chunk)?;
            Request::Block {
                n,
                start,
                end,
                chunk,
            }
        }
        "random-stream" => {
            let n = field_n(&doc, id, &cmd, 1, 16)?;
            let count = field_u64(&doc, id, &cmd, "count", None)?;
            let seed = field_u64(&doc, id, &cmd, "seed", Some(0xD1CE))?;
            let chunk = field_chunk(&doc, id, &cmd, default_chunk)?;
            Request::RandomStream {
                n,
                count,
                seed,
                chunk,
            }
        }
        "verify" => {
            let n = field_n(&doc, id, &cmd, 2, 8)?;
            let jobs = field_u64(&doc, id, &cmd, "jobs", Some(1))? as usize;
            if !(1..=64).contains(&jobs) {
                return Err(fail(id, &cmd, "jobs must be 1..=64"));
            }
            Request::Verify { n, jobs }
        }
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        other => {
            return Err(fail(
                id,
                "error",
                format!(
                    "unknown cmd {other:?} (commands: unrank | rank | block | \
                     random-stream | verify | stats | shutdown)"
                ),
            ))
        }
    };
    Ok((id, request))
}

/// Builds the response envelope — the shared
/// `{"tool","version","command","status","exit","errors","results"}`
/// schema of `lint --json` / `faults --json` / `prove --json`, plus the
/// serve-specific `"metrics"` trailer `{id, micros, bytes_in}`.
pub fn envelope(
    command: &str,
    ok: bool,
    results: &str,
    id: u64,
    micros: u64,
    bytes_in: u64,
) -> Vec<u8> {
    let (status, exit, errors) = if ok { ("ok", 0, 0) } else { ("error", 2, 1) };
    format!(
        "{{\"tool\":\"hwperm\",\"version\":\"{}\",\"command\":\"{command}\",\
         \"status\":\"{status}\",\"exit\":{exit},\"errors\":{errors},\
         \"results\":[{results}],\"metrics\":{{\"id\":{id},\"micros\":{micros},\
         \"bytes_in\":{bytes_in}}}}}\n",
        env!("CARGO_PKG_VERSION"),
    )
    .into_bytes()
}

/// The error-envelope result object for `message`.
pub fn error_result(message: &str) -> String {
    format!("{{\"error\":\"{}\"}}", escape(message))
}

/// One decoded binary chunk frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockChunk {
    /// The request this chunk answers.
    pub id: u64,
    /// Production sequence number within the request.
    pub seq: u64,
    /// Index of the first word (block) or draw offset (random-stream).
    pub base: u64,
    /// Flag bits ([`CHUNK_FLAG_LAST`]).
    pub flags: u64,
    /// The packed permutation words.
    pub words: Vec<u64>,
}

/// Encodes a chunk frame payload from already-serialized word bytes
/// (little-endian `u64`s — [`BlockDecoder::decode_le_bytes_into`]'s
/// output feeds this directly).
///
/// [`BlockDecoder::decode_le_bytes_into`]:
///     hwperm_factoradic::BlockDecoder::decode_le_bytes_into
///
/// # Panics
/// Panics if `word_bytes` is not a multiple of 8 long — the server
/// owns every outbound chunk, so a ragged buffer is a bug.
pub fn encode_chunk(id: u64, seq: u64, base: u64, flags: u64, word_bytes: &[u8]) -> Vec<u8> {
    assert!(
        word_bytes.len().is_multiple_of(8),
        "chunk payload of {} bytes is not a whole number of words",
        word_bytes.len()
    );
    let count = (word_bytes.len() / 8) as u64;
    let mut out = Vec::with_capacity(CHUNK_HEADER + word_bytes.len());
    for v in [id, seq, base, count, flags] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(word_bytes);
    out
}

/// Decodes a chunk frame payload, validating the header against the
/// actual length.
pub fn decode_chunk(payload: &[u8]) -> Result<BlockChunk, String> {
    if payload.len() < CHUNK_HEADER {
        return Err(format!(
            "chunk frame of {} bytes is shorter than the {CHUNK_HEADER}-byte header",
            payload.len()
        ));
    }
    let word = |i: usize| {
        u64::from_le_bytes(
            payload[i * 8..(i + 1) * 8]
                .try_into()
                .expect("8-byte slice"),
        )
    };
    let (id, seq, base, count, flags) = (word(0), word(1), word(2), word(3), word(4));
    let body = &payload[CHUNK_HEADER..];
    if !body.len().is_multiple_of(8) {
        return Err(format!(
            "chunk body of {} bytes is not a whole number of words",
            body.len()
        ));
    }
    if (body.len() / 8) as u64 != count {
        return Err(format!(
            "chunk header declares {count} words but the body carries {}",
            body.len() / 8
        ));
    }
    let words = body
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect();
    Ok(BlockChunk {
        id,
        seq,
        base,
        flags,
        words,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<(u64, Request), RequestError> {
        parse_request(s.as_bytes(), DEFAULT_CHUNK)
    }

    #[test]
    fn parses_every_request_type() {
        assert_eq!(
            parse(r#"{"id":1,"cmd":"unrank","n":4,"index":11}"#).unwrap(),
            (1, Request::Unrank { n: 4, index: 11 })
        );
        assert_eq!(
            parse(r#"{"id":2,"cmd":"rank","perm":[1,3,2,0]}"#).unwrap(),
            (
                2,
                Request::Rank {
                    perm: vec![1, 3, 2, 0]
                }
            )
        );
        assert_eq!(
            parse(r#"{"id":3,"cmd":"block","n":5,"start":10,"end":50,"chunk":16}"#).unwrap(),
            (
                3,
                Request::Block {
                    n: 5,
                    start: 10,
                    end: 50,
                    chunk: 16
                }
            )
        );
        // block defaults: start 0, end n!, chunk DEFAULT_CHUNK.
        assert_eq!(
            parse(r#"{"cmd":"block","n":4}"#).unwrap(),
            (
                0,
                Request::Block {
                    n: 4,
                    start: 0,
                    end: 24,
                    chunk: DEFAULT_CHUNK
                }
            )
        );
        assert_eq!(
            parse(r#"{"id":4,"cmd":"random-stream","n":6,"count":100,"seed":9}"#).unwrap(),
            (
                4,
                Request::RandomStream {
                    n: 6,
                    count: 100,
                    seed: 9,
                    chunk: DEFAULT_CHUNK
                }
            )
        );
        assert_eq!(
            parse(r#"{"id":5,"cmd":"verify","n":6,"jobs":4}"#).unwrap(),
            (5, Request::Verify { n: 6, jobs: 4 })
        );
        assert_eq!(
            parse(r#"{"id":6,"cmd":"stats"}"#).unwrap().1,
            Request::Stats
        );
        assert_eq!(
            parse(r#"{"id":7,"cmd":"shutdown"}"#).unwrap().1,
            Request::Shutdown
        );
    }

    #[test]
    fn default_chunk_is_server_configured() {
        let (_, req) = parse_request(br#"{"cmd":"block","n":4}"#, 64).unwrap();
        assert!(matches!(req, Request::Block { chunk: 64, .. }));
        // An explicit chunk still wins over the server default.
        let (_, req) = parse_request(br#"{"cmd":"block","n":4,"chunk":7}"#, 64).unwrap();
        assert!(matches!(req, Request::Block { chunk: 7, .. }));
    }

    #[test]
    fn validation_rejects_hostile_fields() {
        // (payload, expected message fragment)
        for (bad, frag) in [
            ("[]", "must be a JSON object"),
            ("{\"cmd\":\"unrank\"}", "missing field \"n\""),
            (
                "{\"cmd\":\"unrank\",\"n\":0,\"index\":0}",
                "n must be 1..=16",
            ),
            (
                "{\"cmd\":\"unrank\",\"n\":17,\"index\":0}",
                "n must be 1..=16",
            ),
            (
                "{\"cmd\":\"unrank\",\"n\":4,\"index\":24}",
                "index must be below 4!",
            ),
            (
                "{\"cmd\":\"unrank\",\"n\":4,\"index\":-1}",
                "non-negative integer",
            ),
            ("{\"cmd\":\"rank\",\"perm\":[]}", "1..=16 elements"),
            ("{\"cmd\":\"rank\",\"perm\":[0,99]}", "integers below 16"),
            (
                "{\"cmd\":\"block\",\"n\":4,\"start\":5,\"end\":3}",
                "start must not exceed end",
            ),
            (
                "{\"cmd\":\"block\",\"n\":4,\"end\":25}",
                "end must be at most 4!",
            ),
            (
                "{\"cmd\":\"block\",\"n\":4,\"chunk\":0}",
                "chunk must be 1..=65536",
            ),
            (
                "{\"cmd\":\"block\",\"n\":4,\"chunk\":1000000}",
                "chunk must be 1..=65536",
            ),
            ("{\"cmd\":\"verify\",\"n\":9}", "n must be 2..=8"),
            (
                "{\"cmd\":\"verify\",\"n\":4,\"jobs\":0}",
                "jobs must be 1..=64",
            ),
            ("{\"cmd\":\"frobnicate\"}", "unknown cmd"),
            ("{\"n\":4}", "missing string field \"cmd\""),
            ("{\"id\":\"x\",\"cmd\":\"stats\"}", "\"id\" must be"),
            ("not json at all", "invalid JSON"),
        ] {
            let e = parse(bad).unwrap_err();
            assert!(
                e.message.contains(frag),
                "{bad}: got {:?}, want fragment {frag:?}",
                e.message
            );
        }
    }

    #[test]
    fn error_echo_carries_id_and_command() {
        let e = parse(r#"{"id":42,"cmd":"unrank","n":99,"index":0}"#).unwrap_err();
        assert_eq!(e.id, 42);
        assert_eq!(e.command, "unrank");
        // Unparseable documents echo id 0 / command "error".
        let e = parse("{{{{").unwrap_err();
        assert_eq!((e.id, e.command.as_str()), (0, "error"));
    }

    #[test]
    fn envelope_matches_the_cli_schema_prefix() {
        let env = envelope("unrank", true, "{\"x\":1}", 7, 0, 33);
        let text = String::from_utf8(env).unwrap();
        let prefix = format!(
            "{{\"tool\":\"hwperm\",\"version\":\"{}\",\"command\":\"unrank\",\
             \"status\":\"ok\",\"exit\":0,\"errors\":0,\"results\":[",
            env!("CARGO_PKG_VERSION")
        );
        assert!(text.starts_with(&prefix), "{text}");
        assert!(
            text.trim_end()
                .ends_with("],\"metrics\":{\"id\":7,\"micros\":0,\"bytes_in\":33}}"),
            "{text}"
        );
        let err = String::from_utf8(envelope(
            "error",
            false,
            &error_result("boom \"x\""),
            0,
            0,
            4,
        ))
        .unwrap();
        assert!(
            err.contains("\"status\":\"error\",\"exit\":2,\"errors\":1"),
            "{err}"
        );
        assert!(err.contains("{\"error\":\"boom \\\"x\\\"\"}"), "{err}");
    }

    #[test]
    fn chunk_roundtrip_and_hostile_decodes() {
        let words: Vec<u64> = (0..5u64).map(|i| i * 1000).collect();
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let payload = encode_chunk(9, 2, 100, CHUNK_FLAG_LAST, &bytes);
        assert_eq!(payload.len(), CHUNK_HEADER + 40);
        let chunk = decode_chunk(&payload).unwrap();
        assert_eq!(
            chunk,
            BlockChunk {
                id: 9,
                seq: 2,
                base: 100,
                flags: CHUNK_FLAG_LAST,
                words
            }
        );
        // Hostile: short header, ragged body, count mismatch.
        assert!(decode_chunk(&payload[..CHUNK_HEADER - 1])
            .unwrap_err()
            .contains("shorter"));
        assert!(decode_chunk(&payload[..CHUNK_HEADER + 3])
            .unwrap_err()
            .contains("whole number"));
        let mut lying = payload.clone();
        lying[24] = 99; // count field
        assert!(decode_chunk(&lying).unwrap_err().contains("declares"));
    }
}
