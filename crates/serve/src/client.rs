//! A blocking client for the serve protocol.
//!
//! Three usage levels:
//!
//! - [`Client::request`] — one request, collect its binary chunks,
//!   return when the envelope arrives. What the CLI examples and most
//!   tests use.
//! - [`Client::send_json`] + [`Client::read_message`] — raw pipelining:
//!   push several requests, then demultiplex the interleaved responses
//!   yourself by request id ([`BlockChunk::id`] on chunks,
//!   [`envelope_id`] on envelopes). What the soak test and `servebench`
//!   use.
//! - [`RetryClient`] — a [`Client`] wrapped in a [`RetryPolicy`]: on a
//!   transport failure it reconnects and replays the request with
//!   exponential backoff and deterministic seeded jitter, but only for
//!   *idempotent* commands (`unrank` / `rank` / `block` / `verify` /
//!   `stats` — see [`request_is_replayable`]). What hostile-network
//!   callers (and the chaos harness) use.

use crate::frame::{read_frame, write_frame, FrameError, KIND_BLOCK, KIND_JSON};
use crate::json::Json;
use crate::protocol::{decode_chunk, BlockChunk};
use crate::server::{Endpoint, Stream};
use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Everything that can go wrong on the client side of a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Transport-level failure while sending.
    Io(String),
    /// Framing failure while receiving.
    Frame(FrameError),
    /// The frames arrived but violated the protocol (bad chunk header,
    /// connection closed before the envelope, ...).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O error: {e}"),
            ClientError::Frame(e) => write!(f, "client framing error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e.to_string())
    }
}

/// One inbound frame, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A response envelope, as raw bytes (kept raw so transcript tests
    /// can compare byte-for-byte; parse on demand with [`Json`]).
    Envelope(Vec<u8>),
    /// A binary packed-permutation chunk.
    Chunk(BlockChunk),
}

/// A collected response: every chunk of the request plus its envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The raw envelope bytes.
    pub envelope: Vec<u8>,
    /// The request's binary chunks, in arrival order.
    pub chunks: Vec<BlockChunk>,
}

impl Response {
    /// Parses the envelope.
    pub fn json(&self) -> Result<Json, ClientError> {
        Json::parse(&self.envelope).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Whether the envelope reports `"status":"ok"`.
    pub fn is_ok(&self) -> bool {
        matches!(
            self.json().ok().and_then(|j| match j.get("status") {
                Some(Json::Str(s)) => Some(s == "ok"),
                _ => None,
            }),
            Some(true)
        )
    }

    /// All chunk words reassembled in `base` order — the shard-count-
    /// independent view of a `block` or `random-stream` payload.
    pub fn words(&self) -> Vec<u64> {
        let mut chunks: Vec<&BlockChunk> = self.chunks.iter().collect();
        chunks.sort_by_key(|c| c.base);
        chunks
            .iter()
            .flat_map(|c| c.words.iter().copied())
            .collect()
    }
}

/// The request id an envelope's metrics trailer echoes.
pub fn envelope_id(envelope: &[u8]) -> Option<u64> {
    Json::parse(envelope)
        .ok()?
        .get("metrics")?
        .get("id")?
        .as_u64()
}

/// A blocking protocol client over one connection.
pub struct Client {
    reader: BufReader<Stream>,
    writer: BufWriter<Stream>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        let stream = Stream::connect(endpoint)?;
        let write_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
        })
    }

    /// Sends one JSON request frame (flushes immediately).
    pub fn send_json(&mut self, body: &str) -> io::Result<()> {
        write_frame(&mut self.writer, KIND_JSON, body.as_bytes())?;
        self.writer.flush()
    }

    /// Sends one raw frame of arbitrary kind — the fuzz tests' hatch
    /// for hostile traffic.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Reads one frame; `Ok(None)` when the server closed cleanly.
    pub fn read_message(&mut self) -> Result<Option<Message>, ClientError> {
        match read_frame(&mut self.reader)? {
            None => Ok(None),
            Some((KIND_BLOCK, payload)) => Ok(Some(Message::Chunk(
                decode_chunk(&payload).map_err(ClientError::Protocol)?,
            ))),
            Some((_, payload)) => Ok(Some(Message::Envelope(payload))),
        }
    }

    /// Sends `body` and collects the full response: binary chunks
    /// until the envelope arrives. Only valid when this request is the
    /// sole one in flight (chunks of other ids are a protocol error);
    /// pipeline manually via [`Client::send_json`] /
    /// [`Client::read_message`] otherwise.
    pub fn request(&mut self, body: &str) -> Result<Response, ClientError> {
        self.send_json(body)?;
        let mut chunks = Vec::new();
        loop {
            match self.read_message()? {
                None => {
                    return Err(ClientError::Protocol(
                        "connection closed before the envelope arrived".into(),
                    ))
                }
                Some(Message::Chunk(chunk)) => chunks.push(chunk),
                Some(Message::Envelope(envelope)) => return Ok(Response { envelope, chunks }),
            }
        }
    }

    /// Half-closes the write side, telling the server this client is
    /// done submitting (its reader sees a clean EOF).
    pub fn finish_writes(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().shutdown(std::net::Shutdown::Write)
    }
}

/// How a [`RetryClient`] reacts to transport failures. The analogue of
/// `hwperm_core::FaultPolicy` one layer down the stack: `max_attempts
/// = 1` is `Panic` (fail loudly on the first fault), larger values are
/// `Retry` with exponential backoff. (`Fallback` has no transport
/// analogue — there is no degraded data source to switch to.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total tries per request, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before retry k (0-based) averages
    /// `backoff_ms << k`, capped at [`RetryPolicy::max_backoff_ms`].
    pub backoff_ms: u64,
    /// Hard cap on one backoff sleep.
    pub max_backoff_ms: u64,
    /// Jitter seed: the exact sleep for attempt k is a pure function
    /// of `(seed, k)`, so a fault schedule replays identically.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_ms: 50,
            max_backoff_ms: 2_000,
            seed: 0xC0FF_EE00,
        }
    }
}

/// splitmix64 — the workspace's stock seed scrambler.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// A policy that never retries — every transport fault is
    /// immediately loud (the `FaultPolicy::Panic` analogue).
    pub fn no_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The deterministic backoff before 0-based retry `attempt`:
    /// half the capped exponential step plus seeded jitter over the
    /// other half, so concurrent clients sharing a policy but not a
    /// seed spread out instead of thundering back together.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let step = self
            .backoff_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.max_backoff_ms)
            .max(1);
        let half = step / 2;
        half + splitmix64(self.seed.wrapping_add(attempt as u64)) % (step - half).max(1)
    }
}

/// Honest counters of everything a [`RetryClient`] did — mirrors the
/// `GuardedPermSource` guard-stats discipline: every recovery is
/// tallied, never silent.
#[derive(Debug, Default)]
pub struct RetryCounters {
    attempts: AtomicU64,
    retries: AtomicU64,
    reconnects: AtomicU64,
    gave_up: AtomicU64,
}

/// A snapshot of [`RetryCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryStats {
    /// Requests sent over the wire, including replays.
    pub attempts: u64,
    /// Replays after a transport fault.
    pub retries: u64,
    /// Connections re-established (the first connect is not counted).
    pub reconnects: u64,
    /// Requests that exhausted every attempt (or faulted on a
    /// non-replayable command) and surfaced the error.
    pub gave_up: u64,
}

/// Whether a request body names an idempotent command a retry may
/// safely replay. `unrank` / `rank` / `block` / `verify` / `stats`
/// replay (same input, same answer, no side effect); `random-stream`
/// does **not** (a replayed stream re-draws and the caller may have
/// consumed chunks of the first attempt), `shutdown` does not (a retry
/// would kill a freshly restarted server), and unparseable bodies do
/// not.
pub fn request_is_replayable(body: &str) -> bool {
    matches!(
        Json::parse(body.as_bytes())
            .ok()
            .as_ref()
            .and_then(|doc| doc.get("cmd"))
            .and_then(Json::as_str),
        Some("unrank" | "rank" | "block" | "verify" | "stats")
    )
}

/// Stamps the 0-based `attempt` counter into a request body so the
/// server can tally `retries_observed`. The body must be a JSON
/// object (every valid request is).
fn stamp_attempt(body: &str, attempt: u32) -> String {
    let trimmed = body.trim_end();
    match trimmed.strip_suffix('}') {
        Some(head) if head.trim_end().ends_with('{') => format!("{head}\"attempt\":{attempt}}}"),
        Some(head) => format!("{head},\"attempt\":{attempt}}}"),
        None => trimmed.to_string(),
    }
}

/// A [`Client`] with automatic reconnect and idempotent-only replay
/// under a [`RetryPolicy`]. Connections are (re-)established lazily,
/// so constructing one against a dead server is not an error — the
/// first request is.
pub struct RetryClient {
    endpoint: Endpoint,
    policy: RetryPolicy,
    conn: Option<Client>,
    counters: RetryCounters,
}

impl RetryClient {
    /// Wraps `endpoint` in `policy`. No connection is made yet.
    pub fn new(endpoint: Endpoint, policy: RetryPolicy) -> RetryClient {
        RetryClient {
            endpoint,
            policy,
            conn: None,
            counters: RetryCounters::default(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Snapshot of the recovery counters.
    pub fn stats(&self) -> RetryStats {
        RetryStats {
            attempts: self.counters.attempts.load(Ordering::Relaxed),
            retries: self.counters.retries.load(Ordering::Relaxed),
            reconnects: self.counters.reconnects.load(Ordering::Relaxed),
            gave_up: self.counters.gave_up.load(Ordering::Relaxed),
        }
    }

    fn connect_if_needed(&mut self) -> Result<&mut Client, ClientError> {
        if self.conn.is_none() {
            let fresh = Client::connect(&self.endpoint)?;
            if self.counters.attempts.load(Ordering::Relaxed) > 0 {
                self.counters.reconnects.fetch_add(1, Ordering::Relaxed);
            }
            self.conn = Some(fresh);
        }
        Ok(self.conn.as_mut().expect("connection just ensured"))
    }

    /// Sends `body` and collects the full response, retrying through
    /// transport faults per the policy. A response envelope that
    /// *reports* an error (`"status":"error"`) is a successful
    /// round-trip and is returned, never retried — only connect,
    /// framing and protocol failures count as faults. Non-replayable
    /// commands surface the first fault immediately.
    pub fn request(&mut self, body: &str) -> Result<Response, ClientError> {
        let replayable = request_is_replayable(body);
        let mut attempt: u32 = 0;
        loop {
            self.counters.attempts.fetch_add(1, Ordering::Relaxed);
            let wire = if attempt == 0 {
                body.to_string()
            } else {
                stamp_attempt(body, attempt)
            };
            let result = self
                .connect_if_needed()
                .and_then(|conn| conn.request(&wire));
            match result {
                Ok(response) => return Ok(response),
                Err(e) => {
                    // Whatever failed, the connection's framing state
                    // is unknowable — never reuse it.
                    self.conn = None;
                    if !replayable || attempt + 1 >= self.policy.max_attempts.max(1) {
                        self.counters.gave_up.fetch_add(1, Ordering::Relaxed);
                        return Err(e);
                    }
                    self.counters.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(self.policy.delay_ms(attempt)));
                    attempt += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let policy = RetryPolicy {
            max_attempts: 8,
            backoff_ms: 100,
            max_backoff_ms: 1_000,
            seed: 42,
        };
        let delays: Vec<u64> = (0..6).map(|k| policy.delay_ms(k)).collect();
        // Replayed exactly.
        assert_eq!(
            delays,
            (0..6).map(|k| policy.delay_ms(k)).collect::<Vec<_>>()
        );
        // Each delay sits in [step/2, step) for step = min(100 << k, 1000).
        for (k, &d) in delays.iter().enumerate() {
            let step = (100u64 << k).min(1_000);
            assert!(
                (step / 2..step.max(step / 2 + 1)).contains(&d),
                "attempt {k}: delay {d} outside [{}, {})",
                step / 2,
                step
            );
        }
        // A different seed jitters differently (with overwhelming
        // likelihood for this fixed pair).
        let other = RetryPolicy { seed: 43, ..policy };
        assert_ne!(
            (0..6).map(|k| policy.delay_ms(k)).collect::<Vec<_>>(),
            (0..6).map(|k| other.delay_ms(k)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn replayability_is_idempotent_only() {
        for (body, want) in [
            (r#"{"id":1,"cmd":"unrank","n":4,"index":3}"#, true),
            (r#"{"cmd":"rank","perm":[0,1]}"#, true),
            (r#"{"cmd":"block","n":5}"#, true),
            (r#"{"cmd":"verify","n":3}"#, true),
            (r#"{"cmd":"stats"}"#, true),
            (r#"{"cmd":"random-stream","n":4,"count":5}"#, false),
            (r#"{"cmd":"shutdown"}"#, false),
            (r#"{"cmd":"frobnicate"}"#, false),
            ("not json", false),
        ] {
            assert_eq!(request_is_replayable(body), want, "{body}");
        }
    }

    #[test]
    fn attempt_stamp_keeps_the_body_parseable() {
        assert_eq!(
            stamp_attempt(r#"{"id":1,"cmd":"stats"}"#, 2),
            r#"{"id":1,"cmd":"stats","attempt":2}"#
        );
        assert_eq!(stamp_attempt("{}", 1), r#"{"attempt":1}"#);
        assert_eq!(
            crate::protocol::request_attempt(stamp_attempt(r#"{"cmd":"stats"}"#, 3).as_bytes()),
            3
        );
        assert_eq!(crate::protocol::request_attempt(br#"{"cmd":"stats"}"#), 0);
    }
}
